// Durable offline-provenance archive: a framed record log on a PageFile.
//
// Layout (all framed, see `FrameType`):
//
//   [header] [string|record|evict|persist]*
//
// Every frame is `[u8 type][varint payload_len][payload][u64 fnv1a(payload)]`.
// Strings (predicates, rule labels, principals) are interned: the first
// occurrence appends a kString frame and subsequent records reference it by
// id, so the hot names in a fixpoint run are stored once per archive
// generation. Records are varint-encoded with id-interned strings and raw
// Value serialization — typically a third of ProvRecord::Serialize.
//
// Aging is logical: EvictOlderThan / MarkPersistent append small frames and
// flip in-memory slot state; the bytes of dead records stay in the log until
// compaction rewrites a fresh snapshot (generation + 1, live records only,
// strings re-interned compactly) through PageFile::Rewrite's tmp+rename, so
// a crash mid-compaction leaves a consistent archive either way. Frames
// appended after the snapshot are the diff; recovery = replay snapshot then
// diff, truncating a torn final frame (checksum or length mismatch) at the
// tail.
//
// The in-memory footprint is the slot index (offset/len/digest/metadata per
// record) plus the PageFile cache — records themselves are decoded on
// demand, which is what drops full-provenance RSS.
#ifndef PROVNET_STORE_ARCHIVE_H_
#define PROVNET_STORE_ARCHIVE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "provenance/store.h"
#include "store/pagefile.h"
#include "util/status.h"

namespace provnet::store {

struct ArchiveOptions {
  PageFileOptions page;
  // Compact when dead records outnumber live ones and exceed this floor
  // (avoids rewriting tiny archives over and over).
  size_t compact_min_dead = 64;
};

class ProvArchive {
 public:
  ProvArchive() = default;

  ProvArchive(const ProvArchive&) = delete;
  ProvArchive& operator=(const ProvArchive&) = delete;

  // Opens (or creates) the archive at `path`; "" keeps it memory-resident.
  // An existing log is replayed to rebuild the index; a torn tail is
  // truncated away and recovery proceeds with every intact frame.
  Status Open(const std::string& path, ArchiveOptions options);

  // Appends one record frame (interning any new strings first).
  void Add(const ProvRecord& record);

  // Logical aging: marks matching live slots dead and logs the cutoff so
  // replay reproduces the same live set. May trigger compaction. Returns
  // the number evicted.
  size_t EvictOlderThan(double cutoff);

  // Marks all records of `digest` persistent (logged for replay). Returns
  // how many were marked.
  size_t MarkPersistent(TupleDigest digest);

  // Decoded live records, in append order (matching the pre-archive
  // in-memory store's iteration order byte-for-byte).
  std::vector<ProvRecord> FindByDigest(TupleDigest digest) const;
  std::vector<ProvRecord> FindByPredicate(const std::string& predicate) const;
  std::vector<ProvRecord> FindInWindow(double from, double to) const;

  size_t size() const { return live_count_; }
  // Sum of live record payload bytes — the storage-overhead bench number.
  size_t ApproxBytes() const { return live_bytes_; }

  Status Flush() { return file_.Flush(); }
  // Fail-stop crash: drops the unflushed tail and releases the backing
  // file so a restart can re-open (and recover) the archive at `path`.
  void Abandon() { file_.Abandon(); }
  uint64_t DiskBytes() const { return file_.DiskBytes(); }
  bool on_disk() const { return file_.on_disk(); }

  // Page reads/writes plus compactions since the last call.
  ArchiveIo TakeIo() const {
    ArchiveIo io = file_.TakeIo();
    io.compactions = compactions_;
    compactions_ = 0;
    return io;
  }

 private:
  // One index entry per record frame in the log.
  struct Slot {
    uint64_t offset = 0;  // payload offset in the page file
    uint32_t len = 0;     // payload length
    TupleDigest digest = 0;
    uint32_t pred_id = 0;
    double created_at = 0.0;
    bool persist = false;
    bool dead = false;
  };

  uint32_t InternString(const std::string& s);
  // Appends one frame to the log (or to `building_` during compaction),
  // reporting where the payload landed when the caller indexes it.
  void AppendFrame(uint8_t type, const Bytes& payload,
                   uint64_t* payload_offset);
  void EncodeRecord(const ProvRecord& record, ByteWriter& out);
  Result<ProvRecord> DecodeRecord(const uint8_t* data, size_t len) const;
  Result<ProvRecord> DecodeSlot(const Slot& slot) const;
  // Replays every intact frame of an existing log, truncating a torn tail.
  Status Replay();
  // Index-side effects of evict/persist frames, shared by the live calls
  // and replay.
  size_t ApplyEvict(double cutoff);
  size_t ApplyPersist(TupleDigest digest);
  void MaybeCompact();

  ArchiveOptions options_;
  PageFile file_;
  uint64_t generation_ = 0;
  // Non-null while compaction builds the replacement snapshot: AppendFrame
  // targets this buffer instead of the page file.
  Bytes* building_ = nullptr;

  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> string_ids_;

  std::vector<Slot> slots_;
  std::unordered_map<TupleDigest, std::vector<size_t>> by_digest_;
  size_t live_count_ = 0;
  size_t live_bytes_ = 0;
  size_t dead_count_ = 0;
  mutable uint64_t compactions_ = 0;
};

}  // namespace provnet::store

#endif  // PROVNET_STORE_ARCHIVE_H_
