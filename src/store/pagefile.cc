#include "store/pagefile.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "obs/mem.h"

namespace provnet::store {

namespace {

// Each cached/resident page is charged its capacity plus a fixed container
// overhead, symmetric on release so the gauge cannot drift.
constexpr size_t kPageOverhead = 64;

}  // namespace

PageFile::~PageFile() {
  if (file_ != nullptr) {
    (void)Flush();
    std::fclose(file_);
  }
  ReleaseResident(resident_bytes_);
}

void PageFile::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);  // no Flush(): the buffered tail dies with us
    file_ = nullptr;
  }
}

void PageFile::ChargeResident(size_t bytes) const {
  resident_bytes_ += bytes;
  obs::MemAccounting::Global().Add(obs::MemSubsystem::kArchivePages, bytes);
}

void PageFile::ReleaseResident(size_t bytes) const {
  resident_bytes_ -= std::min(bytes, resident_bytes_);
  obs::MemAccounting::Global().Sub(obs::MemSubsystem::kArchivePages, bytes);
}

Status PageFile::Open(const std::string& path, PageFileOptions options) {
  if (options.page_bytes < 64) {
    return InvalidArgumentError("page_bytes must be >= 64");
  }
  options_ = options;
  path_ = path;
  if (path.empty()) return OkStatus();  // memory mode

  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      return InternalError("cannot create archive directory: " + ec.message());
    }
  }
  // Resume an existing log byte-for-byte, else start fresh.
  file_ = std::fopen(path.c_str(), "rb+");
  if (file_ == nullptr) file_ = std::fopen(path.c_str(), "wb+");
  if (file_ == nullptr) {
    return InternalError("cannot open archive file: " + path);
  }
  std::fseek(file_, 0, SEEK_END);
  long size = std::ftell(file_);
  if (size < 0) return InternalError("cannot size archive file: " + path);
  end_offset_ = static_cast<uint64_t>(size);
  // Load the partial tail page so appends continue where the log left off.
  tail_index_ = end_offset_ / options_.page_bytes;
  size_t tail_len = end_offset_ % options_.page_bytes;
  tail_.assign(tail_len, 0);
  if (tail_len > 0) {
    std::fseek(file_,
               static_cast<long>(tail_index_ * options_.page_bytes), SEEK_SET);
    if (std::fread(tail_.data(), 1, tail_len, file_) != tail_len) {
      return InternalError("cannot read archive tail: " + path);
    }
  }
  ChargeResident(options_.page_bytes + kPageOverhead);
  tail_dirty_ = false;
  return OkStatus();
}

uint64_t PageFile::Append(const uint8_t* data, size_t len) {
  uint64_t at = end_offset_;
  if (file_ == nullptr) {
    // Memory mode: fill the page vector directly.
    size_t pos = 0;
    while (pos < len) {
      if (pages_.empty() || pages_.back().size() == options_.page_bytes) {
        pages_.emplace_back();
        pages_.back().reserve(options_.page_bytes);
        ChargeResident(options_.page_bytes + kPageOverhead);
      }
      Bytes& page = pages_.back();
      size_t room = options_.page_bytes - page.size();
      size_t take = std::min(room, len - pos);
      page.insert(page.end(), data + pos, data + pos + take);
      pos += take;
    }
    end_offset_ += len;
    return at;
  }
  size_t pos = 0;
  while (pos < len) {
    size_t room = options_.page_bytes - tail_.size();
    size_t take = std::min(room, len - pos);
    tail_.insert(tail_.end(), data + pos, data + pos + take);
    tail_dirty_ = true;
    pos += take;
    if (tail_.size() == options_.page_bytes) {
      // Completed page: write it through and start the next tail.
      (void)WritePage(tail_index_, tail_);
      tail_.clear();
      ++tail_index_;
      tail_dirty_ = false;
    }
  }
  end_offset_ += len;
  return at;
}

Status PageFile::WritePage(uint64_t index, const Bytes& page) {
  std::fseek(file_, static_cast<long>(index * options_.page_bytes), SEEK_SET);
  if (std::fwrite(page.data(), 1, page.size(), file_) != page.size()) {
    return InternalError("archive page write failed: " + path_);
  }
  ++io_.page_writes;
  // The cache may hold a stale copy of a page we just extended (the tail
  // page is written once partially on Flush, then again when it fills).
  auto it = cache_.find(index);
  if (it != cache_.end()) {
    ReleaseResident(options_.page_bytes + kPageOverhead);
    lru_.erase(lru_pos_[index]);
    lru_pos_.erase(index);
    cache_.erase(it);
  }
  return OkStatus();
}

Status PageFile::Flush() {
  if (file_ == nullptr) return OkStatus();
  if (tail_dirty_ && !tail_.empty()) {
    PROVNET_RETURN_IF_ERROR(WritePage(tail_index_, tail_));
    tail_dirty_ = false;
  }
  if (std::fflush(file_) != 0) {
    return InternalError("archive flush failed: " + path_);
  }
  return OkStatus();
}

const Bytes* PageFile::CachedPage(uint64_t index) const {
  auto it = cache_.find(index);
  if (it != cache_.end()) {
    lru_.erase(lru_pos_[index]);
    lru_.push_front(index);
    lru_pos_[index] = lru_.begin();
    return &it->second;
  }
  // Miss: read the page from the file.
  size_t want = options_.page_bytes;
  uint64_t start = index * options_.page_bytes;
  if (start >= end_offset_) return nullptr;
  want = static_cast<size_t>(
      std::min<uint64_t>(want, end_offset_ - start));
  Bytes page(want, 0);
  std::fseek(file_, static_cast<long>(start), SEEK_SET);
  if (std::fread(page.data(), 1, want, file_) != want) return nullptr;
  ++io_.page_reads;
  ChargeResident(options_.page_bytes + kPageOverhead);
  auto [pos, inserted] = cache_.emplace(index, std::move(page));
  (void)inserted;
  lru_.push_front(index);
  lru_pos_[index] = lru_.begin();
  while (cache_.size() > options_.cache_pages) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    cache_.erase(victim);
    ReleaseResident(options_.page_bytes + kPageOverhead);
  }
  return &pos->second;
}

bool PageFile::Read(uint64_t offset, size_t len, Bytes* out) const {
  if (offset + len > end_offset_) return false;
  out->clear();
  out->reserve(len);
  if (file_ == nullptr) {
    uint64_t page = PageOf(offset);
    size_t at = static_cast<size_t>(offset % options_.page_bytes);
    while (out->size() < len) {
      if (page >= pages_.size()) return false;
      const Bytes& src = pages_[static_cast<size_t>(page)];
      size_t take = std::min(len - out->size(), src.size() - at);
      out->insert(out->end(), src.begin() + static_cast<long>(at),
                  src.begin() + static_cast<long>(at + take));
      ++page;
      at = 0;
    }
    return true;
  }
  uint64_t page = PageOf(offset);
  size_t at = static_cast<size_t>(offset % options_.page_bytes);
  while (out->size() < len) {
    const Bytes* src = nullptr;
    // The unflushed tail is only resident here; serve it directly.
    if (page == tail_index_) {
      src = &tail_;
    } else {
      src = CachedPage(page);
    }
    if (src == nullptr || at >= src->size()) return false;
    size_t take = std::min(len - out->size(), src->size() - at);
    out->insert(out->end(), src->begin() + static_cast<long>(at),
                src->begin() + static_cast<long>(at + take));
    ++page;
    at = 0;
  }
  return true;
}

Status PageFile::TruncateTo(uint64_t offset) {
  if (offset > end_offset_) {
    return InvalidArgumentError("TruncateTo beyond end of log");
  }
  if (offset == end_offset_) return OkStatus();
  if (file_ == nullptr) {
    size_t keep_pages = static_cast<size_t>(
        (offset + options_.page_bytes - 1) / options_.page_bytes);
    while (pages_.size() > keep_pages) {
      pages_.pop_back();
      ReleaseResident(options_.page_bytes + kPageOverhead);
    }
    if (!pages_.empty()) {
      size_t last_len = static_cast<size_t>(
          offset - (pages_.size() - 1) * options_.page_bytes);
      pages_.back().resize(last_len);
    }
    end_offset_ = offset;
    return OkStatus();
  }
  // Disk mode: rewrite via the filesystem resize, reload the tail.
  PROVNET_RETURN_IF_ERROR(Flush());
  std::error_code ec;
  std::filesystem::resize_file(path_, offset, ec);
  if (ec) return InternalError("archive truncate failed: " + ec.message());
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "rb+");
  if (file_ == nullptr) {
    return InternalError("cannot reopen archive file: " + path_);
  }
  end_offset_ = offset;
  tail_index_ = end_offset_ / options_.page_bytes;
  size_t tail_len = static_cast<size_t>(end_offset_ % options_.page_bytes);
  tail_.assign(tail_len, 0);
  if (tail_len > 0) {
    std::fseek(file_,
               static_cast<long>(tail_index_ * options_.page_bytes), SEEK_SET);
    if (std::fread(tail_.data(), 1, tail_len, file_) != tail_len) {
      return InternalError("cannot read archive tail: " + path_);
    }
  }
  tail_dirty_ = false;
  DropCache();
  return OkStatus();
}

void PageFile::DropCache() const {
  ReleaseResident(cache_.size() * (options_.page_bytes + kPageOverhead));
  cache_.clear();
  lru_.clear();
  lru_pos_.clear();
}

Status PageFile::Rewrite(const Bytes& bytes) {
  if (file_ == nullptr) {
    size_t released = pages_.size() * (options_.page_bytes + kPageOverhead);
    pages_.clear();
    ReleaseResident(released);
    end_offset_ = 0;
    Append(bytes.data(), bytes.size());
    return OkStatus();
  }
  std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) return InternalError("cannot open " + tmp);
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size();
  ok = std::fflush(out) == 0 && ok;
  std::fclose(out);
  if (!ok) return InternalError("archive rewrite failed: " + tmp);
  std::fclose(file_);
  file_ = nullptr;
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) return InternalError("archive rename failed: " + ec.message());
  file_ = std::fopen(path_.c_str(), "rb+");
  if (file_ == nullptr) {
    return InternalError("cannot reopen archive file: " + path_);
  }
  io_.page_writes += (bytes.size() + options_.page_bytes - 1) /
                     options_.page_bytes;
  end_offset_ = bytes.size();
  tail_index_ = end_offset_ / options_.page_bytes;
  size_t tail_len = static_cast<size_t>(end_offset_ % options_.page_bytes);
  tail_.assign(bytes.end() - static_cast<long>(tail_len), bytes.end());
  tail_dirty_ = false;
  DropCache();
  return OkStatus();
}

uint64_t PageFile::DiskBytes() const {
  return file_ == nullptr ? 0 : end_offset_;
}

}  // namespace provnet::store
