// Fixed-size-page byte log: the I/O layer under the durable provenance
// archive (src/store/archive.*).
//
// The log is append-only at record granularity but all I/O happens in page
// units: writers buffer the tail page in memory and write pages through to
// the backing file as they fill (plus the partial tail on Flush), readers go
// through an LRU cache of decoded pages keyed by page index. With an empty
// path the "file" is a resident page vector — the same code path the tests
// and the default in-process OfflineProvStore use — so disk is an option,
// not a requirement.
//
// Durability contract: everything up to the last Flush() survives a crash;
// a torn tail (partial final record from a mid-write kill) is the archive
// layer's problem to detect (per-record checksums) and ours to truncate
// away (TruncateTo).
#ifndef PROVNET_STORE_PAGEFILE_H_
#define PROVNET_STORE_PAGEFILE_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace provnet::store {

struct PageFileOptions {
  size_t page_bytes = 4096;
  // LRU capacity of the read cache (on-disk mode only; the in-memory mode
  // is its own storage and needs no cache).
  size_t cache_pages = 64;
};

// Page reads/writes/compactions since the last TakeIo() — the archive's
// registry counters are fed from these deltas at engine choke points.
struct ArchiveIo {
  uint64_t page_reads = 0;   // cache misses served from the backing file
  uint64_t page_writes = 0;  // pages written through to the backing file
  uint64_t compactions = 0;  // filled by the archive layer, not here
};

class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  // Opens `path` (resuming an existing log byte-for-byte) or, with an empty
  // path, starts a resident in-memory log. Callable once per instance.
  Status Open(const std::string& path, PageFileOptions options);

  bool on_disk() const { return file_ != nullptr; }
  uint64_t end_offset() const { return end_offset_; }
  size_t page_bytes() const { return options_.page_bytes; }

  // Appends `len` bytes, returning the offset they start at. Completed
  // pages are written through immediately; the tail stays buffered until
  // Flush() or until it fills.
  uint64_t Append(const uint8_t* data, size_t len);

  // Reads `len` bytes at `offset` into `out` (replacing its contents)
  // through the page cache. False when the range is outside the log.
  bool Read(uint64_t offset, size_t len, Bytes* out) const;

  // Writes the buffered tail page through to the backing file. No-op in
  // memory mode and when nothing changed since the last flush.
  Status Flush();

  // Closes the backing file WITHOUT flushing the buffered tail page —
  // simulating a fail-stop crash that tears off everything since the last
  // Flush(). Completed pages already written through survive; the instance
  // becomes memory-resident and should be discarded.
  void Abandon();

  // Drops everything at and after `offset` (recovery truncating a torn
  // tail). Requires offset <= end_offset().
  Status TruncateTo(uint64_t offset);

  // Replaces the whole log with `bytes` (the archive's snapshot rewrite).
  // On disk this goes through <path>.tmp + rename, so a crash mid-rewrite
  // leaves either the old or the new log, never a mix.
  Status Rewrite(const Bytes& bytes);

  // Bytes in the backing file (0 in memory mode): the "archive bytes on
  // disk" number the benches report.
  uint64_t DiskBytes() const;

  // Accounted resident footprint: page vector (memory mode) or tail buffer
  // + LRU cache (disk mode). Charged to obs MemSubsystem::kArchivePages.
  size_t ResidentBytes() const { return resident_bytes_; }

  ArchiveIo TakeIo() const {
    ArchiveIo out = io_;
    io_ = ArchiveIo{};
    return out;
  }

 private:
  // Page index holding `offset`.
  uint64_t PageOf(uint64_t offset) const { return offset / options_.page_bytes; }
  // Loads page `index` into the LRU cache (disk mode), returning its bytes.
  const Bytes* CachedPage(uint64_t index) const;
  void ChargeResident(size_t bytes) const;
  void ReleaseResident(size_t bytes) const;
  Status WritePage(uint64_t index, const Bytes& page);
  void DropCache() const;

  PageFileOptions options_;
  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t end_offset_ = 0;

  // Memory mode: the log itself, one entry per page (all full except the
  // last). Disk mode: only the tail page is resident here.
  std::vector<Bytes> pages_;
  Bytes tail_;
  uint64_t tail_index_ = 0;   // page index of tail_ (disk mode)
  bool tail_dirty_ = false;   // tail has bytes not yet in the file

  // Disk-mode read cache: page index -> bytes, LRU by recency list.
  mutable std::unordered_map<uint64_t, Bytes> cache_;
  mutable std::list<uint64_t> lru_;  // front = most recent
  mutable std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_pos_;

  mutable ArchiveIo io_;
  mutable size_t resident_bytes_ = 0;
};

}  // namespace provnet::store

#endif  // PROVNET_STORE_PAGEFILE_H_
