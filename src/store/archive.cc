#include "store/archive.h"

#include <algorithm>
#include <utility>

#include "util/hash.h"

namespace provnet::store {

namespace {

enum FrameType : uint8_t {
  kHeader = 0,   // magic + version + generation
  kString = 1,   // interned string (id = arrival order)
  kRecord = 2,   // one ProvRecord, id-interned encoding
  kEvict = 3,    // EvictOlderThan cutoff (replayed logically)
  kPersist = 4,  // MarkPersistent digest (replayed logically)
};

constexpr const char* kMagic = "provarch";
constexpr uint64_t kVersion = 1;
// Frame trailer: 8-byte checksum.
constexpr size_t kChecksumBytes = 8;

uint64_t FrameChecksum(uint8_t type, const uint8_t* payload, size_t len) {
  // Mix the type in so a frame whose payload survives a torn write but
  // whose type byte flipped still fails verification.
  return Fnv1a64(payload, len) ^ (0x9E3779B97F4A7C15ull * (type + 1));
}

}  // namespace

Status ProvArchive::Open(const std::string& path, ArchiveOptions options) {
  options_ = options;
  PROVNET_RETURN_IF_ERROR(file_.Open(path, options.page));
  if (file_.end_offset() == 0) {
    ByteWriter w;
    w.PutString(kMagic);
    w.PutVarint(kVersion);
    w.PutVarint(generation_);
    AppendFrame(kHeader, std::move(w).Take(), nullptr);
    return OkStatus();
  }
  return Replay();
}

void ProvArchive::AppendFrame(uint8_t type, const Bytes& payload,
                              uint64_t* payload_offset) {
  ByteWriter w;
  w.PutU8(type);
  w.PutVarint(payload.size());
  size_t header_len = w.size();
  w.PutRaw(payload.data(), payload.size());
  w.PutU64(FrameChecksum(type, payload.data(), payload.size()));
  Bytes frame = std::move(w).Take();
  uint64_t at;
  if (building_ != nullptr) {
    at = building_->size();
    building_->insert(building_->end(), frame.begin(), frame.end());
  } else {
    at = file_.Append(frame.data(), frame.size());
  }
  if (payload_offset != nullptr) *payload_offset = at + header_len;
}

uint32_t ProvArchive::InternString(const std::string& s) {
  auto it = string_ids_.find(s);
  if (it != string_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.push_back(s);
  string_ids_.emplace(s, id);
  Bytes payload(s.begin(), s.end());
  AppendFrame(kString, payload, nullptr);
  return id;
}

void ProvArchive::EncodeRecord(const ProvRecord& record, ByteWriter& out) {
  // Strings are interned first so their frames precede this record's frame
  // in the log — replay then always resolves every id.
  out.PutVarint(InternString(record.tuple.predicate()));
  out.PutVarint(record.tuple.arity());
  for (const Value& v : record.tuple.args()) v.Serialize(out);
  out.PutVarint(InternString(record.rule));
  out.PutVarint(record.location);
  out.PutVarint(InternString(record.asserted_by));
  out.PutDouble(record.created_at);
  out.PutDouble(record.expires_at);
  out.PutU8(record.persist ? 1 : 0);
  out.PutVarint(record.children.size());
  for (const ProvChildRef& c : record.children) {
    out.PutVarint(c.node);
    out.PutU64(c.digest);
    out.PutU8(c.is_base ? 1 : 0);
    if (c.is_base) {
      out.PutVarint(InternString(c.base_tuple.predicate()));
      out.PutVarint(c.base_tuple.arity());
      for (const Value& v : c.base_tuple.args()) v.Serialize(out);
    }
    out.PutVarint(InternString(c.asserted_by));
  }
}

Result<ProvRecord> ProvArchive::DecodeRecord(const uint8_t* data,
                                             size_t len) const {
  ByteReader in(data, len);
  auto get_string = [this](uint64_t id) -> Result<std::string> {
    if (id >= strings_.size()) {
      return InvalidArgumentError("archive string id out of range");
    }
    return strings_[static_cast<size_t>(id)];
  };
  auto get_tuple = [&](ByteReader& r) -> Result<Tuple> {
    PROVNET_ASSIGN_OR_RETURN(uint64_t pred_id, r.GetVarint());
    PROVNET_ASSIGN_OR_RETURN(std::string pred, get_string(pred_id));
    PROVNET_ASSIGN_OR_RETURN(uint64_t arity, r.GetVarint());
    if (arity > r.remaining()) return InvalidArgumentError("bad arity");
    std::vector<Value> args;
    args.reserve(static_cast<size_t>(arity));
    for (uint64_t i = 0; i < arity; ++i) {
      PROVNET_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
      args.push_back(std::move(v));
    }
    return Tuple(std::move(pred), std::move(args));
  };

  ProvRecord rec;
  PROVNET_ASSIGN_OR_RETURN(rec.tuple, get_tuple(in));
  PROVNET_ASSIGN_OR_RETURN(uint64_t rule_id, in.GetVarint());
  PROVNET_ASSIGN_OR_RETURN(rec.rule, get_string(rule_id));
  PROVNET_ASSIGN_OR_RETURN(uint64_t location, in.GetVarint());
  rec.location = static_cast<NodeId>(location);
  PROVNET_ASSIGN_OR_RETURN(uint64_t asserted_id, in.GetVarint());
  PROVNET_ASSIGN_OR_RETURN(rec.asserted_by, get_string(asserted_id));
  PROVNET_ASSIGN_OR_RETURN(rec.created_at, in.GetDouble());
  PROVNET_ASSIGN_OR_RETURN(rec.expires_at, in.GetDouble());
  PROVNET_ASSIGN_OR_RETURN(uint8_t persist, in.GetU8());
  rec.persist = persist != 0;
  PROVNET_ASSIGN_OR_RETURN(uint64_t n, in.GetVarint());
  if (n > in.remaining()) return InvalidArgumentError("too many children");
  for (uint64_t i = 0; i < n; ++i) {
    ProvChildRef ref;
    PROVNET_ASSIGN_OR_RETURN(uint64_t node, in.GetVarint());
    ref.node = static_cast<NodeId>(node);
    PROVNET_ASSIGN_OR_RETURN(ref.digest, in.GetU64());
    PROVNET_ASSIGN_OR_RETURN(uint8_t base, in.GetU8());
    ref.is_base = base != 0;
    if (ref.is_base) {
      PROVNET_ASSIGN_OR_RETURN(ref.base_tuple, get_tuple(in));
    }
    PROVNET_ASSIGN_OR_RETURN(uint64_t child_asserted, in.GetVarint());
    PROVNET_ASSIGN_OR_RETURN(ref.asserted_by, get_string(child_asserted));
    rec.children.push_back(std::move(ref));
  }
  return rec;
}

Result<ProvRecord> ProvArchive::DecodeSlot(const Slot& slot) const {
  Bytes payload;
  if (!file_.Read(slot.offset, slot.len, &payload)) {
    return InternalError("archive payload read failed");
  }
  PROVNET_ASSIGN_OR_RETURN(ProvRecord rec,
                           DecodeRecord(payload.data(), payload.size()));
  // MarkPersistent flips the slot, not the stored bytes; surface the live
  // value so callers see the same record the in-memory store would hold.
  rec.persist = slot.persist;
  return rec;
}

void ProvArchive::Add(const ProvRecord& record) {
  ByteWriter w;
  EncodeRecord(record, w);
  Bytes payload = std::move(w).Take();
  Slot slot;
  slot.len = static_cast<uint32_t>(payload.size());
  slot.digest = DigestOf(record.tuple);
  slot.pred_id = string_ids_.at(record.tuple.predicate());
  slot.created_at = record.created_at;
  slot.persist = record.persist;
  AppendFrame(kRecord, payload, &slot.offset);
  by_digest_[slot.digest].push_back(slots_.size());
  live_bytes_ += slot.len;
  ++live_count_;
  slots_.push_back(slot);
}

size_t ProvArchive::ApplyEvict(double cutoff) {
  size_t evicted = 0;
  for (Slot& slot : slots_) {
    if (slot.dead || slot.persist || slot.created_at >= cutoff) continue;
    slot.dead = true;
    ++evicted;
    --live_count_;
    ++dead_count_;
    live_bytes_ -= slot.len;
  }
  return evicted;
}

size_t ProvArchive::EvictOlderThan(double cutoff) {
  size_t evicted = ApplyEvict(cutoff);
  ByteWriter w;
  w.PutDouble(cutoff);
  AppendFrame(kEvict, std::move(w).Take(), nullptr);
  MaybeCompact();
  return evicted;
}

size_t ProvArchive::ApplyPersist(TupleDigest digest) {
  auto it = by_digest_.find(digest);
  if (it == by_digest_.end()) return 0;
  size_t marked = 0;
  for (size_t idx : it->second) {
    if (slots_[idx].dead) continue;
    slots_[idx].persist = true;
    ++marked;
  }
  return marked;
}

size_t ProvArchive::MarkPersistent(TupleDigest digest) {
  size_t marked = ApplyPersist(digest);
  ByteWriter w;
  w.PutU64(digest);
  AppendFrame(kPersist, std::move(w).Take(), nullptr);
  return marked;
}

std::vector<ProvRecord> ProvArchive::FindByDigest(TupleDigest digest) const {
  std::vector<ProvRecord> out;
  auto it = by_digest_.find(digest);
  if (it == by_digest_.end()) return out;
  for (size_t idx : it->second) {
    if (slots_[idx].dead) continue;
    Result<ProvRecord> rec = DecodeSlot(slots_[idx]);
    if (rec.ok()) out.push_back(std::move(rec).value());
  }
  return out;
}

std::vector<ProvRecord> ProvArchive::FindByPredicate(
    const std::string& predicate) const {
  std::vector<ProvRecord> out;
  auto id = string_ids_.find(predicate);
  if (id == string_ids_.end()) return out;
  for (const Slot& slot : slots_) {
    if (slot.dead || slot.pred_id != id->second) continue;
    Result<ProvRecord> rec = DecodeSlot(slot);
    if (rec.ok()) out.push_back(std::move(rec).value());
  }
  return out;
}

std::vector<ProvRecord> ProvArchive::FindInWindow(double from,
                                                  double to) const {
  std::vector<ProvRecord> out;
  for (const Slot& slot : slots_) {
    if (slot.dead || slot.created_at < from || slot.created_at >= to) continue;
    Result<ProvRecord> rec = DecodeSlot(slot);
    if (rec.ok()) out.push_back(std::move(rec).value());
  }
  return out;
}

void ProvArchive::MaybeCompact() {
  if (dead_count_ <= live_count_ || dead_count_ < options_.compact_min_dead) {
    return;
  }
  // Decode every survivor before resetting the index — they become the new
  // snapshot, appended in their original order.
  std::vector<ProvRecord> live;
  live.reserve(live_count_);
  for (const Slot& slot : slots_) {
    if (slot.dead) continue;
    Result<ProvRecord> rec = DecodeSlot(slot);
    if (rec.ok()) live.push_back(std::move(rec).value());
  }
  ++generation_;
  strings_.clear();
  string_ids_.clear();
  slots_.clear();
  by_digest_.clear();
  live_count_ = 0;
  live_bytes_ = 0;
  dead_count_ = 0;

  Bytes snapshot;
  building_ = &snapshot;
  ByteWriter header;
  header.PutString(kMagic);
  header.PutVarint(kVersion);
  header.PutVarint(generation_);
  AppendFrame(kHeader, std::move(header).Take(), nullptr);
  for (const ProvRecord& rec : live) Add(rec);
  building_ = nullptr;
  (void)file_.Rewrite(snapshot);
  ++compactions_;
}

Status ProvArchive::Replay() {
  uint64_t pos = 0;
  uint64_t end = file_.end_offset();
  bool saw_header = false;
  while (pos < end) {
    // Frame header: type byte + length varint (at most 1 + 10 bytes).
    size_t probe = static_cast<size_t>(std::min<uint64_t>(11, end - pos));
    Bytes head;
    if (!file_.Read(pos, probe, &head)) break;
    ByteReader hr(head);
    Result<uint8_t> type = hr.GetU8();
    Result<uint64_t> len = type.ok() ? hr.GetVarint() : Result<uint64_t>(
                                           InvalidArgumentError("no header"));
    if (!type.ok() || !len.ok()) break;
    uint64_t header_len = hr.position();
    uint64_t payload_at = pos + header_len;
    uint64_t frame_end = payload_at + *len + kChecksumBytes;
    if (frame_end > end) break;  // torn tail: frame extends past the log
    Bytes body;
    if (!file_.Read(payload_at, static_cast<size_t>(*len) + kChecksumBytes,
                    &body)) {
      break;
    }
    ByteReader cr(body.data() + *len, kChecksumBytes);
    Result<uint64_t> stored = cr.GetU64();
    if (!stored.ok() ||
        *stored != FrameChecksum(*type, body.data(),
                                 static_cast<size_t>(*len))) {
      break;  // torn or corrupt frame
    }
    ByteReader pr(body.data(), static_cast<size_t>(*len));
    if (!saw_header && *type != kHeader) break;  // header must come first
    bool ok = true;
    switch (*type) {
      case kHeader: {
        Result<std::string> magic = pr.GetString();
        ok = magic.ok() && *magic == kMagic;
        if (ok) {
          Result<uint64_t> version = pr.GetVarint();
          ok = version.ok() && *version == kVersion;
        }
        if (ok) {
          Result<uint64_t> gen = pr.GetVarint();
          ok = gen.ok();
          if (ok) generation_ = *gen;
        }
        saw_header = ok;
        break;
      }
      case kString: {
        std::string s(body.begin(), body.begin() + static_cast<long>(*len));
        uint32_t id = static_cast<uint32_t>(strings_.size());
        strings_.push_back(s);
        string_ids_.emplace(std::move(s), id);
        break;
      }
      case kRecord: {
        Result<ProvRecord> rec = DecodeRecord(body.data(),
                                              static_cast<size_t>(*len));
        ok = rec.ok();
        if (ok) {
          Slot slot;
          slot.offset = payload_at;
          slot.len = static_cast<uint32_t>(*len);
          slot.digest = DigestOf(rec->tuple);
          slot.pred_id = string_ids_.at(rec->tuple.predicate());
          slot.created_at = rec->created_at;
          slot.persist = rec->persist;
          by_digest_[slot.digest].push_back(slots_.size());
          live_bytes_ += slot.len;
          ++live_count_;
          slots_.push_back(slot);
        }
        break;
      }
      case kEvict: {
        Result<double> cutoff = pr.GetDouble();
        ok = cutoff.ok();
        if (ok) ApplyEvict(*cutoff);
        break;
      }
      case kPersist: {
        Result<uint64_t> digest = pr.GetU64();
        ok = digest.ok();
        if (ok) ApplyPersist(*digest);
        break;
      }
      default:
        ok = false;
    }
    if (!ok) break;  // undecodable frame: treat like a torn tail
    pos = frame_end;
  }
  // Drop everything from the first bad frame on. If even the header was
  // unreadable the archive restarts empty (the log was corrupt at birth).
  PROVNET_RETURN_IF_ERROR(file_.TruncateTo(pos));
  if (!saw_header) {
    ByteWriter w;
    w.PutString(kMagic);
    w.PutVarint(kVersion);
    w.PutVarint(generation_);
    AppendFrame(kHeader, std::move(w).Take(), nullptr);
  }
  return OkStatus();
}

}  // namespace provnet::store
