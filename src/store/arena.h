// Hash-consed derivation arena: the store-time dedup layer of the durable
// provenance store (ISSUE 9 tentpole, ROADMAP item 2).
//
// Full-provenance mode used to materialize every received derivation tree
// and every rebuilt ProvExpr annotation fresh per message, even though the
// fixpoint re-derives the same sub-proofs at every hop — ProofDag proved
// the sharing exists, but only at query time. The arena moves the collapse
// to *store* time:
//
//  * Canonical() interns DerivationNodes bottom-up by ContentDigest (the
//    same Merkle digest distributed child refs point at), so each distinct
//    sub-proof is owned once, process-wide, under a stable DerivId.
//  * InternExpr()/InternVar()/InternBinary() hash-cons ProvExpr nodes, so
//    annotations rebuilt from equal trees are pointer-equal — which also
//    makes node-identity memo tables (DerivationCountExact) persistent.
//  * Per-DerivId caches for rebuilt annotations and serialized wire bytes
//    turn the receive and send paths from O(tree) to O(1) for repeats.
//
// Interning uses the *Raw expression constructors: the arena must preserve
// structure exactly (same DerivationCount, same CanonicalBytes) — it only
// collapses physical duplication, never semantic alternatives.
//
// Not thread-safe by design: full-provenance runs are pinned to the
// sequential executor (core/engine.cc Run()), which is also what keeps the
// interned_hits/interned_nodes counters deterministic.
#ifndef PROVNET_STORE_ARENA_H_
#define PROVNET_STORE_ARENA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bignum/bigint.h"
#include "provenance/derivation.h"
#include "provenance/prov_expr.h"
#include "util/bytes.h"

namespace provnet::store {

// Stable arena id of an interned derivation node; 0 = none.
using DerivId = uint32_t;

class ProvArena {
 public:
  struct Stats {
    uint64_t interned_nodes = 0;  // distinct nodes adopted (deriv + expr)
    uint64_t interned_hits = 0;   // dedup hits against existing entries
  };

  ProvArena() = default;
  ~ProvArena();

  ProvArena(const ProvArena&) = delete;
  ProvArena& operator=(const ProvArena&) = delete;

  // Returns the arena-owned derivation equal to `root` (interned bottom-up
  // by ContentDigest; unshared suffixes are adopted, duplicated sub-proofs
  // are dropped in favor of the arena copy). `id` receives the root's
  // stable arena id when non-null.
  DerivationPtr Canonical(const DerivationPtr& root, DerivId* id);

  // Arena node by id; nullptr for 0 / out of range.
  DerivationPtr Lookup(DerivId id) const;
  // Id of an already-interned digest; 0 if the digest was never interned.
  DerivId IdOf(const Sha256Digest& digest) const;
  // Id by node identity — non-zero exactly for arena-owned nodes. A pointer
  // probe, so hot paths can skip the 32-byte digest-map lookup for nodes
  // that already live here (the common case after a decode-cache hit).
  DerivId IdOfOwned(const DerivationNode* node) const;

  // Hash-consed expression constructors. InternExpr rebuilds an arbitrary
  // expression with maximal sharing; the fine-grained entry points let the
  // engine's receive path build interned expressions directly.
  ProvExpr InternExpr(const ProvExpr& expr);
  ProvExpr InternVar(ProvVar v);
  ProvExpr InternPlus(const ProvExpr& a, const ProvExpr& b);
  ProvExpr InternTimes(const ProvExpr& a, const ProvExpr& b);

  // Annotation cache: the rebuilt ProvExpr for a derivation, reusable
  // whenever the same sub-proof arrives again. Sub-proofs whose rebuilt
  // annotation depends on who *sent* them (principal-grain leaves with no
  // recorded asserter) use the sender-keyed overloads instead: one entry
  // per (derivation, sender) pair, bounded by the node's indegree.
  const ProvExpr* CachedAnnotation(DerivId id) const;
  void CacheAnnotation(DerivId id, const ProvExpr& expr);
  const ProvExpr* CachedAnnotation(DerivId id, ProvVar sender) const;
  void CacheAnnotation(DerivId id, ProvVar sender, const ProvExpr& expr);

  // Wire cache: serialized DAG bytes for a derivation (SendTuple ships the
  // same proof to every neighbor). Bounded; see kWireCacheMaxEntries.
  const Bytes* CachedWire(DerivId id) const;
  void CacheWire(DerivId id, Bytes bytes);

  // Decode cache: SHA-256 of wire payload bytes -> interned root, for the
  // receive path. SendTuple primes it with the exact bytes it ships
  // (Canonical ∘ Deserialize is an identity for bytes serialized from a
  // canonical node), so an honest delivery maps straight back to its root
  // at the cost of one hash over the payload — no tree materialization,
  // no per-node digest pass. Forged payloads (bytes SendTuple never
  // produced) miss and take the full decode path. Entries are 40 bytes, so
  // the cache rides along unbounded and is accounted like the tables.
  DerivId CachedDecode(const uint8_t* data, size_t len) const;
  void CacheDecode(const uint8_t* data, size_t len, DerivId id);

  // DerivationCountExact through the arena: interns `expr` first, then
  // counts with a memo table that persists for the arena's lifetime — the
  // satellite that makes repeated quantification queries O(new nodes).
  BigInt CountExact(const ProvExpr& expr);

  // Counter deltas since the last call (fed into the engine's registry
  // cells at deterministic points).
  Stats TakeStats();

  size_t NodeCount() const { return nodes_.size(); }
  // Accounted footprint (charged to obs MemSubsystem::kProvArena).
  size_t ResidentBytes() const { return resident_bytes_; }

 private:
  struct DigestKey {
    size_t operator()(const Sha256Digest& d) const {
      uint64_t h = 0;
      for (int i = 0; i < 8; ++i) h = (h << 8) | d[i];
      return static_cast<size_t>(h);
    }
  };
  struct ExprKey {
    uint8_t kind;  // ProvExprKind::kPlus / kTimes
    const void* left;
    const void* right;
    bool operator==(const ExprKey& o) const {
      return kind == o.kind && left == o.left && right == o.right;
    }
  };
  struct ExprKeyHash {
    size_t operator()(const ExprKey& k) const {
      uintptr_t l = reinterpret_cast<uintptr_t>(k.left);
      uintptr_t r = reinterpret_cast<uintptr_t>(k.right);
      return static_cast<size_t>((l * 0x9E3779B97F4A7C15ull) ^ (r >> 3) ^
                                 k.kind);
    }
  };

  DerivId CanonicalRec(
      const DerivationPtr& node,
      std::unordered_map<const DerivationNode*, DerivId>& memo);
  ProvExpr InternExprRec(const ProvExpr& expr,
                         std::unordered_map<const void*, ProvExpr>& memo);
  ProvExpr InternBinary(ProvExprKind kind, const ProvExpr& a,
                        const ProvExpr& b);
  void Charge(size_t bytes);
  void Release(size_t bytes);

  // id - 1 indexes nodes_.
  std::vector<DerivationPtr> nodes_;
  std::unordered_map<Sha256Digest, DerivId, DigestKey> by_digest_;
  // Node identity -> id for arena-owned nodes: lets CanonicalRec stop at
  // already-interned subtrees instead of re-walking them per call.
  std::unordered_map<const DerivationNode*, DerivId> owned_;

  std::unordered_map<ProvVar, ProvExpr> vars_;
  std::unordered_map<ExprKey, ProvExpr, ExprKeyHash> exprs_;

  std::unordered_map<DerivId, ProvExpr> annotations_;
  std::unordered_map<uint64_t, ProvExpr> sender_annotations_;
  std::unordered_map<DerivId, Bytes> wire_;
  std::unordered_map<Sha256Digest, DerivId, DigestKey> decode_;
  size_t wire_bytes_ = 0;

  std::unordered_map<const void*, BigInt> count_memo_;

  Stats stats_;
  size_t resident_bytes_ = 0;
};

}  // namespace provnet::store

#endif  // PROVNET_STORE_ARENA_H_
