#include "store/arena.h"

#include <utility>

#include "crypto/sha256.h"
#include "obs/mem.h"
#include "provenance/semiring.h"

namespace provnet::store {

namespace {

// Flat per-entry estimates, symmetric on release so the gauge cannot drift.
// The expression nodes themselves are metered by ProvExpr (kProvAnnotations);
// the arena charges its ownership structures: the node vector slot, the
// digest/unique-table entry, and adopted derivation payloads.
constexpr size_t kDerivNodeOverhead = 160;  // node struct + ctrl block + map
constexpr size_t kTableEntryOverhead = 64;  // one unique-table / cache entry
// Wire cache bound: beyond this the cache is dropped wholesale (simple and
// deterministic; the hot working set re-warms in one epoch).
constexpr size_t kWireCacheMaxEntries = 8192;

}  // namespace

ProvArena::~ProvArena() { Release(resident_bytes_); }

void ProvArena::Charge(size_t bytes) {
  resident_bytes_ += bytes;
  obs::MemAccounting::Global().Add(obs::MemSubsystem::kProvArena, bytes);
}

void ProvArena::Release(size_t bytes) {
  resident_bytes_ -= bytes < resident_bytes_ ? bytes : resident_bytes_;
  obs::MemAccounting::Global().Sub(obs::MemSubsystem::kProvArena, bytes);
}

DerivId ProvArena::CanonicalRec(
    const DerivationPtr& node,
    std::unordered_map<const DerivationNode*, DerivId>& memo) {
  // Arena-owned nodes (and their whole subtree, by construction) are
  // already interned: answer from the identity map without descending.
  auto own = owned_.find(node.get());
  if (own != owned_.end()) return own->second;
  auto seen = memo.find(node.get());
  if (seen != memo.end()) return seen->second;

  // Intern children first so a rebuilt parent holds arena-owned sub-proofs.
  std::vector<DerivationPtr> children;
  children.reserve(node->children.size());
  bool changed = false;
  for (const DerivationPtr& child : node->children) {
    DerivId cid = CanonicalRec(child, memo);
    const DerivationPtr& canon = nodes_[cid - 1];
    if (canon.get() != child.get()) changed = true;
    children.push_back(canon);
  }

  // Canonical children are content-equal to the originals, so the Merkle
  // digest of the incoming node doubles as the intern key for the rebuilt
  // one — no recompute needed.
  const Sha256Digest digest = node->ContentDigest();
  DerivId id;
  auto found = by_digest_.find(digest);
  if (found != by_digest_.end()) {
    ++stats_.interned_hits;
    id = found->second;
  } else {
    DerivationPtr adopted;
    if (!changed) {
      adopted = node;
    } else {
      auto copy = std::make_shared<DerivationNode>(*node);
      copy->children = std::move(children);
      adopted = copy;
    }
    nodes_.push_back(adopted);
    id = static_cast<DerivId>(nodes_.size());
    by_digest_.emplace(digest, id);
    owned_.emplace(adopted.get(), id);
    ++stats_.interned_nodes;
    Charge(kDerivNodeOverhead + adopted->tuple.WireSize() +
           adopted->rule.size() + adopted->asserted_by.size() +
           adopted->signature.size() +
           adopted->children.size() * sizeof(void*));
  }
  memo.emplace(node.get(), id);
  return id;
}

DerivationPtr ProvArena::Canonical(const DerivationPtr& root, DerivId* id) {
  if (root == nullptr) {
    if (id != nullptr) *id = 0;
    return root;
  }
  std::unordered_map<const DerivationNode*, DerivId> memo;
  DerivId root_id = CanonicalRec(root, memo);
  if (id != nullptr) *id = root_id;
  return nodes_[root_id - 1];
}

DerivationPtr ProvArena::Lookup(DerivId id) const {
  if (id == 0 || id > nodes_.size()) return nullptr;
  return nodes_[id - 1];
}

DerivId ProvArena::IdOf(const Sha256Digest& digest) const {
  auto it = by_digest_.find(digest);
  return it == by_digest_.end() ? 0 : it->second;
}

DerivId ProvArena::IdOfOwned(const DerivationNode* node) const {
  auto it = owned_.find(node);
  return it == owned_.end() ? 0 : it->second;
}

ProvExpr ProvArena::InternVar(ProvVar v) {
  auto it = vars_.find(v);
  if (it != vars_.end()) {
    ++stats_.interned_hits;
    return it->second;
  }
  ProvExpr e = ProvExpr::Var(v);
  vars_.emplace(v, e);
  ++stats_.interned_nodes;
  Charge(kTableEntryOverhead);
  return e;
}

ProvExpr ProvArena::InternBinary(ProvExprKind kind, const ProvExpr& a,
                                 const ProvExpr& b) {
  ExprKey key{static_cast<uint8_t>(kind), a.NodeIdentity(), b.NodeIdentity()};
  auto it = exprs_.find(key);
  if (it != exprs_.end()) {
    ++stats_.interned_hits;
    return it->second;
  }
  ProvExpr e = kind == ProvExprKind::kPlus ? ProvExpr::PlusRaw(a, b)
                                           : ProvExpr::TimesRaw(a, b);
  exprs_.emplace(key, e);
  ++stats_.interned_nodes;
  Charge(kTableEntryOverhead);
  return e;
}

ProvExpr ProvArena::InternPlus(const ProvExpr& a, const ProvExpr& b) {
  if (a.IsZero()) return b;
  if (b.IsZero()) return a;
  return InternBinary(ProvExprKind::kPlus, a, b);
}

ProvExpr ProvArena::InternTimes(const ProvExpr& a, const ProvExpr& b) {
  // Same shortcuts as the ProvExpr::Times factory (0 annihilates, 1 is the
  // unit), so fold seeds behave identically. No idempotence shortcut exists
  // for Times, so nothing can over-collapse here.
  if (a.IsZero() || b.IsZero()) return ProvExpr::Zero();
  if (a.IsOne()) return b;
  if (b.IsOne()) return a;
  return InternBinary(ProvExprKind::kTimes, a, b);
}

ProvExpr ProvArena::InternExprRec(
    const ProvExpr& expr, std::unordered_map<const void*, ProvExpr>& memo) {
  switch (expr.kind()) {
    case ProvExprKind::kZero:
    case ProvExprKind::kOne:
      return expr;  // Zero is null, One is a process-wide singleton
    case ProvExprKind::kVar:
      return InternVar(expr.var());
    case ProvExprKind::kPlus:
    case ProvExprKind::kTimes:
      break;
  }
  auto seen = memo.find(expr.NodeIdentity());
  if (seen != memo.end()) return seen->second;
  ProvExpr left = InternExprRec(expr.left(), memo);
  ProvExpr right = InternExprRec(expr.right(), memo);
  ProvExpr out = InternBinary(expr.kind(), left, right);
  memo.emplace(expr.NodeIdentity(), out);
  return out;
}

ProvExpr ProvArena::InternExpr(const ProvExpr& expr) {
  std::unordered_map<const void*, ProvExpr> memo;
  return InternExprRec(expr, memo);
}

const ProvExpr* ProvArena::CachedAnnotation(DerivId id) const {
  auto it = annotations_.find(id);
  return it == annotations_.end() ? nullptr : &it->second;
}

void ProvArena::CacheAnnotation(DerivId id, const ProvExpr& expr) {
  if (annotations_.emplace(id, expr).second) Charge(kTableEntryOverhead);
}

const ProvExpr* ProvArena::CachedAnnotation(DerivId id, ProvVar sender) const {
  uint64_t key = (static_cast<uint64_t>(id) << 32) | sender;
  auto it = sender_annotations_.find(key);
  return it == sender_annotations_.end() ? nullptr : &it->second;
}

void ProvArena::CacheAnnotation(DerivId id, ProvVar sender,
                                const ProvExpr& expr) {
  uint64_t key = (static_cast<uint64_t>(id) << 32) | sender;
  if (sender_annotations_.emplace(key, expr).second) {
    Charge(kTableEntryOverhead);
  }
}

const Bytes* ProvArena::CachedWire(DerivId id) const {
  auto it = wire_.find(id);
  return it == wire_.end() ? nullptr : &it->second;
}

void ProvArena::CacheWire(DerivId id, Bytes bytes) {
  if (wire_.size() >= kWireCacheMaxEntries) {
    Release(wire_bytes_);
    wire_.clear();
    wire_bytes_ = 0;
  }
  size_t charged = bytes.size() + kTableEntryOverhead;
  if (wire_.emplace(id, std::move(bytes)).second) {
    wire_bytes_ += charged;
    Charge(charged);
  }
}

namespace {
Sha256Digest PayloadKey(const uint8_t* data, size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finish();
}
}  // namespace

DerivId ProvArena::CachedDecode(const uint8_t* data, size_t len) const {
  auto it = decode_.find(PayloadKey(data, len));
  return it == decode_.end() ? 0 : it->second;
}

void ProvArena::CacheDecode(const uint8_t* data, size_t len, DerivId id) {
  if (decode_.emplace(PayloadKey(data, len), id).second) {
    Charge(kTableEntryOverhead);
  }
}

BigInt ProvArena::CountExact(const ProvExpr& expr) {
  ProvExpr interned = InternExpr(expr);
  size_t before = count_memo_.size();
  BigInt out = DerivationCountExact(interned, &count_memo_);
  Charge((count_memo_.size() - before) * kTableEntryOverhead);
  return out;
}

ProvArena::Stats ProvArena::TakeStats() {
  Stats out = stats_;
  stats_ = Stats{};
  return out;
}

}  // namespace provnet::store
