// Incremental update subsystem: deletion deltas with provenance-aware
// maintenance.
//
// The one-shot engine computes a distributed fixpoint; this subsystem turns
// it into a long-running system that processes *changes*:
//
//   * Insertions were always incremental — a new fact rides the pipelined
//     semi-naive strands (core/plan.h), so only affected rules re-fire.
//   * Deletions use DRed (delete-and-rederive) adapted to the distributed,
//     provenance-carrying runtime:
//
//       1. Over-delete. A retracted tuple fires its strands in delete mode:
//          the remaining body literals join against the pre-deletion
//          database (live tables plus this epoch's overlay of deleted
//          tuples), and every head instantiation is removed — locally, or
//          via an authenticated kMsgRetract message when the head lives on
//          another node. Retraction traffic is charged to the same
//          bandwidth meters as the protocol itself.
//       2. Prune with provenance. Before cascading, the victim's semiring
//          annotation (provenance/prov_expr.h) is *restricted*: every
//          provenance variable revoked this epoch is substituted with Zero.
//          A non-Zero residue means an independent derivation exists — the
//          tuple survives with the restricted annotation and the cascade
//          stops, skipping DRed's blind re-derivation entirely. This is the
//          payoff of keeping provenance online (Section 4.2's "delete all
//          routes that depend on the malicious node").
//       3. Re-derive. Once the cascade quiesces (no deltas queued, network
//          idle), over-deleted tuples without annotation-proven support are
//          re-derived top-down from surviving tuples; restorations re-enter
//          the normal insertion pipeline, which rebuilds downstream state
//          (and fresh, untainted annotations). Aggregate groups (MIN/MAX/
//          COUNT heads) are always re-derived — their stored extremum may
//          hide surviving lower-ranked contributions.
//
// Soundness notes. Restriction-based pruning is used only when piggybacked
// annotations enumerate every derivation (ProvMode::kCondensed/kFull) and
// the killed variables match the revocation grain: per-tuple variables for
// DeleteFact, per-principal variables for RetractPrincipal. In other
// configurations (NDLog, pointer provenance) the evaluator falls back to
// pure DRed, which needs no annotations. Annotations of soft-state tuples
// may retain alternatives whose supporting tuples expired un-refreshed;
// programs mixing TTL expiry with heavy deletion should rely on
// Engine::ExpireNow, which converts expiry into deletion deltas and keeps
// the two mechanisms consistent.
//
// The Engine member functions implementing all of this live in delta.cc
// (the same layout as core/distquery.cc); this header only defines the
// per-epoch state the engine carries.
#ifndef PROVNET_DYNAMICS_DELTA_H_
#define PROVNET_DYNAMICS_DELTA_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/causal.h"
#include "core/table.h"
#include "provenance/prov_expr.h"

namespace provnet {

// Mutable state of one deletion epoch: from the first retraction enqueued
// on a quiescent engine until Run() finishes the re-derivation phase.
struct DeltaState {
  // A deletion delta: the entry as it was stored, annotation and all, plus
  // the causal context of whatever enqueued it (so a distributed deletion
  // cascade stays one trace across hops — core/causal.h).
  struct Retraction {
    NodeId node = 0;
    StoredTuple entry;
    CausalIds causal;
  };

  // A re-derivation work item. `group_only` re-derives the tuple's
  // aggregate group (matching group columns, leaving the aggregate free).
  struct RederiveItem {
    NodeId node = 0;
    Tuple tuple;
    bool group_only = false;
  };

  // Deletion deltas waiting to fire their delete-mode strands. Processed
  // ahead of insertion events so an epoch's over-deletion runs to fixpoint
  // before restorations begin.
  std::deque<Retraction> queue;

  // Tuples deleted this epoch, per node and predicate. DRed's over-deletion
  // joins run against the *pre-deletion* database: live tables plus this
  // overlay (two base tuples deleted together must still see each other
  // while their joint consequences are torn down).
  std::unordered_map<NodeId,
                     std::unordered_map<std::string, std::vector<StoredTuple>>>
      overlay;

  // Provenance variables revoked this epoch (base tuples at kTuple grain,
  // principals at kPrincipal grain). Drives annotation restriction.
  std::unordered_set<ProvVar> killed;

  // Deferred re-derivation worklist plus a dedupe set over
  // (node, tuple digest, group_only).
  std::vector<RederiveItem> rederive;
  std::unordered_set<uint64_t> rederive_seen;

  // Dead derivations of COUNT-aggregate candidates already processed this
  // epoch, keyed by (rule, executing node, head, body-tuple multiset). DRed
  // enumerates a dying derivation once per deleted body tuple (each delta's
  // delete-mode strand joins the others through the overlay); removals are
  // idempotent so that never mattered — witness refcounts are not, so each
  // dead derivation must decrement exactly once.
  std::unordered_set<uint64_t> count_deriv_seen;

  const std::vector<StoredTuple>* OverlayFor(NodeId node,
                                             const std::string& pred) const {
    auto nit = overlay.find(node);
    if (nit == overlay.end()) return nullptr;
    auto pit = nit->second.find(pred);
    return pit == nit->second.end() ? nullptr : &pit->second;
  }

  // Ends the epoch once Run() reaches the post-deletion fixpoint. The
  // killed set must not outlive the epoch: a later re-insertion of a
  // deleted base revives its variable.
  void EndEpoch() {
    overlay.clear();
    killed.clear();
    rederive_seen.clear();
    count_deriv_seen.clear();
  }
};

}  // namespace provnet

#endif  // PROVNET_DYNAMICS_DELTA_H_
