// Dynamic-network scenario driver: replays timed churn (link up/down,
// node compromise, fact churn) through the virtual-time Network and
// measures how the engine maintains its state incrementally.
//
// Each event advances virtual time to its timestamp, fires TTL expiry (so
// soft state decays on schedule), applies the mutation through the
// incremental-update API (dynamics/delta.h), and runs the engine to the new
// distributed fixpoint — recording per-event latency, bandwidth, and
// retraction/re-derivation work. This is the long-running-system harness
// the one-shot reproduction lacked: routing flaps, key revocation, and
// reactive compromise response all reduce to churn scripts.
#ifndef PROVNET_DYNAMICS_CHURN_H_
#define PROVNET_DYNAMICS_CHURN_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "net/topology.h"
#include "util/random.h"

namespace provnet {

enum class ChurnKind : uint8_t {
  kLinkDown = 0,    // retract a link fact (DeleteFact at its source)
  kLinkUp = 1,      // (re-)insert a link fact
  kCompromise = 2,  // RetractPrincipal: revoke a node's assertions
  kExpireOnly = 3,  // advance time and let TTL expiry do the churn
};

const char* ChurnKindName(ChurnKind kind);

struct ChurnEvent {
  double at = 0.0;  // virtual time (seconds) the event fires
  ChurnKind kind = ChurnKind::kLinkDown;
  NodeId from = 0;  // link endpoints (kLinkDown / kLinkUp)
  NodeId to = 0;
  int64_t cost = 1;
  Principal principal;  // kCompromise target

  std::string ToString() const;
};

struct ChurnScript {
  std::vector<ChurnEvent> events;  // replayed in order; times non-decreasing

  // K down/up flaps of random existing edges: each flap takes a distinct
  // random edge down at start + i*spacing and back up half a spacing later.
  // The script ends at steady state (every link restored), so a replay can
  // be checked against the original fixpoint.
  static ChurnScript RandomLinkFlaps(const Topology& topo, size_t flaps,
                                     double start, double spacing, Rng& rng);

  // A single compromise event at `at`.
  static ChurnScript CompromiseAt(double at, Principal principal);
};

struct ChurnEventReport {
  ChurnEvent event;
  double wall_seconds = 0.0;  // fixpoint-maintenance latency for this event
  uint64_t bytes = 0;         // network bytes the maintenance cost
  uint64_t messages = 0;
  uint64_t retractions = 0;   // deletion deltas processed
  uint64_t rederivations = 0; // tuples restored by DRed phase 2
  uint64_t derivations = 0;
};

struct ChurnReport {
  std::vector<ChurnEventReport> events;
  double total_wall_seconds = 0.0;
  uint64_t total_bytes = 0;
  uint64_t total_messages = 0;
  uint64_t total_retractions = 0;
  uint64_t total_rederivations = 0;

  double MeanEventSeconds() const;
  double MaxEventSeconds() const;
  std::string Summary() const;
};

// Replays churn scripts against one engine. The engine must have reached
// its initial fixpoint (Run()) before Replay.
class ChurnDriver {
 public:
  // `link_arity` is the arity of the program's link predicate: 3 for
  // cost-carrying links link(@S,D,C), 2 for link(@S,D).
  explicit ChurnDriver(Engine& engine, size_t link_arity = 3)
      : engine_(engine), link_arity_(link_arity) {}

  Result<ChurnReport> Replay(const ChurnScript& script);

  // Applies a single event (advancing virtual time + expiry) and runs to
  // fixpoint. Exposed for step-at-a-time tests and benches.
  Result<ChurnEventReport> Step(const ChurnEvent& event);

 private:
  Tuple LinkTuple(const ChurnEvent& event) const;

  Engine& engine_;
  size_t link_arity_;
};

}  // namespace provnet

#endif  // PROVNET_DYNAMICS_CHURN_H_
