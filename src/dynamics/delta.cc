// Provenance-aware incremental deletion (see delta.h for the algorithm).
// Engine member functions live here, next to the state they drive, the same
// way core/distquery.cc hosts the distributed-provenance query path.

#include "dynamics/delta.h"

#include <algorithm>

#include "core/engine.h"
#include "provenance/store.h"
#include "util/hash.h"
#include "util/logging.h"

namespace provnet {

namespace {
uint64_t RederiveKey(NodeId node, const Tuple& tuple, bool group_only) {
  uint64_t h = DigestOf(tuple);
  h = HashCombine(h, static_cast<uint64_t>(node));
  return HashCombine(h, group_only ? 1u : 2u);
}
}  // namespace

bool Engine::AnnotationsComplete() const {
  return options_.prov_mode == ProvMode::kCondensed ||
         options_.prov_mode == ProvMode::kFull;
}

void Engine::NoteKilledBase(const Tuple& tuple) {
  if (!AnnotationsComplete() || options_.prov_grain != ProvGrain::kTuple) {
    return;
  }
  std::optional<ProvVar> v = registry_.Find(tuple.ToString());
  if (v.has_value()) dynamics_->killed.insert(*v);
}

void Engine::EnqueueRetraction(NodeId node, StoredTuple entry, bool rederive,
                               bool rederive_group) {
  dynamics_->overlay[node][entry.tuple.predicate()].push_back(entry);
  if (rederive) {
    uint64_t key = RederiveKey(node, entry.tuple, rederive_group);
    if (dynamics_->rederive_seen.insert(key).second) {
      dynamics_->rederive.push_back(
          DeltaState::RederiveItem{node, entry.tuple, rederive_group});
    }
  }
  // Capture the enqueuing context: a retraction cascade keeps the trace of
  // the message (or external call) that started it.
  dynamics_->queue.push_back(
      DeltaState::Retraction{node, std::move(entry), exec().causal});
}

Status Engine::DeleteFact(NodeId node, const Tuple& tuple) {
  if (node >= contexts_.size()) {
    return InvalidArgumentError("DeleteFact: unknown node");
  }
  // External deletion: the cascade roots a fresh causal trace.
  exec().causal = CausalIds{};
  Table* table = contexts_[node]->FindTableMutable(tuple.predicate());
  std::optional<StoredTuple> removed =
      table == nullptr ? std::nullopt : table->Remove(tuple);
  if (!removed.has_value()) {
    return NotFoundError("DeleteFact: tuple not stored: " + tuple.ToString());
  }
  if (removed->origin == TupleOrigin::kBase) {
    NoteKilledBase(tuple);
    // Un-journal: an externally deleted base fact must not be resurrected
    // by RestartNode's stable-storage replay.
    if (node < journal_digests_.size() &&
        journal_digests_[node].erase(tuple.Hash()) != 0) {
      auto& log = base_fact_journal_[node];
      const uint64_t digest = tuple.Hash();
      log.erase(std::remove_if(log.begin(), log.end(),
                               [digest](const std::pair<Tuple, double>& e) {
                                 return e.first.Hash() == digest;
                               }),
                log.end());
    }
  }
  // An external retraction is authoritative: the fact itself must not be
  // resurrected by the re-derivation phase (its consequences may be).
  EnqueueRetraction(node, std::move(*removed), /*rederive=*/false,
                    /*rederive_group=*/false);
  return OkStatus();
}

Status Engine::RetractPrincipal(const Principal& principal) {
  // External revocation: the cascade roots a fresh causal trace.
  exec().causal = CausalIds{};
  // At principal grain one substitution covers every assertion; at tuple
  // grain each of the principal's base tuples contributes its own variable
  // (collected below as they are removed).
  if (AnnotationsComplete() &&
      options_.prov_grain == ProvGrain::kPrincipal) {
    std::optional<ProvVar> v = registry_.Find(principal);
    if (v.has_value()) dynamics_->killed.insert(*v);
  }

  for (auto& ctx : contexts_) {
    for (Table* table : ctx->AllTables()) {
      const bool count_agg = table->options().agg == AggKind::kCount;
      // Aggregate *and* keyed rows re-derive as key groups: a removed row
      // may have replaced a surviving alternative under its primary key.
      const bool group_rederive = table->options().agg != AggKind::kNone ||
                                  !table->options().key_columns.empty();
      // Classify before mutating: Scan pointers die on removal.
      std::vector<Tuple> revoked;    // the principal's own assertions
      std::vector<Tuple> dependent;  // annotation mentions a killed var
      for (const StoredTuple* e : table->Scan()) {
        if (e->asserted_by == principal) {
          revoked.push_back(e->tuple);
        } else if (!dynamics_->killed.empty() &&
                   e->prov.DependsOnAny(dynamics_->killed)) {
          dependent.push_back(e->tuple);
        }
      }
      for (const Tuple& t : revoked) {
        std::optional<StoredTuple> removed = table->Remove(t);
        if (!removed.has_value()) continue;
        if (removed->origin == TupleOrigin::kBase) NoteKilledBase(t);
        // rederive: a revoked copy of a tuple someone else can also derive
        // comes back through an untainted principal.
        EnqueueRetraction(ctx->id(), std::move(*removed), /*rederive=*/true,
                          /*rederive_group=*/group_rederive);
      }
      for (const Tuple& t : dependent) {
        StoredTuple* e = table->FindMutable(t);
        if (e == nullptr) continue;
        // COUNT aggregates cannot be pruned by restriction (the count must
        // drop when witnesses die even if some survive): always recompute.
        ProvExpr restricted =
            count_agg ? ProvExpr::Zero() : e->prov.Restrict(dynamics_->killed);
        if (restricted.IsZero()) {
          std::optional<StoredTuple> removed = table->Remove(t);
          if (removed.has_value()) {
            EnqueueRetraction(ctx->id(), std::move(*removed),
                              /*rederive=*/true,
                              /*rederive_group=*/group_rederive);
          }
        } else {
          e->prov = std::move(restricted);
        }
      }
    }
  }
  return OkStatus();
}

Status Engine::ProcessRetraction(NodeId node, const StoredTuple& entry) {
  // One deletion-delta cascade step (sampled: cascades can be large).
  if (tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.node = node;
    ev.kind = "retract_cascade";
    ev.attrs = {{"pred", entry.tuple.predicate()}};
    TraceSampled(std::move(ev));
  }

  // The tuple's live provenance dies with it.
  contexts_[node]->online_store().Remove(DigestOf(entry.tuple));

  const std::vector<Strand>* strands =
      plan_.StrandsFor(entry.tuple.predicate());
  if (strands == nullptr) return OkStatus();
  for (const Strand& strand : *strands) {
    const CompiledRule& cr = plan_.rules()[strand.rule_index];
    PROVNET_RETURN_IF_ERROR(
        FireDeleteStrand(node, cr, strand.body_index, entry));
  }
  return OkStatus();
}

Status Engine::FireDeleteStrand(NodeId node_id, const CompiledRule& cr,
                                int delta_index,
                                const StoredTuple& delta_entry) {
  const RuleProgram& prog = cr.prog;
  Frame& frame = exec().frame;
  frame.Reset(prog.num_slots);
  frame.BindOrCheck(prog.local_slot, Value::Address(node_id));

  const SlotLiteral& delta_lit = prog.body[static_cast<size_t>(delta_index)];
  if (!MatchTuple(delta_lit, delta_entry.tuple, frame)) return OkStatus();
  if (delta_lit.says.has_value() &&
      !SaysMatches(*delta_lit.says, delta_entry, frame)) {
    return OkStatus();
  }

  // Delete-mode firing of the same strand (DRed over-deletion).
  ++exec().cells.rule_firings[RuleIndex(cr)]->value;

  std::vector<const StoredTuple*> used;
  used.reserve(prog.body.size());
  used.push_back(&delta_entry);
  PROVNET_RETURN_IF_ERROR(DynJoin(
      node_id, cr, 0, delta_index, /*use_overlay=*/true, frame, used,
      [this, node_id, &cr](Frame& f,
                           const std::vector<const StoredTuple*>& u) {
        return OverDeleteHead(node_id, cr, f, u);
      }));
  return DrainPending();
}

Status Engine::DynJoin(NodeId node_id, const CompiledRule& cr,
                       size_t literal_pos, int delta_index, bool use_overlay,
                       Frame& frame, std::vector<const StoredTuple*>& used,
                       const EmitFn& emit) {
  const RuleProgram& prog = cr.prog;
  if (literal_pos == prog.body.size()) return emit(frame, used);
  if (static_cast<int>(literal_pos) == delta_index) {
    return DynJoin(node_id, cr, literal_pos + 1, delta_index, use_overlay,
                   frame, used, emit);
  }
  const SlotLiteral& lit = prog.body[literal_pos];
  switch (lit.kind) {
    case LiteralKind::kCondition: {
      PROVNET_ASSIGN_OR_RETURN(bool pass, EvalSlotCondition(lit.expr, frame));
      if (!pass) return OkStatus();
      return DynJoin(node_id, cr, literal_pos + 1, delta_index, use_overlay,
                     frame, used, emit);
    }
    case LiteralKind::kAssign: {
      PROVNET_ASSIGN_OR_RETURN(Value v, EvalSlotExpr(lit.expr, frame));
      size_t mark = frame.Mark();
      if (!frame.BindOrCheck(lit.assign_slot, std::move(v))) {
        return OkStatus();
      }
      Status s = DynJoin(node_id, cr, literal_pos + 1, delta_index,
                         use_overlay, frame, used, emit);
      frame.UndoTo(mark);
      return s;
    }
    case LiteralKind::kAtom: {
      // Zero-copy scan: candidates are visited as `const StoredTuple*` into
      // live storage. Emits defer their table mutations (the lane's pending
      // buffer), so the rows backing these pointers cannot move or die
      // mid-scan. The per-rule candidate cell is resolved once per literal,
      // outside the scan — the inner loop pays one pointer increment.
      obs::Counter* candidates = exec().cells.rule_candidates[RuleIndex(cr)];
      auto try_candidate = [&](const StoredTuple& candidate) -> Status {
        ++candidates->value;
        size_t mark = frame.Mark();
        if (MatchTuple(lit, candidate.tuple, frame) &&
            (!lit.says.has_value() ||
             SaysMatches(*lit.says, candidate, frame))) {
          used.push_back(&candidate);
          Status s = DynJoin(node_id, cr, literal_pos + 1, delta_index,
                             use_overlay, frame, used, emit);
          used.pop_back();
          PROVNET_RETURN_IF_ERROR(s);
        }
        frame.UndoTo(mark);
        return OkStatus();
      };

      NodeContext& ctx = *contexts_[node_id];
      Table* table = ctx.FindTableMutable(lit.predicate);
      if (table != nullptr) {
        // Index columns: every constant or currently-bound column,
        // precomputed as candidates at plan time and gathered here in
        // column order. The composite index serves the whole conjunction,
        // so candidates shrink to (near-)matches only.
        constexpr size_t kMaxEqs = 16;
        Table::ColumnEq eqs[kMaxEqs];
        size_t neq = 0;
        for (const IndexCand& cand : lit.index_cands) {
          if (neq == kMaxEqs || cand.col >= 64) break;
          if (cand.is_const) {
            eqs[neq++] = Table::ColumnEq{cand.col, &cand.constant};
          } else if (frame.IsBound(cand.slot)) {
            eqs[neq++] = Table::ColumnEq{cand.col, &frame.Get(cand.slot)};
          }
        }
        PROVNET_RETURN_IF_ERROR(
            neq > 0 ? table->ForEachByColumns(eqs, neq, try_candidate)
                    : table->ForEach(try_candidate));
      }
      if (use_overlay) {
        // The pre-deletion database: tuples already deleted this epoch are
        // still join partners for over-deletion.
        const std::vector<StoredTuple>* deleted =
            dynamics_->OverlayFor(node_id, lit.predicate);
        if (deleted != nullptr) {
          for (const StoredTuple& candidate : *deleted) {
            PROVNET_RETURN_IF_ERROR(try_candidate(candidate));
          }
        }
      }
      return OkStatus();
    }
  }
  return InternalError("unreachable literal kind");
}

uint64_t Engine::CountDerivId(const CompiledRule& cr, NodeId node,
                              const Tuple& head,
                              const std::vector<const StoredTuple*>& used)
    const {
  uint64_t id = HashCombine(Fnv1a64(cr.prog.label), DigestOf(head));
  id = HashCombine(id, static_cast<uint64_t>(node));
  uint64_t body = 0;
  for (const StoredTuple* u : used) {
    body += Mix64(DigestOf(u->tuple));  // order-independent: the delta
  }                                     // literal leads in its own strand
  id = HashCombine(id, body);
  return id == 0 ? 1 : id;  // 0 is reserved for "unidentified"
}

Status Engine::OverDeleteHead(NodeId node_id, const CompiledRule& cr,
                              const Frame& frame,
                              const std::vector<const StoredTuple*>& used) {
  PROVNET_ASSIGN_OR_RETURN(Tuple head, BuildHeadTuple(cr.prog, frame));

  // COUNT heads retire one witness derivation per dead derivation — so a
  // derivation joining several tuples deleted in the same epoch (each of
  // whose delete strands enumerates it) must be processed exactly once.
  // Other heads are removed idempotently and need no dedup.
  uint64_t deriv_id = 0;
  if (plan_.OptionsFor(head.predicate()).agg == AggKind::kCount) {
    deriv_id = CountDerivId(cr, node_id, head, used);
    if (!dynamics_->count_deriv_seen.insert(deriv_id).second) {
      return OkStatus();
    }
  }

  NodeId dest = node_id;
  if (cr.prog.send_to.has_value()) {
    PROVNET_ASSIGN_OR_RETURN(Value v, EvalSlotTerm(*cr.prog.send_to, frame));
    if (v.kind() != ValueKind::kAddress) {
      return InvalidArgumentError("retract: destination is not an address: " +
                                  v.ToString());
    }
    dest = v.AsAddress();
    if (dest >= contexts_.size()) {
      return InvalidArgumentError("retract: destination node out of range");
    }
  }
  // Defer: removals (and the annotation restriction they consult) must not
  // run while the delete-mode join is scanning the same tables.
  PendingAction action;
  action.kind = dest == node_id ? PendingAction::Kind::kOverDelete
                                : PendingAction::Kind::kSendRetract;
  action.node = node_id;
  action.dest = dest;
  action.head = std::move(head);
  action.deriv_id = deriv_id;
  exec().pending.push_back(std::move(action));
  return OkStatus();
}

Status Engine::OverDeleteAt(NodeId node_id, const Tuple& tuple,
                            uint64_t deriv_id) {
  NodeContext& ctx = *contexts_[node_id];
  Table* table = ctx.FindTableMutable(tuple.predicate());
  if (table == nullptr) return OkStatus();
  const TableOptions& topt = table->options();

  if (topt.agg != AggKind::kNone) {
    if (topt.agg == AggKind::kCount) {
      // O(delta) count maintenance via the witness multiset (ROADMAP
      // follow-up from PR 1): retire this derivation's refcount; when a
      // witness dies the count drops in place. The old count's downstream
      // consequences are torn down by an ordinary retraction delta and the
      // decremented count re-propagates as an insertion delta — no group
      // re-derivation.
      Table::WitnessRemoval removal = table->RemoveWitness(tuple, deriv_id);
      switch (removal.kind) {
        case Table::WitnessRemoval::Kind::kRefcounted:
          return OkStatus();  // the witness survives on another derivation
        case Table::WitnessRemoval::Kind::kCountChanged:
          if (observer_) {
            observer_(node_id, removal.new_tuple, InsertOutcome::kReplaced,
                      net_.now());
          }
          EnqueueRetraction(node_id, std::move(removal.old_entry),
                            /*rederive=*/false, /*rederive_group=*/false);
          events_.push_back(PendingEvent{node_id, removal.new_tuple});
          return OkStatus();
        case Table::WitnessRemoval::Kind::kGroupEmptied:
          EnqueueRetraction(node_id, std::move(removal.old_entry),
                            /*rederive=*/false, /*rederive_group=*/false);
          return OkStatus();
        case Table::WitnessRemoval::Kind::kNoWitness:
          break;  // unknown witness: fall back to group re-derivation
      }
    }
    const StoredTuple* group = table->FindGroup(tuple);
    if (group == nullptr) return OkStatus();
    size_t agg_col = static_cast<size_t>(topt.agg_column);
    // MIN/MAX: only a derivation of the current extremum can invalidate the
    // group. COUNT (witness-multiset fallback): any dead witness changes
    // the count.
    bool contributes =
        topt.agg == AggKind::kCount ||
        (agg_col < tuple.arity() &&
         group->tuple.arg(agg_col) == tuple.arg(agg_col));
    if (!contributes) return OkStatus();
    if (topt.agg != AggKind::kCount && !dynamics_->killed.empty() &&
        !group->prov.IsZero()) {
      // An equal-extremum derivation that avoids every killed base keeps
      // the group's value valid.
      ProvExpr restricted = group->prov.Restrict(dynamics_->killed);
      if (!restricted.IsZero()) {
        table->FindMutable(group->tuple)->prov = std::move(restricted);
        return OkStatus();
      }
    }
    std::optional<StoredTuple> removed = table->Remove(group->tuple);
    if (removed.has_value()) {
      EnqueueRetraction(node_id, std::move(*removed), /*rederive=*/true,
                        /*rederive_group=*/true);
    }
    return OkStatus();
  }

  const StoredTuple* current = table->Find(tuple);
  if (current == nullptr) return OkStatus();
  if (!dynamics_->killed.empty() && !current->prov.IsZero()) {
    ProvExpr restricted = current->prov.Restrict(dynamics_->killed);
    if (!restricted.IsZero()) {
      // Independent derivation survives: keep the tuple, adopt the pruned
      // annotation, stop the cascade — no re-derivation needed.
      table->FindMutable(tuple)->prov = std::move(restricted);
      return OkStatus();
    }
  }
  std::optional<StoredTuple> removed = table->Remove(tuple);
  if (removed.has_value()) {
    // Keyed tables re-derive the *key group*, not the exact tuple: the dead
    // row may have replaced a differently-valued alternative (P2 update
    // semantics), and only a key-constrained re-derivation can bring that
    // alternative back — the same reroute logic aggregate groups use.
    EnqueueRetraction(node_id, std::move(*removed), /*rederive=*/true,
                      /*rederive_group=*/!topt.key_columns.empty());
  }
  return OkStatus();
}

Status Engine::SendRetract(NodeId from, NodeId to, const Tuple& tuple) {
  // Content: [seq, dest when authenticated] + tuple + the epoch's killed
  // variables, so the receiver can restrict its own (merged) annotation.
  // The says tag covers these bytes — forged retractions from untrusted
  // senders are dropped on verify, and replayed ones by the anti-replay
  // header.
  ByteWriter content;
  PutAuthHeader(content, contexts_[from]->principal(), to);
  ExecSlot& ex = exec();
  // Causal span (core/causal.h): a cross-node retraction is a child span of
  // the cascade that produced it, so distributed deletions stitch into one
  // trace. Unconditional — bytes are identical with tracing on or off.
  CausalIds ids;
  ids.span_id = NewCausalSpan(from);
  ids.trace_id = ex.causal.trace_id != 0 ? ex.causal.trace_id : ids.span_id;
  PutCausalIds(content, ids);
  tuple.Serialize(content);
  std::vector<ProvVar> killed(dynamics_->killed.begin(),
                              dynamics_->killed.end());
  std::sort(killed.begin(), killed.end());
  content.PutVarint(killed.size());
  for (ProvVar v : killed) content.PutU32(v);

  bool attach_says = options_.authenticate || plan_.sendlog();
  SaysLevel level =
      options_.authenticate ? options_.says_level : SaysLevel::kCleartext;

  ByteWriter msg;
  msg.PutU8(kMsgRetract);
  msg.PutBlob(content.bytes());
  msg.PutU8(attach_says ? 1 : 0);
  size_t pre_auth = msg.size();
  if (attach_says) {
    PROVNET_ASSIGN_OR_RETURN(
        SaysTag tag,
        auth_.Say(contexts_[from]->principal(), content.bytes(), level));
    tag.Serialize(msg);
  }
  ex.cells.auth_bytes->value += msg.size() - pre_auth;
  ex.cells.tuple_bytes->value += pre_auth;
  ChargeLink(from, to, kMsgRetract, msg.size());
  if (tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.node = from;
    ev.kind = "send";
    ev.trace_id = ids.trace_id;
    ev.span_id = ids.span_id;
    ev.parent_span = ex.causal.span_id;
    ev.attrs = {{"to", PrincipalOf(to)},
                {"msg", "retract"},
                {"pred", tuple.predicate()},
                {"bytes", std::to_string(msg.size())}};
    TraceSampled(std::move(ev));
  }
  return net_.Send(from, to, std::move(msg).Take());
}

Status Engine::HandleRetractMessage(NodeId to, NodeId from,
                                    ByteReader& reader) {
  PROVNET_ASSIGN_OR_RETURN(Bytes content, reader.GetBlob());
  PROVNET_ASSIGN_OR_RETURN(uint8_t has_says, reader.GetU8());
  std::optional<SaysTag> tag;
  if (has_says != 0) {
    PROVNET_ASSIGN_OR_RETURN(SaysTag t, SaysTag::Deserialize(reader));
    tag = std::move(t);
  }
  ByteReader body(content);
  PROVNET_ASSIGN_OR_RETURN(bool accepted,
                           VerifyInbound(to, from, tag, content, body,
                                         "retract"));
  if (!accepted) return OkStatus();  // rejected and audited; drop
  // Adopt the sender's causal context: the local over-deletion (and any
  // further kMsgRetract hops) continues the originating trace.
  PROVNET_ASSIGN_OR_RETURN(exec().causal, GetCausalIds(body));

  PROVNET_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(body));
  PROVNET_ASSIGN_OR_RETURN(uint64_t killed_count, body.GetVarint());
  if (killed_count > body.remaining()) {
    return InvalidArgumentError("retract: bad killed-variable count");
  }

  // Parse the killed-variable payload in full before touching any state, so
  // a truncated message cannot leave a half-merged epoch set behind.
  std::vector<ProvVar> killed;
  killed.reserve(static_cast<size_t>(killed_count));
  for (uint64_t i = 0; i < killed_count; ++i) {
    PROVNET_ASSIGN_OR_RETURN(ProvVar v, body.GetU32());
    killed.push_back(v);
  }

  // Retraction authorization (closes the PR 1 follow-up): in an
  // authenticated deployment, a kMsgRetract is honored only for tuples the
  // speaker asserted (or co-asserted), tuples whose provenance depends on
  // the speaker, or when the speaker holds an operator capability. A
  // retraction for an absent tuple is an idempotent no-op — and its killed
  // variables are NOT merged, so a hostile retractor cannot poison the
  // epoch's restriction set by naming tuples that do not exist.
  const StoredTuple* stored = nullptr;
  {
    const Table* table = contexts_[to]->FindTable(tuple.predicate());
    if (table != nullptr) {
      stored = table->Find(tuple);
      if (stored == nullptr && table->options().agg != AggKind::kNone) {
        // Aggregate heads travel as *candidates* (aggregate column =
        // contributing value); the stored row holds the aggregated value,
        // so authorization must consult the group row.
        stored = table->FindGroup(tuple);
      }
    }
  }
  if (options_.authenticate && options_.verify_incoming) {
    if (stored == nullptr) return OkStatus();
    const Principal& claimed = tag.has_value() ? tag->principal : Principal();
    if (!AuthorizedRetractor(to, claimed, *stored)) {
      ++cells_.retracts_rejected->value;
      RecordSecurityEvent(SecurityEventKind::kUnauthorizedRetract, to, from,
                          claimed, tuple.ToString());
      return OkStatus();
    }
    // Even an authorized retraction may only kill variables the target's
    // own annotation depends on: the restriction this retraction is
    // entitled to. Anything else would let one trivially-authorized
    // message poison the epoch-global restriction set that prunes
    // *unrelated* tuples' alternatives.
    std::vector<ProvVar> relevant;
    for (ProvVar v : killed) {
      if (!stored->prov.IsZero() && stored->prov.DependsOnAny({v})) {
        relevant.push_back(v);
      }
    }
    killed.swap(relevant);
  }

  for (ProvVar v : killed) dynamics_->killed.insert(v);
  return OverDeleteAt(to, tuple);
}

size_t Engine::AgeAnnotations() {
  // Aging closes the PR 1 gap: a stored annotation may retain alternatives
  // whose supporting base tuples expired un-refreshed (or were removed
  // outside the delta machinery). Restriction pruning would then keep a
  // tuple DRed drops. The pass computes the dead variables — variables that
  // occur in some annotation but whose base tuple is stored nowhere — and
  // restricts every annotation by them; tuples left with Zero support are
  // converted into deletion deltas (with re-derivation, so cross-node copies
  // whose merged annotations under-enumerate are restored if support
  // exists). Sound only when annotations enumerate every derivation at
  // tuple grain.
  if (!AnnotationsComplete() || options_.prov_grain != ProvGrain::kTuple) {
    return 0;
  }

  std::unordered_set<ProvVar> live;
  std::unordered_set<ProvVar> occurring;
  for (auto& ctx : contexts_) {
    for (Table* table : ctx->AllTables()) {
      for (const StoredTuple* e : table->Scan()) {
        if (e->origin == TupleOrigin::kBase) {
          std::optional<ProvVar> v = registry_.Find(e->tuple.ToString());
          if (v.has_value()) live.insert(*v);
        }
        if (!e->prov.IsZero() && !e->prov.IsOne()) {
          for (ProvVar v : e->prov.Variables()) occurring.insert(v);
        }
      }
    }
  }
  std::unordered_set<ProvVar> dead;
  for (ProvVar v : occurring) {
    if (live.find(v) == live.end()) dead.insert(v);
  }
  if (dead.empty()) return 0;

  size_t aged = 0;
  for (auto& ctx : contexts_) {
    for (Table* table : ctx->AllTables()) {
      // COUNT annotations are approximate (a count is not a disjunction of
      // witnesses); the witness multiset, not aging, keeps them honest.
      if (table->options().agg == AggKind::kCount) continue;
      const bool group_rederive = table->options().agg != AggKind::kNone ||
                                  !table->options().key_columns.empty();
      std::vector<Tuple> stale;
      for (const StoredTuple* e : table->Scan()) {
        if (e->origin == TupleOrigin::kBase) continue;  // own var is live
        if (!e->prov.IsZero() && e->prov.DependsOnAny(dead)) {
          stale.push_back(e->tuple);
        }
      }
      for (const Tuple& t : stale) {
        StoredTuple* e = table->FindMutable(t);
        if (e == nullptr) continue;
        ProvExpr restricted = e->prov.Restrict(dead);
        ++aged;
        if (restricted.IsZero()) {
          std::optional<StoredTuple> removed = table->Remove(t);
          if (removed.has_value()) {
            EnqueueRetraction(ctx->id(), std::move(*removed),
                              /*rederive=*/true,
                              /*rederive_group=*/group_rederive);
          }
        } else {
          e->prov = std::move(restricted);
        }
      }
    }
  }
  // The cascade the retractions fire must treat the dead variables as
  // killed, exactly as if their base tuples had been deleted this epoch.
  for (ProvVar v : dead) dynamics_->killed.insert(v);
  return aged;
}

Status Engine::RunRederivePass() {
  std::vector<DeltaState::RederiveItem> items;
  items.swap(dynamics_->rederive);
  for (const DeltaState::RederiveItem& item : items) {
    PROVNET_RETURN_IF_ERROR(
        RederiveTuple(item.node, item.tuple, item.group_only));
  }
  return OkStatus();
}

std::vector<NodeId> Engine::CandidateSites(const CompiledRule& cr) const {
  // A node can only execute the rule if it stores every body-atom
  // predicate; intersect the predicate->site index (grow-only, hence a
  // sound superset of current support) instead of scanning all nodes.
  std::vector<NodeId> sites;
  const std::set<NodeId>* smallest = nullptr;
  std::vector<const std::set<NodeId>*> others;
  for (const SlotLiteral& lit : cr.prog.body) {
    if (lit.kind != LiteralKind::kAtom) continue;
    auto it = pred_sites_.find(lit.predicate);
    if (it == pred_sites_.end()) return sites;  // never stored anywhere
    if (smallest == nullptr || it->second.size() < smallest->size()) {
      if (smallest != nullptr) others.push_back(smallest);
      smallest = &it->second;
    } else {
      others.push_back(&it->second);
    }
  }
  if (smallest == nullptr) return sites;
  for (NodeId site : *smallest) {
    bool everywhere = true;
    for (const std::set<NodeId>* s : others) {
      if (s->count(site) == 0) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) sites.push_back(site);
  }
  return sites;  // std::set iteration => already in ascending node order
}

Status Engine::RederiveTuple(NodeId node, const Tuple& tuple,
                             bool group_only) {
  // Aggregate-group re-derivation constrains only the group columns and
  // lets body evaluation propose fresh contributions; the aggregate table
  // re-selects the extremum.
  std::vector<int> positions;
  if (group_only) {
    positions = plan_.OptionsFor(tuple.predicate()).key_columns;
  }
  const bool exact = !group_only || positions.empty();

  for (const CompiledRule& cr : plan_.rules()) {
    const Rule& rule = cr.lr.rule;
    if (rule.head.predicate != tuple.predicate()) continue;
    Env env0;
    if (!UnifyHeadPattern(rule.head, tuple, env0, positions)) continue;

    // Executing nodes: the head may pin the rule's local variable (e.g. a
    // rule that stores where it runs); otherwise any node storing the
    // rule's body predicates could hold the supporting tuples.
    std::vector<NodeId> sites;
    auto lv = env0.find(cr.lr.local_var);
    if (lv != env0.end()) {
      if (lv->second.kind() != ValueKind::kAddress) continue;
      NodeId m = lv->second.AsAddress();
      if (m >= contexts_.size()) continue;
      sites.push_back(m);
    } else {
      sites = CandidateSites(cr);
    }

    for (NodeId site : sites) {
      Frame& frame = exec().frame;
      frame.Reset(cr.prog.num_slots);
      // Seed the frame with the head-pattern bindings, then pin the
      // executing site.
      bool consistent = true;
      for (const auto& [name, value] : env0) {
        auto slot = cr.prog.var_slots.find(name);
        if (slot == cr.prog.var_slots.end()) continue;
        if (!frame.BindOrCheck(slot->second, value)) {
          consistent = false;
          break;
        }
      }
      if (!consistent ||
          !frame.BindOrCheck(cr.prog.local_slot, Value::Address(site))) {
        continue;
      }
      std::vector<const StoredTuple*> used;
      auto emit = [this, &cr, &tuple, &positions, exact, node, site](
                      Frame& f,
                      const std::vector<const StoredTuple*>& u) -> Status {
        PROVNET_ASSIGN_OR_RETURN(Tuple head, BuildHeadTuple(cr.prog, f));
        NodeId dest = site;
        if (cr.prog.send_to.has_value()) {
          PROVNET_ASSIGN_OR_RETURN(Value v,
                                   EvalSlotTerm(*cr.prog.send_to, f));
          if (v.kind() != ValueKind::kAddress) return OkStatus();
          dest = v.AsAddress();
        }
        if (dest != node) return OkStatus();
        if (exact) {
          if (!(head == tuple)) return OkStatus();
        } else {
          for (int p : positions) {
            if (static_cast<size_t>(p) >= head.arity() ||
                !(head.arg(static_cast<size_t>(p)) ==
                  tuple.arg(static_cast<size_t>(p)))) {
              return OkStatus();
            }
          }
        }
        ++cells_.rederivations->value;
        // The normal head path: annotation product, signing, shipping —
        // restored tuples are indistinguishable from first derivations.
        return EmitHead(site, cr, f, u);
      };
      PROVNET_RETURN_IF_ERROR(DynJoin(site, cr, 0, /*delta_index=*/-1,
                                      /*use_overlay=*/false, frame, used,
                                      emit));
      PROVNET_RETURN_IF_ERROR(DrainPending());
    }
  }
  return OkStatus();
}

}  // namespace provnet
