// Provenance-aware incremental deletion (see delta.h for the algorithm).
// Engine member functions live here, next to the state they drive, the same
// way core/distquery.cc hosts the distributed-provenance query path.

#include "dynamics/delta.h"

#include <algorithm>

#include "core/engine.h"
#include "provenance/store.h"
#include "util/hash.h"
#include "util/logging.h"

namespace provnet {

namespace {
uint64_t RederiveKey(NodeId node, const Tuple& tuple, bool group_only) {
  uint64_t h = DigestOf(tuple);
  h = HashCombine(h, static_cast<uint64_t>(node));
  return HashCombine(h, group_only ? 1u : 2u);
}
}  // namespace

bool Engine::AnnotationsComplete() const {
  return options_.prov_mode == ProvMode::kCondensed ||
         options_.prov_mode == ProvMode::kFull;
}

void Engine::NoteKilledBase(const Tuple& tuple) {
  if (!AnnotationsComplete() || options_.prov_grain != ProvGrain::kTuple) {
    return;
  }
  std::optional<ProvVar> v = registry_.Find(tuple.ToString());
  if (v.has_value()) dynamics_->killed.insert(*v);
}

void Engine::EnqueueRetraction(NodeId node, StoredTuple entry, bool rederive,
                               bool rederive_group) {
  dynamics_->overlay[node][entry.tuple.predicate()].push_back(entry);
  if (rederive) {
    uint64_t key = RederiveKey(node, entry.tuple, rederive_group);
    if (dynamics_->rederive_seen.insert(key).second) {
      dynamics_->rederive.push_back(
          DeltaState::RederiveItem{node, entry.tuple, rederive_group});
    }
  }
  dynamics_->queue.push_back(DeltaState::Retraction{node, std::move(entry)});
}

Status Engine::DeleteFact(NodeId node, const Tuple& tuple) {
  if (node >= contexts_.size()) {
    return InvalidArgumentError("DeleteFact: unknown node");
  }
  Table* table = contexts_[node]->FindTableMutable(tuple.predicate());
  std::optional<StoredTuple> removed =
      table == nullptr ? std::nullopt : table->Remove(tuple);
  if (!removed.has_value()) {
    return NotFoundError("DeleteFact: tuple not stored: " + tuple.ToString());
  }
  if (removed->origin == TupleOrigin::kBase) NoteKilledBase(tuple);
  // An external retraction is authoritative: the fact itself must not be
  // resurrected by the re-derivation phase (its consequences may be).
  EnqueueRetraction(node, std::move(*removed), /*rederive=*/false,
                    /*rederive_group=*/false);
  return OkStatus();
}

Status Engine::RetractPrincipal(const Principal& principal) {
  // At principal grain one substitution covers every assertion; at tuple
  // grain each of the principal's base tuples contributes its own variable
  // (collected below as they are removed).
  if (AnnotationsComplete() &&
      options_.prov_grain == ProvGrain::kPrincipal) {
    std::optional<ProvVar> v = registry_.Find(principal);
    if (v.has_value()) dynamics_->killed.insert(*v);
  }

  for (auto& ctx : contexts_) {
    for (Table* table : ctx->AllTables()) {
      const bool count_agg = table->options().agg == AggKind::kCount;
      const bool is_agg = table->options().agg != AggKind::kNone;
      // Classify before mutating: Scan pointers die on removal.
      std::vector<Tuple> revoked;    // the principal's own assertions
      std::vector<Tuple> dependent;  // annotation mentions a killed var
      for (const StoredTuple* e : table->Scan()) {
        if (e->asserted_by == principal) {
          revoked.push_back(e->tuple);
        } else if (!dynamics_->killed.empty() &&
                   e->prov.DependsOnAny(dynamics_->killed)) {
          dependent.push_back(e->tuple);
        }
      }
      for (const Tuple& t : revoked) {
        std::optional<StoredTuple> removed = table->Remove(t);
        if (!removed.has_value()) continue;
        if (removed->origin == TupleOrigin::kBase) NoteKilledBase(t);
        // rederive: a revoked copy of a tuple someone else can also derive
        // comes back through an untainted principal.
        EnqueueRetraction(ctx->id(), std::move(*removed), /*rederive=*/true,
                          /*rederive_group=*/is_agg);
      }
      for (const Tuple& t : dependent) {
        StoredTuple* e = table->FindMutable(t);
        if (e == nullptr) continue;
        // COUNT aggregates cannot be pruned by restriction (the count must
        // drop when witnesses die even if some survive): always recompute.
        ProvExpr restricted =
            count_agg ? ProvExpr::Zero() : e->prov.Restrict(dynamics_->killed);
        if (restricted.IsZero()) {
          std::optional<StoredTuple> removed = table->Remove(t);
          if (removed.has_value()) {
            EnqueueRetraction(ctx->id(), std::move(*removed),
                              /*rederive=*/true, /*rederive_group=*/is_agg);
          }
        } else {
          e->prov = std::move(restricted);
        }
      }
    }
  }
  return OkStatus();
}

Status Engine::ProcessRetraction(NodeId node, const StoredTuple& entry) {
  // The tuple's live provenance dies with it.
  contexts_[node]->online_store().Remove(DigestOf(entry.tuple));

  const std::vector<Strand>* strands =
      plan_.StrandsFor(entry.tuple.predicate());
  if (strands == nullptr) return OkStatus();
  for (const Strand& strand : *strands) {
    const CompiledRule& cr = plan_.rules()[strand.rule_index];
    PROVNET_RETURN_IF_ERROR(
        FireDeleteStrand(node, cr, strand.body_index, entry));
  }
  return OkStatus();
}

Status Engine::FireDeleteStrand(NodeId node_id, const CompiledRule& cr,
                                int delta_index,
                                const StoredTuple& delta_entry) {
  const Rule& rule = cr.lr.rule;
  Env env;
  env.emplace(cr.lr.local_var, Value::Address(node_id));

  const Literal& delta_lit = rule.body[static_cast<size_t>(delta_index)];
  if (!UnifyTuple(delta_lit.atom, delta_entry.tuple, env)) return OkStatus();
  if (delta_lit.atom.says.has_value() &&
      !SaysMatches(*delta_lit.atom.says, delta_entry, env)) {
    return OkStatus();
  }

  std::vector<const StoredTuple*> used;
  used.push_back(&delta_entry);
  return DynJoin(node_id, cr, 0, delta_index, /*use_overlay=*/true, env, used,
                 [this, node_id, &cr](const Env& e,
                                      const std::vector<const StoredTuple*>&) {
                   return OverDeleteHead(node_id, cr, e);
                 });
}

Status Engine::DynJoin(NodeId node_id, const CompiledRule& cr,
                       size_t literal_pos, int delta_index, bool use_overlay,
                       Env& env, std::vector<const StoredTuple*>& used,
                       const EmitFn& emit) {
  const Rule& rule = cr.lr.rule;
  if (literal_pos == rule.body.size()) return emit(env, used);
  if (static_cast<int>(literal_pos) == delta_index) {
    return DynJoin(node_id, cr, literal_pos + 1, delta_index, use_overlay,
                   env, used, emit);
  }
  const Literal& lit = rule.body[literal_pos];
  switch (lit.kind) {
    case LiteralKind::kCondition: {
      PROVNET_ASSIGN_OR_RETURN(bool pass, EvalCondition(lit.expr, env));
      if (!pass) return OkStatus();
      return DynJoin(node_id, cr, literal_pos + 1, delta_index, use_overlay,
                     env, used, emit);
    }
    case LiteralKind::kAssign: {
      PROVNET_ASSIGN_OR_RETURN(Value v, EvalExpr(lit.expr, env));
      auto it = env.find(lit.assign_var);
      if (it != env.end()) {
        if (!(it->second == v)) return OkStatus();
        return DynJoin(node_id, cr, literal_pos + 1, delta_index, use_overlay,
                       env, used, emit);
      }
      env.emplace(lit.assign_var, std::move(v));
      Status s = DynJoin(node_id, cr, literal_pos + 1, delta_index,
                         use_overlay, env, used, emit);
      env.erase(lit.assign_var);
      return s;
    }
    case LiteralKind::kAtom: {
      NodeContext& ctx = *contexts_[node_id];
      Table* table = ctx.FindTableMutable(lit.atom.predicate);

      // Copy candidates: emits may mutate the very tables being scanned.
      std::vector<StoredTuple> candidates;
      if (table != nullptr) {
        // Indexable column: first constant or bound-variable argument.
        int index_col = -1;
        Value index_val;
        for (size_t i = 0; i < lit.atom.args.size(); ++i) {
          const Term& t = lit.atom.args[i];
          if (t.kind == TermKind::kConstant) {
            index_col = static_cast<int>(i);
            index_val = t.constant;
            break;
          }
          if (t.kind == TermKind::kVariable) {
            auto it = env.find(t.name);
            if (it != env.end()) {
              index_col = static_cast<int>(i);
              index_val = it->second;
              break;
            }
          }
        }
        std::vector<const StoredTuple*> found =
            index_col >= 0 ? table->LookupByColumn(index_col, index_val)
                           : table->Scan();
        candidates.reserve(found.size());
        for (const StoredTuple* entry : found) candidates.push_back(*entry);
      }
      if (use_overlay) {
        // The pre-deletion database: tuples already deleted this epoch are
        // still join partners for over-deletion.
        const std::vector<StoredTuple>* deleted =
            dynamics_->OverlayFor(node_id, lit.atom.predicate);
        if (deleted != nullptr) {
          candidates.insert(candidates.end(), deleted->begin(),
                            deleted->end());
        }
      }

      for (const StoredTuple& candidate : candidates) {
        Env env2 = env;
        if (!UnifyTuple(lit.atom, candidate.tuple, env2)) continue;
        if (lit.atom.says.has_value() &&
            !SaysMatches(*lit.atom.says, candidate, env2)) {
          continue;
        }
        used.push_back(&candidate);
        Status s = DynJoin(node_id, cr, literal_pos + 1, delta_index,
                           use_overlay, env2, used, emit);
        used.pop_back();
        PROVNET_RETURN_IF_ERROR(s);
      }
      return OkStatus();
    }
  }
  return InternalError("unreachable literal kind");
}

Status Engine::OverDeleteHead(NodeId node_id, const CompiledRule& cr,
                              const Env& env) {
  const Rule& rule = cr.lr.rule;
  PROVNET_ASSIGN_OR_RETURN(Tuple head, BuildHeadTuple(rule.head, env));

  NodeId dest = node_id;
  if (cr.lr.send_to.has_value()) {
    PROVNET_ASSIGN_OR_RETURN(Value v, EvalTerm(*cr.lr.send_to, env));
    if (v.kind() != ValueKind::kAddress) {
      return InvalidArgumentError("retract: destination is not an address: " +
                                  v.ToString());
    }
    dest = v.AsAddress();
    if (dest >= contexts_.size()) {
      return InvalidArgumentError("retract: destination node out of range");
    }
  }
  if (dest == node_id) return OverDeleteAt(node_id, head);
  return SendRetract(node_id, dest, head);
}

Status Engine::OverDeleteAt(NodeId node_id, const Tuple& tuple) {
  NodeContext& ctx = *contexts_[node_id];
  Table* table = ctx.FindTableMutable(tuple.predicate());
  if (table == nullptr) return OkStatus();
  const TableOptions& topt = table->options();

  if (topt.agg != AggKind::kNone) {
    const StoredTuple* group = table->FindGroup(tuple);
    if (group == nullptr) return OkStatus();
    size_t agg_col = static_cast<size_t>(topt.agg_column);
    // MIN/MAX: only a derivation of the current extremum can invalidate the
    // group. COUNT: any dead witness changes the count.
    bool contributes =
        topt.agg == AggKind::kCount ||
        (agg_col < tuple.arity() &&
         group->tuple.arg(agg_col) == tuple.arg(agg_col));
    if (!contributes) return OkStatus();
    if (topt.agg != AggKind::kCount && !dynamics_->killed.empty() &&
        !group->prov.IsZero()) {
      // An equal-extremum derivation that avoids every killed base keeps
      // the group's value valid.
      ProvExpr restricted = group->prov.Restrict(dynamics_->killed);
      if (!restricted.IsZero()) {
        table->FindMutable(group->tuple)->prov = std::move(restricted);
        return OkStatus();
      }
    }
    std::optional<StoredTuple> removed = table->Remove(group->tuple);
    if (removed.has_value()) {
      EnqueueRetraction(node_id, std::move(*removed), /*rederive=*/true,
                        /*rederive_group=*/true);
    }
    return OkStatus();
  }

  const StoredTuple* current = table->Find(tuple);
  if (current == nullptr) return OkStatus();
  if (!dynamics_->killed.empty() && !current->prov.IsZero()) {
    ProvExpr restricted = current->prov.Restrict(dynamics_->killed);
    if (!restricted.IsZero()) {
      // Independent derivation survives: keep the tuple, adopt the pruned
      // annotation, stop the cascade — no re-derivation needed.
      table->FindMutable(tuple)->prov = std::move(restricted);
      return OkStatus();
    }
  }
  std::optional<StoredTuple> removed = table->Remove(tuple);
  if (removed.has_value()) {
    EnqueueRetraction(node_id, std::move(*removed), /*rederive=*/true,
                      /*rederive_group=*/false);
  }
  return OkStatus();
}

Status Engine::SendRetract(NodeId from, NodeId to, const Tuple& tuple) {
  // Content: tuple + the epoch's killed variables, so the receiver can
  // restrict its own (merged) annotation. The says tag covers these bytes —
  // forged retractions from untrusted senders are dropped on verify.
  ByteWriter content;
  tuple.Serialize(content);
  std::vector<ProvVar> killed(dynamics_->killed.begin(),
                              dynamics_->killed.end());
  std::sort(killed.begin(), killed.end());
  content.PutVarint(killed.size());
  for (ProvVar v : killed) content.PutU32(v);

  bool attach_says = options_.authenticate || plan_.sendlog();
  SaysLevel level =
      options_.authenticate ? options_.says_level : SaysLevel::kCleartext;

  ByteWriter msg;
  msg.PutU8(kMsgRetract);
  msg.PutBlob(content.bytes());
  msg.PutU8(attach_says ? 1 : 0);
  size_t pre_auth = msg.size();
  if (attach_says) {
    PROVNET_ASSIGN_OR_RETURN(
        SaysTag tag,
        auth_.Say(contexts_[from]->principal(), content.bytes(), level));
    tag.Serialize(msg);
  }
  stats_.auth_bytes += msg.size() - pre_auth;
  stats_.tuple_bytes += pre_auth;
  return net_.Send(from, to, std::move(msg).Take());
}

Status Engine::HandleRetractMessage(NodeId to, NodeId /*from*/,
                                    ByteReader& reader) {
  PROVNET_ASSIGN_OR_RETURN(Bytes content, reader.GetBlob());
  PROVNET_ASSIGN_OR_RETURN(uint8_t has_says, reader.GetU8());
  if (has_says != 0) {
    PROVNET_ASSIGN_OR_RETURN(SaysTag tag, SaysTag::Deserialize(reader));
    if (options_.authenticate && options_.verify_incoming) {
      Status verdict = auth_.Verify(tag, content);
      if (!verdict.ok()) {
        ++stats_.auth_failures;
        return OkStatus();  // unauthenticated retraction: ignored
      }
    }
  }

  ByteReader body(content);
  PROVNET_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(body));
  PROVNET_ASSIGN_OR_RETURN(uint64_t killed_count, body.GetVarint());
  if (killed_count > body.remaining()) {
    return InvalidArgumentError("retract: bad killed-variable count");
  }
  for (uint64_t i = 0; i < killed_count; ++i) {
    PROVNET_ASSIGN_OR_RETURN(ProvVar v, body.GetU32());
    dynamics_->killed.insert(v);
  }
  return OverDeleteAt(to, tuple);
}

Status Engine::RunRederivePass() {
  std::vector<DeltaState::RederiveItem> items;
  items.swap(dynamics_->rederive);
  for (const DeltaState::RederiveItem& item : items) {
    PROVNET_RETURN_IF_ERROR(
        RederiveTuple(item.node, item.tuple, item.group_only));
  }
  return OkStatus();
}

Status Engine::RederiveTuple(NodeId node, const Tuple& tuple,
                             bool group_only) {
  // Aggregate-group re-derivation constrains only the group columns and
  // lets body evaluation propose fresh contributions; the aggregate table
  // re-selects the extremum.
  std::vector<int> positions;
  if (group_only) {
    positions = plan_.OptionsFor(tuple.predicate()).key_columns;
  }
  const bool exact = !group_only || positions.empty();

  for (const CompiledRule& cr : plan_.rules()) {
    const Rule& rule = cr.lr.rule;
    if (rule.head.predicate != tuple.predicate()) continue;
    Env env0;
    if (!UnifyHeadPattern(rule.head, tuple, env0, positions)) continue;

    // Executing nodes: the head may pin the rule's local variable (e.g. a
    // rule that stores where it runs); otherwise any node could hold the
    // supporting body tuples.
    std::vector<NodeId> sites;
    auto lv = env0.find(cr.lr.local_var);
    if (lv != env0.end()) {
      if (lv->second.kind() != ValueKind::kAddress) continue;
      NodeId m = lv->second.AsAddress();
      if (m >= contexts_.size()) continue;
      sites.push_back(m);
    } else {
      sites.reserve(contexts_.size());
      for (NodeId m = 0; m < contexts_.size(); ++m) sites.push_back(m);
    }

    for (NodeId site : sites) {
      Env env = env0;
      env.emplace(cr.lr.local_var, Value::Address(site));
      std::vector<const StoredTuple*> used;
      auto emit = [this, &cr, &tuple, &positions, exact, node, site](
                      const Env& e,
                      const std::vector<const StoredTuple*>& u) -> Status {
        PROVNET_ASSIGN_OR_RETURN(Tuple head,
                                 BuildHeadTuple(cr.lr.rule.head, e));
        NodeId dest = site;
        if (cr.lr.send_to.has_value()) {
          PROVNET_ASSIGN_OR_RETURN(Value v, EvalTerm(*cr.lr.send_to, e));
          if (v.kind() != ValueKind::kAddress) return OkStatus();
          dest = v.AsAddress();
        }
        if (dest != node) return OkStatus();
        if (exact) {
          if (!(head == tuple)) return OkStatus();
        } else {
          for (int p : positions) {
            if (static_cast<size_t>(p) >= head.arity() ||
                !(head.arg(static_cast<size_t>(p)) ==
                  tuple.arg(static_cast<size_t>(p)))) {
              return OkStatus();
            }
          }
        }
        ++stats_.rederivations;
        // The normal head path: annotation product, signing, shipping —
        // restored tuples are indistinguishable from first derivations.
        return EmitHead(site, cr, e, u);
      };
      PROVNET_RETURN_IF_ERROR(DynJoin(site, cr, 0, /*delta_index=*/-1,
                                      /*use_overlay=*/false, env, used,
                                      emit));
    }
  }
  return OkStatus();
}

}  // namespace provnet
