#include "dynamics/churn.h"

#include <algorithm>

#include "util/strings.h"

namespace provnet {

const char* ChurnKindName(ChurnKind kind) {
  switch (kind) {
    case ChurnKind::kLinkDown:
      return "link_down";
    case ChurnKind::kLinkUp:
      return "link_up";
    case ChurnKind::kCompromise:
      return "compromise";
    case ChurnKind::kExpireOnly:
      return "expire";
  }
  return "?";
}

std::string ChurnEvent::ToString() const {
  switch (kind) {
    case ChurnKind::kLinkDown:
    case ChurnKind::kLinkUp:
      return StrFormat("t=%.2f %s %u->%u (cost %lld)", at,
                       ChurnKindName(kind), from, to,
                       static_cast<long long>(cost));
    case ChurnKind::kCompromise:
      return StrFormat("t=%.2f compromise %s", at, principal.c_str());
    case ChurnKind::kExpireOnly:
      return StrFormat("t=%.2f expire", at);
  }
  return "?";
}

ChurnScript ChurnScript::RandomLinkFlaps(const Topology& topo, size_t flaps,
                                         double start, double spacing,
                                         Rng& rng) {
  ChurnScript script;
  if (topo.edges.empty() || flaps == 0) return script;
  // Distinct edges per flap (cycling if flaps exceed the edge count).
  std::vector<size_t> order(topo.edges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  for (size_t i = 0; i < flaps; ++i) {
    const TopoEdge& edge = topo.edges[order[i % order.size()]];
    double down_at = start + static_cast<double>(i) * spacing;
    ChurnEvent down;
    down.at = down_at;
    down.kind = ChurnKind::kLinkDown;
    down.from = edge.from;
    down.to = edge.to;
    down.cost = edge.cost;
    script.events.push_back(down);
    ChurnEvent up = down;
    up.at = down_at + spacing / 2;
    up.kind = ChurnKind::kLinkUp;
    script.events.push_back(up);
  }
  std::sort(script.events.begin(), script.events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.at < b.at;
            });
  return script;
}

ChurnScript ChurnScript::CompromiseAt(double at, Principal principal) {
  ChurnScript script;
  ChurnEvent event;
  event.at = at;
  event.kind = ChurnKind::kCompromise;
  event.principal = std::move(principal);
  script.events.push_back(event);
  return script;
}

double ChurnReport::MeanEventSeconds() const {
  if (events.empty()) return 0.0;
  return total_wall_seconds / static_cast<double>(events.size());
}

double ChurnReport::MaxEventSeconds() const {
  double worst = 0.0;
  for (const ChurnEventReport& e : events) {
    worst = std::max(worst, e.wall_seconds);
  }
  return worst;
}

std::string ChurnReport::Summary() const {
  return StrFormat(
      "%zu events: mean=%.3fms max=%.3fms total=%.3fs bytes=%llu msgs=%llu "
      "retractions=%llu rederivations=%llu",
      events.size(), MeanEventSeconds() * 1e3, MaxEventSeconds() * 1e3,
      total_wall_seconds, static_cast<unsigned long long>(total_bytes),
      static_cast<unsigned long long>(total_messages),
      static_cast<unsigned long long>(total_retractions),
      static_cast<unsigned long long>(total_rederivations));
}

Tuple ChurnDriver::LinkTuple(const ChurnEvent& event) const {
  std::vector<Value> args{Value::Address(event.from),
                          Value::Address(event.to)};
  if (link_arity_ >= 3) args.push_back(Value::Int(event.cost));
  return Tuple("link", std::move(args));
}

Result<ChurnEventReport> ChurnDriver::Step(const ChurnEvent& event) {
  Network& net = engine_.network();
  if (event.at > net.now()) net.AdvanceTime(event.at - net.now());
  Network::Meters meters0 = net.MeterSnapshot();
  engine_.ExpireNow();  // soft state decays on the same clock as the churn

  switch (event.kind) {
    case ChurnKind::kLinkDown: {
      Status s = engine_.DeleteFact(event.from, LinkTuple(event));
      // Tolerate a link that is already gone: TTL expiry (just above) or an
      // earlier event may have beaten this one to it.
      if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
      break;
    }
    case ChurnKind::kLinkUp:
      PROVNET_RETURN_IF_ERROR(engine_.InsertFact(event.from,
                                                 LinkTuple(event)));
      break;
    case ChurnKind::kCompromise:
      PROVNET_RETURN_IF_ERROR(engine_.RetractPrincipal(event.principal));
      break;
    case ChurnKind::kExpireOnly:
      break;
  }

  PROVNET_ASSIGN_OR_RETURN(RunStats stats, engine_.Run());
  Network::Meters meters1 = net.MeterSnapshot();
  ChurnEventReport report;
  report.event = event;
  report.wall_seconds = stats.wall_seconds;
  // Meter the whole step (expiry + mutation + fixpoint), not just Run()'s
  // window, so nothing a future mutation path sends goes uncharged.
  report.bytes = meters1.bytes - meters0.bytes;
  report.messages = meters1.messages - meters0.messages;
  report.retractions = stats.retractions;
  report.rederivations = stats.rederivations;
  report.derivations = stats.derivations;
  return report;
}

Result<ChurnReport> ChurnDriver::Replay(const ChurnScript& script) {
  ChurnReport report;
  for (const ChurnEvent& event : script.events) {
    PROVNET_ASSIGN_OR_RETURN(ChurnEventReport step, Step(event));
    report.total_wall_seconds += step.wall_seconds;
    report.total_bytes += step.bytes;
    report.total_messages += step.messages;
    report.total_retractions += step.retractions;
    report.total_rederivations += step.rederivations;
    report.events.push_back(std::move(step));
  }
  return report;
}

}  // namespace provnet
