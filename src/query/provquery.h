// ProvQuery — the first-class, authenticated provenance-query API
// (Section 5: reconstructing and evaluating derivations on demand).
//
// One typed entry point subsumes the historical query paths (the engine's
// local-derivation accessor, the raw digest-walk that lived in
// core/distquery.cc, the forensic traceback, and the campaign audit
// sweeps): a ProvQueryBuilder selects
//
//   * scope  - kLocal (the stored full derivation tree, else a walk over
//     this node's own records with no network traffic), kDistributed (the
//     Section 4.1 pointer-walk: signed, sequenced request/response messages
//     reconstruct the proof across nodes, online records preferred and the
//     offline archive as fallback at every hop), or kAuto (local when a
//     full tree is stored, distributed otherwise);
//   * grain  - which variables the reconstructed proof folds to (principal
//     or base-tuple, provenance/granularity semantics);
//   * limits - depth / per-record fanout / total record budgets, so a
//     forensic probe can bound its own traffic;
//
// and Run() returns an explicit ProofDag plus QueryStats with per-query
// message/byte accounting — the paper's "expensive query vs. cheap
// shipping" trade-off, measurable per query. Semiring evaluations
// (derivability, trust level, counting, condensed cube — reusing
// provenance/semiring.* and provenance/condense.*) fold over the result.
//
// The wire path runs through the receive-side verification pipeline
// (src/adversary/verify.cc): both kMsgProvRequest and kMsgProvResponse
// carry the signed (sequence, destination) header, responses must answer an
// outstanding (query_id, responder, digest) triple issued by this node, and
// forged / replayed / misdirected / unsolicited responses are dropped,
// counted (RunStats::prov_responses_rejected) and audited in the
// SecurityLog.
#ifndef PROVNET_QUERY_PROVQUERY_H_
#define PROVNET_QUERY_PROVQUERY_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "bignum/bigint.h"
#include "core/engine.h"
#include "provenance/condense.h"
#include "provenance/derivation.h"
#include "provenance/prov_expr.h"
#include "util/status.h"

namespace provnet {

// Rule labels of synthetic proof nodes (reconstruction artifacts, never
// produced by a real rule firing).
inline constexpr char kMissingRule[] = "missing";  // records unavailable
inline constexpr char kCycleRule[] = "cycle";      // pointer-graph cycle cut
// A responder that never answered within the per-hop deadline (after every
// retry, and with nothing in its offline archive to fall back on): the
// branch is unreachable *now*, not known-absent — re-running the query once
// the partition heals can resolve it.
inline constexpr char kUnreachableRule[] = "unreachable";

// Payload kinds inside the provenance-query wire messages. Public because
// the fault-injection layer (src/adversary/) crafts wire-faithful forged
// responses and must agree on the format.
inline constexpr uint8_t kQueryRecords = 0;  // digest -> ProvRecords
inline constexpr uint8_t kQueryClaims = 1;   // predicates -> asserted claims
inline constexpr uint8_t kQueryCompare = 2;  // digest buckets -> conflicts

enum class QueryScope : uint8_t {
  kAuto = 0,         // local full tree when stored, else distributed
  kLocal = 1,        // this node's stores only; never touches the network
  kDistributed = 2,  // authenticated pointer-walk over the network
};

const char* QueryScopeName(QueryScope scope);

// Traffic/effort bounds for one query. 0 = unbounded. Cut references
// surface as kMissingRule leaves and count into QueryStats::truncated.
struct QueryLimits {
  size_t max_depth = 0;    // derivation hops expanded from the root
  size_t max_fanout = 0;   // non-base child refs expanded per record
  size_t max_records = 0;  // total records folded into the DAG
};

// Per-query accounting: the price of this reconstruction.
struct QueryStats {
  uint64_t messages = 0;  // wire messages the query put on the network
  uint64_t bytes = 0;     // their payload bytes (requests + responses)
  uint64_t requests = 0;  // kMsgProvRequest issued
  uint64_t responses = 0;          // kMsgProvResponse accepted
  uint64_t responses_rejected = 0;  // dropped by the verification pipeline
  uint64_t records = 0;         // ProvRecords folded into the DAG
  uint64_t local_lookups = 0;   // store lookups answered without messages
  uint64_t offline_hits = 0;    // lookups that fell back to the archive
  // Degradation under faults (EngineOptions::query_hop_timeout): per-hop
  // deadlines that expired, requests re-sent with backoff, and branches
  // finally surfaced as kUnreachableRule leaves. All zero on a healthy
  // network (ToString omits them then, keeping historical bytes).
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  uint64_t unreachable = 0;
  size_t depth = 0;             // deepest level expanded
  size_t truncated = 0;         // refs cut by depth/fanout/record limits
  double wall_seconds = 0.0;

  std::string ToString() const;
};

// One node of a reconstructed proof DAG. `children` index into
// ProofDag::nodes; shared sub-derivations resolve to one node.
struct ProofNode {
  Tuple tuple;
  std::string rule;  // rule label, kBaseRule, kUnionRule, kMissingRule, ...
  NodeId location = 0;
  Principal asserted_by;
  double created_at = 0.0;
  std::vector<uint32_t> children;

  bool IsLeaf() const { return children.empty(); }
  // A real origin: a base assertion (not a reconstruction artifact).
  bool IsOrigin() const {
    return children.empty() && rule != kMissingRule && rule != kCycleRule &&
           rule != kUnreachableRule;
  }
};

// The explicit result of a provenance query: a DAG over ProofNodes with the
// root at index `root`. Unlike DerivationPtr trees, the structure is open
// for iteration (nodes vector) and carries no signatures or TTLs — it is
// the *reconstruction*, normalized so that a distributed walk of an honest
// run and the locally stored full-provenance tree produce identical DAGs
// (transport "recv" hops are collapsed; CanonicalBytes() compares them
// byte-for-byte).
struct ProofDag {
  std::vector<ProofNode> nodes;
  uint32_t root = 0;

  bool empty() const { return nodes.empty(); }
  const ProofNode& root_node() const { return nodes[root]; }

  // Distinct base tuples at the leaves (the inputs provenance must recover).
  std::vector<Tuple> Leaves() const;
  // Nodes asserting those leaves — the origin candidates of a traceback.
  std::set<NodeId> OriginNodes() const;
  // Principals asserting those leaves.
  std::set<Principal> LeafPrincipals() const;
  // 1 for a single-node DAG; 0 when empty.
  size_t Depth() const;

  // Provenance polynomial of the DAG: + over alternatives, * over joint
  // derivations, one variable per leaf at the chosen grain (principal or
  // base tuple). Missing/cycle leaves fold to Zero (conservative: nothing
  // is derivable through an unreconstructed branch).
  ProvExpr Annotation(ProvVarRegistry& registry, ProvGrain grain) const;

  // Canonical structural encoding: preorder DFS with first-visit node ids,
  // timestamps excluded. Equal bytes <=> identical proof structure.
  Bytes CanonicalBytes() const;

  // Bridges to the legacy derivation-tree representation.
  DerivationPtr ToDerivation() const;
  static ProofDag FromDerivation(const DerivationPtr& root);

  std::string ToString() const;
};

// A fully specified query plus its outcome helpers.
struct QueryResult {
  ProofDag dag;
  ProvExpr annotation;  // dag.Annotation at the query's grain
  QueryStats stats;
  QueryScope used = QueryScope::kLocal;  // what kAuto resolved to

  // Semiring evaluations over the reconstructed proof (Section 4.5).
  bool DerivableFrom(
      const std::unordered_map<ProvVar, bool>& trusted) const;
  int64_t TrustLevel(const std::unordered_map<ProvVar, int64_t>& levels,
                     int64_t default_level) const;
  // Counting semiring, saturating at UINT64_MAX — proofs whose shared
  // sub-derivations are referenced both directly and through an aggregate
  // record legitimately count exponentially many derivations, so the
  // machine-word view clamps instead of wrapping mod 2^64.
  uint64_t DerivationCount() const;
  // The exact count in arbitrary precision (src/bignum). Routed through
  // the queried engine's hash-consing arena when one exists (kFull): the
  // annotation is interned first, so repeated counts — across queries and
  // across tuples sharing sub-proofs — reuse the arena's persistent memo.
  BigInt DerivationCountExact() const;
  CondensedProv Condensed() const;

  // Non-owning; set by ProvQuery::Run from Engine::arena() (null outside
  // kFull). Must not outlive the engine.
  store::ProvArena* arena = nullptr;
};

struct ProvQuerySession;  // internal wire-walk state (query/session.h)

// An executable provenance query. Build with ProvQueryBuilder; Run() is
// synchronous (it pumps the network to quiescence for distributed scopes)
// and may be called repeatedly.
class ProvQuery {
 public:
  Result<QueryResult> Run();

  NodeId node() const { return node_; }
  const Tuple& tuple() const { return tuple_; }
  QueryScope scope() const { return scope_; }
  const QueryLimits& limits() const { return limits_; }

 private:
  friend class ProvQueryBuilder;
  explicit ProvQuery(Engine& engine) : engine_(&engine) {}

  Result<QueryResult> RunLocal(const StoredTuple* stored);
  Result<QueryResult> RunDistributed();
  static Status DrainLocalFrontier(Engine& engine, ProvQuerySession& session);
  static Status Pump(Engine& engine, ProvQuerySession& session);

  Engine* engine_;
  NodeId node_ = 0;
  Tuple tuple_;
  QueryScope scope_ = QueryScope::kAuto;
  QueryLimits limits_;
  ProvGrain grain_ = ProvGrain::kPrincipal;
};

// Fluent construction: ProvQueryBuilder(engine).At(n).Of(t).Run().
class ProvQueryBuilder {
 public:
  explicit ProvQueryBuilder(Engine& engine) : query_(engine) {
    query_.grain_ = engine.options().prov_grain;
  }

  ProvQueryBuilder& At(NodeId node) {
    query_.node_ = node;
    return *this;
  }
  ProvQueryBuilder& Of(const Tuple& tuple) {
    query_.tuple_ = tuple;
    return *this;
  }
  ProvQueryBuilder& WithScope(QueryScope scope) {
    query_.scope_ = scope;
    return *this;
  }
  ProvQueryBuilder& WithGrain(ProvGrain grain) {
    query_.grain_ = grain;
    return *this;
  }
  ProvQueryBuilder& WithLimits(QueryLimits limits) {
    query_.limits_ = limits;
    return *this;
  }
  ProvQueryBuilder& MaxDepth(size_t depth) {
    query_.limits_.max_depth = depth;
    return *this;
  }
  ProvQueryBuilder& MaxFanout(size_t fanout) {
    query_.limits_.max_fanout = fanout;
    return *this;
  }
  ProvQueryBuilder& MaxRecords(size_t records) {
    query_.limits_.max_records = records;
    return *this;
  }

  ProvQuery Build() const { return query_; }
  Result<QueryResult> Run() const { return ProvQuery(query_).Run(); }

 private:
  ProvQuery query_;
};

// Distributed claim collection over the authenticated query wire path: the
// auditor asks every (non-skipped) node for the tuples it stores of the
// given predicates, together with their asserting principals. Replaces the
// centralized table sweep the equivocation audit used to run for free — the
// exchange is real metered traffic, charged to RunStats::prov_query_bytes
// like any other provenance query.
class ClaimsExchange {
 public:
  struct Claim {
    NodeId node = 0;  // where the claim is stored
    Principal asserted_by;
    Tuple tuple;
  };

  ClaimsExchange(Engine& engine, NodeId auditor)
      : engine_(&engine), auditor_(auditor) {}

  Result<std::vector<Claim>> Collect(const std::set<std::string>& predicates,
                                     const std::set<NodeId>& skip_nodes);

  // Accounting of the last Collect().
  const QueryStats& stats() const { return stats_; }

  // Responders that never answered the last Collect(). Silence is not a
  // transport error: each silent node is audited (kSilentResponder) and
  // surfaced here so the caller can treat suppression as incriminating —
  // the sweep completes over the answers it did get.
  const std::set<NodeId>& silent() const { return silent_; }

 private:
  Engine* engine_;
  NodeId auditor_;
  QueryStats stats_;
  std::set<NodeId> silent_;
};

// Step two of the decentralized equivocation audit: the pairwise digest
// comparison itself, spread across responder nodes instead of running for
// free in the auditor's loop. The auditor buckets the collected claims by
// equivocation key, hashes each key to one of the eligible comparers
// (Fnv1a64(key) % comparers — seeded only by the claims, so the assignment
// is deterministic), and ships that comparer its buckets' tuple digests
// over the signed query wire path (bandwidth charged to
// RunStats::prov_query_bytes like the claims exchange). Each comparer
// answers with the conflicting entry indices per bucket — the same
// "first claim vs. first disagreeing claim" comparison the centralized
// sweep ran — and the auditor maps indices back to full claims, so the
// findings come out identical to the centralized audit. Buckets that hash
// to the auditor itself are compared locally for free, and a comparer that
// never answers is audited (kSilentResponder) with its buckets falling
// back to local comparison: the auditor holds every digest anyway, so a
// suppressed comparison degrades to the centralized path rather than
// reading as clean. (A comparer that *lies* — answers "no conflict" for a
// conflicting bucket — is the next decentralization step: spot-check
// re-comparison; today one step of comparison work is delegated.)
class CompareExchange {
 public:
  // One equivocation-key bucket: the claims' tuple digests in collected
  // order (index 0 is the key's first claim, the centralized baseline).
  struct Bucket {
    std::string key;  // assignment input, never shipped
    std::vector<TupleDigest> digests;
  };
  // A conflict a comparer reported: entry `b` of bucket `bucket` is the
  // first whose digest differs from entry `a` (always 0 today).
  struct Conflict {
    uint64_t bucket = 0;
    uint32_t a = 0;
    uint32_t b = 0;
  };

  CompareExchange(Engine& engine, NodeId auditor)
      : engine_(&engine), auditor_(auditor) {}

  // Runs the exchange over `buckets`, assigning each to one of `comparers`.
  // Conflicts are returned sorted by bucket id. Not counted as a separate
  // provquery.queries session: it is phase two of the audit that already
  // counted its Collect().
  Result<std::vector<Conflict>> Compare(const std::vector<Bucket>& buckets,
                                        const std::vector<NodeId>& comparers);

  // Accounting of the last Compare().
  const QueryStats& stats() const { return stats_; }

  // Comparers that never answered the last Compare() (audited, buckets
  // re-compared locally).
  const std::set<NodeId>& silent() const { return silent_; }

 private:
  Engine* engine_;
  NodeId auditor_;
  QueryStats stats_;
  std::set<NodeId> silent_;
};

}  // namespace provnet

#endif  // PROVNET_QUERY_PROVQUERY_H_
