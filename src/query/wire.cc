// Authenticated provenance-query wire path (Engine member functions live
// here, next to the session state they feed — the same layout as
// adversary/verify.cc and dynamics/delta.cc).
//
// kMsgProvRequest / kMsgProvResponse use the exact envelope of
// kMsgTuple/kMsgRetract: [type][blob content][has_says][says tag], with the
// content carrying the signed (sequence, destination) header when
// authentication is on. On top of the generic pipeline (signature present /
// valid / known principal, destination check, per-sender ReplayGuard), a
// response must answer an *outstanding* query: its (query_id, responder,
// digest) triple has to match a request this node issued, and with
// verification on the responder named in the signed content must be the
// node the speaking principal operates. Anything else — a forged, replayed,
// misdirected, or unsolicited response — is dropped, counted
// (RunStats::prov_responses_rejected) and audited in the SecurityLog.
//
// Three payload kinds ride the same path:
//   kQueryRecords - digest -> ProvRecords (the Section 4.1 pointer-walk;
//     online records preferred, offline archive fallback at the responder);
//   kQueryClaims  - predicates -> (asserting principal, tuple) claims (the
//     distributed equivocation audit's digest exchange);
//   kQueryCompare - claim-digest buckets -> conflicting entry indices (the
//     audit's pairwise comparison, spread across responder nodes).

#include <algorithm>
#include <limits>

#include "core/engine.h"
#include "query/session.h"
#include "util/strings.h"

namespace provnet {

Status Engine::SendQueryWire(NodeId from, NodeId to, uint8_t msg_type,
                             const Bytes& inner) {
  ByteWriter content;
  PutAuthHeader(content, contexts_[from]->principal(), to);
  // Causal span (core/causal.h): every query hop is a child span of the
  // context that issued it, so a distributed pointer-walk (request →
  // response → follow-up requests) stitches into one trace across nodes.
  CausalIds ids;
  ids.span_id = NewCausalSpan(from);
  ids.trace_id =
      exec().causal.trace_id != 0 ? exec().causal.trace_id : ids.span_id;
  PutCausalIds(content, ids);
  content.PutRaw(inner.data(), inner.size());

  bool attach_says = options_.authenticate || plan_.sendlog();
  SaysLevel level = options_.authenticate ? options_.says_level
                                          : SaysLevel::kCleartext;
  ByteWriter msg;
  msg.PutU8(msg_type);
  msg.PutBlob(content.bytes());
  msg.PutU8(attach_says ? 1 : 0);
  if (attach_says) {
    PROVNET_ASSIGN_OR_RETURN(
        SaysTag tag,
        auth_.Say(contexts_[from]->principal(), content.bytes(), level));
    tag.Serialize(msg);
  }
  cells_.prov_query_bytes->value += msg.size();
  LinkBytesCell(from, to, msg_type)->value += msg.size();
  if (tracer_.enabled()) {
    // Sampling decided at emit (TraceSampled), not here: the 1-in-k counter
    // must only ever be consumed in canonical commit order.
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.node = from;
    ev.kind = "send";
    ev.trace_id = ids.trace_id;
    ev.span_id = ids.span_id;
    ev.parent_span = exec().causal.span_id;
    ev.attrs = {{"to", PrincipalOf(to)},
                {"msg", msg_type == kMsgProvRequest ? "prov_request"
                                                    : "prov_response"},
                {"bytes", StrFormat("%zu", msg.size())}};
    TraceSampled(std::move(ev));
  }
  return net_.Send(from, to, std::move(msg).Take());
}

void Engine::ObserveQueryHop(NodeId asker, NodeId responder, double sent_at) {
  // One request->response round trip of the pointer walk, in virtual time
  // (wall time would break the golden determinism contract).
  double hop = net_.now() - sent_at;
  cells_.query_hop_latency->Observe(hop);
  if (tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.dur = hop;
    ev.node = asker;
    ev.kind = "provhop";
    ev.attrs = {{"responder", PrincipalOf(responder)}};
    tracer_.Emit(std::move(ev));
  }
}

void Engine::NoteAbandonedQueries(const ProvQuerySession& session) {
  // Ids whose entries were consumed by a rejected response never match a
  // late delivery, so the set only shrinks via erase-on-match for genuinely
  // in-flight answers; cap it so sustained hostile rejection cannot grow it
  // without bound (losing old entries merely re-audits very-late traffic).
  if (abandoned_queries_.size() > 65536) abandoned_queries_.clear();
  for (const auto& [query_id, pending] : session.pending) {
    abandoned_queries_.insert(query_id);
  }
}

Status Engine::ProvQuerySendRequest(ProvQuerySession& session, NodeId to,
                                    TupleDigest digest) {
  uint64_t query_id = next_query_id_++;
  ByteWriter inner;
  inner.PutU8(kQueryRecords);
  inner.PutU64(query_id);
  inner.PutU64(digest);
  ProvQuerySession::Pending p;
  p.responder = to;
  p.digest = digest;
  p.sent_at = net_.now();
  p.inner = inner.bytes();
  if (session.hop_timeout > 0) p.deadline = net_.now() + session.hop_timeout;
  session.pending.emplace(query_id, std::move(p));
  ++session.outstanding;
  ++session.stats.requests;
  return SendQueryWire(session.asker, to, kMsgProvRequest, inner.bytes());
}

Status Engine::ProvQuerySendClaimsRequest(
    ProvQuerySession& session, NodeId to,
    const std::set<std::string>& predicates) {
  uint64_t query_id = next_query_id_++;
  ByteWriter inner;
  inner.PutU8(kQueryClaims);
  inner.PutU64(query_id);
  inner.PutVarint(predicates.size());
  for (const std::string& pred : predicates) inner.PutString(pred);
  ProvQuerySession::Pending p;
  p.responder = to;
  p.sent_at = net_.now();
  p.inner = inner.bytes();
  if (session.hop_timeout > 0) p.deadline = net_.now() + session.hop_timeout;
  session.pending.emplace(query_id, std::move(p));
  ++session.outstanding;
  ++session.stats.requests;
  return SendQueryWire(session.asker, to, kMsgProvRequest, inner.bytes());
}

Status Engine::ProvQuerySendCompareRequest(
    ProvQuerySession& session, NodeId to,
    const std::vector<std::pair<uint64_t, std::vector<TupleDigest>>>&
        buckets) {
  uint64_t query_id = next_query_id_++;
  ByteWriter inner;
  inner.PutU8(kQueryCompare);
  inner.PutU64(query_id);
  inner.PutVarint(buckets.size());
  for (const auto& [bucket_id, digests] : buckets) {
    inner.PutVarint(bucket_id);
    inner.PutVarint(digests.size());
    for (TupleDigest d : digests) inner.PutU64(d);
  }
  ProvQuerySession::Pending p;
  p.responder = to;
  p.sent_at = net_.now();
  p.inner = inner.bytes();
  if (session.hop_timeout > 0) p.deadline = net_.now() + session.hop_timeout;
  session.pending.emplace(query_id, std::move(p));
  ++session.outstanding;
  ++session.stats.requests;
  return SendQueryWire(session.asker, to, kMsgProvRequest, inner.bytes());
}

double Engine::QueryTimeoutSeconds() const {
  // Explicit option wins; otherwise deadlines only make sense when the
  // transport (and thus faults) can actually lose traffic — a lossless
  // simulated network always answers, so they stay disabled and the pump
  // keeps its historical drain-until-idle behavior.
  if (options_.query_hop_timeout > 0) return options_.query_hop_timeout;
  if (TransportActive()) return 10.0 * options_.transport.rto_initial_s;
  return 0.0;
}

Status Engine::HandleQueryTimeouts(ProvQuerySession& session) {
  const double now = net_.now();
  // Snapshot the due ids first: retries and fallback ingest mutate
  // session.pending mid-flight. Sorted for deterministic fire order.
  std::vector<uint64_t> due;
  for (const auto& [query_id, p] : session.pending) {
    if (p.deadline > 0 && p.deadline <= now) due.push_back(query_id);
  }
  std::sort(due.begin(), due.end());
  for (uint64_t query_id : due) {
    auto it = session.pending.find(query_id);
    if (it == session.pending.end()) continue;
    ProvQuerySession::Pending& p = it->second;
    ++session.stats.timeouts;
    if (p.attempts < session.max_attempts) {
      // Re-ask under the SAME query id (a late answer to any attempt still
      // matches), with an exponentially backed-off deadline. This is the
      // engine-level retry above the transport's retransmit: it survives
      // the transport declaring the link dead and the responder crashing
      // away its receive state.
      ++p.attempts;
      ++session.stats.retries;
      p.sent_at = now;
      p.deadline = now + session.hop_timeout *
                             static_cast<double>(uint64_t{1} << (p.attempts - 1));
      PROVNET_RETURN_IF_ERROR(
          SendQueryWire(session.asker, p.responder, kMsgProvRequest, p.inner));
      continue;
    }
    if (session.kind != kQueryRecords) {
      // Claims/compare hops have their own leftover-pending audit
      // (kSilentResponder) at the caller; just stop retrying and leave the
      // entry in place for it.
      p.deadline = 0;
      continue;
    }
    // Records walk: the responder is unreachable. Degrade gracefully — the
    // responder's durable archive outlives its reachability, so the
    // operator-level fallback reads it directly (the simulation's stand-in
    // for pulling the partitioned node's disk) and the walk completes
    // offline. Only when even the archive is empty (e.g. the node crashed
    // before flushing) does the branch surface as an `unreachable` leaf.
    const NodeId responder = p.responder;
    const TupleDigest digest = p.digest;
    // A very late answer to this id is stale honest traffic, not an attack.
    abandoned_queries_.insert(query_id);
    session.pending.erase(it);
    if (session.outstanding > 0) --session.outstanding;
    std::vector<ProvRecord> records =
        contexts_[responder]->offline_store().FindByDigest(digest);
    RecordArchiveIo(responder);
    if (!records.empty()) {
      ++session.stats.offline_hits;
      ++cells_.query_offline_hits->value;
      PROVNET_RETURN_IF_ERROR(
          ProvQueryIngest(session, responder, digest, std::move(records)));
    } else {
      session.unreachable.insert(ProvQuerySession::Key{responder, digest});
      ++session.stats.unreachable;
    }
    if (tracer_.enabled()) {
      obs::TraceEvent ev;
      ev.sim_time = net_.now();
      ev.node = session.asker;
      ev.kind = "query_timeout";
      ev.attrs = {{"responder", PrincipalOf(responder)},
                  {"fallback", records.empty() ? "unreachable" : "archive"}};
      tracer_.Emit(std::move(ev));
    }
  }
  return OkStatus();
}

Result<bool> Engine::PumpQueryOnce(ProvQuerySession& session) {
  // Race the earliest armed per-hop deadline against the network's next
  // event: whichever is sooner drives this round. With no armed deadlines
  // this degenerates to the historical step-until-idle pump.
  double deadline = std::numeric_limits<double>::infinity();
  for (const auto& [query_id, p] : session.pending) {
    if (p.deadline > 0 && p.deadline < deadline) deadline = p.deadline;
  }
  if (deadline <= net_.now() || deadline < net_.NextEventTime()) {
    if (deadline > net_.now()) net_.AdvanceTo(deadline);
    PROVNET_RETURN_IF_ERROR(HandleQueryTimeouts(session));
    return true;
  }
  if (net_.Idle()) return false;
  net_.Step();
  if (!async_error_.ok()) {
    Status failed = async_error_;
    async_error_ = OkStatus();
    return failed;
  }
  return true;
}

std::vector<const StoredTuple*> Engine::ClaimTuplesAt(
    NodeId node, const std::set<std::string>& predicates) const {
  std::vector<const StoredTuple*> claims;
  for (const std::string& pred : predicates) {
    const Table* table = contexts_[node]->FindTable(pred);
    if (table == nullptr) continue;
    for (const StoredTuple* e : table->Scan()) {
      if (e->asserted_by.empty()) continue;  // nothing to attribute
      claims.push_back(e);
    }
  }
  return claims;
}

std::vector<ProvRecord> Engine::ProvRecordsAt(NodeId node, TupleDigest digest,
                                              bool* offline_hit) const {
  const std::vector<ProvRecord>* online =
      contexts_[node]->online_store().Lookup(digest);
  if (online != nullptr) return *online;
  std::vector<ProvRecord> out =
      contexts_[node]->offline_store().FindByDigest(digest);
  if (offline_hit != nullptr && !out.empty()) *offline_hit = true;
  RecordArchiveIo(node);
  return out;
}

Status Engine::ProvQueryIngest(ProvQuerySession& session, NodeId at,
                               TupleDigest digest,
                               std::vector<ProvRecord> records) {
  ProvQuerySession::Key key{at, digest};
  size_t level = 0;
  auto depth_it = session.depth.find(key);
  if (depth_it != session.depth.end()) level = depth_it->second;
  session.stats.depth = std::max(session.stats.depth, level);

  for (const ProvRecord& rec : records) {
    if (session.limits.max_records != 0 &&
        session.stats.records >= session.limits.max_records) {
      // Over budget: the record is still stored (it arrived), but its
      // children stay unexpanded and surface as missing leaves.
      ++session.stats.truncated;
      continue;
    }
    ++session.stats.records;
    size_t expanded = 0;
    for (const ProvChildRef& ref : rec.children) {
      if (ref.is_base) continue;
      ProvQuerySession::Key child_key{ref.node, ref.digest};
      if (session.depth.count(child_key) != 0) continue;  // already on route
      if (session.limits.max_fanout != 0 &&
          expanded >= session.limits.max_fanout) {
        ++session.stats.truncated;
        continue;
      }
      if (session.limits.max_depth != 0 &&
          level + 1 > session.limits.max_depth) {
        ++session.stats.truncated;
        continue;
      }
      if (session.local_only && ref.node != session.asker) {
        ++session.stats.truncated;
        continue;
      }
      session.depth.emplace(child_key, level + 1);
      ++expanded;
      if (ref.node == session.asker) {
        session.local_frontier.push_back(child_key);
      } else {
        PROVNET_RETURN_IF_ERROR(
            ProvQuerySendRequest(session, ref.node, ref.digest));
      }
    }
  }
  // Session state is forensic working memory worth metering: charge the
  // collected records (released when the session is destroyed).
  int64_t record_bytes = 0;
  for (const ProvRecord& rec : records) {
    record_bytes += static_cast<int64_t>(
        sizeof(ProvRecord) + rec.children.size() * sizeof(ProvChildRef));
  }
  session.ChargeBytes(record_bytes);
  session.collected[key] = std::move(records);
  return OkStatus();
}

Status Engine::HandleProvRequest(NodeId to, NodeId from, ByteReader& reader) {
  obs::Profiler::Scope serve_scope(profiler_, obs::Phase::kQueryServe);
  PROVNET_ASSIGN_OR_RETURN(Bytes content, reader.GetBlob());
  PROVNET_ASSIGN_OR_RETURN(uint8_t has_says, reader.GetU8());
  std::optional<SaysTag> tag;
  if (has_says != 0) {
    PROVNET_ASSIGN_OR_RETURN(SaysTag t, SaysTag::Deserialize(reader));
    tag = std::move(t);
  }
  ByteReader body(content);
  PROVNET_ASSIGN_OR_RETURN(bool accepted,
                           VerifyInbound(to, from, tag, content, body,
                                         "prov_request"));
  if (!accepted) return OkStatus();  // rejected and audited; drop
  // Adopt the asker's causal context: the response span (and anything the
  // serving touches) continues the query's trace.
  PROVNET_ASSIGN_OR_RETURN(exec().causal, GetCausalIds(body));

  PROVNET_ASSIGN_OR_RETURN(uint8_t kind, body.GetU8());
  PROVNET_ASSIGN_OR_RETURN(uint64_t query_id, body.GetU64());

  ByteWriter inner;
  inner.PutU8(kind);
  inner.PutU64(query_id);
  inner.PutU32(to);  // responding node, covered by the response signature
  switch (kind) {
    case kQueryRecords: {
      PROVNET_ASSIGN_OR_RETURN(uint64_t digest, body.GetU64());
      bool offline = false;
      std::vector<ProvRecord> records = ProvRecordsAt(to, digest, &offline);
      inner.PutU64(digest);
      // Responder-side archive flag: set when the records came from the
      // offline store, so the asker's QueryStats::offline_hits covers remote
      // archive reads, not just its own (satellite of the Section 4.1 walk).
      inner.PutU8(offline ? 1 : 0);
      inner.PutVarint(records.size());
      for (const ProvRecord& rec : records) rec.Serialize(inner);
      break;
    }
    case kQueryClaims: {
      PROVNET_ASSIGN_OR_RETURN(uint64_t npred, body.GetVarint());
      if (npred > body.remaining()) {
        return InvalidArgumentError("prov_request: bad predicate count");
      }
      std::set<std::string> predicates;
      for (uint64_t i = 0; i < npred; ++i) {
        PROVNET_ASSIGN_OR_RETURN(std::string pred, body.GetString());
        predicates.insert(std::move(pred));
      }
      std::vector<const StoredTuple*> claims = ClaimTuplesAt(to, predicates);
      inner.PutVarint(claims.size());
      for (const StoredTuple* e : claims) {
        inner.PutString(e->asserted_by);
        e->tuple.Serialize(inner);
      }
      break;
    }
    case kQueryCompare: {
      // The responder does the auditor's pairwise work: per bucket, find the
      // first digest that disagrees with the bucket's first entry — exactly
      // the comparison the centralized sweep ran, so the conflict indices
      // map back to identical findings at the auditor.
      PROVNET_ASSIGN_OR_RETURN(uint64_t nbuckets, body.GetVarint());
      if (nbuckets > body.remaining()) {
        return InvalidArgumentError("prov_request: bad bucket count");
      }
      ByteWriter conflicts;
      uint64_t nconflicts = 0;
      for (uint64_t b = 0; b < nbuckets; ++b) {
        PROVNET_ASSIGN_OR_RETURN(uint64_t bucket_id, body.GetVarint());
        PROVNET_ASSIGN_OR_RETURN(uint64_t nentries, body.GetVarint());
        if (nentries > body.remaining()) {
          return InvalidArgumentError("prov_request: bad entry count");
        }
        uint64_t first = 0;
        uint64_t conflict_at = 0;
        for (uint64_t j = 0; j < nentries; ++j) {
          PROVNET_ASSIGN_OR_RETURN(uint64_t digest, body.GetU64());
          if (j == 0) {
            first = digest;
          } else if (conflict_at == 0 && digest != first) {
            conflict_at = j;
          }
        }
        if (conflict_at != 0) {
          conflicts.PutVarint(bucket_id);
          conflicts.PutVarint(0);
          conflicts.PutVarint(conflict_at);
          ++nconflicts;
        }
      }
      if (lying_comparers_.count(to) != 0) {
        // Fault-injection seam (SetLyingComparer): a compromised comparer
        // suppresses every conflict it computed — its signature still
        // verifies, so only the auditor's local spot-check of sampled
        // buckets (query/provquery.cc) can catch the lie.
        inner.PutVarint(0);
      } else {
        inner.PutVarint(nconflicts);
        inner.PutRaw(conflicts.bytes().data(), conflicts.size());
      }
      break;
    }
    default:
      return InvalidArgumentError("prov_request: unknown query kind");
  }
  return SendQueryWire(to, from, kMsgProvResponse, inner.bytes());
}

Status Engine::HandleProvResponse(NodeId to, NodeId from, ByteReader& reader) {
  obs::Profiler::Scope serve_scope(profiler_, obs::Phase::kQueryServe);
  PROVNET_ASSIGN_OR_RETURN(Bytes content, reader.GetBlob());
  PROVNET_ASSIGN_OR_RETURN(uint8_t has_says, reader.GetU8());
  std::optional<SaysTag> tag;
  if (has_says != 0) {
    PROVNET_ASSIGN_OR_RETURN(SaysTag t, SaysTag::Deserialize(reader));
    tag = std::move(t);
  }
  ByteReader body(content);
  PROVNET_ASSIGN_OR_RETURN(bool accepted,
                           VerifyInbound(to, from, tag, content, body,
                                         "prov_response"));
  ProvQuerySession* session = query_session_;
  if (!accepted) {
    ++cells_.prov_responses_rejected->value;
    if (session != nullptr) ++session->stats.responses_rejected;
    return OkStatus();  // rejected and audited; drop
  }
  // Adopt the responder's causal context; follow-up requests this response
  // triggers become its children, chaining the walk into one trace.
  PROVNET_ASSIGN_OR_RETURN(exec().causal, GetCausalIds(body));

  PROVNET_ASSIGN_OR_RETURN(uint8_t kind, body.GetU8());
  PROVNET_ASSIGN_OR_RETURN(uint64_t query_id, body.GetU64());
  PROVNET_ASSIGN_OR_RETURN(uint32_t responder, body.GetU32());

  // A response is only as good as the question it answers: it must match an
  // outstanding (query_id, responder, digest) this node issued. This is
  // what stops a compromised responder (holding a perfectly valid key) from
  // pushing unsolicited "answers" into a node's forensic state.
  auto bogus = [&](const char* why) {
    ++cells_.prov_responses_rejected->value;
    if (session != nullptr) ++session->stats.responses_rejected;
    RecordSecurityEvent(SecurityEventKind::kBogusResponse, to, from,
                        tag.has_value() ? tag->principal : Principal(),
                        StrFormat("%s (query %llu)", why,
                                  static_cast<unsigned long long>(query_id)));
    return OkStatus();
  };
  if (session == nullptr || session->asker != to || session->kind != kind) {
    // A response to a query whose session already ended (aborted mid-walk)
    // is stale honest traffic, not an attack — drop it silently, as the
    // pre-ProvQuery path did.
    if (abandoned_queries_.erase(query_id) > 0) return OkStatus();
    return bogus("no outstanding query");
  }
  auto it = session->pending.find(query_id);
  if (it == session->pending.end() || it->second.responder != from ||
      it->second.responder != responder) {
    if (abandoned_queries_.erase(query_id) > 0) return OkStatus();
    return bogus("unsolicited response");
  }
  if (options_.authenticate && options_.verify_incoming && tag.has_value()) {
    // The responder named in the signed content must be the node the
    // speaking principal operates: a compromised node cannot answer for
    // another responder's records.
    Result<NodeId> speaker_node = NodeOf(tag->principal);
    if (!speaker_node.ok() || speaker_node.value() != responder) {
      return bogus("responder/principal mismatch");
    }
  }

  switch (kind) {
    case kQueryRecords: {
      PROVNET_ASSIGN_OR_RETURN(uint64_t digest, body.GetU64());
      if (digest != it->second.digest) return bogus("digest mismatch");
      PROVNET_ASSIGN_OR_RETURN(uint8_t offline, body.GetU8());
      PROVNET_ASSIGN_OR_RETURN(uint64_t count, body.GetVarint());
      if (count > body.remaining()) {
        return InvalidArgumentError("prov_response: bad record count");
      }
      std::vector<ProvRecord> records;
      records.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        PROVNET_ASSIGN_OR_RETURN(ProvRecord rec,
                                 ProvRecord::Deserialize(body));
        records.push_back(std::move(rec));
      }
      if (offline != 0) {
        ++session->stats.offline_hits;
        ++cells_.query_offline_hits->value;
      }
      ObserveQueryHop(to, from, it->second.sent_at);
      // If this hop was retried, an earlier attempt's answer may still be in
      // flight; remember the id so that duplicate drops as stale, not bogus.
      if (it->second.attempts > 1) abandoned_queries_.insert(query_id);
      session->pending.erase(it);
      if (session->outstanding > 0) --session->outstanding;
      ++session->stats.responses;
      return ProvQueryIngest(*session, responder, digest, std::move(records));
    }
    case kQueryClaims: {
      PROVNET_ASSIGN_OR_RETURN(uint64_t count, body.GetVarint());
      if (count > body.remaining()) {
        return InvalidArgumentError("prov_response: bad claim count");
      }
      ObserveQueryHop(to, from, it->second.sent_at);
      // If this hop was retried, an earlier attempt's answer may still be in
      // flight; remember the id so that duplicate drops as stale, not bogus.
      if (it->second.attempts > 1) abandoned_queries_.insert(query_id);
      session->pending.erase(it);
      if (session->outstanding > 0) --session->outstanding;
      ++session->stats.responses;
      for (uint64_t i = 0; i < count; ++i) {
        ClaimsExchange::Claim claim;
        claim.node = responder;
        PROVNET_ASSIGN_OR_RETURN(claim.asserted_by, body.GetString());
        PROVNET_ASSIGN_OR_RETURN(claim.tuple, Tuple::Deserialize(body));
        session->claims.push_back(std::move(claim));
      }
      return OkStatus();
    }
    case kQueryCompare: {
      PROVNET_ASSIGN_OR_RETURN(uint64_t count, body.GetVarint());
      if (count > body.remaining()) {
        return InvalidArgumentError("prov_response: bad conflict count");
      }
      ObserveQueryHop(to, from, it->second.sent_at);
      // If this hop was retried, an earlier attempt's answer may still be in
      // flight; remember the id so that duplicate drops as stale, not bogus.
      if (it->second.attempts > 1) abandoned_queries_.insert(query_id);
      session->pending.erase(it);
      if (session->outstanding > 0) --session->outstanding;
      ++session->stats.responses;
      for (uint64_t i = 0; i < count; ++i) {
        CompareExchange::Conflict c;
        PROVNET_ASSIGN_OR_RETURN(c.bucket, body.GetVarint());
        PROVNET_ASSIGN_OR_RETURN(uint64_t a, body.GetVarint());
        PROVNET_ASSIGN_OR_RETURN(uint64_t b, body.GetVarint());
        c.a = static_cast<uint32_t>(a);
        c.b = static_cast<uint32_t>(b);
        session->conflicts.push_back(c);
      }
      return OkStatus();
    }
    default:
      return bogus("unknown response kind");
  }
}

}  // namespace provnet
