#include "query/provquery.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>

#include "provenance/semiring.h"
#include "query/session.h"
#include "store/arena.h"
#include "util/hash.h"
#include "util/strings.h"

namespace provnet {

const char* QueryScopeName(QueryScope scope) {
  switch (scope) {
    case QueryScope::kAuto:
      return "auto";
    case QueryScope::kLocal:
      return "local";
    case QueryScope::kDistributed:
      return "distributed";
  }
  return "?";
}

std::string QueryStats::ToString() const {
  std::string out = StrFormat(
      "msgs=%llu bytes=%llu requests=%llu responses=%llu rejected=%llu "
      "records=%llu local=%llu offline=%llu depth=%zu truncated=%zu "
      "wall=%.4fs",
      static_cast<unsigned long long>(messages),
      static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(responses),
      static_cast<unsigned long long>(responses_rejected),
      static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(local_lookups),
      static_cast<unsigned long long>(offline_hits), depth, truncated,
      wall_seconds);
  // Degradation fields only appear when faults actually bit: a healthy
  // network keeps the historical string byte-for-byte.
  if (timeouts != 0 || retries != 0 || unreachable != 0) {
    out += StrFormat(" timeouts=%llu retries=%llu unreachable=%llu",
                     static_cast<unsigned long long>(timeouts),
                     static_cast<unsigned long long>(retries),
                     static_cast<unsigned long long>(unreachable));
  }
  return out;
}

// --- ProofDag ---------------------------------------------------------------

std::vector<Tuple> ProofDag::Leaves() const {
  std::vector<Tuple> out;
  std::set<Tuple> seen;
  for (const ProofNode& n : nodes) {
    if (n.IsOrigin() && seen.insert(n.tuple).second) out.push_back(n.tuple);
  }
  return out;
}

std::set<NodeId> ProofDag::OriginNodes() const {
  std::set<NodeId> out;
  for (const ProofNode& n : nodes) {
    if (n.IsOrigin()) out.insert(n.location);
  }
  return out;
}

std::set<Principal> ProofDag::LeafPrincipals() const {
  std::set<Principal> out;
  for (const ProofNode& n : nodes) {
    if (n.IsOrigin() && !n.asserted_by.empty()) out.insert(n.asserted_by);
  }
  return out;
}

size_t ProofDag::Depth() const {
  if (nodes.empty()) return 0;
  // Memoized longest path; proof DAGs are acyclic by construction (cycles
  // were cut into kCycleRule leaves).
  std::vector<size_t> memo(nodes.size(), 0);
  std::function<size_t(uint32_t)> walk = [&](uint32_t i) -> size_t {
    if (memo[i] != 0) return memo[i];
    size_t best = 0;
    for (uint32_t c : nodes[i].children) best = std::max(best, walk(c));
    return memo[i] = best + 1;
  };
  return walk(root);
}

ProvExpr ProofDag::Annotation(ProvVarRegistry& registry,
                              ProvGrain grain) const {
  if (nodes.empty()) return ProvExpr::Zero();
  std::map<uint32_t, ProvExpr> memo;
  std::function<ProvExpr(uint32_t)> fold = [&](uint32_t i) -> ProvExpr {
    auto it = memo.find(i);
    if (it != memo.end()) return it->second;
    const ProofNode& n = nodes[i];
    ProvExpr result;
    if (n.children.empty()) {
      if (n.IsOrigin()) {
        result = ProvExpr::Var(registry.Intern(
            grain == ProvGrain::kPrincipal ? n.asserted_by
                                           : n.tuple.ToString()));
      } else {
        result = ProvExpr::Zero();  // missing/cycle: not derivable this way
      }
    } else if (n.rule == kUnionRule) {
      result = ProvExpr::Zero();
      for (uint32_t c : n.children) result = ProvExpr::Plus(result, fold(c));
    } else {
      result = ProvExpr::One();
      for (uint32_t c : n.children) result = ProvExpr::Times(result, fold(c));
    }
    memo.emplace(i, result);
    return result;
  };
  return fold(root);
}

Bytes ProofDag::CanonicalBytes() const {
  ByteWriter out;
  if (nodes.empty()) return std::move(out).Take();
  // Preorder DFS with first-visit ids: equal bytes <=> identical structure,
  // regardless of the order nodes were appended during construction.
  std::map<uint32_t, uint32_t> ids;
  std::function<void(uint32_t)> walk = [&](uint32_t i) {
    auto it = ids.find(i);
    if (it != ids.end()) {
      out.PutU8(0);  // back-reference to a shared node
      out.PutVarint(it->second);
      return;
    }
    ids.emplace(i, static_cast<uint32_t>(ids.size()));
    const ProofNode& n = nodes[i];
    out.PutU8(1);
    n.tuple.Serialize(out);
    out.PutString(n.rule);
    out.PutU32(n.location);
    out.PutString(n.asserted_by);
    out.PutVarint(n.children.size());
    for (uint32_t c : n.children) walk(c);
  };
  walk(root);
  return std::move(out).Take();
}

DerivationPtr ProofDag::ToDerivation() const {
  if (nodes.empty()) return nullptr;
  std::map<uint32_t, DerivationPtr> memo;
  std::function<DerivationPtr(uint32_t)> build =
      [&](uint32_t i) -> DerivationPtr {
    auto it = memo.find(i);
    if (it != memo.end()) return it->second;
    const ProofNode& n = nodes[i];
    DerivationPtr result;
    if (n.children.empty() && n.rule == kBaseRule) {
      result = MakeBaseDerivation(n.tuple, n.location, n.asserted_by,
                                  n.created_at, -1.0);
    } else {
      std::vector<DerivationPtr> children;
      children.reserve(n.children.size());
      for (uint32_t c : n.children) children.push_back(build(c));
      result = MakeRuleDerivation(n.tuple, n.rule, n.location, n.asserted_by,
                                  n.created_at, -1.0, std::move(children));
    }
    memo.emplace(i, result);
    return result;
  };
  return build(root);
}

ProofDag ProofDag::FromDerivation(const DerivationPtr& root_deriv) {
  ProofDag dag;
  if (root_deriv == nullptr) return dag;
  std::map<const DerivationNode*, uint32_t> memo;
  std::function<uint32_t(const DerivationNode&)> build =
      [&](const DerivationNode& d) -> uint32_t {
    auto it = memo.find(&d);
    if (it != memo.end()) return it->second;
    std::vector<uint32_t> children;
    children.reserve(d.children.size());
    for (const DerivationPtr& c : d.children) children.push_back(build(*c));
    ProofNode node;
    node.tuple = d.tuple;
    node.rule = d.rule;
    node.location = d.location;
    node.asserted_by = d.asserted_by;
    node.created_at = d.created_at;
    node.children = std::move(children);
    uint32_t idx = static_cast<uint32_t>(dag.nodes.size());
    dag.nodes.push_back(std::move(node));
    memo.emplace(&d, idx);
    return idx;
  };
  dag.root = build(*root_deriv);
  return dag;
}

std::string ProofDag::ToString() const {
  DerivationPtr deriv = ToDerivation();
  return deriv == nullptr ? std::string("<empty proof>") : deriv->ToString();
}

// --- QueryResult evaluations ------------------------------------------------

bool QueryResult::DerivableFrom(
    const std::unordered_map<ProvVar, bool>& trusted) const {
  return provnet::DerivableFrom(annotation, trusted);
}

int64_t QueryResult::TrustLevel(
    const std::unordered_map<ProvVar, int64_t>& levels,
    int64_t default_level) const {
  return TrustLevelOf(annotation, levels, default_level);
}

uint64_t QueryResult::DerivationCount() const {
  return provnet::DerivationCount(annotation);
}

BigInt QueryResult::DerivationCountExact() const {
  if (arena != nullptr) return arena->CountExact(annotation);
  return provnet::DerivationCountExact(annotation);
}

CondensedProv QueryResult::Condensed() const { return Condense(annotation); }

// --- DAG assembly from collected records ------------------------------------

namespace {

bool AnyLimitSet(const QueryLimits& limits) {
  return limits.max_depth != 0 || limits.max_fanout != 0 ||
         limits.max_records != 0;
}

// Depth/fanout/record-limited import of a stored derivation tree, mirroring
// the distributed walk's semantics: base leaves are exempt (they ride inside
// their parent's record on the wire), union alternatives share their key's
// depth, and cut children become kMissingRule leaves counted into
// stats.truncated. Memoized per (node, depth): truncation is
// depth-dependent, so sharing across depths cannot be reused.
class LimitedTreeImporter {
 public:
  LimitedTreeImporter(const QueryLimits& limits, QueryStats& stats)
      : limits_(limits), stats_(stats) {}

  ProofDag Import(const DerivationNode& root) {
    dag_.root = Build(root, 0);
    return std::move(dag_);
  }

 private:
  uint32_t AddNode(ProofNode node) {
    uint32_t idx = static_cast<uint32_t>(dag_.nodes.size());
    dag_.nodes.push_back(std::move(node));
    return idx;
  }

  uint32_t MissingLeaf(const DerivationNode& d) {
    ProofNode node;
    node.tuple = d.tuple;
    node.rule = kMissingRule;
    node.location = d.location;
    return AddNode(std::move(node));
  }

  uint32_t Build(const DerivationNode& d, size_t depth) {
    auto key = std::make_pair(&d, depth);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    bool is_base = d.children.empty() && d.rule == kBaseRule;
    if (!is_base) {
      if (limits_.max_records != 0 &&
          stats_.records >= limits_.max_records) {
        ++stats_.truncated;
        return MissingLeaf(d);
      }
      ++stats_.records;
      // Base leaves ride inside their parent's record (no hop of their
      // own), so only record-like nodes advance the depth gauge — same
      // accounting as the distributed walk.
      stats_.depth = std::max(stats_.depth, depth);
    }

    std::vector<uint32_t> children;
    children.reserve(d.children.size());
    size_t expanded = 0;
    for (const DerivationPtr& child : d.children) {
      bool child_is_base =
          child->children.empty() && child->rule == kBaseRule;
      // Union alternatives resolve the same tuple: same depth, no fanout.
      size_t child_depth = d.rule == kUnionRule ? depth : depth + 1;
      if (!child_is_base && d.rule != kUnionRule) {
        if (limits_.max_fanout != 0 && expanded >= limits_.max_fanout) {
          ++stats_.truncated;
          children.push_back(MissingLeaf(*child));
          continue;
        }
        if (limits_.max_depth != 0 && child_depth > limits_.max_depth) {
          ++stats_.truncated;
          children.push_back(MissingLeaf(*child));
          continue;
        }
        ++expanded;
      }
      children.push_back(Build(*child, child_depth));
    }

    ProofNode node;
    node.tuple = d.tuple;
    node.rule = d.rule;
    node.location = d.location;
    node.asserted_by = d.asserted_by;
    node.created_at = d.created_at;
    node.children = std::move(children);
    uint32_t idx = AddNode(std::move(node));
    memo_.emplace(key, idx);
    return idx;
  }

  const QueryLimits& limits_;
  QueryStats& stats_;
  ProofDag dag_;
  std::map<std::pair<const DerivationNode*, size_t>, uint32_t> memo_;
};

// A pass-through transport hop: the receive-side record a shipped tuple
// leaves behind (rule "recv", one non-base child, same digest). Collapsed
// during assembly so the reconstruction mirrors the derivation structure a
// local full-provenance tree stores — hops are transport, not derivation.
bool IsRecvHop(const ProvRecord& rec, TupleDigest digest) {
  return rec.rule == "recv" && rec.children.size() == 1 &&
         !rec.children[0].is_base && rec.children[0].digest == digest;
}

class DagAssembler {
 public:
  explicit DagAssembler(
      const std::map<ProvQuerySession::Key, std::vector<ProvRecord>>&
          collected,
      const std::set<ProvQuerySession::Key>* unreachable = nullptr)
      : collected_(collected), unreachable_(unreachable) {}

  ProofDag Assemble(NodeId node, TupleDigest digest, const Tuple& known) {
    dag_.root = Build(node, digest, &known);
    return std::move(dag_);
  }

 private:
  uint32_t AddNode(ProofNode node) {
    uint32_t idx = static_cast<uint32_t>(dag_.nodes.size());
    dag_.nodes.push_back(std::move(node));
    return idx;
  }

  uint32_t AddBaseLeaf(const ProvChildRef& ref, double created_at) {
    // Base assertions are shared DAG nodes, exactly as the emit-time
    // derivation trees share one DerivationPtr per inserted fact.
    auto key = std::make_tuple(ref.node, DigestOf(ref.base_tuple),
                               ref.asserted_by);
    auto it = base_memo_.find(key);
    if (it != base_memo_.end()) return it->second;
    ProofNode node;
    node.tuple = ref.base_tuple;
    node.rule = kBaseRule;
    node.location = ref.node;
    node.asserted_by = ref.asserted_by;
    node.created_at = created_at;
    uint32_t idx = AddNode(std::move(node));
    base_memo_.emplace(key, idx);
    return idx;
  }

  uint32_t Build(NodeId n, TupleDigest digest, const Tuple* known_tuple) {
    ProvQuerySession::Key key{n, digest};
    auto memo_it = memo_.find(key);
    if (memo_it != memo_.end()) return memo_it->second;

    auto it = collected_.find(key);
    if (it == collected_.end() || it->second.empty()) {
      // Unknown — either the responder timed out past its retry budget with
      // an empty archive (unreachable: may resolve once the partition
      // heals), or the records genuinely are not there (missing:
      // sampled-out, expired, rejected, or cut by a limit).
      ProofNode node;
      node.tuple =
          known_tuple != nullptr ? *known_tuple : Tuple("unknown", {});
      node.rule = (unreachable_ != nullptr && unreachable_->count(key) != 0)
                      ? kUnreachableRule
                      : kMissingRule;
      node.location = n;
      uint32_t idx = AddNode(std::move(node));
      memo_.emplace(key, idx);
      return idx;
    }
    if (visiting_.count(key) != 0) {
      // Conservative cut; engine pointer graphs are acyclic in the common
      // case, and a memoized subtree may still resolve the tuple elsewhere.
      ProofNode node;
      node.tuple =
          known_tuple != nullptr ? *known_tuple : it->second[0].tuple;
      node.rule = kCycleRule;
      node.location = n;
      return AddNode(std::move(node));
    }
    visiting_.insert(key);

    std::vector<uint32_t> alternatives;
    for (const ProvRecord& rec : it->second) {
      if (IsRecvHop(rec, digest)) {
        alternatives.push_back(
            Build(rec.children[0].node, digest, &rec.tuple));
        continue;
      }
      std::vector<uint32_t> children;
      children.reserve(rec.children.size());
      for (const ProvChildRef& ref : rec.children) {
        if (ref.is_base) {
          children.push_back(AddBaseLeaf(ref, rec.created_at));
        } else {
          children.push_back(Build(ref.node, ref.digest, nullptr));
        }
      }
      ProofNode node;
      node.tuple = rec.tuple;
      node.rule = rec.rule;
      node.location = rec.location;
      node.asserted_by = rec.asserted_by;
      node.created_at = rec.created_at;
      node.children = std::move(children);
      alternatives.push_back(AddNode(std::move(node)));
    }
    visiting_.erase(key);

    uint32_t idx;
    if (alternatives.size() == 1) {
      idx = alternatives[0];
    } else {
      // Alternative derivations merge under a union node (the DAG analogue
      // of MergeAlternatives). Duplicate alternatives (a recv hop plus a
      // memoized shared subtree resolving to the same node) collapse.
      std::vector<uint32_t> unique;
      for (uint32_t a : alternatives) {
        if (std::find(unique.begin(), unique.end(), a) == unique.end()) {
          unique.push_back(a);
        }
      }
      if (unique.size() == 1) {
        idx = unique[0];
      } else {
        ProofNode node;
        node.tuple = dag_.nodes[unique[0]].tuple;
        node.rule = kUnionRule;
        node.location = dag_.nodes[unique[0]].location;
        node.asserted_by = dag_.nodes[unique[0]].asserted_by;
        node.created_at = dag_.nodes[unique[0]].created_at;
        node.children = std::move(unique);
        idx = AddNode(std::move(node));
      }
    }
    memo_.emplace(key, idx);
    return idx;
  }

  const std::map<ProvQuerySession::Key, std::vector<ProvRecord>>& collected_;
  const std::set<ProvQuerySession::Key>* unreachable_;
  ProofDag dag_;
  std::map<ProvQuerySession::Key, uint32_t> memo_;
  std::set<ProvQuerySession::Key> visiting_;
  std::map<std::tuple<NodeId, TupleDigest, Principal>, uint32_t> base_memo_;
};

}  // namespace

// --- ProvQuery --------------------------------------------------------------

Status ProvQuery::DrainLocalFrontier(Engine& engine,
                                     ProvQuerySession& session) {
  while (!session.local_frontier.empty()) {
    ProvQuerySession::Key key = session.local_frontier.front();
    session.local_frontier.pop_front();
    if (session.collected.count(key) != 0) continue;
    ++session.stats.local_lookups;
    bool offline = false;
    std::vector<ProvRecord> records =
        engine.ProvRecordsAt(key.first, key.second, &offline);
    if (offline) {
      ++session.stats.offline_hits;
      ++engine.cells_.query_offline_hits->value;
    }
    PROVNET_RETURN_IF_ERROR(
        engine.ProvQueryIngest(session, key.first, key.second,
                               std::move(records)));
  }
  return OkStatus();
}

Status ProvQuery::Pump(Engine& engine, ProvQuerySession& session) {
  PROVNET_RETURN_IF_ERROR(DrainLocalFrontier(engine, session));
  // Pump the network until every outstanding request resolved (or can no
  // longer resolve: a rejected response leaves its subtree missing, a
  // timed-out one degrades to the responder's offline archive or an
  // unreachable leaf — see Engine::HandleQueryTimeouts).
  uint64_t guard = 0;
  while (session.outstanding > 0) {
    PROVNET_ASSIGN_OR_RETURN(bool progressed, engine.PumpQueryOnce(session));
    if (!progressed) break;
    // Responses may have queued asker-local references.
    PROVNET_RETURN_IF_ERROR(DrainLocalFrontier(engine, session));
    if (++guard > engine.options_.max_steps) {
      return ResourceExhaustedError("provenance query did not converge");
    }
  }
  return OkStatus();
}

Result<QueryResult> ProvQuery::RunLocal(const StoredTuple* stored) {
  Engine& engine = *engine_;
  QueryResult out;
  out.used = QueryScope::kLocal;
  if (stored != nullptr && stored->deriv != nullptr) {
    // The stored full-provenance tree (ProvMode::kFull) is the proof;
    // limits truncate it exactly as they bound the distributed walk.
    if (AnyLimitSet(limits_)) {
      out.dag = LimitedTreeImporter(limits_, out.stats).Import(*stored->deriv);
    } else {
      out.dag = ProofDag::FromDerivation(stored->deriv);
    }
    return out;
  }
  // Walk this node's own records; references held by other nodes are cut
  // (they would need the network — that is what kDistributed is for).
  ProvQuerySession session;
  session.asker = node_;
  session.kind = kQueryRecords;
  session.local_only = true;
  session.limits = limits_;
  TupleDigest root = DigestOf(tuple_);
  session.depth.emplace(ProvQuerySession::Key{node_, root}, 0);
  session.local_frontier.push_back({node_, root});
  PROVNET_RETURN_IF_ERROR(DrainLocalFrontier(engine, session));
  if (session.collected[{node_, root}].empty()) {
    return NotFoundError("no provenance records for " + tuple_.ToString());
  }
  out.dag = DagAssembler(session.collected).Assemble(node_, root, tuple_);
  out.stats = session.stats;
  return out;
}

Result<QueryResult> ProvQuery::RunDistributed() {
  Engine& engine = *engine_;
  if (engine.query_session_ != nullptr) {
    return FailedPreconditionError(
        "another provenance query is already pumping the network");
  }
  ProvQuerySession session;
  session.asker = node_;
  session.kind = kQueryRecords;
  session.limits = limits_;
  session.hop_timeout = engine.QueryTimeoutSeconds();
  session.max_attempts = std::max<size_t>(1, engine.options_.query_max_attempts);
  TupleDigest root = DigestOf(tuple_);
  session.depth.emplace(ProvQuerySession::Key{node_, root}, 0);
  session.local_frontier.push_back({node_, root});
  // Root causal span: every request hop of the walk — and the cascades its
  // responses trigger on other nodes — descends from this id, so the whole
  // distributed pointer-walk stitches into one trace (core/causal.h).
  uint64_t root_span = engine.NewCausalSpan(node_);
  session.causal = CausalIds{root_span, root_span};
  engine.exec().causal = session.causal;

  Network::Meters meters0 = engine.net_.MeterSnapshot();
  double sim0 = engine.net_.now();
  engine.query_session_ = &session;
  Status pumped = Pump(engine, session);
  engine.query_session_ = nullptr;
  // Requests that never got their answer (abort, rejection, or error):
  // their responses may still be in flight and must not be audited as
  // attacks when a later Run() delivers them.
  engine.NoteAbandonedQueries(session);
  PROVNET_RETURN_IF_ERROR(pumped);
  Network::Meters meters1 = engine.net_.MeterSnapshot();
  session.stats.bytes = meters1.bytes - meters0.bytes;
  session.stats.messages = meters1.messages - meters0.messages;
  ++engine.cells_.prov_queries->value;
  // End-to-end walk latency in virtual time: deterministic across runs,
  // unlike QueryStats::wall_seconds.
  double sim_latency = engine.net_.now() - sim0;
  engine.cells_.query_latency->Observe(sim_latency);
  if (engine.tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = engine.net_.now();
    ev.dur = sim_latency;
    ev.node = node_;
    ev.kind = "provquery";
    ev.trace_id = root_span;
    ev.span_id = root_span;
    ev.attrs = {{"records", StrFormat("%zu", session.stats.records)},
                {"requests", StrFormat("%zu", session.stats.requests)}};
    engine.tracer_.Emit(std::move(ev));
  }

  // A tuple nobody recorded is not reconstructible at all.
  if (session.collected[{node_, root}].empty()) {
    return NotFoundError("no provenance records for " + tuple_.ToString());
  }
  QueryResult out;
  out.used = QueryScope::kDistributed;
  out.dag = DagAssembler(session.collected, &session.unreachable)
                .Assemble(node_, root, tuple_);
  out.stats = session.stats;
  return out;
}

Result<QueryResult> ProvQuery::Run() {
  Engine& engine = *engine_;
  if (node_ >= engine.num_nodes()) {
    return InvalidArgumentError("ProvQuery: unknown node");
  }
  if (tuple_.predicate().empty()) {
    return InvalidArgumentError("ProvQuery: no tuple selected (use Of())");
  }
  auto t0 = std::chrono::steady_clock::now();

  const StoredTuple* stored = nullptr;
  const Table* table = engine.node(node_).FindTable(tuple_.predicate());
  if (table != nullptr) stored = table->Find(tuple_);

  QueryScope used = scope_;
  if (used == QueryScope::kAuto) {
    used = (stored != nullptr && stored->deriv != nullptr)
               ? QueryScope::kLocal
               : QueryScope::kDistributed;
  }
  Result<QueryResult> result = used == QueryScope::kLocal
                                   ? RunLocal(stored)
                                   : RunDistributed();
  PROVNET_RETURN_IF_ERROR(result.status());
  QueryResult out = std::move(result).value();
  out.annotation = out.dag.Annotation(engine.registry(), grain_);
  out.arena = engine.arena();
  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

// --- ClaimsExchange ---------------------------------------------------------

Result<std::vector<ClaimsExchange::Claim>> ClaimsExchange::Collect(
    const std::set<std::string>& predicates,
    const std::set<NodeId>& skip_nodes) {
  Engine& engine = *engine_;
  if (auditor_ >= engine.num_nodes()) {
    return InvalidArgumentError("ClaimsExchange: unknown auditor node");
  }
  if (engine.query_session_ != nullptr) {
    return FailedPreconditionError(
        "another provenance query is already pumping the network");
  }
  auto t0 = std::chrono::steady_clock::now();
  silent_.clear();
  ProvQuerySession session;
  session.asker = auditor_;
  session.kind = kQueryClaims;
  session.hop_timeout = engine.QueryTimeoutSeconds();
  session.max_attempts = std::max<size_t>(1, engine.options_.query_max_attempts);

  Network::Meters meters0 = engine.net_.MeterSnapshot();
  engine.query_session_ = &session;
  Status status = OkStatus();
  for (NodeId n = 0; n < engine.num_nodes() && status.ok(); ++n) {
    if (n == auditor_ || skip_nodes.count(n) != 0) continue;
    status = engine.ProvQuerySendClaimsRequest(session, n, predicates);
  }
  uint64_t guard = 0;
  while (status.ok() && session.outstanding > 0) {
    // A partitioned responder's deadline fires here (retry, then give up):
    // its leftover pending flows into the silent-responder audit below.
    Result<bool> progressed = engine.PumpQueryOnce(session);
    if (!progressed.ok()) {
      status = progressed.status();
    } else if (!progressed.value()) {
      break;
    }
    if (++guard > engine.options_.max_steps) {
      status = ResourceExhaustedError("claims exchange did not converge");
    }
  }
  engine.query_session_ = nullptr;
  engine.NoteAbandonedQueries(session);
  PROVNET_RETURN_IF_ERROR(status);
  // A node that never answered (suppressed, rejected, or dropped its
  // response) is not a transport error to abort on: in an adversarial
  // deployment, silence *is* evidence. Each silent responder becomes a
  // kSilentResponder SecurityEvent (counted in the metrics registry) and a
  // suspect the caller can fold into its findings; the sweep completes over
  // the answers that did arrive. campaign.h's promise — a failed audit never
  // reads as a clean one — holds because silent() is never empty when the
  // exchange was incomplete.
  for (const auto& [query_id, pending] : session.pending) {
    if (!silent_.insert(pending.responder).second) continue;
    engine.RecordSecurityEvent(
        SecurityEventKind::kSilentResponder, auditor_, pending.responder,
        engine.PrincipalOf(pending.responder),
        StrFormat("claims exchange: no answer to query %llu",
                  static_cast<unsigned long long>(query_id)));
  }

  // The auditor's own claims are read locally, for free — through the same
  // definition of "claim" the responders answered with.
  ++session.stats.local_lookups;
  for (const StoredTuple* e : engine.ClaimTuplesAt(auditor_, predicates)) {
    session.claims.push_back(Claim{auditor_, e->asserted_by, e->tuple});
  }

  Network::Meters meters1 = engine.net_.MeterSnapshot();
  session.stats.bytes = meters1.bytes - meters0.bytes;
  session.stats.messages = meters1.messages - meters0.messages;
  session.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++engine.cells_.prov_queries->value;
  stats_ = session.stats;
  return std::move(session.claims);
}

// --- CompareExchange --------------------------------------------------------

Result<std::vector<CompareExchange::Conflict>> CompareExchange::Compare(
    const std::vector<Bucket>& buckets,
    const std::vector<NodeId>& comparers) {
  Engine& engine = *engine_;
  if (auditor_ >= engine.num_nodes()) {
    return InvalidArgumentError("CompareExchange: unknown auditor node");
  }
  if (engine.query_session_ != nullptr) {
    return FailedPreconditionError(
        "another provenance query is already pumping the network");
  }
  auto t0 = std::chrono::steady_clock::now();
  silent_.clear();
  stats_ = QueryStats{};
  std::vector<Conflict> conflicts;

  // The centralized comparison, applied to one bucket: flag the first entry
  // whose digest disagrees with the bucket's first claim.
  auto compare_locally = [&](uint64_t id) {
    const std::vector<TupleDigest>& digests = buckets[id].digests;
    for (size_t j = 1; j < digests.size(); ++j) {
      if (digests[j] != digests[0]) {
        conflicts.push_back(Conflict{id, 0, static_cast<uint32_t>(j)});
        return;
      }
    }
  };

  // Deterministic work assignment: the key hashes to its comparer, so every
  // honest auditor hands the same bucket to the same node. Single-entry
  // buckets cannot conflict and are never shipped.
  std::map<NodeId, std::vector<std::pair<uint64_t, std::vector<TupleDigest>>>>
      by_comparer;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].digests.size() < 2) continue;
    NodeId target =
        comparers.empty()
            ? auditor_
            : comparers[Fnv1a64(buckets[i].key) % comparers.size()];
    if (target == auditor_) {
      ++stats_.local_lookups;
      compare_locally(i);
    } else {
      by_comparer[target].emplace_back(i, buckets[i].digests);
    }
  }

  ProvQuerySession session;
  session.asker = auditor_;
  session.kind = kQueryCompare;
  session.hop_timeout = engine.QueryTimeoutSeconds();
  session.max_attempts = std::max<size_t>(1, engine.options_.query_max_attempts);

  Network::Meters meters0 = engine.net_.MeterSnapshot();
  engine.query_session_ = &session;
  Status status = OkStatus();
  for (const auto& [target, assigned] : by_comparer) {
    if (!status.ok()) break;
    status = engine.ProvQuerySendCompareRequest(session, target, assigned);
  }
  uint64_t guard = 0;
  while (status.ok() && session.outstanding > 0) {
    // A partitioned comparer's deadline fires here; after the retry budget
    // its buckets fall back to local comparison via the silent set below.
    Result<bool> progressed = engine.PumpQueryOnce(session);
    if (!progressed.ok()) {
      status = progressed.status();
    } else if (!progressed.value()) {
      break;
    }
    if (++guard > engine.options_.max_steps) {
      status = ResourceExhaustedError("compare exchange did not converge");
    }
  }
  engine.query_session_ = nullptr;
  engine.NoteAbandonedQueries(session);
  PROVNET_RETURN_IF_ERROR(status);

  // A silent comparer is audited like a silent claims responder — and its
  // buckets fall back to local comparison (the auditor holds every digest),
  // so suppressing comparison work can hide nothing.
  for (const auto& [query_id, pending] : session.pending) {
    if (!silent_.insert(pending.responder).second) continue;
    engine.RecordSecurityEvent(
        SecurityEventKind::kSilentResponder, auditor_, pending.responder,
        engine.PrincipalOf(pending.responder),
        StrFormat("compare exchange: no answer to query %llu",
                  static_cast<unsigned long long>(query_id)));
  }
  for (NodeId mute : silent_) {
    for (const auto& [bucket_id, digests] : by_comparer[mute]) {
      (void)digests;
      compare_locally(bucket_id);
    }
  }

  // Spot-check: a comparer's signature proves *who* answered, not that the
  // answer is honest — a compromised comparer can suppress (or fabricate)
  // conflicts it was asked to find. The auditor still holds every digest it
  // shipped, so it re-runs a deterministic sample (1 in 4 buckets, by the
  // same key hash that assigned them) locally. Disagreement is attributable
  // evidence (kLyingComparer), and the local result replaces the comparer's
  // answer for every sampled bucket.
  std::map<uint64_t, NodeId> sampled;  // bucket id -> answering comparer
  for (const auto& [target, assigned] : by_comparer) {
    if (silent_.count(target) != 0) continue;  // already recomputed above
    for (const auto& [bucket_id, digests] : assigned) {
      (void)digests;
      if (Fnv1a64(buckets[bucket_id].key) % 4 == 0) {
        sampled.emplace(bucket_id, target);
      }
    }
  }
  std::set<uint64_t> claimed;  // sampled buckets the comparer flagged
  for (const Conflict& c : session.conflicts) {
    if (sampled.count(c.bucket) != 0) claimed.insert(c.bucket);
  }
  for (const auto& [bucket_id, comparer] : sampled) {
    const std::vector<TupleDigest>& digests = buckets[bucket_id].digests;
    bool truth = false;
    for (size_t j = 1; j < digests.size(); ++j) {
      if (digests[j] != digests[0]) {
        truth = true;
        break;
      }
    }
    if (truth != (claimed.count(bucket_id) != 0)) {
      engine.RecordSecurityEvent(
          SecurityEventKind::kLyingComparer, auditor_, comparer,
          engine.PrincipalOf(comparer),
          StrFormat("compare exchange: bucket %llu re-comparison disagrees",
                    static_cast<unsigned long long>(bucket_id)));
    }
    ++stats_.local_lookups;
    compare_locally(bucket_id);
  }

  for (const Conflict& c : session.conflicts) {
    // Sampled buckets use the auditor's own re-comparison — a fabricated
    // conflict from a lying comparer must not survive into the findings.
    if (sampled.count(c.bucket) != 0) continue;
    // Trust but verify the shape: a comparer can only name buckets it was
    // handed, with in-range indices (a conflict for someone else's bucket
    // would corrupt the index mapping at the auditor).
    if (c.bucket >= buckets.size() ||
        c.a >= buckets[c.bucket].digests.size() ||
        c.b >= buckets[c.bucket].digests.size()) {
      continue;
    }
    conflicts.push_back(c);
  }
  std::stable_sort(conflicts.begin(), conflicts.end(),
                   [](const Conflict& x, const Conflict& y) {
                     return x.bucket < y.bucket;
                   });
  // One finding per bucket, like the centralized flagged_keys set — also
  // caps what a malicious comparer can inject by repeating itself.
  conflicts.erase(std::unique(conflicts.begin(), conflicts.end(),
                              [](const Conflict& x, const Conflict& y) {
                                return x.bucket == y.bucket;
                              }),
                  conflicts.end());

  Network::Meters meters1 = engine.net_.MeterSnapshot();
  stats_.bytes = meters1.bytes - meters0.bytes;
  stats_.messages = meters1.messages - meters0.messages;
  stats_.requests = session.stats.requests;
  stats_.responses = session.stats.responses;
  stats_.responses_rejected = session.stats.responses_rejected;
  stats_.timeouts = session.stats.timeouts;
  stats_.retries = session.stats.retries;
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return conflicts;
}

}  // namespace provnet
