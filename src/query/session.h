// Internal state of one in-flight provenance query, shared between the
// driver (provquery.cc) and the Engine wire handlers (wire.cc). The Engine
// holds a non-owning pointer to the active session (at most one at a time);
// inbound kMsgProvResponse messages are matched against `pending` and folded
// in here. Not installed API — include query/provquery.h instead.
#ifndef PROVNET_QUERY_SESSION_H_
#define PROVNET_QUERY_SESSION_H_

#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/causal.h"
#include "obs/mem.h"
#include "provenance/store.h"
#include "query/provquery.h"
#include "util/bytes.h"

namespace provnet {

struct ProvQuerySession {
  using Key = std::pair<NodeId, TupleDigest>;

  NodeId asker = 0;
  uint8_t kind = kQueryRecords;
  bool local_only = false;  // QueryScope::kLocal: remote refs are cut
  QueryLimits limits;
  QueryStats stats;
  // Root causal context of the walk (core/causal.h): the span every request
  // hop of this session ultimately descends from.
  CausalIds causal;

  // Approximate bytes of collected walk state, charged against
  // obs::MemSubsystem::kQuerySessions; released when the session dies.
  int64_t accounted_bytes = 0;

  void ChargeBytes(int64_t bytes) {
    obs::MemAccounting& mem = obs::MemAccounting::Global();
    if (!mem.enabled()) return;
    mem.Add(obs::MemSubsystem::kQuerySessions,
            static_cast<uint64_t>(bytes));
    accounted_bytes += bytes;
  }

  ~ProvQuerySession() {
    if (accounted_bytes > 0) {
      obs::MemAccounting::Global().Sub(
          obs::MemSubsystem::kQuerySessions,
          static_cast<uint64_t>(accounted_bytes));
    }
  }

  // --- Records walk (kQueryRecords) ----------------------------------------
  std::map<Key, std::vector<ProvRecord>> collected;
  // First-seen expansion depth per key; doubles as the dedup set.
  std::map<Key, size_t> depth;
  // Keys resolvable from the asker's own stores, drained without messages.
  std::deque<Key> local_frontier;

  // Outstanding requests by query id: what a response must present to be
  // accepted. Anything else is an unsolicited (bogus) response.
  struct Pending {
    NodeId responder = 0;
    TupleDigest digest = 0;
    double sent_at = 0.0;  // virtual send time, for hop-latency histograms
    // Degradation state (Engine::HandleQueryTimeouts). `inner` keeps the
    // request payload so an expired hop can be re-sent under the same query
    // id; `deadline` is the armed virtual-time expiry (0 = disarmed — either
    // timeouts are off, or a claims/compare hop exhausted its attempts and
    // is left for the silent-responder audit).
    Bytes inner;
    size_t attempts = 1;
    double deadline = 0.0;
  };
  std::unordered_map<uint64_t, Pending> pending;
  size_t outstanding = 0;

  // --- Fault degradation (EngineOptions::query_hop_timeout) ----------------
  // Per-hop deadline and retry budget, resolved by the driver from the
  // engine options; hop_timeout <= 0 disables deadlines entirely (the
  // pre-fault-tolerance behavior: pump until the network drains).
  double hop_timeout = 0.0;
  size_t max_attempts = 1;
  // Records-walk keys whose responder never answered and whose offline
  // archive had nothing: the assembler plants kUnreachableRule (instead of
  // kMissingRule) leaves for these.
  std::set<Key> unreachable;

  // --- Claims exchange (kQueryClaims) --------------------------------------
  std::vector<ClaimsExchange::Claim> claims;

  // --- Digest comparison (kQueryCompare) -----------------------------------
  std::vector<CompareExchange::Conflict> conflicts;
};

}  // namespace provnet

#endif  // PROVNET_QUERY_SESSION_H_
