#include "obs/mem.h"

namespace provnet::obs {

const char* MemSubsystemName(MemSubsystem s) {
  switch (s) {
    case MemSubsystem::kProvAnnotations:
      return "prov_annotations";
    case MemSubsystem::kBddNodes:
      return "bdd_nodes";
    case MemSubsystem::kTableRows:
      return "table_rows";
    case MemSubsystem::kTableIndexes:
      return "table_indexes";
    case MemSubsystem::kNetworkQueues:
      return "network_queues";
    case MemSubsystem::kTraceRing:
      return "trace_ring";
    case MemSubsystem::kQuerySessions:
      return "query_sessions";
    case MemSubsystem::kProvArena:
      return "prov_arena";
    case MemSubsystem::kArchivePages:
      return "archive_pages";
    case MemSubsystem::kNumSubsystems:
      break;
  }
  return "unknown";
}

MemAccounting& MemAccounting::Global() {
  static MemAccounting* instance = new MemAccounting();
  return *instance;
}

void MemAccounting::Reset() {
  for (Cell& cell : cells_) {
    cell.current.store(0, std::memory_order_relaxed);
    cell.peak.store(0, std::memory_order_relaxed);
  }
}

uint64_t MemAccounting::TotalPeakBytes() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumMemSubsystems; ++i) {
    total += PeakBytes(static_cast<MemSubsystem>(i));
  }
  return total;
}

std::string MemAccounting::PeakSummary() const {
  std::string out;
  for (size_t i = 0; i < kNumMemSubsystems; ++i) {
    uint64_t peak = PeakBytes(static_cast<MemSubsystem>(i));
    if (peak == 0) continue;
    if (!out.empty()) out += " ";
    out += MemSubsystemName(static_cast<MemSubsystem>(i));
    out += "=";
    out += std::to_string(peak);
  }
  return out;
}

}  // namespace provnet::obs
