// Per-subsystem memory accounting (ISSUE 8, ROADMAP item 2's yardstick).
//
// Cheap byte gauges incremented at the existing allocation choke points —
// Table row/index mutations, ProvExpr DAG nodes, BDD arena nodes, network
// queue push/pop, the trace ring, ProvQuery session state — so the
// full-provenance memory curve is a first-class exported number instead of
// an external RSS reading nobody can attribute.
//
// The accounting is process-global (ProvExpr and Table have no engine
// back-pointer) and approximate by design: each hook charges a fixed
// per-object estimate (payload + container overhead), and Add/Sub pairs
// use the same estimate so the current gauge cannot drift. Peaks depend on
// allocation interleaving and are therefore *not* deterministic across
// thread counts — like the profiler's wall-clock numbers they are exported
// only through ProfileJson / RunStats::ToString, never through the golden
// registry snapshot.
//
// Disabled (the default) every hook is one relaxed atomic bool load.
// Enable() before constructing the engine and leave it on for the whole
// run; toggling mid-lifetime of accounted objects skews the current gauge
// (harmlessly — it is clamped at zero for display).
#ifndef PROVNET_OBS_MEM_H_
#define PROVNET_OBS_MEM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace provnet::obs {

enum class MemSubsystem : uint8_t {
  kProvAnnotations = 0,  // ProvExpr DAG nodes (semiring annotations)
  kBddNodes,             // BddManager arena nodes + unique-table entries
  kTableRows,            // stored tuples (excluding their annotations)
  kTableIndexes,         // column-index buckets + insertion-order entries
  kNetworkQueues,        // queued wire messages
  kTraceRing,            // Tracer ring-buffer capacity
  kQuerySessions,        // in-flight ProvQuery session state
  kProvArena,            // hash-consed derivation arena (src/store/arena.*)
  kArchivePages,         // offline-archive page buffers + LRU cache
  kNumSubsystems,
};

inline constexpr size_t kNumMemSubsystems =
    static_cast<size_t>(MemSubsystem::kNumSubsystems);

const char* MemSubsystemName(MemSubsystem s);

class MemAccounting {
 public:
  static MemAccounting& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Reset();

  void Add(MemSubsystem s, uint64_t bytes) {
    if (!enabled()) return;
    Cell& cell = cells_[static_cast<size_t>(s)];
    int64_t cur = cell.current.fetch_add(static_cast<int64_t>(bytes),
                                         std::memory_order_relaxed) +
                  static_cast<int64_t>(bytes);
    int64_t peak = cell.peak.load(std::memory_order_relaxed);
    while (cur > peak &&
           !cell.peak.compare_exchange_weak(peak, cur,
                                            std::memory_order_relaxed)) {
    }
  }
  void Sub(MemSubsystem s, uint64_t bytes) {
    if (!enabled()) return;
    cells_[static_cast<size_t>(s)].current.fetch_sub(
        static_cast<int64_t>(bytes), std::memory_order_relaxed);
  }

  // Clamped at zero (Enable() mid-lifetime of accounted objects can leave
  // a small negative residue).
  uint64_t CurrentBytes(MemSubsystem s) const {
    int64_t v = cells_[static_cast<size_t>(s)].current.load(
        std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }
  uint64_t PeakBytes(MemSubsystem s) const {
    int64_t v =
        cells_[static_cast<size_t>(s)].peak.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }
  // Sum of per-subsystem peaks — the number the CI memory-regression guard
  // compares against its checked-in baseline.
  uint64_t TotalPeakBytes() const;

  // "table_rows=123456 prov_annotations=789 ..." — peak bytes per
  // subsystem, fixed order, only non-zero entries. Empty string when the
  // accounting never recorded anything.
  std::string PeakSummary() const;

 private:
  struct Cell {
    std::atomic<int64_t> current{0};
    std::atomic<int64_t> peak{0};
  };

  std::atomic<bool> enabled_{false};
  std::array<Cell, kNumMemSubsystems> cells_{};
};

}  // namespace provnet::obs

#endif  // PROVNET_OBS_MEM_H_
