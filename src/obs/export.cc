#include "obs/export.h"

#include <algorithm>

#include "util/strings.h"

namespace provnet {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (uint8_t(c) < 0x20) {
          out += StrFormat("\\u%04x", unsigned(uint8_t(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Indent() {
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (stack_.back().count > 0) out_ += ',';
  ++stack_.back().count;
  Indent();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  stack_.push_back(Frame{false, 0});
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  bool had_members = !stack_.empty() && stack_.back().count > 0;
  stack_.pop_back();
  if (had_members) Indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  stack_.push_back(Frame{true, 0});
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  bool had_members = !stack_.empty() && stack_.back().count > 0;
  stack_.pop_back();
  if (had_members) Indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  if (!stack_.empty()) {
    if (stack_.back().count > 0) out_ += ',';
    ++stack_.back().count;
    Indent();
  }
  out_ += '"';
  out_ += JsonEscape(k);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& s) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* s) { return Value(std::string(s)); }

JsonWriter& JsonWriter::Value(bool b) {
  BeforeValue();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += StrFormat("%llu", (unsigned long long)v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += StrFormat("%lld", (long long)v);
  return *this;
}

JsonWriter& JsonWriter::Value(double v, const char* fmt) {
  BeforeValue();
  char buf[64];
  snprintf(buf, sizeof(buf), fmt, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& token) {
  BeforeValue();
  out_ += token;
  return *this;
}

namespace {

void WriteLabels(JsonWriter& w, const Labels& labels) {
  w.Key("labels").BeginObject();
  for (const auto& [k, v] : labels) w.Field(k, v);
  w.EndObject();
}

std::string LabelSuffix(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

}  // namespace

std::string SnapshotJson(const Registry& registry) {
  JsonWriter w;
  w.BeginObject();

  w.Key("counters").BeginArray();
  for (const auto& [key, c] : registry.counters()) {
    w.BeginObject();
    w.Field("name", key.first);
    WriteLabels(w, key.second);
    w.Field("value", c->value);
    w.EndObject();
  }
  w.EndArray();

  w.Key("gauges").BeginArray();
  for (const auto& [key, g] : registry.gauges()) {
    w.BeginObject();
    w.Field("name", key.first);
    WriteLabels(w, key.second);
    w.Field("value", g->value, "%.9g");
    w.EndObject();
  }
  w.EndArray();

  w.Key("histograms").BeginArray();
  for (const auto& [key, h] : registry.histograms()) {
    w.BeginObject();
    w.Field("name", key.first);
    WriteLabels(w, key.second);
    w.Field("count", h->count());
    w.Field("sum", h->sum(), "%.9g");
    w.Field("min", h->min(), "%.9g");
    w.Field("max", h->max(), "%.9g");
    w.Field("mean", h->mean(), "%.9g");
    w.Field("p50", h->Quantile(0.50), "%.9g");
    w.Field("p90", h->Quantile(0.90), "%.9g");
    w.Field("p99", h->Quantile(0.99), "%.9g");
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  std::string out = w.Take();
  out += '\n';
  return out;
}

std::string SnapshotText(const Registry& registry) {
  // Left column width: longest name{labels} across every section.
  size_t width = 0;
  auto measure = [&width](const Registry::Key& key) {
    width = std::max(width, key.first.size() + LabelSuffix(key.second).size());
  };
  for (const auto& [key, c] : registry.counters()) measure(key);
  for (const auto& [key, g] : registry.gauges()) measure(key);
  for (const auto& [key, h] : registry.histograms()) measure(key);
  width = std::min(width, size_t(72));

  std::string out;
  auto line = [&out, width](const Registry::Key& key, std::string value) {
    std::string left = key.first + LabelSuffix(key.second);
    if (left.size() < width) left.append(width - left.size(), ' ');
    out += left;
    out += "  ";
    out += value;
    out += '\n';
  };

  if (!registry.counters().empty()) {
    out += "== counters ==\n";
    for (const auto& [key, c] : registry.counters()) {
      line(key, StrFormat("%llu", (unsigned long long)c->value));
    }
  }
  if (!registry.gauges().empty()) {
    out += "== gauges ==\n";
    for (const auto& [key, g] : registry.gauges()) {
      line(key, StrFormat("%.6g", g->value));
    }
  }
  if (!registry.histograms().empty()) {
    out += "== histograms ==\n";
    for (const auto& [key, h] : registry.histograms()) {
      line(key, StrFormat(
                    "count=%llu mean=%.6g p50=%.6g p90=%.6g p99=%.6g max=%.6g",
                    (unsigned long long)h->count(), h->mean(),
                    h->Quantile(0.50), h->Quantile(0.90), h->Quantile(0.99),
                    h->max()));
    }
  }
  return out;
}

std::string ProfileJson(const Profiler& profiler, const MemAccounting& mem) {
  JsonWriter w;
  w.BeginObject();
  WriteProfileFields(w, profiler, mem);
  w.EndObject();
  std::string out = w.Take();
  out += '\n';
  return out;
}

void WriteProfileFields(JsonWriter& w, const Profiler& profiler,
                        const MemAccounting& mem) {
  w.Key("phases").BeginArray();
  for (size_t i = 0; i < kNumProfilerPhases; ++i) {
    Phase p = static_cast<Phase>(i);
    if (profiler.PhaseCount(p) == 0 && profiler.PhaseNs(p) == 0) continue;
    w.BeginObject();
    w.Field("name", PhaseName(p));
    w.Field("ns", profiler.PhaseNs(p));
    w.Field("count", profiler.PhaseCount(p));
    w.EndObject();
  }
  w.EndArray();

  w.Field("commit_serial_fraction", profiler.CommitSerialFraction(), "%.6f");

  w.Key("lanes").BeginArray();
  for (size_t lane = 0; lane < profiler.num_lanes(); ++lane) {
    w.BeginObject();
    w.Field("lane", uint64_t(lane));
    w.Field("ns", profiler.LaneNs(lane));
    w.Field("utilization", profiler.LaneUtilization(lane), "%.6f");
    w.EndObject();
  }
  w.EndArray();

  w.Key("mem").BeginObject();
  w.Key("current").BeginObject();
  for (size_t i = 0; i < kNumMemSubsystems; ++i) {
    MemSubsystem s = static_cast<MemSubsystem>(i);
    w.Field(MemSubsystemName(s), mem.CurrentBytes(s));
  }
  w.EndObject();
  w.Key("peak").BeginObject();
  for (size_t i = 0; i < kNumMemSubsystems; ++i) {
    MemSubsystem s = static_cast<MemSubsystem>(i);
    w.Field(MemSubsystemName(s), mem.PeakBytes(s));
  }
  w.EndObject();
  w.Field("total_peak_bytes", mem.TotalPeakBytes());
  w.EndObject();
}

std::string ProfileText(const Profiler& profiler, const MemAccounting& mem) {
  std::string out;
  out += "== profile (wall clock) ==\n";
  for (size_t i = 0; i < kNumProfilerPhases; ++i) {
    Phase p = static_cast<Phase>(i);
    if (profiler.PhaseCount(p) == 0 && profiler.PhaseNs(p) == 0) continue;
    out += StrFormat("%-18s %12.3f ms  (x%llu)\n", PhaseName(p),
                     double(profiler.PhaseNs(p)) / 1e6,
                     (unsigned long long)profiler.PhaseCount(p));
  }
  out += StrFormat("commit_serial_fraction  %.4f\n",
                   profiler.CommitSerialFraction());
  for (size_t lane = 0; lane < profiler.num_lanes(); ++lane) {
    out += StrFormat("lane[%2zu]  %12.3f ms  utilization %.3f\n", lane,
                     double(profiler.LaneNs(lane)) / 1e6,
                     profiler.LaneUtilization(lane));
  }
  out += "== memory (accounted bytes) ==\n";
  for (size_t i = 0; i < kNumMemSubsystems; ++i) {
    MemSubsystem s = static_cast<MemSubsystem>(i);
    if (mem.PeakBytes(s) == 0) continue;
    out += StrFormat("%-18s current=%llu peak=%llu\n", MemSubsystemName(s),
                     (unsigned long long)mem.CurrentBytes(s),
                     (unsigned long long)mem.PeakBytes(s));
  }
  out += StrFormat("total_peak_bytes  %llu\n",
                   (unsigned long long)mem.TotalPeakBytes());
  return out;
}

}  // namespace obs
}  // namespace provnet
