#include "obs/trace.h"

#include <chrono>

#include "obs/export.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace provnet {
namespace obs {

namespace {
double WallNow() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}
}  // namespace

Tracer::~Tracer() {
  if (accounted_bytes_ > 0) {
    MemAccounting::Global().Sub(MemSubsystem::kTraceRing, accounted_bytes_);
  }
}

void Tracer::Enable(size_t capacity, uint32_t sample_every, bool record_wall,
                    bool record_spans) {
  enabled_ = capacity > 0;
  record_wall_ = record_wall;
  record_spans_ = record_spans;
  sample_every_ = sample_every == 0 ? 1 : sample_every;
  sample_seq_ = 0;
  capacity_ = capacity;
  total_ = 0;
  ring_.clear();
  ring_.reserve(capacity_);
  // Re-charge the ring capacity (events' attr strings are not tracked —
  // the estimate is the fixed-slot cost of the ring itself).
  MemAccounting& mem = MemAccounting::Global();
  if (accounted_bytes_ > 0) {
    mem.Sub(MemSubsystem::kTraceRing, accounted_bytes_);
    accounted_bytes_ = 0;
  }
  if (mem.enabled() && enabled_) {
    accounted_bytes_ = capacity_ * sizeof(TraceEvent);
    mem.Add(MemSubsystem::kTraceRing, accounted_bytes_);
  }
}

void Tracer::Disable() {
  enabled_ = false;
  record_wall_ = false;
  record_spans_ = false;
}

void Tracer::Emit(TraceEvent ev) {
  if (!enabled_) return;
  if (record_wall_) ev.wall_time = WallNow();
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[total_ % capacity_] = std::move(ev);
    if (drop_counter_ != nullptr) ++drop_counter_->value;
  }
  ++total_;
}

std::vector<const TraceEvent*> Tracer::Events() const {
  std::vector<const TraceEvent*> out;
  out.reserve(ring_.size());
  // The ring is full once total_ >= capacity_; the oldest surviving event
  // sits at total_ % capacity_.
  size_t start = ring_.size() < capacity_ ? 0 : total_ % capacity_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(&ring_[(start + i) % ring_.size()]);
  }
  return out;
}

size_t Tracer::size() const { return ring_.size(); }

void Tracer::Clear() {
  ring_.clear();
  total_ = 0;
  sample_seq_ = 0;
}

std::string Tracer::ToJsonl(bool with_spans) const {
  std::string out;
  for (const TraceEvent* ev : Events()) {
    out += StrFormat("{\"sim_time\":%.9f,", ev->sim_time);
    if (record_wall_) out += StrFormat("\"wall_time\":%.9f,", ev->wall_time);
    out += StrFormat("\"dur\":%.9f,\"node\":%u,", ev->dur, unsigned(ev->node));
    if (with_spans) {
      out += StrFormat(
          "\"trace_id\":%llu,\"span_id\":%llu,\"parent_span\":%llu,",
          static_cast<unsigned long long>(ev->trace_id),
          static_cast<unsigned long long>(ev->span_id),
          static_cast<unsigned long long>(ev->parent_span));
    }
    out += StrFormat("\"kind\":\"%s\",\"attrs\":{",
                     JsonEscape(ev->kind).c_str());
    bool first = true;
    for (const auto& [k, v] : ev->attrs) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += JsonEscape(k);
      out += "\":\"";
      out += JsonEscape(v);
      out += '"';
    }
    out += "}}\n";
  }
  return out;
}

}  // namespace obs
}  // namespace provnet
