// Wall-clock execution profiler — the second story of src/obs/ (ISSUE 8).
//
// Every metric in obs/metrics.h is virtual-time by design: the registry
// snapshot is a determinism oracle (byte-identical across seeded runs and
// thread counts), so nothing in it may read a real clock. This profiler is
// the complement: wall-clock phase timers and per-lane busy accumulators
// that answer "where does the wall time actually go" — how much the serial
// commit barrier of the parallel executor eats, how long crypto
// verification takes, what fraction of a fixpoint is query serving.
//
// Because the values are wall-clock they are *never* exported through
// SnapshotJson; obs::ProfileJson (export.h) is their only serialization,
// feeding the PROF_fixpoint.json CI artifact and `obs_dump --prof`.
//
// Cost discipline matches the Tracer: disabled (the default), every hook is
// one relaxed atomic bool load and a branch; enabled, a scope costs two
// steady_clock reads and a relaxed fetch_add. Phase accumulators are
// atomics because receive-side hooks (verification, delivery) run on worker
// lanes during parallel epochs.
#ifndef PROVNET_OBS_PROFILER_H_
#define PROVNET_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace provnet::obs {

// Engine execution phases. Phases overlap by design (verification happens
// inside delivery; kFixpoint spans the whole Run() loop), so the entries
// are independent meters, not a partition.
enum class Phase : uint8_t {
  kFixpoint = 0,     // the whole Run() fixpoint loop
  kEvents,           // event-cascade processing (sequential path)
  kRetractions,      // deletion-delta cascades (DRed over-deletion)
  kRederive,         // DRed re-derivation phase
  kDelivery,         // network delivery (sequential Step path)
  kParallelCompute,  // worker-pool compute, including barrier stall
  kCommitReplay,     // serial canonical-order effect replay
  kVerify,           // receive-side verification (signatures, headers)
  kSign,             // sender-side says-tag construction
  kQueryServe,       // ProvQuery request/response serving
  kNumPhases,
};

inline constexpr size_t kNumProfilerPhases =
    static_cast<size_t>(Phase::kNumPhases);

const char* PhaseName(Phase p);

class Profiler {
 public:
  // Worker lanes tracked individually; lanes beyond this fold into the
  // last slot (the pool caps at min(16, cores-2) lanes anyway).
  static constexpr size_t kMaxLanes = 64;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Reset();

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  // Thread-safe (relaxed) accumulation; call only when enabled().
  void AddPhase(Phase p, uint64_t ns) {
    PhaseCell& cell = phases_[static_cast<size_t>(p)];
    cell.ns.fetch_add(ns, std::memory_order_relaxed);
    cell.count.fetch_add(1, std::memory_order_relaxed);
  }
  // Per-lane busy time. During a pool phase each lane touches only its own
  // cell, so the relaxed add never contends.
  void AddLane(size_t lane, uint64_t ns) {
    if (lane >= kMaxLanes) lane = kMaxLanes - 1;
    lanes_[lane].ns.fetch_add(ns, std::memory_order_relaxed);
    if (lane + 1 > num_lanes_.load(std::memory_order_relaxed)) {
      num_lanes_.store(lane + 1, std::memory_order_relaxed);
    }
  }

  uint64_t PhaseNs(Phase p) const {
    return phases_[static_cast<size_t>(p)].ns.load(std::memory_order_relaxed);
  }
  uint64_t PhaseCount(Phase p) const {
    return phases_[static_cast<size_t>(p)].count.load(
        std::memory_order_relaxed);
  }
  // Highest lane index seen + 1 (0 when no parallel phase ran).
  size_t num_lanes() const {
    return num_lanes_.load(std::memory_order_relaxed);
  }
  uint64_t LaneNs(size_t lane) const {
    return lane < kMaxLanes ? lanes_[lane].ns.load(std::memory_order_relaxed)
                            : 0;
  }

  // Serial effect-replay wall time over the total parallel-executor wall
  // time (compute + barrier + replay) — the Amdahl ceiling of the sharded
  // executor. 0 when the run never entered a parallel phase.
  double CommitSerialFraction() const {
    double par = static_cast<double>(PhaseNs(Phase::kParallelCompute));
    double commit = static_cast<double>(PhaseNs(Phase::kCommitReplay));
    double total = par + commit;
    return total > 0.0 ? commit / total : 0.0;
  }
  // Lane busy time / parallel-compute wall time (1.0 = the lane never
  // stalled at a barrier).
  double LaneUtilization(size_t lane) const {
    double par = static_cast<double>(PhaseNs(Phase::kParallelCompute));
    if (par <= 0.0) return 0.0;
    return static_cast<double>(LaneNs(lane)) / par;
  }

  // RAII phase scope. When the profiler is disabled the constructor is one
  // relaxed load; nothing else happens.
  class Scope {
   public:
    Scope(Profiler& p, Phase phase)
        : p_(p.enabled() ? &p : nullptr),
          phase_(phase),
          t0_(p_ != nullptr ? NowNs() : 0) {}
    ~Scope() {
      if (p_ != nullptr) p_->AddPhase(phase_, NowNs() - t0_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* p_;
    Phase phase_;
    uint64_t t0_;
  };

 private:
  struct PhaseCell {
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> count{0};
  };
  // Cache-line padded: each lane hammers its own cell during pool phases.
  struct alignas(64) LaneCell {
    std::atomic<uint64_t> ns{0};
  };

  std::atomic<bool> enabled_{false};
  std::array<PhaseCell, kNumProfilerPhases> phases_{};
  std::array<LaneCell, kMaxLanes> lanes_{};
  std::atomic<size_t> num_lanes_{0};
};

}  // namespace provnet::obs

#endif  // PROVNET_OBS_PROFILER_H_
