#include "obs/profiler.h"

namespace provnet::obs {

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kFixpoint:
      return "fixpoint";
    case Phase::kEvents:
      return "events";
    case Phase::kRetractions:
      return "retractions";
    case Phase::kRederive:
      return "rederive";
    case Phase::kDelivery:
      return "delivery";
    case Phase::kParallelCompute:
      return "parallel_compute";
    case Phase::kCommitReplay:
      return "commit_replay";
    case Phase::kVerify:
      return "verify";
    case Phase::kSign:
      return "sign";
    case Phase::kQueryServe:
      return "query_serve";
    case Phase::kNumPhases:
      break;
  }
  return "unknown";
}

void Profiler::Reset() {
  for (PhaseCell& cell : phases_) {
    cell.ns.store(0, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
  }
  for (LaneCell& cell : lanes_) {
    cell.ns.store(0, std::memory_order_relaxed);
  }
  num_lanes_.store(0, std::memory_order_relaxed);
}

}  // namespace provnet::obs
