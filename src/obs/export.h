// Unified telemetry export: one JSON writer, one snapshot format.
//
// Everything the repo serializes about a run goes through here — the
// registry snapshot consumed by obs_dump and the golden determinism tests,
// and the BENCH_fixpoint/adversary/provquery JSON files (their writers build
// on JsonWriter instead of hand-concatenated strings, so escaping, comma
// placement, and layout have a single implementation).
//
// Output is deterministic: registry iteration is key-ordered, floats use
// fixed printf formats, and nothing here reads the wall clock.
#ifndef PROVNET_OBS_EXPORT_H_
#define PROVNET_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace provnet {
namespace obs {

// JSON string-escape (quotes, backslash, control characters).
std::string JsonEscape(const std::string& s);

// Structural JSON emitter with pretty 2-space indentation. The caller
// supplies structure (Begin/End, Key, Value); commas, newlines, and
// escaping are handled here. Numeric formatting is explicit per call so
// bench writers keep their historical value formats exactly.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(const std::string& k);

  JsonWriter& Value(const std::string& s);
  JsonWriter& Value(const char* s);
  JsonWriter& Value(bool b);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint32_t v) { return Value(uint64_t(v)); }
  JsonWriter& Value(int v) { return Value(int64_t(v)); }
  JsonWriter& Value(double v, const char* fmt = "%.9g");
  // Pre-formatted scalar token, emitted verbatim in value position.
  JsonWriter& Raw(const std::string& token);

  template <typename T>
  JsonWriter& Field(const std::string& k, T v) {
    Key(k);
    return Value(v);
  }
  JsonWriter& Field(const std::string& k, double v, const char* fmt) {
    Key(k);
    return Value(v, fmt);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();
  void Indent();

  struct Frame {
    bool array = false;
    size_t count = 0;
  };
  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

// Canonical registry snapshot:
//   {"counters":[{"name","labels","value"}...],
//    "gauges":[...],
//    "histograms":[{"name","labels","count","sum","min","max",
//                   "mean","p50","p90","p99"}...]}
// Byte-identical for identical registries (the golden determinism contract).
std::string SnapshotJson(const Registry& registry);

// Human-readable table for obs_dump: one line per instrument,
// `name{k=v,...}` left column, values right.
std::string SnapshotText(const Registry& registry);

// Wall-clock + memory profile (PROF_fixpoint.json, obs_dump --prof):
//   {"phases":[{"name","ns","count"}...],
//    "commit_serial_fraction": f,
//    "lanes":[{"lane","ns","utilization"}...],
//    "mem":{"current":{sub:bytes...},"peak":{...},"total_peak_bytes":n}}
// Layout is deterministic; the *values* are wall-clock and allocation-order
// dependent, which is why none of this feeds SnapshotJson.
std::string ProfileJson(const Profiler& profiler, const MemAccounting& mem);

// Same fields written into an already-open JSON object — bench writers embed
// the profile inline in their own documents (PROF_fixpoint.json fixtures).
void WriteProfileFields(JsonWriter& w, const Profiler& profiler,
                        const MemAccounting& mem);

// Text rendering of the same data for obs_dump --prof.
std::string ProfileText(const Profiler& profiler, const MemAccounting& mem);

}  // namespace obs
}  // namespace provnet

#endif  // PROVNET_OBS_EXPORT_H_
