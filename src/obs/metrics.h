// Typed metrics registry — the engine's quantitative self-description.
//
// The paper's thesis is that a secure network should be able to explain
// itself; this module is the corresponding requirement turned inward: every
// performance and security signal the engine produces (rule firings, join
// candidates, per-link bytes by message kind, verification rejections by
// security-event kind, provenance-query latency) lives in one registry,
// keyed by metric name plus a small label set, and is exported through one
// snapshot path (obs/export.h). RunStats and the bench JSON writers are
// views over this registry, not parallel bookkeeping.
//
// Design constraints, in order:
//   1. The slot-compiled join inner loop increments counters per candidate
//      tuple. A handle must therefore be a raw pointer to a plain uint64_t
//      cell — registration (name/label hashing) happens once at plan time,
//      never per event.
//   2. Snapshots must be byte-identical across identical seeded runs, so
//      iteration order is the std::map key order (name, then sorted labels)
//      and no wall-clock state is stored here.
#ifndef PROVNET_OBS_METRICS_H_
#define PROVNET_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace provnet {
namespace obs {

// Label set of one instrument. Registry sorts by key on registration, so
// callers may pass labels in any order; two permutations are one metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotone event count. `value` is public: the hot path does ++c->value.
struct Counter {
  uint64_t value = 0;
  void Add(uint64_t n = 1) { value += n; }
};

// Last-write level (queue depths, table sizes, config echoes).
struct Gauge {
  double value = 0.0;
  void Set(double v) { value = v; }
};

// Log-bucketed distribution: quarter-octave buckets (bucket index =
// floor(4*log2(v))), exact count/sum/min/max, quantiles estimated from the
// bucket upper bound and clamped to the observed range. Good to ~19% value
// resolution, which is plenty for latency/size distributions, while staying
// allocation-light and deterministic.
class Histogram {
 public:
  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return max_; }
  double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
  // q in [0,1]; 0.5/0.9/0.99 are the exported quantiles.
  double Quantile(double q) const;

 private:
  static int BucketOf(double v);

  // bucket index -> observation count. Non-positive values collapse into a
  // dedicated lowest bucket.
  std::map<int, uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Owns every instrument. Get* interns on first use and returns a stable
// pointer (map nodes never move); lookups are meant for setup paths only.
class Registry {
 public:
  using Key = std::pair<std::string, Labels>;

  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  Histogram* GetHistogram(const std::string& name, Labels labels = {});

  // Lookup without interning; nullptr when absent (labels in any order).
  const Counter* FindCounter(const std::string& name, Labels labels = {}) const;

  // Sum over every counter with `name`, all label sets — how the RunStats
  // view recovers a global total from per-rule/per-link breakdowns.
  uint64_t CounterTotal(const std::string& name) const;

  // Deterministic iteration for the exporter (ascending by name, labels).
  const std::map<Key, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<Key, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<Key, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  static Key MakeKey(const std::string& name, Labels labels);

  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace provnet

#endif  // PROVNET_OBS_METRICS_H_
