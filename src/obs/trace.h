// Virtual-time trace spans — the engine's qualitative self-description.
//
// A TraceEvent records one unit of engine work (a rule strand firing, a
// message send/verify/deliver hop, a deletion-delta cascade step, one hop of
// a distributed ProvQuery walk) stamped with *virtual* network time, so
// detection latencies and query fan-outs are measurable as distributions and
// — crucially — identical seeded runs emit byte-identical streams. Wall time
// is opt-in (Enable(record_wall=true)) and excluded from the golden format.
//
// Cost discipline: tracing off must cost one predictable branch per site.
// Every instrumentation site is guarded by enabled()/Sample(); TraceEvent
// construction (string allocation) happens only when tracing is on. Events
// land in a fixed-capacity ring buffer (oldest overwritten, drop count
// kept), and hot-path sites go through Sample() for deterministic 1-in-k
// sampling.
#ifndef PROVNET_OBS_TRACE_H_
#define PROVNET_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace provnet {
namespace obs {

struct TraceEvent {
  double sim_time = 0.0;   // virtual network time at the event
  double dur = 0.0;        // virtual-time duration (0 for instantaneous)
  double wall_time = 0.0;  // process wall clock; recorded only when opted in
  uint32_t node = 0;       // executing/receiving node
  // Cross-node causal span ids (ISSUE 8). A wire message *is* a span: the
  // sender mints span_id (deterministically, from a per-node counter),
  // stamps its own causal context as parent_span, and ships
  // (trace_id, span_id) on the wire; the receiver's events carry the same
  // span id, so streams from different nodes stitch into one tree. 0 =
  // no causal context. Serialized only when record_spans is on, exactly
  // like wall_time, so the golden JSONL format is unchanged by default.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  std::string kind;  // "fire", "send", "verify", "deliver", ...
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Counter;  // obs/metrics.h

class Tracer {
 public:
  ~Tracer();

  // Turns tracing on with a ring of `capacity` events. `sample_every` thins
  // hot-path events (Sample() passes 1 in k); structural events (queries,
  // cascades, security) bypass sampling. `record_wall` adds wall_time to
  // each event and its JSONL line — off by default so identical seeded runs
  // serialize identically. `record_spans` adds the causal trace/span id
  // triple to each JSONL line; the ids are deterministic, so the stream
  // stays a golden artifact, but the flag is opt-in so the default format
  // (and every existing byte-identity oracle) is unchanged.
  void Enable(size_t capacity, uint32_t sample_every = 1,
              bool record_wall = false, bool record_spans = false);
  void Disable();

  bool enabled() const { return enabled_; }
  bool record_wall() const { return record_wall_; }
  bool record_spans() const { return record_spans_; }

  // When set, ring evictions increment this registry counter (the
  // trace.dropped_spans satellite): truncated traces become visible in the
  // snapshot instead of silent. Evictions happen only in canonical commit
  // order, so the count is deterministic.
  void SetDropCounter(Counter* counter) { drop_counter_ = counter; }

  // Hot-path gate: false when disabled, else true for 1 in sample_every
  // calls (deterministic counter, not random).
  bool Sample() {
    if (!enabled_) return false;
    return sample_every_ <= 1 || (sample_seq_++ % sample_every_) == 0;
  }

  // Records an event (caller already checked enabled()/Sample()). Stamps
  // wall_time itself when record_wall is on.
  void Emit(TraceEvent ev);

  // Sampled emit for hot-path events: applies the 1-in-k counter at emit
  // time instead of at the instrumentation site. Parallel epochs buffer
  // hot-path events on worker shards and replay them here in canonical
  // commit order, so the counter is consumed in that same order and the
  // sampled stream is byte-identical at every thread count. Caller already
  // checked enabled() (events are cheap-constructed only when tracing).
  void EmitSampled(TraceEvent ev) {
    if (!enabled_) return;
    if (sample_every_ <= 1 || (sample_seq_++ % sample_every_) == 0) {
      Emit(std::move(ev));
    }
  }

  // Events currently in the ring, oldest first.
  std::vector<const TraceEvent*> Events() const;
  size_t size() const;
  uint64_t total_emitted() const { return total_; }
  uint64_t dropped() const { return total_ - size(); }
  void Clear();

  // One JSON object per line, oldest first:
  //   {"sim_time":...,"dur":...,"node":N,"kind":"...","attrs":{...}}
  // with "wall_time" after sim_time when record_wall is on, and
  // "trace_id"/"span_id"/"parent_span" after node when `with_spans`.
  std::string ToJsonl(bool with_spans) const;
  // Default view: spans included iff record_spans was enabled.
  std::string ToJsonl() const { return ToJsonl(record_spans_); }

 private:
  bool enabled_ = false;
  bool record_wall_ = false;
  bool record_spans_ = false;
  uint32_t sample_every_ = 1;
  uint64_t sample_seq_ = 0;
  size_t capacity_ = 0;
  uint64_t total_ = 0;  // events ever emitted (ring may have evicted some)
  uint64_t accounted_bytes_ = 0;  // ring bytes charged to MemAccounting
  Counter* drop_counter_ = nullptr;
  std::vector<TraceEvent> ring_;
};

}  // namespace obs
}  // namespace provnet

#endif  // PROVNET_OBS_TRACE_H_
