// Virtual-time trace spans — the engine's qualitative self-description.
//
// A TraceEvent records one unit of engine work (a rule strand firing, a
// message send/verify/deliver hop, a deletion-delta cascade step, one hop of
// a distributed ProvQuery walk) stamped with *virtual* network time, so
// detection latencies and query fan-outs are measurable as distributions and
// — crucially — identical seeded runs emit byte-identical streams. Wall time
// is opt-in (Enable(record_wall=true)) and excluded from the golden format.
//
// Cost discipline: tracing off must cost one predictable branch per site.
// Every instrumentation site is guarded by enabled()/Sample(); TraceEvent
// construction (string allocation) happens only when tracing is on. Events
// land in a fixed-capacity ring buffer (oldest overwritten, drop count
// kept), and hot-path sites go through Sample() for deterministic 1-in-k
// sampling.
#ifndef PROVNET_OBS_TRACE_H_
#define PROVNET_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace provnet {
namespace obs {

struct TraceEvent {
  double sim_time = 0.0;   // virtual network time at the event
  double dur = 0.0;        // virtual-time duration (0 for instantaneous)
  double wall_time = 0.0;  // process wall clock; recorded only when opted in
  uint32_t node = 0;       // executing/receiving node
  std::string kind;        // "fire", "send", "verify", "deliver", ...
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  // Turns tracing on with a ring of `capacity` events. `sample_every` thins
  // hot-path events (Sample() passes 1 in k); structural events (queries,
  // cascades, security) bypass sampling. `record_wall` adds wall_time to
  // each event and its JSONL line — off by default so identical seeded runs
  // serialize identically.
  void Enable(size_t capacity, uint32_t sample_every = 1,
              bool record_wall = false);
  void Disable();

  bool enabled() const { return enabled_; }
  bool record_wall() const { return record_wall_; }

  // Hot-path gate: false when disabled, else true for 1 in sample_every
  // calls (deterministic counter, not random).
  bool Sample() {
    if (!enabled_) return false;
    return sample_every_ <= 1 || (sample_seq_++ % sample_every_) == 0;
  }

  // Records an event (caller already checked enabled()/Sample()). Stamps
  // wall_time itself when record_wall is on.
  void Emit(TraceEvent ev);

  // Sampled emit for hot-path events: applies the 1-in-k counter at emit
  // time instead of at the instrumentation site. Parallel epochs buffer
  // hot-path events on worker shards and replay them here in canonical
  // commit order, so the counter is consumed in that same order and the
  // sampled stream is byte-identical at every thread count. Caller already
  // checked enabled() (events are cheap-constructed only when tracing).
  void EmitSampled(TraceEvent ev) {
    if (!enabled_) return;
    if (sample_every_ <= 1 || (sample_seq_++ % sample_every_) == 0) {
      Emit(std::move(ev));
    }
  }

  // Events currently in the ring, oldest first.
  std::vector<const TraceEvent*> Events() const;
  size_t size() const;
  uint64_t total_emitted() const { return total_; }
  uint64_t dropped() const { return total_ - size(); }
  void Clear();

  // One JSON object per line, oldest first:
  //   {"sim_time":...,"dur":...,"node":N,"kind":"...","attrs":{...}}
  // with "wall_time" after sim_time when record_wall is on.
  std::string ToJsonl() const;

 private:
  bool enabled_ = false;
  bool record_wall_ = false;
  uint32_t sample_every_ = 1;
  uint64_t sample_seq_ = 0;
  size_t capacity_ = 0;
  uint64_t total_ = 0;  // events ever emitted (ring may have evicted some)
  std::vector<TraceEvent> ring_;
};

}  // namespace obs
}  // namespace provnet

#endif  // PROVNET_OBS_TRACE_H_
