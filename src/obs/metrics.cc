#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace provnet {
namespace obs {

namespace {
// Bucket range: 2^-30 (~1ns in seconds) .. 2^40 (~1TB in bytes) at quarter
// octaves. Values outside clamp into the edge buckets.
constexpr int kMinBucket = -30 * 4;
constexpr int kMaxBucket = 40 * 4;
// Non-positive observations (durations rounded to zero) get their own
// bucket below everything else.
constexpr int kZeroBucket = kMinBucket - 1;
}  // namespace

int Histogram::BucketOf(double v) {
  if (!(v > 0.0)) return kZeroBucket;
  int b = int(std::floor(4.0 * std::log2(v)));
  return std::min(std::max(b, kMinBucket), kMaxBucket);
}

void Histogram::Observe(double v) {
  ++buckets_[BucketOf(v)];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-quantile among `count_` ordered observations (1-based).
  uint64_t rank = uint64_t(std::ceil(q * double(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (const auto& [bucket, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      if (bucket == kZeroBucket) return std::min(0.0, max_);
      // Upper bound of the quarter-octave bucket, clamped to the observed
      // range so single-observation histograms report the exact value.
      double upper = std::exp2(double(bucket + 1) / 4.0);
      return std::min(std::max(upper, min_), max_);
    }
  }
  return max_;
}

Registry::Key Registry::MakeKey(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key(name, std::move(labels));
}

Counter* Registry::GetCounter(const std::string& name, Labels labels) {
  auto& slot = counters_[MakeKey(name, std::move(labels))];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name, Labels labels) {
  auto& slot = gauges_[MakeKey(name, std::move(labels))];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name, Labels labels) {
  auto& slot = histograms_[MakeKey(name, std::move(labels))];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* Registry::FindCounter(const std::string& name,
                                     Labels labels) const {
  auto it = counters_.find(MakeKey(name, std::move(labels)));
  return it == counters_.end() ? nullptr : it->second.get();
}

uint64_t Registry::CounterTotal(const std::string& name) const {
  uint64_t total = 0;
  // Keys sort by name first, so the range is contiguous.
  for (auto it = counters_.lower_bound(Key(name, Labels()));
       it != counters_.end() && it->first.first == name; ++it) {
    total += it->second->value;
  }
  return total;
}

}  // namespace obs
}  // namespace provnet
