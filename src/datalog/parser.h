// Recursive-descent parser for NDlog / SeNDlog.
//
// Grammar sketch (see DESIGN.md §5):
//
//   program    := { item }
//   item       := "At" VARIABLE ":" | materialize | rule_or_fact
//   materialize:= "materialize" "(" ident "," ttl "," size ","
//                 "keys" "(" int {"," int} ")" ")" "."
//   rule_or_fact := [label] head [ "@" term ] [ ":-" body ] "."
//   head       := atom
//   body       := literal { "," literal }
//   literal    := [term "says"] atom | VARIABLE ":=" expr | expr
//   atom       := ident "(" atom_arg { "," atom_arg } ")"
//   atom_arg   := ["@"] term | agg
//   agg        := ("min"|"max"|"count") "<" VARIABLE ">"
//   term       := VARIABLE | constant | f_ident "(" [term {"," term}] ")"
//   constant   := INT | DOUBLE | STRING | "-" number | ident | "@" INT
//
// Conventions: function names must begin with "f_" (distinguishes them from
// predicates); a bare lowercase ident as a term is a string constant
// (handy for principals a, b, c in the paper's figures); "@N" with integer N
// is a node-address literal.
#ifndef PROVNET_DATALOG_PARSER_H_
#define PROVNET_DATALOG_PARSER_H_

#include <string>

#include "datalog/ast.h"
#include "util/status.h"

namespace provnet {

// Parses a whole program. Errors carry line:column positions.
Result<Program> ParseProgram(const std::string& source);

// Parses a single rule (no "At" blocks, no trailing facts); convenience for
// tests and interactive use.
Result<Rule> ParseRule(const std::string& source);

}  // namespace provnet

#endif  // PROVNET_DATALOG_PARSER_H_
