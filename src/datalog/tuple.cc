#include "datalog/tuple.h"

#include "util/hash.h"
#include "util/strings.h"

namespace provnet {

bool Tuple::operator<(const Tuple& other) const {
  if (predicate_ != other.predicate_) return predicate_ < other.predicate_;
  size_t n = std::min(args_.size(), other.args_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = args_[i].Compare(other.args_[i]);
    if (c != 0) return c < 0;
  }
  return args_.size() < other.args_.size();
}

uint64_t Tuple::Hash() const {
  uint64_t h = Fnv1a64(predicate_);
  for (const Value& v : args_) h = HashCombine(h, v.Hash());
  return h;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const Value& v : args_) parts.push_back(v.ToString());
  return predicate_ + "(" + StrJoin(parts, ", ") + ")";
}

void Tuple::Serialize(ByteWriter& out) const {
  out.PutString(predicate_);
  out.PutVarint(args_.size());
  for (const Value& v : args_) v.Serialize(out);
}

Result<Tuple> Tuple::Deserialize(ByteReader& in) {
  PROVNET_ASSIGN_OR_RETURN(std::string pred, in.GetString());
  PROVNET_ASSIGN_OR_RETURN(uint64_t n, in.GetVarint());
  if (n > in.remaining()) return InvalidArgumentError("tuple arity too large");
  std::vector<Value> args;
  args.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PROVNET_ASSIGN_OR_RETURN(Value v, Value::Deserialize(in));
    args.push_back(std::move(v));
  }
  return Tuple(std::move(pred), std::move(args));
}

size_t Tuple::WireSize() const {
  ByteWriter w;
  Serialize(w);
  return w.size();
}

}  // namespace provnet
