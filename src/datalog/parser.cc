#include "datalog/parser.h"

#include "datalog/lexer.h"
#include "util/strings.h"

namespace provnet {
namespace {

bool IsFunctionName(const std::string& name) {
  return StartsWith(name, "f_");
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    std::optional<std::string> context;
    while (!Check(TokenKind::kEnd)) {
      // "At S:" opens a SeNDlog context block.
      if (Check(TokenKind::kVariable) && Peek().text == "At" &&
          PeekAhead().kind == TokenKind::kVariable) {
        Advance();
        Token var = Advance();
        PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kColon, "after At <Var>"));
        context = var.text;
        program.sendlog = true;
        continue;
      }
      if (Check(TokenKind::kIdent) && Peek().text == "materialize") {
        PROVNET_ASSIGN_OR_RETURN(MaterializeDecl decl, ParseMaterialize());
        program.materialize.push_back(std::move(decl));
        continue;
      }
      PROVNET_ASSIGN_OR_RETURN(Rule rule, ParseRuleOrFact());
      rule.context = context;
      if (rule.body.empty() && !rule.head_dest.has_value() &&
          IsGround(rule.head)) {
        program.facts.push_back(std::move(rule.head));
      } else {
        program.rules.push_back(std::move(rule));
      }
    }
    return program;
  }

  Result<Rule> ParseSingleRule() {
    PROVNET_ASSIGN_OR_RETURN(Rule rule, ParseRuleOrFact());
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kEnd, "after rule"));
    return rule;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead() const {
    return pos_ + 1 < tokens_.size() ? tokens_[pos_ + 1] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  Token Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return InvalidArgumentError(StrFormat("parse error at %d:%d: %s (got %s)",
                                          t.line, t.column, message.c_str(),
                                          t.Describe().c_str()));
  }

  Status Expect(TokenKind kind, const std::string& where) {
    if (Match(kind)) return OkStatus();
    return Error(std::string("expected ") + TokenKindName(kind) + " " + where);
  }

  static bool IsGround(const Atom& atom) {
    for (const Term& t : atom.args) {
      if (t.kind != TermKind::kConstant) return false;
    }
    return !atom.says.has_value();
  }

  Result<MaterializeDecl> ParseMaterialize() {
    Advance();  // "materialize"
    MaterializeDecl decl;
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after materialize"));
    if (!Check(TokenKind::kIdent)) return Error("expected predicate name");
    decl.predicate = Advance().text;
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kComma, "after predicate"));

    // TTL: number or "infinity".
    if (Check(TokenKind::kIdent) && Peek().text == "infinity") {
      Advance();
      decl.ttl_seconds = -1.0;
    } else if (Check(TokenKind::kInt)) {
      decl.ttl_seconds = static_cast<double>(Advance().int_value);
    } else if (Check(TokenKind::kDouble)) {
      decl.ttl_seconds = Advance().double_value;
    } else {
      return Error("expected TTL (seconds or infinity)");
    }
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kComma, "after TTL"));

    // Size: integer or "infinity".
    if (Check(TokenKind::kIdent) && Peek().text == "infinity") {
      Advance();
      decl.max_size = -1;
    } else if (Check(TokenKind::kInt)) {
      decl.max_size = Advance().int_value;
    } else {
      return Error("expected max table size (count or infinity)");
    }
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kComma, "after size"));

    if (!(Check(TokenKind::kIdent) && Peek().text == "keys")) {
      return Error("expected keys(...)");
    }
    Advance();
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after keys"));
    while (true) {
      if (!Check(TokenKind::kInt)) return Error("expected key position");
      decl.key_positions.push_back(static_cast<int>(Advance().int_value));
      if (!Match(TokenKind::kComma)) break;
    }
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after key list"));
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after keys(...)"));
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "after materialize"));
    return decl;
  }

  Result<Rule> ParseRuleOrFact() {
    Rule rule;
    // Optional label: IDENT immediately followed by IDENT (the head
    // predicate). "r2 reachable(...)".
    if (Check(TokenKind::kIdent) && PeekAhead().kind == TokenKind::kIdent) {
      rule.label = Advance().text;
    }
    PROVNET_ASSIGN_OR_RETURN(rule.head, ParseAtom(/*allow_agg=*/true));
    if (Match(TokenKind::kAt)) {
      if (Check(TokenKind::kInt)) {
        // "@3" destination: an address constant.
        Token t = Advance();
        if (t.int_value < 0 || t.int_value > UINT32_MAX) {
          return Error("destination address out of range");
        }
        rule.head_dest =
            Term::Const(Value::Address(static_cast<NodeId>(t.int_value)));
      } else {
        PROVNET_ASSIGN_OR_RETURN(Term dest, ParseTerm());
        rule.head_dest = std::move(dest);
      }
    }
    if (Match(TokenKind::kImplies)) {
      while (true) {
        PROVNET_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        rule.body.push_back(std::move(lit));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "at end of rule"));
    return rule;
  }

  Result<Literal> ParseLiteral() {
    // Assignment: VARIABLE ":=" expr.
    if (Check(TokenKind::kVariable) &&
        PeekAhead().kind == TokenKind::kAssign) {
      Literal lit;
      lit.kind = LiteralKind::kAssign;
      lit.assign_var = Advance().text;
      Advance();  // :=
      PROVNET_ASSIGN_OR_RETURN(lit.expr, ParseExpr());
      return lit;
    }
    // Plain atom: IDENT "(" with a non-function name.
    if (Check(TokenKind::kIdent) && PeekAhead().kind == TokenKind::kLParen &&
        !IsFunctionName(Peek().text)) {
      Literal lit;
      lit.kind = LiteralKind::kAtom;
      PROVNET_ASSIGN_OR_RETURN(lit.atom, ParseAtom(/*allow_agg=*/false));
      return lit;
    }
    // "P says atom": a term followed by the 'says' keyword.
    if ((Check(TokenKind::kVariable) || Check(TokenKind::kIdent)) &&
        PeekAhead().kind == TokenKind::kIdent && PeekAhead().text == "says") {
      PROVNET_ASSIGN_OR_RETURN(Term principal, ParseTerm());
      Advance();  // says
      Literal lit;
      lit.kind = LiteralKind::kAtom;
      PROVNET_ASSIGN_OR_RETURN(lit.atom, ParseAtom(/*allow_agg=*/false));
      lit.atom.says = std::move(principal);
      return lit;
    }
    // Otherwise: a boolean condition.
    Literal lit;
    lit.kind = LiteralKind::kCondition;
    PROVNET_ASSIGN_OR_RETURN(lit.expr, ParseExpr());
    if (!lit.expr.IsComparison()) {
      return Error("body expression must be a comparison");
    }
    return lit;
  }

  Result<Atom> ParseAtom(bool allow_agg) {
    Atom atom;
    if (!Check(TokenKind::kIdent)) return Error("expected predicate name");
    atom.predicate = Advance().text;
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after predicate"));
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        // Location marker.
        bool is_loc = false;
        if (Check(TokenKind::kAt)) {
          // "@X" or address literal "@3": the former marks the location
          // attribute, the latter is an address constant.
          if (PeekAhead().kind != TokenKind::kInt) {
            Advance();
            is_loc = true;
          }
        }
        // Aggregate argument (head only).
        if (allow_agg && Check(TokenKind::kIdent) &&
            (Peek().text == "min" || Peek().text == "max" ||
             Peek().text == "count") &&
            PeekAhead().kind == TokenKind::kLt) {
          AggKind agg = Peek().text == "min"
                            ? AggKind::kMin
                            : (Peek().text == "max" ? AggKind::kMax
                                                    : AggKind::kCount);
          Advance();  // agg name
          Advance();  // '<'
          if (!Check(TokenKind::kVariable)) {
            return Error("expected variable inside aggregate");
          }
          std::string var = Advance().text;
          PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kGt, "after aggregate"));
          atom.args.push_back(Term::Aggregate(agg, std::move(var)));
        } else {
          PROVNET_ASSIGN_OR_RETURN(Term t, ParseTerm());
          atom.args.push_back(std::move(t));
        }
        if (is_loc) {
          if (atom.loc_index >= 0) {
            return Error("multiple location specifiers in one atom");
          }
          atom.loc_index = static_cast<int>(atom.args.size()) - 1;
        }
        if (!Match(TokenKind::kComma)) break;
      }
    }
    PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after arguments"));
    return atom;
  }

  Result<Term> ParseTerm() {
    // Address literal @3.
    if (Check(TokenKind::kAt) && PeekAhead().kind == TokenKind::kInt) {
      Advance();
      Token t = Advance();
      if (t.int_value < 0 || t.int_value > UINT32_MAX) {
        return Error("address literal out of range");
      }
      return Term::Const(Value::Address(static_cast<NodeId>(t.int_value)));
    }
    if (Check(TokenKind::kVariable)) {
      return Term::Var(Advance().text);
    }
    if (Check(TokenKind::kInt)) {
      return Term::Const(Value::Int(Advance().int_value));
    }
    if (Check(TokenKind::kDouble)) {
      return Term::Const(Value::Real(Advance().double_value));
    }
    if (Check(TokenKind::kString)) {
      return Term::Const(Value::Str(Advance().text));
    }
    if (Check(TokenKind::kMinus)) {
      Advance();
      if (Check(TokenKind::kInt)) {
        return Term::Const(Value::Int(-Advance().int_value));
      }
      if (Check(TokenKind::kDouble)) {
        return Term::Const(Value::Real(-Advance().double_value));
      }
      return Error("expected number after unary minus");
    }
    if (Check(TokenKind::kIdent)) {
      std::string name = Advance().text;
      if (IsFunctionName(name)) {
        std::vector<Term> args;
        PROVNET_RETURN_IF_ERROR(
            Expect(TokenKind::kLParen, "after function name"));
        if (!Check(TokenKind::kRParen)) {
          while (true) {
            PROVNET_ASSIGN_OR_RETURN(Term t, ParseTerm());
            args.push_back(std::move(t));
            if (!Match(TokenKind::kComma)) break;
          }
        }
        PROVNET_RETURN_IF_ERROR(
            Expect(TokenKind::kRParen, "after function arguments"));
        return Term::Func(std::move(name), std::move(args));
      }
      // Bare lowercase identifier: a string constant (e.g. principal "a").
      return Term::Const(Value::Str(std::move(name)));
    }
    return Error("expected a term");
  }

  // expr := add_expr [cmp add_expr]
  Result<Expr> ParseExpr() {
    PROVNET_ASSIGN_OR_RETURN(Expr lhs, ParseAddExpr());
    ExprOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = ExprOp::kEq; break;
      case TokenKind::kNe: op = ExprOp::kNe; break;
      case TokenKind::kLt: op = ExprOp::kLt; break;
      case TokenKind::kLe: op = ExprOp::kLe; break;
      case TokenKind::kGt: op = ExprOp::kGt; break;
      case TokenKind::kGe: op = ExprOp::kGe; break;
      default:
        return lhs;
    }
    Advance();
    PROVNET_ASSIGN_OR_RETURN(Expr rhs, ParseAddExpr());
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<Expr> ParseAddExpr() {
    PROVNET_ASSIGN_OR_RETURN(Expr lhs, ParseMulExpr());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      ExprOp op = Check(TokenKind::kPlus) ? ExprOp::kAdd : ExprOp::kSub;
      Advance();
      PROVNET_ASSIGN_OR_RETURN(Expr rhs, ParseMulExpr());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseMulExpr() {
    PROVNET_ASSIGN_OR_RETURN(Expr lhs, ParseUnaryExpr());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
           Check(TokenKind::kPercent)) {
      ExprOp op = Check(TokenKind::kStar)
                      ? ExprOp::kMul
                      : (Check(TokenKind::kSlash) ? ExprOp::kDiv
                                                  : ExprOp::kMod);
      Advance();
      PROVNET_ASSIGN_OR_RETURN(Expr rhs, ParseUnaryExpr());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseUnaryExpr() {
    if (Match(TokenKind::kLParen)) {
      PROVNET_ASSIGN_OR_RETURN(Expr inner, ParseExpr());
      PROVNET_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after expression"));
      return inner;
    }
    PROVNET_ASSIGN_OR_RETURN(Term t, ParseTerm());
    return Expr::Leaf(std::move(t));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& source) {
  PROVNET_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

Result<Rule> ParseRule(const std::string& source) {
  PROVNET_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseSingleRule();
}

}  // namespace provnet
