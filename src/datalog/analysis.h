// Semantic analysis: safety (range restriction), location well-formedness,
// and dialect checks. Programs must pass Analyze() before planning.
#ifndef PROVNET_DATALOG_ANALYSIS_H_
#define PROVNET_DATALOG_ANALYSIS_H_

#include <set>
#include <string>

#include "datalog/ast.h"
#include "util/status.h"

namespace provnet {

// Collects the variables of a term (recursively for functions).
void CollectTermVars(const Term& term, std::set<std::string>& out);

// Collects the variables of an expression.
void CollectExprVars(const Expr& expr, std::set<std::string>& out);

// Variables bound by matching an atom (its variable arguments, and the says
// principal variable if present).
void CollectAtomVars(const Atom& atom, std::set<std::string>& out);

// Checks one rule:
//  * body literals can be ordered so each condition/assignment/function only
//    reads bound variables (atoms always bind; assignments bind their target)
//  * every head variable is bound by the body
//  * aggregates appear only in the head; their variable is bound
//  * NDlog dialect: every atom carries a location specifier, head location
//    variable is bound in the body
//  * SeNDlog dialect: atoms carry no location specifiers; the head
//    destination variable, if any, is bound; says-principal terms are
//    variables or constants
// On success also *reorders* rule.body into an evaluable order.
Status AnalyzeRule(Rule& rule, bool sendlog);

// Checks every rule in the program (reordering bodies in place) plus
// materialize declarations (known arity conflicts, valid key positions).
Status AnalyzeProgram(Program& program);

}  // namespace provnet

#endif  // PROVNET_DATALOG_ANALYSIS_H_
