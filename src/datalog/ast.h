// Abstract syntax for NDlog / SeNDlog programs (Sections 2.1-2.2 of the
// paper). The same AST covers both dialects:
//
//   NDlog    rules carry a location specifier "@X" on every predicate;
//   SeNDlog  rules live inside an "At S:" context block, bodies may use
//            "P says atom", and heads may carry a destination "@D".
#ifndef PROVNET_DATALOG_AST_H_
#define PROVNET_DATALOG_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "datalog/value.h"

namespace provnet {

enum class AggKind : uint8_t { kNone = 0, kMin, kMax, kCount };

const char* AggKindName(AggKind kind);

enum class TermKind : uint8_t {
  kVariable,
  kConstant,
  kFunction,   // f_* builtin call
  kAggregate,  // min<C> / max<C> / count<C>, head-only
};

// A term in an atom argument or expression. Function terms are recursive.
struct Term {
  TermKind kind = TermKind::kConstant;
  std::string name;         // variable or function name; aggregate variable
  Value constant;           // kConstant payload
  std::vector<Term> args;   // kFunction arguments
  AggKind agg = AggKind::kNone;  // kAggregate

  static Term Var(std::string name);
  static Term Const(Value v);
  static Term Func(std::string name, std::vector<Term> args);
  static Term Aggregate(AggKind agg, std::string var);

  std::string ToString() const;
};

// Predicate atom, e.g. link(@S,D) or `Z says linkD(S,Z)`.
struct Atom {
  std::string predicate;
  std::vector<Term> args;
  int loc_index = -1;  // index of the "@" argument; -1 if none (SeNDlog)
  std::optional<Term> says;  // asserting principal (SeNDlog body atoms)

  std::string ToString() const;
};

// Binary expression tree for conditions and assignment right-hand sides.
enum class ExprOp : uint8_t {
  kTerm,  // leaf
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

const char* ExprOpName(ExprOp op);

// True for the comparison operators (kEq..kGe) — the ops a condition
// literal may use. Shared by the Env evaluator and the slot-compiled
// evaluator so the two can never disagree on what counts as a condition.
bool IsComparisonOp(ExprOp op);

struct Expr {
  ExprOp op = ExprOp::kTerm;
  Term term;                   // kTerm leaf
  std::vector<Expr> children;  // binary ops: exactly 2

  static Expr Leaf(Term t);
  static Expr Binary(ExprOp op, Expr lhs, Expr rhs);

  bool IsComparison() const;
  std::string ToString() const;
};

enum class LiteralKind : uint8_t {
  kAtom,       // predicate atom (joins)
  kCondition,  // boolean expression (selection)
  kAssign,     // Var := expr
};

struct Literal {
  LiteralKind kind = LiteralKind::kAtom;
  Atom atom;               // kAtom
  std::string assign_var;  // kAssign target
  Expr expr;               // kCondition / kAssign RHS

  std::string ToString() const;
};

struct Rule {
  std::string label;  // optional ("r1", "sp2", ...)
  Atom head;
  // SeNDlog head destination: reachable(Z,Y)@Z  =>  dest = Var("Z").
  std::optional<Term> head_dest;
  std::vector<Literal> body;
  // Principal context variable from the enclosing "At S:" block, if any.
  std::optional<std::string> context;

  std::string ToString() const;
};

// materialize(pred, ttl_seconds, max_size, keys(1,2)). TTLs and sizes use
// -1 for "infinity". Key positions are 1-based attribute indexes per P2
// convention.
struct MaterializeDecl {
  std::string predicate;
  double ttl_seconds = -1.0;
  int64_t max_size = -1;
  std::vector<int> key_positions;

  std::string ToString() const;
};

struct Program {
  std::vector<MaterializeDecl> materialize;
  std::vector<Rule> rules;
  std::vector<Atom> facts;  // ground atoms
  // Set when the source used "At X:" blocks => SeNDlog dialect.
  bool sendlog = false;

  std::string ToString() const;
};

}  // namespace provnet

#endif  // PROVNET_DATALOG_AST_H_
