// Tuples: a predicate name plus a vector of values. The unit of storage,
// messaging, and provenance annotation.
#ifndef PROVNET_DATALOG_TUPLE_H_
#define PROVNET_DATALOG_TUPLE_H_

#include <string>
#include <vector>

#include "datalog/value.h"
#include "util/bytes.h"
#include "util/status.h"

namespace provnet {

class Tuple {
 public:
  Tuple() = default;
  Tuple(std::string predicate, std::vector<Value> args)
      : predicate_(std::move(predicate)), args_(std::move(args)) {}

  const std::string& predicate() const { return predicate_; }
  const std::vector<Value>& args() const { return args_; }
  size_t arity() const { return args_.size(); }
  const Value& arg(size_t i) const { return args_[i]; }

  bool operator==(const Tuple& other) const {
    return predicate_ == other.predicate_ && args_ == other.args_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const;

  uint64_t Hash() const;

  // "link(@0, @1, 5)".
  std::string ToString() const;

  void Serialize(ByteWriter& out) const;
  static Result<Tuple> Deserialize(ByteReader& in);

  // Serialized size in bytes (what the tuple costs on the wire).
  size_t WireSize() const;

 private:
  std::string predicate_;
  std::vector<Value> args_;
};

// Hash functor for hash maps keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(t.Hash());
  }
};

}  // namespace provnet

#endif  // PROVNET_DATALOG_TUPLE_H_
