#include "datalog/ast.h"

#include "util/strings.h"

namespace provnet {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kNone: return "none";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kCount: return "count";
  }
  return "?";
}

Term Term::Var(std::string name) {
  Term t;
  t.kind = TermKind::kVariable;
  t.name = std::move(name);
  return t;
}

Term Term::Const(Value v) {
  Term t;
  t.kind = TermKind::kConstant;
  t.constant = std::move(v);
  return t;
}

Term Term::Func(std::string name, std::vector<Term> args) {
  Term t;
  t.kind = TermKind::kFunction;
  t.name = std::move(name);
  t.args = std::move(args);
  return t;
}

Term Term::Aggregate(AggKind agg, std::string var) {
  Term t;
  t.kind = TermKind::kAggregate;
  t.agg = agg;
  t.name = std::move(var);
  return t;
}

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kVariable:
      return name;
    case TermKind::kConstant:
      return constant.ToString();
    case TermKind::kFunction: {
      std::vector<std::string> parts;
      parts.reserve(args.size());
      for (const Term& a : args) parts.push_back(a.ToString());
      return name + "(" + StrJoin(parts, ", ") + ")";
    }
    case TermKind::kAggregate:
      return std::string(AggKindName(agg)) + "<" + name + ">";
  }
  return "?";
}

std::string Atom::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    std::string s = args[i].ToString();
    if (static_cast<int>(i) == loc_index) s = "@" + s;
    parts.push_back(std::move(s));
  }
  std::string out = predicate + "(" + StrJoin(parts, ", ") + ")";
  if (says.has_value()) out = says->ToString() + " says " + out;
  return out;
}

const char* ExprOpName(ExprOp op) {
  switch (op) {
    case ExprOp::kTerm: return "<term>";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kMod: return "%";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
  }
  return "?";
}

Expr Expr::Leaf(Term t) {
  Expr e;
  e.op = ExprOp::kTerm;
  e.term = std::move(t);
  return e;
}

Expr Expr::Binary(ExprOp op, Expr lhs, Expr rhs) {
  Expr e;
  e.op = op;
  e.children.push_back(std::move(lhs));
  e.children.push_back(std::move(rhs));
  return e;
}

bool IsComparisonOp(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return true;
    default:
      return false;
  }
}

bool Expr::IsComparison() const { return IsComparisonOp(op); }

std::string Expr::ToString() const {
  if (op == ExprOp::kTerm) return term.ToString();
  return "(" + children[0].ToString() + " " + ExprOpName(op) + " " +
         children[1].ToString() + ")";
}

std::string Literal::ToString() const {
  switch (kind) {
    case LiteralKind::kAtom:
      return atom.ToString();
    case LiteralKind::kCondition:
      return expr.ToString();
    case LiteralKind::kAssign:
      return assign_var + " := " + expr.ToString();
  }
  return "?";
}

std::string Rule::ToString() const {
  std::string out;
  if (!label.empty()) out += label + " ";
  out += head.ToString();
  if (head_dest.has_value()) out += "@" + head_dest->ToString();
  if (!body.empty()) {
    out += " :- ";
    std::vector<std::string> parts;
    parts.reserve(body.size());
    for (const Literal& l : body) parts.push_back(l.ToString());
    out += StrJoin(parts, ", ");
  }
  out += ".";
  return out;
}

std::string MaterializeDecl::ToString() const {
  std::vector<std::string> keys;
  keys.reserve(key_positions.size());
  for (int k : key_positions) keys.push_back(std::to_string(k));
  std::string ttl = ttl_seconds < 0 ? "infinity" : StrFormat("%g", ttl_seconds);
  std::string size = max_size < 0 ? "infinity" : std::to_string(max_size);
  return "materialize(" + predicate + ", " + ttl + ", " + size + ", keys(" +
         StrJoin(keys, ",") + ")).";
}

std::string Program::ToString() const {
  std::string out;
  for (const MaterializeDecl& m : materialize) out += m.ToString() + "\n";
  std::optional<std::string> open_context;
  for (const Rule& r : rules) {
    if (r.context != open_context) {
      open_context = r.context;
      if (open_context.has_value()) out += "At " + *open_context + ":\n";
    }
    out += (open_context.has_value() ? "  " : "") + r.ToString() + "\n";
  }
  for (const Atom& f : facts) out += f.ToString() + ".\n";
  return out;
}

}  // namespace provnet
