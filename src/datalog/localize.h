// Localization rewrite (Loo et al., SIGMOD'06; Section 2.2 of the paper:
// "an additional localization rewrite ensures that all rule bodies are
// localized within a context").
//
// Input: an analyzed Program. Output: LocalizedRules whose bodies reference
// only tuples stored at one node, each annotated with
//   * local_var  - variable bound to the executing node's own address
//   * send_to    - where the head tuple ships (empty = stays local)
//
// NDlog rules whose bodies span multiple location variables are split by
// introducing auxiliary "ship" predicates. The classic example:
//
//   r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
// becomes
//   r2_ship1 r2_aux1(@Z,S) :- link(@S,Z).              (at S, send to Z)
//   r2       reachable(@S,D) :- r2_aux1(@Z,S),
//                                reachable(@Z,D).      (at Z, send to S)
//
// SeNDlog rules are localized by construction (bodies live in the local
// context); they pass through with local_var = context variable.
#ifndef PROVNET_DATALOG_LOCALIZE_H_
#define PROVNET_DATALOG_LOCALIZE_H_

#include <optional>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace provnet {

struct LocalizedRule {
  Rule rule;
  // Variable denoting the executing node (its address). For NDlog this is
  // the shared body location variable; for SeNDlog the context variable.
  std::string local_var;
  // If set, the head tuple is sent to the address this term evaluates to;
  // otherwise it is stored locally.
  std::optional<Term> send_to;
  // True for auxiliary ship rules synthesized by the rewrite.
  bool synthesized = false;

  std::string ToString() const;
};

// Auxiliary predicates introduced by the rewrite must be materialized at the
// receiving node; the rewrite reports them so the engine can create tables.
struct LocalizedProgram {
  std::vector<LocalizedRule> rules;
  std::vector<std::string> aux_predicates;
  bool sendlog = false;
};

// Rewrites an analyzed program. Fails when a rule's body cannot be
// localized (e.g. a location variable never bound at the shipping site).
Result<LocalizedProgram> LocalizeProgram(const Program& program);

}  // namespace provnet

#endif  // PROVNET_DATALOG_LOCALIZE_H_
