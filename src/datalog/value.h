// Runtime values flowing through NDlog/SeNDlog dataflows.
//
// NDlog attributes are dynamically typed. The kinds mirror what P2 supported
// for the paper's workloads: integers, doubles, strings, node addresses
// (location specifiers), and lists (path vectors for the Best-Path query).
#ifndef PROVNET_DATALOG_VALUE_H_
#define PROVNET_DATALOG_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace provnet {

// Identifies a simulated node; doubles as the value of location-specifier
// attributes.
using NodeId = uint32_t;

enum class ValueKind : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kAddress = 4,
  kList = 5,
};

const char* ValueKindName(ValueKind kind);

class Value {
 public:
  // Null value.
  Value() = default;

  static Value Int(int64_t v);
  static Value Real(double v);
  static Value Str(std::string v);
  static Value Address(NodeId v);
  static Value List(std::vector<Value> items);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }

  // Accessors abort on kind mismatch (programming error); use kind() first
  // for data-dependent paths.
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  NodeId AsAddress() const;
  const std::vector<Value>& AsList() const;

  // Numeric coercion: ints widen to double; errors otherwise.
  Result<double> ToNumber() const;

  // Equality is consistent with Compare() == 0 (Int 3 equals Double 3.0)
  // but avoids the full three-way comparison: it is the innermost check of
  // the join core's unification loop. Shared list payloads short-circuit by
  // pointer, so path-vector compares are O(1) in the common case.
  bool operator==(const Value& other) const {
    if (kind_ == other.kind_) {
      switch (kind_) {
        case ValueKind::kNull:
          return true;
        case ValueKind::kInt:
        case ValueKind::kAddress:
          return int_ == other.int_;
        case ValueKind::kDouble:
          return double_ == other.double_;
        case ValueKind::kString:
          return string_ == other.string_;
        case ValueKind::kList:
          return list_ == other.list_ || ListEquals(other);
      }
      return false;
    }
    // Cross-kind: only int/double mixes can still be equal.
    if (kind_ == ValueKind::kInt && other.kind_ == ValueKind::kDouble) {
      return static_cast<double>(int_) == other.double_;
    }
    if (kind_ == ValueKind::kDouble && other.kind_ == ValueKind::kInt) {
      return double_ == static_cast<double>(other.int_);
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Total order across kinds (kind tag first, then value); gives tables a
  // deterministic sort and makes MIN/MAX aggregates well defined.
  int Compare(const Value& other) const;
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  uint64_t Hash() const;

  // "42", "3.5", "\"abc\"", "@7", "[@1, @2]".
  std::string ToString() const;

  void Serialize(ByteWriter& out) const;
  static Result<Value> Deserialize(ByteReader& in);

 private:
  bool ListEquals(const Value& other) const;

  ValueKind kind_ = ValueKind::kNull;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  // List payload is shared so copying tuples with long path vectors is cheap.
  std::shared_ptr<const std::vector<Value>> list_;
};

}  // namespace provnet

#endif  // PROVNET_DATALOG_VALUE_H_
