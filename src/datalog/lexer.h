// Tokenizer for NDlog / SeNDlog source text.
#ifndef PROVNET_DATALOG_LEXER_H_
#define PROVNET_DATALOG_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace provnet {

enum class TokenKind : uint8_t {
  kEnd = 0,
  kIdent,     // starts with a lowercase letter: predicates, functions, keywords
  kVariable,  // starts with an uppercase letter or '_': variables, "At"
  kInt,
  kDouble,
  kString,    // "..." (escapes: \" \\ \n \t)
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kPeriod,    // .
  kAt,        // @
  kColon,     // :
  kImplies,   // :-
  kAssign,    // :=
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kEq,        // ==
  kNe,        // !=
  kPlus,      // +
  kMinus,     // -
  kStar,      // *
  kSlash,     // /
  kPercent,   // %
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier/variable/string payload
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

// Tokenizes the whole input. Comments run from "//" or "#" to end of line.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace provnet

#endif  // PROVNET_DATALOG_LEXER_H_
