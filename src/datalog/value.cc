#include "datalog/value.h"

#include <cmath>

#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

namespace provnet {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kAddress:
      return "address";
    case ValueKind::kList:
      return "list";
  }
  return "?";
}

Value Value::Int(int64_t v) {
  Value out;
  out.kind_ = ValueKind::kInt;
  out.int_ = v;
  return out;
}

Value Value::Real(double v) {
  Value out;
  out.kind_ = ValueKind::kDouble;
  out.double_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.kind_ = ValueKind::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::Address(NodeId v) {
  Value out;
  out.kind_ = ValueKind::kAddress;
  out.int_ = v;
  return out;
}

Value Value::List(std::vector<Value> items) {
  Value out;
  out.kind_ = ValueKind::kList;
  out.list_ = std::make_shared<const std::vector<Value>>(std::move(items));
  return out;
}

int64_t Value::AsInt() const {
  PROVNET_CHECK(kind_ == ValueKind::kInt) << "AsInt on " << ValueKindName(kind_);
  return int_;
}

double Value::AsDouble() const {
  PROVNET_CHECK(kind_ == ValueKind::kDouble)
      << "AsDouble on " << ValueKindName(kind_);
  return double_;
}

const std::string& Value::AsString() const {
  PROVNET_CHECK(kind_ == ValueKind::kString)
      << "AsString on " << ValueKindName(kind_);
  return string_;
}

NodeId Value::AsAddress() const {
  PROVNET_CHECK(kind_ == ValueKind::kAddress)
      << "AsAddress on " << ValueKindName(kind_);
  return static_cast<NodeId>(int_);
}

const std::vector<Value>& Value::AsList() const {
  PROVNET_CHECK(kind_ == ValueKind::kList)
      << "AsList on " << ValueKindName(kind_);
  return *list_;
}

Result<double> Value::ToNumber() const {
  switch (kind_) {
    case ValueKind::kInt:
      return static_cast<double>(int_);
    case ValueKind::kDouble:
      return double_;
    default:
      return InvalidArgumentError(std::string("not numeric: ") +
                                  ValueKindName(kind_));
  }
}

bool Value::ListEquals(const Value& other) const {
  const auto& a = *list_;
  const auto& b = *other.list_;
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

int Value::Compare(const Value& other) const {
  // Numeric kinds compare by value across int/double so "C < 5" behaves
  // naturally; all other cross-kind comparisons order by the kind tag.
  bool self_num = kind_ == ValueKind::kInt || kind_ == ValueKind::kDouble;
  bool other_num =
      other.kind_ == ValueKind::kInt || other.kind_ == ValueKind::kDouble;
  if (self_num && other_num) {
    if (kind_ == ValueKind::kInt && other.kind_ == ValueKind::kInt) {
      if (int_ != other.int_) return int_ < other.int_ ? -1 : 1;
      return 0;
    }
    double a = kind_ == ValueKind::kInt ? static_cast<double>(int_) : double_;
    double b = other.kind_ == ValueKind::kInt
                   ? static_cast<double>(other.int_)
                   : other.double_;
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kString: {
      int c = string_.compare(other.string_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueKind::kAddress: {
      if (int_ != other.int_) return int_ < other.int_ ? -1 : 1;
      return 0;
    }
    case ValueKind::kList: {
      const auto& a = *list_;
      const auto& b = *other.list_;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
    default:
      PROVNET_CHECK(false) << "unreachable";
      return 0;
  }
}

uint64_t Value::Hash() const {
  uint64_t h = Mix64(static_cast<uint64_t>(kind_));
  switch (kind_) {
    case ValueKind::kNull:
      break;
    case ValueKind::kInt:
    case ValueKind::kAddress:
      h = HashCombine(h, static_cast<uint64_t>(int_));
      break;
    case ValueKind::kDouble: {
      // Normalize -0.0 so equal doubles hash equally.
      double d = double_ == 0.0 ? 0.0 : double_;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      h = HashCombine(h, bits);
      break;
    }
    case ValueKind::kString:
      h = HashCombine(h, Fnv1a64(string_));
      break;
    case ValueKind::kList:
      for (const Value& v : *list_) h = HashCombine(h, v.Hash());
      break;
  }
  return h;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return std::to_string(int_);
    case ValueKind::kDouble:
      return StrFormat("%g", double_);
    case ValueKind::kString:
      return "\"" + string_ + "\"";
    case ValueKind::kAddress:
      return "@" + std::to_string(int_);
    case ValueKind::kList: {
      std::vector<std::string> parts;
      parts.reserve(list_->size());
      for (const Value& v : *list_) parts.push_back(v.ToString());
      return "[" + StrJoin(parts, ", ") + "]";
    }
  }
  return "?";
}

void Value::Serialize(ByteWriter& out) const {
  out.PutU8(static_cast<uint8_t>(kind_));
  switch (kind_) {
    case ValueKind::kNull:
      break;
    case ValueKind::kInt:
      out.PutI64(int_);
      break;
    case ValueKind::kDouble:
      out.PutDouble(double_);
      break;
    case ValueKind::kString:
      out.PutString(string_);
      break;
    case ValueKind::kAddress:
      out.PutVarint(static_cast<uint64_t>(int_));
      break;
    case ValueKind::kList:
      out.PutVarint(list_->size());
      for (const Value& v : *list_) v.Serialize(out);
      break;
  }
}

Result<Value> Value::Deserialize(ByteReader& in) {
  PROVNET_ASSIGN_OR_RETURN(uint8_t tag, in.GetU8());
  if (tag > static_cast<uint8_t>(ValueKind::kList)) {
    return InvalidArgumentError("bad value kind tag");
  }
  switch (static_cast<ValueKind>(tag)) {
    case ValueKind::kNull:
      return Value();
    case ValueKind::kInt: {
      PROVNET_ASSIGN_OR_RETURN(int64_t v, in.GetI64());
      return Int(v);
    }
    case ValueKind::kDouble: {
      PROVNET_ASSIGN_OR_RETURN(double v, in.GetDouble());
      return Real(v);
    }
    case ValueKind::kString: {
      PROVNET_ASSIGN_OR_RETURN(std::string v, in.GetString());
      return Str(std::move(v));
    }
    case ValueKind::kAddress: {
      PROVNET_ASSIGN_OR_RETURN(uint64_t v, in.GetVarint());
      if (v > UINT32_MAX) return InvalidArgumentError("address overflow");
      return Address(static_cast<NodeId>(v));
    }
    case ValueKind::kList: {
      PROVNET_ASSIGN_OR_RETURN(uint64_t n, in.GetVarint());
      if (n > in.remaining()) return InvalidArgumentError("list too long");
      std::vector<Value> items;
      items.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        PROVNET_ASSIGN_OR_RETURN(Value v, Deserialize(in));
        items.push_back(std::move(v));
      }
      return List(std::move(items));
    }
  }
  return InternalError("unreachable");
}

}  // namespace provnet
