#include "datalog/localize.h"

#include <algorithm>
#include <set>

#include "datalog/analysis.h"
#include "util/strings.h"

namespace provnet {

std::string LocalizedRule::ToString() const {
  std::string out = rule.ToString();
  out += "   // at " + local_var;
  if (send_to.has_value()) out += ", send to " + send_to->ToString();
  if (synthesized) out += " (synthesized)";
  return out;
}

namespace {

// Returns the location variable name of an NDlog atom. Constant locations
// are rejected earlier for body atoms in rules we rewrite.
Result<std::string> LocVarOf(const Atom& atom) {
  if (atom.loc_index < 0) {
    return InvalidArgumentError("atom " + atom.predicate +
                                " lacks a location specifier");
  }
  const Term& loc = atom.args[atom.loc_index];
  if (loc.kind != TermKind::kVariable) {
    return InvalidArgumentError("atom " + atom.predicate +
                                " has a constant location; rewrite expects a "
                                "variable");
  }
  return loc.name;
}

// Localizes one NDlog rule, appending results to `out` and aux predicate
// names to `aux`.
Status LocalizeNdlogRule(const Rule& input, std::vector<LocalizedRule>& out,
                         std::vector<std::string>& aux) {
  Rule rule = input;

  // Location groups in first-occurrence order over atom literals.
  auto group_order = [&rule]() -> Result<std::vector<std::string>> {
    std::vector<std::string> order;
    for (const Literal& lit : rule.body) {
      if (lit.kind != LiteralKind::kAtom) continue;
      PROVNET_ASSIGN_OR_RETURN(std::string loc, LocVarOf(lit.atom));
      if (std::find(order.begin(), order.end(), loc) == order.end()) {
        order.push_back(loc);
      }
    }
    return order;
  };

  PROVNET_ASSIGN_OR_RETURN(std::vector<std::string> groups, group_order());
  if (groups.empty()) {
    return InvalidArgumentError("rule " + rule.head.predicate +
                                " has no body atoms to localize");
  }

  int ship_counter = 0;
  while (groups.size() > 1) {
    const std::string& from_loc = groups[0];
    const std::string& to_loc = groups[1];

    // Partition body literals: atoms at from_loc move into the ship rule;
    // everything else stays.
    std::vector<Literal> shipped;
    std::vector<Literal> rest;
    for (Literal& lit : rule.body) {
      if (lit.kind == LiteralKind::kAtom) {
        PROVNET_ASSIGN_OR_RETURN(std::string loc, LocVarOf(lit.atom));
        if (loc == from_loc) {
          shipped.push_back(std::move(lit));
          continue;
        }
      }
      rest.push_back(std::move(lit));
    }

    // Variables bound by the shipped atoms.
    std::set<std::string> shipped_vars;
    for (const Literal& lit : shipped) CollectAtomVars(lit.atom, shipped_vars);
    if (shipped_vars.count(to_loc) == 0) {
      return InvalidArgumentError(
          "rule " + (rule.label.empty() ? rule.head.predicate : rule.label) +
          ": cannot localize; destination " + to_loc +
          " is not bound by the atoms at " + from_loc);
    }

    // Variables the remainder of the rule still needs.
    std::set<std::string> needed;
    for (const Literal& lit : rest) {
      if (lit.kind == LiteralKind::kAtom) {
        CollectAtomVars(lit.atom, needed);
      } else {
        CollectExprVars(lit.expr, needed);
        if (lit.kind == LiteralKind::kAssign) needed.insert(lit.assign_var);
      }
    }
    for (const Term& t : rule.head.args) CollectTermVars(t, needed);

    // Project: destination first (it becomes the aux location), then every
    // shipped variable the rest of the rule uses.
    std::vector<std::string> projected;
    projected.push_back(to_loc);
    for (const std::string& v : shipped_vars) {
      if (v != to_loc && needed.count(v) > 0) projected.push_back(v);
    }

    std::string aux_name =
        (rule.label.empty() ? rule.head.predicate : rule.label) + "_ship" +
        std::to_string(++ship_counter);
    aux.push_back(aux_name);

    // Ship rule: aux(@ToLoc, V...) :- shipped-atoms.  Runs at from_loc.
    Rule ship_rule;
    ship_rule.label = aux_name;
    ship_rule.head.predicate = aux_name;
    for (const std::string& v : projected) {
      ship_rule.head.args.push_back(Term::Var(v));
    }
    ship_rule.head.loc_index = 0;
    ship_rule.body = std::move(shipped);
    ship_rule.context = rule.context;

    LocalizedRule localized_ship;
    localized_ship.rule = std::move(ship_rule);
    localized_ship.local_var = from_loc;
    localized_ship.send_to = Term::Var(to_loc);
    localized_ship.synthesized = true;
    out.push_back(std::move(localized_ship));

    // Replace the shipped atoms with the aux atom in the original rule.
    Literal aux_lit;
    aux_lit.kind = LiteralKind::kAtom;
    aux_lit.atom.predicate = aux_name;
    for (const std::string& v : projected) {
      aux_lit.atom.args.push_back(Term::Var(v));
    }
    aux_lit.atom.loc_index = 0;
    rule.body.clear();
    rule.body.push_back(std::move(aux_lit));
    for (Literal& lit : rest) rule.body.push_back(std::move(lit));

    PROVNET_ASSIGN_OR_RETURN(groups, group_order());
  }

  // Single body location now; determine head shipping.
  const std::string& body_loc = groups[0];
  const Term& head_loc = rule.head.args[rule.head.loc_index];

  LocalizedRule localized;
  localized.local_var = body_loc;
  if (head_loc.kind == TermKind::kVariable && head_loc.name == body_loc) {
    localized.send_to = std::nullopt;  // stays local
  } else {
    localized.send_to = head_loc;
  }
  localized.rule = std::move(rule);
  out.push_back(std::move(localized));
  return OkStatus();
}

}  // namespace

Result<LocalizedProgram> LocalizeProgram(const Program& program) {
  LocalizedProgram out;
  out.sendlog = program.sendlog;
  for (const Rule& rule : program.rules) {
    if (program.sendlog) {
      LocalizedRule localized;
      localized.rule = rule;
      localized.local_var = rule.context.value_or("");
      if (localized.local_var.empty()) {
        return InvalidArgumentError("SeNDlog rule outside an At block");
      }
      if (rule.head_dest.has_value()) {
        const Term& dest = *rule.head_dest;
        bool self_dest = dest.kind == TermKind::kVariable &&
                         dest.name == localized.local_var;
        if (!self_dest) localized.send_to = dest;
      }
      out.rules.push_back(std::move(localized));
    } else {
      PROVNET_RETURN_IF_ERROR(
          LocalizeNdlogRule(rule, out.rules, out.aux_predicates));
    }
  }
  return out;
}

}  // namespace provnet
