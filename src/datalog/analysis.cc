#include "datalog/analysis.h"

#include <algorithm>

#include "util/strings.h"

namespace provnet {

void CollectTermVars(const Term& term, std::set<std::string>& out) {
  switch (term.kind) {
    case TermKind::kVariable:
      out.insert(term.name);
      break;
    case TermKind::kAggregate:
      out.insert(term.name);
      break;
    case TermKind::kFunction:
      for (const Term& a : term.args) CollectTermVars(a, out);
      break;
    case TermKind::kConstant:
      break;
  }
}

void CollectExprVars(const Expr& expr, std::set<std::string>& out) {
  if (expr.op == ExprOp::kTerm) {
    CollectTermVars(expr.term, out);
    return;
  }
  for (const Expr& child : expr.children) CollectExprVars(child, out);
}

void CollectAtomVars(const Atom& atom, std::set<std::string>& out) {
  for (const Term& t : atom.args) CollectTermVars(t, out);
  if (atom.says.has_value()) CollectTermVars(*atom.says, out);
}

namespace {

Status RuleError(const Rule& rule, const std::string& message) {
  std::string label = rule.label.empty() ? rule.head.predicate : rule.label;
  return InvalidArgumentError("rule " + label + ": " + message);
}

// True if every variable read by the literal is already bound. Atom literals
// are always schedulable (they bind); function terms inside atom args,
// however, must read bound variables only (they are computed, not matched).
bool IsSchedulable(const Literal& lit, const std::set<std::string>& bound) {
  auto all_bound = [&bound](const std::set<std::string>& vars) {
    return std::all_of(vars.begin(), vars.end(),
                       [&bound](const std::string& v) {
                         return bound.count(v) > 0;
                       });
  };
  switch (lit.kind) {
    case LiteralKind::kAtom:
      return true;
    case LiteralKind::kCondition: {
      std::set<std::string> vars;
      CollectExprVars(lit.expr, vars);
      return all_bound(vars);
    }
    case LiteralKind::kAssign: {
      std::set<std::string> vars;
      CollectExprVars(lit.expr, vars);
      return all_bound(vars);
    }
  }
  return false;
}

void BindLiteral(const Literal& lit, std::set<std::string>& bound) {
  switch (lit.kind) {
    case LiteralKind::kAtom: {
      // An atom binds its plain variable args and says variable; function
      // terms inside atoms do not bind (they are evaluated and compared).
      for (const Term& t : lit.atom.args) {
        if (t.kind == TermKind::kVariable) bound.insert(t.name);
      }
      if (lit.atom.says.has_value() &&
          lit.atom.says->kind == TermKind::kVariable) {
        bound.insert(lit.atom.says->name);
      }
      break;
    }
    case LiteralKind::kAssign:
      bound.insert(lit.assign_var);
      break;
    case LiteralKind::kCondition:
      break;
  }
}

// Checks that function terms used inside atom arguments only read variables
// bound *before* this atom (we do not invert functions).
Status CheckAtomFunctionArgs(const Rule& rule, const Atom& atom,
                             const std::set<std::string>& bound_before) {
  for (const Term& t : atom.args) {
    if (t.kind != TermKind::kFunction) continue;
    std::set<std::string> vars;
    CollectTermVars(t, vars);
    for (const std::string& v : vars) {
      if (bound_before.count(v) == 0) {
        return RuleError(rule, "function argument uses unbound variable " + v);
      }
    }
  }
  return OkStatus();
}

Status CheckNoAggregates(const Rule& rule, const Atom& atom) {
  for (const Term& t : atom.args) {
    if (t.kind == TermKind::kAggregate) {
      return RuleError(rule, "aggregates are only allowed in rule heads");
    }
  }
  return OkStatus();
}

}  // namespace

Status AnalyzeRule(Rule& rule, bool sendlog) {
  // --- Dialect-specific shape checks -------------------------------------
  if (sendlog) {
    if (!rule.context.has_value()) {
      return RuleError(rule, "SeNDlog rule outside an At block");
    }
    if (rule.head.loc_index >= 0) {
      return RuleError(rule,
                       "SeNDlog heads use '@Dest' after the atom, not a "
                       "location attribute");
    }
    for (const Literal& lit : rule.body) {
      if (lit.kind == LiteralKind::kAtom && lit.atom.loc_index >= 0) {
        return RuleError(rule, "SeNDlog body atoms carry no '@' attribute");
      }
    }
    if (rule.head_dest.has_value() &&
        rule.head_dest->kind == TermKind::kFunction) {
      return RuleError(rule, "head destination must be a variable or constant");
    }
  } else {
    if (rule.head_dest.has_value()) {
      return RuleError(rule, "NDlog heads place '@' on an attribute instead "
                             "of a destination suffix");
    }
    if (rule.head.loc_index < 0) {
      return RuleError(rule, "NDlog head needs a location specifier");
    }
    for (const Literal& lit : rule.body) {
      if (lit.kind != LiteralKind::kAtom) continue;
      if (lit.atom.loc_index < 0) {
        return RuleError(rule, "NDlog body atom " + lit.atom.predicate +
                                   " needs a location specifier");
      }
      if (lit.atom.says.has_value()) {
        return RuleError(rule, "'says' requires the SeNDlog dialect");
      }
      const Term& loc = lit.atom.args[lit.atom.loc_index];
      if (loc.kind != TermKind::kVariable &&
          loc.kind != TermKind::kConstant) {
        return RuleError(rule, "location specifier must be a variable or "
                               "constant");
      }
    }
  }

  // Says principals must be variables or constants.
  for (const Literal& lit : rule.body) {
    if (lit.kind == LiteralKind::kAtom && lit.atom.says.has_value()) {
      const Term& p = *lit.atom.says;
      if (p.kind != TermKind::kVariable && p.kind != TermKind::kConstant) {
        return RuleError(rule, "says principal must be a variable or constant");
      }
    }
  }

  // Aggregates only in the head; at most one; head must not be says-tagged.
  int agg_count = 0;
  for (const Term& t : rule.head.args) {
    if (t.kind == TermKind::kAggregate) ++agg_count;
  }
  if (agg_count > 1) {
    return RuleError(rule, "at most one aggregate per head");
  }
  for (const Literal& lit : rule.body) {
    if (lit.kind == LiteralKind::kAtom) {
      PROVNET_RETURN_IF_ERROR(CheckNoAggregates(rule, lit.atom));
    }
  }

  // --- Greedy sideways-information-passing schedule -----------------------
  // Repeatedly pick the first schedulable literal; atoms always qualify.
  // This both validates boundedness and fixes the evaluation order used by
  // the planner.
  std::vector<Literal> pending = std::move(rule.body);
  std::vector<Literal> ordered;
  std::set<std::string> bound;
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!IsSchedulable(pending[i], bound)) continue;
      if (pending[i].kind == LiteralKind::kAtom) {
        PROVNET_RETURN_IF_ERROR(
            CheckAtomFunctionArgs(rule, pending[i].atom, bound));
      }
      BindLiteral(pending[i], bound);
      ordered.push_back(std::move(pending[i]));
      pending.erase(pending.begin() + static_cast<long>(i));
      progressed = true;
      break;
    }
    if (!progressed) {
      std::set<std::string> missing;
      for (const Literal& lit : pending) {
        std::set<std::string> vars;
        if (lit.kind == LiteralKind::kAtom) {
          CollectAtomVars(lit.atom, vars);
        } else {
          CollectExprVars(lit.expr, vars);
        }
        for (const std::string& v : vars) {
          if (bound.count(v) == 0) missing.insert(v);
        }
      }
      return RuleError(
          rule, "cannot order body literals; unbound: " +
                    StrJoin(std::vector<std::string>(missing.begin(),
                                                     missing.end()),
                            ", "));
    }
  }
  rule.body = std::move(ordered);

  // --- Head safety ---------------------------------------------------------
  std::set<std::string> head_vars;
  for (const Term& t : rule.head.args) CollectTermVars(t, head_vars);
  if (rule.head_dest.has_value()) CollectTermVars(*rule.head_dest, head_vars);
  for (const std::string& v : head_vars) {
    if (bound.count(v) > 0) continue;
    // The SeNDlog context variable is implicitly bound to the local node.
    if (sendlog && rule.context.has_value() && v == *rule.context) continue;
    return RuleError(rule, "head variable " + v + " is not bound by the body");
  }

  // NDlog: head location variable must be bound (checked above as a head
  // var) and body must contain at least one atom for recursive rules.
  if (!sendlog && rule.body.empty()) {
    return RuleError(rule, "NDlog rules need a non-empty body (use facts "
                           "for ground tuples)");
  }
  return OkStatus();
}

Status AnalyzeProgram(Program& program) {
  for (const MaterializeDecl& decl : program.materialize) {
    if (decl.predicate.empty()) {
      return InvalidArgumentError("materialize: empty predicate");
    }
    for (int k : decl.key_positions) {
      if (k < 1) {
        return InvalidArgumentError("materialize " + decl.predicate +
                                    ": key positions are 1-based");
      }
    }
  }
  for (Rule& rule : program.rules) {
    PROVNET_RETURN_IF_ERROR(AnalyzeRule(rule, program.sendlog));
  }
  for (const Atom& fact : program.facts) {
    for (const Term& t : fact.args) {
      if (t.kind != TermKind::kConstant) {
        return InvalidArgumentError("fact " + fact.predicate +
                                    " has non-constant arguments");
      }
    }
    if (!program.sendlog && fact.loc_index < 0) {
      // Convention: a fact whose first argument is an address constant is
      // stored at that address (P2 places tuples by their first attribute).
      bool first_is_address =
          !fact.args.empty() && fact.args[0].kind == TermKind::kConstant &&
          fact.args[0].constant.kind() == ValueKind::kAddress;
      if (!first_is_address) {
        return InvalidArgumentError("NDlog fact " + fact.predicate +
                                    " needs a location specifier");
      }
    }
  }
  return OkStatus();
}

}  // namespace provnet
