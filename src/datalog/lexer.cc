#include "datalog/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace provnet {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "double";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kPeriod: return "'.'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kImplies: return "':-'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
  }
  return "?";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent:
    case TokenKind::kVariable:
      return "'" + text + "'";
    case TokenKind::kInt:
      return std::to_string(int_value);
    case TokenKind::kDouble:
      return StrFormat("%g", double_value);
    case TokenKind::kString:
      return "\"" + text + "\"";
    default:
      return TokenKindName(kind);
  }
}

namespace {

class Cursor {
 public:
  explicit Cursor(const std::string& src) : src_(src) {}

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  char PeekAhead() const {
    return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

Status LexError(const Cursor& c, const std::string& message) {
  return InvalidArgumentError(StrFormat("lex error at %d:%d: %s", c.line(),
                                        c.column(), message.c_str()));
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  Cursor c(source);

  auto push = [&tokens, &c](TokenKind kind) -> Token& {
    Token t;
    t.kind = kind;
    t.line = c.line();
    t.column = c.column();
    tokens.push_back(std::move(t));
    return tokens.back();
  };

  while (!c.AtEnd()) {
    char ch = c.Peek();
    // Whitespace.
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n') {
      c.Advance();
      continue;
    }
    // Comments.
    if (ch == '#' || (ch == '/' && c.PeekAhead() == '/')) {
      while (!c.AtEnd() && c.Peek() != '\n') c.Advance();
      continue;
    }
    // Identifiers and variables.
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      bool is_var = std::isupper(static_cast<unsigned char>(ch)) || ch == '_';
      Token& t = push(is_var ? TokenKind::kVariable : TokenKind::kIdent);
      std::string text;
      while (!c.AtEnd() &&
             (std::isalnum(static_cast<unsigned char>(c.Peek())) ||
              c.Peek() == '_')) {
        text.push_back(c.Advance());
      }
      t.text = std::move(text);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      Token& t = push(TokenKind::kInt);
      std::string text;
      bool is_double = false;
      while (!c.AtEnd() &&
             std::isdigit(static_cast<unsigned char>(c.Peek()))) {
        text.push_back(c.Advance());
      }
      if (c.Peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(c.PeekAhead()))) {
        is_double = true;
        text.push_back(c.Advance());  // '.'
        while (!c.AtEnd() &&
               std::isdigit(static_cast<unsigned char>(c.Peek()))) {
          text.push_back(c.Advance());
        }
      }
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::stod(text);
      } else {
        t.int_value = std::stoll(text);
      }
      continue;
    }
    // Strings.
    if (ch == '"') {
      Token& t = push(TokenKind::kString);
      c.Advance();  // opening quote
      std::string text;
      while (true) {
        if (c.AtEnd()) return LexError(c, "unterminated string literal");
        char s = c.Advance();
        if (s == '"') break;
        if (s == '\\') {
          if (c.AtEnd()) return LexError(c, "unterminated escape");
          char e = c.Advance();
          switch (e) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '"': text.push_back('"'); break;
            case '\\': text.push_back('\\'); break;
            default:
              return LexError(c, std::string("bad escape \\") + e);
          }
        } else {
          text.push_back(s);
        }
      }
      t.text = std::move(text);
      continue;
    }
    // Punctuation / operators.
    switch (ch) {
      case '(': c.Advance(); push(TokenKind::kLParen); break;
      case ')': c.Advance(); push(TokenKind::kRParen); break;
      case ',': c.Advance(); push(TokenKind::kComma); break;
      case '.': c.Advance(); push(TokenKind::kPeriod); break;
      case '@': c.Advance(); push(TokenKind::kAt); break;
      case '+': c.Advance(); push(TokenKind::kPlus); break;
      case '-': c.Advance(); push(TokenKind::kMinus); break;
      case '*': c.Advance(); push(TokenKind::kStar); break;
      case '/': c.Advance(); push(TokenKind::kSlash); break;
      case '%': c.Advance(); push(TokenKind::kPercent); break;
      case ':':
        c.Advance();
        if (c.Peek() == '-') {
          c.Advance();
          push(TokenKind::kImplies);
        } else if (c.Peek() == '=') {
          c.Advance();
          push(TokenKind::kAssign);
        } else {
          push(TokenKind::kColon);
        }
        break;
      case '<':
        c.Advance();
        if (c.Peek() == '=') {
          c.Advance();
          push(TokenKind::kLe);
        } else {
          push(TokenKind::kLt);
        }
        break;
      case '>':
        c.Advance();
        if (c.Peek() == '=') {
          c.Advance();
          push(TokenKind::kGe);
        } else {
          push(TokenKind::kGt);
        }
        break;
      case '=':
        c.Advance();
        if (c.Peek() == '=') {
          c.Advance();
          push(TokenKind::kEq);
        } else {
          return LexError(c, "'=' must be '==' (or ':=' for assignment)");
        }
        break;
      case '!':
        c.Advance();
        if (c.Peek() == '=') {
          c.Advance();
          push(TokenKind::kNe);
        } else {
          return LexError(c, "'!' must be '!='");
        }
        break;
      default:
        return LexError(c, std::string("unexpected character '") + ch + "'");
    }
  }
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace provnet
