#include "bdd/bdd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/mem.h"
#include "util/hash.h"
#include "util/logging.h"

namespace provnet {

namespace {
constexpr uint32_t kTerminalVar = 0xFFFFFFFFu;
}  // namespace

size_t BddManager::UniqueKeyHash::operator()(const UniqueKey& k) const {
  uint64_t h = HashCombine(k.var, k.low);
  return static_cast<size_t>(HashCombine(h, k.high));
}

size_t BddManager::IteKeyHash::operator()(const IteKey& k) const {
  uint64_t h = HashCombine(k.f, k.g);
  return static_cast<size_t>(HashCombine(h, k.h));
}

namespace {
// Per-node charge against obs::MemSubsystem::kBddNodes: the arena slot plus
// the unique-table entry (key + ref + bucket overhead). A stable estimate, so
// the destructor can release exactly what was added.
constexpr uint64_t kBddNodeAccountedBytes =
    sizeof(uint32_t) + 2 * sizeof(BddRef) +  // Node
    sizeof(uint32_t) + 3 * sizeof(BddRef) +  // UniqueKey + mapped BddRef
    2 * sizeof(void*);                       // hash-table bucket overhead
}  // namespace

BddManager::BddManager() {
  // Terminals: index 0 = false, 1 = true.
  nodes_.push_back(Node{kTerminalVar, 0, 0});
  nodes_.push_back(Node{kTerminalVar, 1, 1});
  accounted_bytes_ = 2 * kBddNodeAccountedBytes;
  obs::MemAccounting::Global().Add(obs::MemSubsystem::kBddNodes,
                                   accounted_bytes_);
}

BddManager::~BddManager() {
  if (accounted_bytes_ > 0) {
    obs::MemAccounting::Global().Sub(obs::MemSubsystem::kBddNodes,
                                     accounted_bytes_);
  }
}

BddRef BddManager::MakeNode(uint32_t var, BddRef low, BddRef high) {
  if (low == high) return low;  // reduction rule
  UniqueKey key{var, low, high};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, low, high});
  unique_.emplace(key, ref);
  accounted_bytes_ += kBddNodeAccountedBytes;
  obs::MemAccounting::Global().Add(obs::MemSubsystem::kBddNodes,
                                   kBddNodeAccountedBytes);
  return ref;
}

BddRef BddManager::Var(uint32_t v) { return MakeNode(v, kBddFalse, kBddTrue); }

BddRef BddManager::NotVar(uint32_t v) {
  return MakeNode(v, kBddTrue, kBddFalse);
}

uint32_t BddManager::TopVar(BddRef f) const {
  PROVNET_CHECK(!IsTerminal(f)) << "TopVar of a terminal";
  return nodes_[f].var;
}

BddRef BddManager::Low(BddRef f) const {
  PROVNET_CHECK(!IsTerminal(f));
  return nodes_[f].low;
}

BddRef BddManager::High(BddRef f) const {
  PROVNET_CHECK(!IsTerminal(f));
  return nodes_[f].high;
}

BddRef BddManager::Ite(BddRef f, BddRef g, BddRef h) {
  // Terminal shortcuts.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;

  IteKey key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  // Split on the top variable among f, g, h.
  uint32_t var = kTerminalVar;
  if (!IsTerminal(f)) var = std::min(var, nodes_[f].var);
  if (!IsTerminal(g)) var = std::min(var, nodes_[g].var);
  if (!IsTerminal(h)) var = std::min(var, nodes_[h].var);

  auto cofactor = [this, var](BddRef x, bool positive) {
    if (IsTerminal(x) || nodes_[x].var != var) return x;
    return positive ? nodes_[x].high : nodes_[x].low;
  };

  BddRef high = Ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  BddRef low = Ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  BddRef result = MakeNode(var, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::And(BddRef a, BddRef b) { return Ite(a, b, kBddFalse); }

BddRef BddManager::Or(BddRef a, BddRef b) { return Ite(a, kBddTrue, b); }

BddRef BddManager::Not(BddRef a) { return Ite(a, kBddFalse, kBddTrue); }

BddRef BddManager::Xor(BddRef a, BddRef b) { return Ite(a, Not(b), b); }

BddRef BddManager::Restrict(BddRef f, uint32_t v, bool value) {
  if (IsTerminal(f)) return f;
  const Node& n = nodes_[f];
  if (n.var > v) return f;  // v does not occur below (ordering)
  if (n.var == v) return value ? n.high : n.low;
  BddRef low = Restrict(n.low, v, value);
  BddRef high = Restrict(n.high, v, value);
  return MakeNode(n.var, low, high);
}

BddRef BddManager::Exists(BddRef f, uint32_t v) {
  return Or(Restrict(f, v, false), Restrict(f, v, true));
}

bool BddManager::Eval(
    BddRef f, const std::unordered_map<uint32_t, bool>& assignment) const {
  while (!IsTerminal(f)) {
    const Node& n = nodes_[f];
    auto it = assignment.find(n.var);
    bool bit = it != assignment.end() && it->second;
    f = bit ? n.high : n.low;
  }
  return f == kBddTrue;
}

double BddManager::SatCount(BddRef f, uint32_t num_vars) const {
  // count(node) = #satisfying assignments of vars in [var(node), num_vars).
  std::unordered_map<BddRef, double> memo;
  // Recursive lambda via explicit stack-free recursion helper.
  struct Helper {
    const std::vector<Node>& nodes;
    uint32_t num_vars;
    std::unordered_map<BddRef, double>& memo;
    double Count(BddRef f) const {
      if (f == kBddFalse) return 0.0;
      if (f == kBddTrue) return 1.0;
      auto it = memo.find(f);
      if (it != memo.end()) return it->second;
      const Node& n = nodes[f];
      auto var_of = [this](BddRef x) {
        return x <= kBddTrue ? num_vars : nodes[x].var;
      };
      double lo = Count(n.low) * std::pow(2.0, var_of(n.low) - n.var - 1);
      double hi = Count(n.high) * std::pow(2.0, var_of(n.high) - n.var - 1);
      double total = lo + hi;
      memo.emplace(f, total);
      return total;
    }
  };
  Helper helper{nodes_, num_vars, memo};
  if (f == kBddFalse) return 0.0;
  if (f == kBddTrue) return std::pow(2.0, num_vars);
  PROVNET_CHECK(nodes_[f].var < num_vars) << "variable outside num_vars";
  return helper.Count(f) * std::pow(2.0, nodes_[f].var);
}

size_t BddManager::NodeCount(BddRef f) const {
  std::unordered_set<BddRef> seen;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    BddRef cur = stack.back();
    stack.pop_back();
    if (IsTerminal(cur) || !seen.insert(cur).second) continue;
    stack.push_back(nodes_[cur].low);
    stack.push_back(nodes_[cur].high);
  }
  return seen.size();
}

std::vector<uint32_t> BddManager::Support(BddRef f) const {
  std::unordered_set<BddRef> seen;
  std::unordered_set<uint32_t> vars;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    BddRef cur = stack.back();
    stack.pop_back();
    if (IsTerminal(cur) || !seen.insert(cur).second) continue;
    vars.insert(nodes_[cur].var);
    stack.push_back(nodes_[cur].low);
    stack.push_back(nodes_[cur].high);
  }
  std::vector<uint32_t> out(vars.begin(), vars.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<uint32_t>> BddManager::MonotoneCubes(BddRef f) const {
  // Enumerate 1-paths; for a monotone function the variables taken positively
  // along a path form a satisfying set, and dropping 0-branch literals keeps
  // it satisfying. Then apply absorption: remove supersets.
  std::vector<std::vector<uint32_t>> cubes;
  std::vector<uint32_t> path;
  struct Helper {
    const std::vector<Node>& nodes;
    std::vector<std::vector<uint32_t>>& cubes;
    std::vector<uint32_t>& path;
    void Walk(BddRef f) {
      if (f == kBddFalse) return;
      if (f == kBddTrue) {
        cubes.push_back(path);
        return;
      }
      const Node& n = nodes[f];
      // 0-branch first (shorter cubes early helps absorption below).
      Walk(n.low);
      path.push_back(n.var);
      Walk(n.high);
      path.pop_back();
    }
  };
  Helper helper{nodes_, cubes, path};
  helper.Walk(f);

  for (auto& cube : cubes) std::sort(cube.begin(), cube.end());
  std::sort(cubes.begin(), cubes.end(),
            [](const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  // Absorption: drop any cube that is a superset of an earlier (kept) cube.
  std::vector<std::vector<uint32_t>> minimal;
  for (const auto& cube : cubes) {
    bool dominated = false;
    for (const auto& kept : minimal) {
      if (std::includes(cube.begin(), cube.end(), kept.begin(), kept.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(cube);
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

}  // namespace provnet
