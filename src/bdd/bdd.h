// Reduced Ordered Binary Decision Diagrams, from scratch.
//
// Replaces the paper's Buddy v2.4 dependency. Condensed provenance
// (Section 4.4) encodes a provenance-semiring polynomial as a boolean
// function over base-tuple/principal variables; the ROBDD is the canonical
// form, and absorption (a + a*b = a) falls out of canonicity. Prime
// implicants of the (monotone) function are the minimal support sets used to
// print condensed annotations such as <a>.
//
// Nodes live in a manager-scoped arena with a unique table; there is no
// garbage collection (managers are cheap to create per query/experiment and
// drop wholesale).
#ifndef PROVNET_BDD_BDD_H_
#define PROVNET_BDD_BDD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace provnet {

// A node handle within one BddManager. 0 and 1 are the terminals.
using BddRef = uint32_t;

constexpr BddRef kBddFalse = 0;
constexpr BddRef kBddTrue = 1;

class BddManager {
 public:
  BddManager();
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // --- Construction -------------------------------------------------------

  BddRef False() const { return kBddFalse; }
  BddRef True() const { return kBddTrue; }

  // The function "variable v" (v is an ordering index; lower = nearer root).
  BddRef Var(uint32_t v);
  // The function "NOT variable v".
  BddRef NotVar(uint32_t v);

  // --- Operations ---------------------------------------------------------

  BddRef And(BddRef a, BddRef b);
  BddRef Or(BddRef a, BddRef b);
  BddRef Not(BddRef a);
  BddRef Xor(BddRef a, BddRef b);
  BddRef Ite(BddRef f, BddRef g, BddRef h);

  // Cofactor: f with variable v fixed to `value`.
  BddRef Restrict(BddRef f, uint32_t v, bool value);

  // Existential quantification of a single variable.
  BddRef Exists(BddRef f, uint32_t v);

  // --- Inspection ---------------------------------------------------------

  bool IsTerminal(BddRef f) const { return f <= kBddTrue; }
  uint32_t TopVar(BddRef f) const;
  BddRef Low(BddRef f) const;
  BddRef High(BddRef f) const;

  // Evaluates f under a full assignment (variables absent from the map
  // default to false).
  bool Eval(BddRef f, const std::unordered_map<uint32_t, bool>& assignment)
      const;

  // Number of satisfying assignments over `num_vars` total variables
  // (variables with index >= num_vars must not occur in f).
  double SatCount(BddRef f, uint32_t num_vars) const;

  // Number of distinct DAG nodes reachable from f (terminals excluded).
  size_t NodeCount(BddRef f) const;

  // Variables appearing in f, ascending.
  std::vector<uint32_t> Support(BddRef f) const;

  // Prime implicants of a *monotone* f as sets of variable indices (each set
  // sorted ascending; the list sorted lexicographically). For condensed
  // provenance these are the minimal base-tuple sets that make the
  // derivation hold: Cubes(a + a*b) == {{a}}.
  std::vector<std::vector<uint32_t>> MonotoneCubes(BddRef f) const;

  // Total nodes allocated in the arena (diagnostics / benches).
  size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    uint32_t var;
    BddRef low;
    BddRef high;
  };

  struct UniqueKey {
    uint32_t var;
    BddRef low;
    BddRef high;
    bool operator==(const UniqueKey& o) const {
      return var == o.var && low == o.low && high == o.high;
    }
  };
  struct UniqueKeyHash {
    size_t operator()(const UniqueKey& k) const;
  };

  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey& o) const {
      return f == o.f && g == o.g && h == o.h;
    }
  };
  struct IteKeyHash {
    size_t operator()(const IteKey& k) const;
  };

  BddRef MakeNode(uint32_t var, BddRef low, BddRef high);

  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, BddRef, UniqueKeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
  // Bytes charged against obs::MemSubsystem::kBddNodes, released in the
  // destructor (the arena never shrinks in between).
  uint64_t accounted_bytes_ = 0;
};

}  // namespace provnet

#endif  // PROVNET_BDD_BDD_H_
