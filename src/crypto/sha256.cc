#include "crypto/sha256.h"

#include <cstring>

// SHA-NI fast path: the compression function is the hot spot of the whole
// provenance pipeline (every Merkle ContentDigest, tuple digest, and wire
// decode-cache key funnels through it), so use the dedicated x86
// instructions when the CPU has them. Runtime-dispatched: the portable
// scalar rounds below stay the fallback and the reference.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PROVNET_SHA_NI 1
#include <immintrin.h>
#endif

namespace provnet {
namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint32_t RotR(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

#if PROVNET_SHA_NI
// One 64-byte block with the SHA extension: two lanes of four state words
// (ABEF / CDGH), four rounds per _mm_sha256rnds2_epu32, message schedule
// via _mm_sha256msg1/msg2. Round constants are kK packed pairwise.
// w[i..i+3] + K[i..i+3] (kK packed four at a time).
__attribute__((target("sha,sse4.1,ssse3"))) inline __m128i ShaK(int i) {
  return _mm_set_epi32(static_cast<int>(kK[i + 3]), static_cast<int>(kK[i + 2]),
                       static_cast<int>(kK[i + 1]), static_cast<int>(kK[i]));
}

// Four rounds: feed w[i..i+3]+K into both rnds2 halves.
__attribute__((target("sha,sse4.1,ssse3"))) inline void ShaRounds(
    __m128i& state0, __m128i& state1, __m128i wk) {
  state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(wk, 0x0E));
}

// Schedule expansion: w0 <- next four w's from the previous four vectors.
__attribute__((target("sha,sse4.1,ssse3"))) inline void ShaExpand(
    __m128i& w0, __m128i w1, __m128i w2, __m128i w3) {
  w0 = _mm_sha256msg1_epu32(w0, w1);
  w0 = _mm_add_epi32(w0, _mm_alignr_epi8(w3, w2, 4));
  w0 = _mm_sha256msg2_epu32(w0, w3);
}

__attribute__((target("sha,sse4.1,ssse3"))) void ProcessBlockShaNi(
    uint32_t* state, const uint8_t* data) {
  const __m128i kShuf =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);                   // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);             // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH
  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;

  __m128i msg0 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuf);
  __m128i msg1 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuf);
  __m128i msg2 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuf);
  __m128i msg3 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuf);

  ShaRounds(state0, state1, _mm_add_epi32(msg0, ShaK(0)));
  ShaRounds(state0, state1, _mm_add_epi32(msg1, ShaK(4)));
  ShaRounds(state0, state1, _mm_add_epi32(msg2, ShaK(8)));
  ShaRounds(state0, state1, _mm_add_epi32(msg3, ShaK(12)));
  for (int i = 16; i < 64; i += 16) {
    ShaExpand(msg0, msg1, msg2, msg3);
    ShaRounds(state0, state1, _mm_add_epi32(msg0, ShaK(i)));
    ShaExpand(msg1, msg2, msg3, msg0);
    ShaRounds(state0, state1, _mm_add_epi32(msg1, ShaK(i + 4)));
    ShaExpand(msg2, msg3, msg0, msg1);
    ShaRounds(state0, state1, _mm_add_epi32(msg2, ShaK(i + 8)));
    ShaExpand(msg3, msg0, msg1, msg2);
    ShaRounds(state0, state1, _mm_add_epi32(msg3, ShaK(i + 12)));
  }

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);
  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE -> EFGH order below
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool HaveShaNi() {
  static const bool have = __builtin_cpu_supports("sha");
  return have;
}
#endif  // PROVNET_SHA_NI

}  // namespace

Sha256::Sha256() { Reset(); }

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::ProcessBlock(const uint8_t* block) {
#if PROVNET_SHA_NI
  if (HaveShaNi()) {
    ProcessBlockShaNi(state_, block);
    return;
  }
#endif
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<uint32_t>(block[i * 4]) << 24 |
           static_cast<uint32_t>(block[i * 4 + 1]) << 16 |
           static_cast<uint32_t>(block[i * 4 + 2]) << 8 |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  if (buffer_len_ > 0) {
    size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(data);
    data += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

void Sha256::Update(const Bytes& data) { Update(data.data(), data.size()); }

void Sha256::Update(const std::string& data) {
  Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

Sha256Digest Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (8 * (7 - i)));
  }
  // Bypass total_len_ bookkeeping for the length suffix.
  std::memcpy(buffer_ + 56, len_bytes, 8);
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return digest;
}

Sha256Digest Sha256::Hash(const Bytes& data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

Sha256Digest Sha256::Hash(const std::string& data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

std::string DigestToHex(const Sha256Digest& digest) {
  return BytesToHex(Bytes(digest.begin(), digest.end()));
}

Bytes DigestToBytes(const Sha256Digest& digest) {
  return Bytes(digest.begin(), digest.end());
}

}  // namespace provnet
