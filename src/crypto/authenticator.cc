#include "crypto/authenticator.h"

#include "crypto/hmac.h"

namespace provnet {

const char* SaysLevelName(SaysLevel level) {
  switch (level) {
    case SaysLevel::kCleartext:
      return "cleartext";
    case SaysLevel::kHmac:
      return "hmac";
    case SaysLevel::kRsa:
      return "rsa";
  }
  return "?";
}

void SaysTag::Serialize(ByteWriter& out) const {
  out.PutU8(static_cast<uint8_t>(level));
  out.PutString(principal);
  out.PutBlob(proof);
}

Result<SaysTag> SaysTag::Deserialize(ByteReader& in) {
  SaysTag tag;
  PROVNET_ASSIGN_OR_RETURN(uint8_t level, in.GetU8());
  if (level > static_cast<uint8_t>(SaysLevel::kRsa)) {
    return InvalidArgumentError("bad says level");
  }
  tag.level = static_cast<SaysLevel>(level);
  PROVNET_ASSIGN_OR_RETURN(tag.principal, in.GetString());
  PROVNET_ASSIGN_OR_RETURN(tag.proof, in.GetBlob());
  return tag;
}

size_t SaysTag::WireSize() const {
  ByteWriter w;
  Serialize(w);
  return w.size();
}

Result<SaysTag> Authenticator::Say(const Principal& principal,
                                   const Bytes& payload, SaysLevel level) {
  SaysTag tag;
  tag.level = level;
  tag.principal = principal;
  switch (level) {
    case SaysLevel::kCleartext:
      break;
    case SaysLevel::kHmac: {
      sign_count_.fetch_add(1, std::memory_order_relaxed);
      Sha256Digest mac = HmacSha256(keystore_->HmacKeyFor(principal), payload);
      tag.proof.assign(mac.begin(), mac.end());
      break;
    }
    case SaysLevel::kRsa: {
      sign_count_.fetch_add(1, std::memory_order_relaxed);
      PROVNET_ASSIGN_OR_RETURN(const RsaKeyPair* kp,
                               keystore_->KeyPairFor(principal));
      PROVNET_ASSIGN_OR_RETURN(tag.proof, RsaSign(kp->priv, payload));
      break;
    }
  }
  return tag;
}

Status Authenticator::Verify(const SaysTag& tag, const Bytes& payload) {
  switch (tag.level) {
    case SaysLevel::kCleartext:
      return OkStatus();
    case SaysLevel::kHmac: {
      verify_count_.fetch_add(1, std::memory_order_relaxed);
      Sha256Digest expected =
          HmacSha256(keystore_->HmacKeyFor(tag.principal), payload);
      if (tag.proof.size() != expected.size()) {
        return UnauthenticatedError("MAC length mismatch");
      }
      Sha256Digest got;
      std::copy(tag.proof.begin(), tag.proof.end(), got.begin());
      if (!DigestEqual(expected, got)) {
        return UnauthenticatedError("MAC mismatch for principal " +
                                    tag.principal);
      }
      return OkStatus();
    }
    case SaysLevel::kRsa: {
      verify_count_.fetch_add(1, std::memory_order_relaxed);
      PROVNET_ASSIGN_OR_RETURN(const RsaPublicKey* pub,
                               keystore_->PublicKeyFor(tag.principal));
      return RsaVerify(*pub, payload, tag.proof);
    }
  }
  return InternalError("unreachable says level");
}

}  // namespace provnet
