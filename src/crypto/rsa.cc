#include "crypto/rsa.h"

#include "crypto/sha256.h"

namespace provnet {
namespace {

// Builds the padded message representative for a key of `k` bytes:
// 0x00 || 0x01 || 0xFF.. || 0x00 || digest(-prefix). For k < digest+11 the
// digest is truncated (simulation-scale keys); at least 8 bytes of digest
// are always embedded.
Result<Bytes> BuildPaddedDigest(const Bytes& message, size_t k) {
  Sha256Digest digest = Sha256::Hash(message);
  size_t digest_len = kSha256DigestSize;
  if (k < digest_len + 11) {
    if (k < 8 + 11) {
      return InvalidArgumentError("RSA modulus too small for signing");
    }
    digest_len = k - 11;
  }
  Bytes em(k, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[k - digest_len - 1] = 0x00;
  for (size_t i = 0; i < digest_len; ++i) {
    em[k - digest_len + i] = digest[i];
  }
  return em;
}

}  // namespace

Result<RsaKeyPair> RsaGenerateKeyPair(size_t bits, Rng& rng) {
  if (bits < 128 || bits % 2 != 0) {
    return InvalidArgumentError("RSA key size must be even and >= 128 bits");
  }
  BigInt e(65537);
  while (true) {
    BigInt p = BigInt::GeneratePrime(bits / 2, rng);
    BigInt q = BigInt::GeneratePrime(bits / 2, rng);
    if (p == q) continue;
    if (p < q) std::swap(p, q);  // CRT below wants p > q for qinv mod p
    BigInt n = p * q;
    if (n.BitLength() != bits) continue;
    BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (!(BigInt::Gcd(e, phi) == BigInt(1))) continue;

    Result<BigInt> d = e.ModInverse(phi);
    if (!d.ok()) continue;

    RsaKeyPair kp;
    kp.pub.n = n;
    kp.pub.e = e;
    kp.priv.n = n;
    kp.priv.e = e;
    kp.priv.d = d.value();
    kp.priv.p = p;
    kp.priv.q = q;
    PROVNET_ASSIGN_OR_RETURN(kp.priv.dp, d.value().Mod(p - BigInt(1)));
    PROVNET_ASSIGN_OR_RETURN(kp.priv.dq, d.value().Mod(q - BigInt(1)));
    PROVNET_ASSIGN_OR_RETURN(kp.priv.qinv, q.ModInverse(p));
    return kp;
  }
}

Result<BigInt> RsaPrivateOp(const RsaPrivateKey& priv, const BigInt& m) {
  if (m >= priv.n) return InvalidArgumentError("message >= modulus");
  // CRT: s1 = m^dp mod p, s2 = m^dq mod q, s = s2 + q*(qinv*(s1-s2) mod p).
  PROVNET_ASSIGN_OR_RETURN(BigInt s1, m.ModExp(priv.dp, priv.p));
  PROVNET_ASSIGN_OR_RETURN(BigInt s2, m.ModExp(priv.dq, priv.q));
  PROVNET_ASSIGN_OR_RETURN(BigInt h, (priv.qinv * (s1 - s2)).Mod(priv.p));
  return s2 + priv.q * h;
}

Result<BigInt> RsaPublicOp(const RsaPublicKey& pub, const BigInt& m) {
  if (m >= pub.n) return InvalidArgumentError("value >= modulus");
  return m.ModExp(pub.e, pub.n);
}

Result<Bytes> RsaSign(const RsaPrivateKey& priv, const Bytes& message) {
  size_t k = priv.ByteLength();
  PROVNET_ASSIGN_OR_RETURN(Bytes em, BuildPaddedDigest(message, k));
  BigInt m = BigInt::FromBytes(em);
  PROVNET_ASSIGN_OR_RETURN(BigInt s, RsaPrivateOp(priv, m));
  return s.ToBytesPadded(k);
}

Status RsaVerify(const RsaPublicKey& pub, const Bytes& message,
                 const Bytes& signature) {
  size_t k = pub.ByteLength();
  if (signature.size() != k) {
    return UnauthenticatedError("signature length mismatch");
  }
  BigInt s = BigInt::FromBytes(signature);
  Result<BigInt> m = RsaPublicOp(pub, s);
  if (!m.ok()) return UnauthenticatedError("signature out of range");
  Result<Bytes> recovered = m.value().ToBytesPadded(k);
  if (!recovered.ok()) return UnauthenticatedError("bad recovered block");
  PROVNET_ASSIGN_OR_RETURN(Bytes expected, BuildPaddedDigest(message, k));
  if (recovered.value() != expected) {
    return UnauthenticatedError("signature mismatch");
  }
  return OkStatus();
}

}  // namespace provnet
