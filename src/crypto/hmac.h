// HMAC-SHA256 (RFC 2104). Backs the intermediate "says" security level
// (Section 2.2 of the paper suggests multiple says operators with different
// security levels; HMAC models a shared-key world cheaper than RSA).
#ifndef PROVNET_CRYPTO_HMAC_H_
#define PROVNET_CRYPTO_HMAC_H_

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace provnet {

// Computes HMAC-SHA256(key, data).
Sha256Digest HmacSha256(const Bytes& key, const Bytes& data);

// Constant-time comparison of two digests.
bool DigestEqual(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace provnet

#endif  // PROVNET_CRYPTO_HMAC_H_
