// SHA-256 (FIPS 180-4), implemented from scratch. Used for message digests
// under RSA signatures, HMAC, Bloom-filter digesting, and content hashes of
// provenance tree nodes.
#ifndef PROVNET_CRYPTO_SHA256_H_
#define PROVNET_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace provnet {

constexpr size_t kSha256DigestSize = 32;

using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

// Incremental hasher.
class Sha256 {
 public:
  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data);
  void Update(const std::string& data);

  // Finalizes and returns the digest. The hasher must not be reused after
  // Finish (call Reset first).
  Sha256Digest Finish();

  void Reset();

  // One-shot convenience.
  static Sha256Digest Hash(const Bytes& data);
  static Sha256Digest Hash(const std::string& data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

// Hex string of a digest.
std::string DigestToHex(const Sha256Digest& digest);

// Digest as a Bytes vector.
Bytes DigestToBytes(const Sha256Digest& digest);

}  // namespace provnet

#endif  // PROVNET_CRYPTO_SHA256_H_
