#include "crypto/hmac.h"

namespace provnet {

Sha256Digest HmacSha256(const Bytes& key, const Bytes& data) {
  constexpr size_t kBlockSize = 64;
  Bytes k = key;
  if (k.size() > kBlockSize) {
    Sha256Digest kd = Sha256::Hash(k);
    k.assign(kd.begin(), kd.end());
  }
  k.resize(kBlockSize, 0);

  Bytes ipad(kBlockSize), opad(kBlockSize);
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(data);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

bool DigestEqual(const Sha256Digest& a, const Sha256Digest& b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace provnet
