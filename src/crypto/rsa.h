// RSA signatures built on bignum/bigint.h, replacing the paper's OpenSSL
// v0.9.8b dependency.
//
// Signing uses SHA-256 digests under PKCS#1 v1.5-style padding
// (0x00 0x01 0xFF.. 0x00 || digest) and CRT exponentiation. Key sizes are a
// parameter: the simulation defaults to small keys (fast enough to sign per
// tuple at N=100 nodes) while tests exercise 512/1024-bit keys. Small keys
// truncate the embedded digest to fit the modulus; this preserves the cost
// structure (one modular exponentiation per tuple) that the paper measures.
#ifndef PROVNET_CRYPTO_RSA_H_
#define PROVNET_CRYPTO_RSA_H_

#include <cstdint>

#include "bignum/bigint.h"
#include "util/bytes.h"
#include "util/random.h"
#include "util/status.h"

namespace provnet {

struct RsaPublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent
  size_t ByteLength() const { return (n.BitLength() + 7) / 8; }
};

struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  // CRT components.
  BigInt p;
  BigInt q;
  BigInt dp;    // d mod (p-1)
  BigInt dq;    // d mod (q-1)
  BigInt qinv;  // q^{-1} mod p
  size_t ByteLength() const { return (n.BitLength() + 7) / 8; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

// Generates an RSA key pair with a modulus of `bits` bits (e = 65537).
// bits must be >= 128 and even. Deterministic given the Rng state.
Result<RsaKeyPair> RsaGenerateKeyPair(size_t bits, Rng& rng);

// Signs `message` (hashed internally with SHA-256). The signature is exactly
// priv.ByteLength() bytes.
Result<Bytes> RsaSign(const RsaPrivateKey& priv, const Bytes& message);

// Verifies a signature produced by RsaSign. OK on success;
// kUnauthenticated when the signature does not match.
Status RsaVerify(const RsaPublicKey& pub, const Bytes& message,
                 const Bytes& signature);

// Raw RSA primitives (exposed for tests).
Result<BigInt> RsaPrivateOp(const RsaPrivateKey& priv, const BigInt& m);
Result<BigInt> RsaPublicOp(const RsaPublicKey& pub, const BigInt& m);

}  // namespace provnet

#endif  // PROVNET_CRYPTO_RSA_H_
