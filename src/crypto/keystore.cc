#include "crypto/keystore.h"

#include "util/hash.h"
#include "util/logging.h"
#include "util/random.h"

namespace provnet {

KeyStore::KeyStore(uint64_t seed, size_t rsa_bits)
    : seed_(seed), rsa_bits_(rsa_bits) {}

size_t KeyStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

Result<const KeyStore::Entry*> KeyStore::EntryFor(const Principal& principal) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(principal);
  if (it != keys_.end()) return &it->second;

  // Deterministic per-principal stream.
  Rng rng(HashCombine(seed_, Fnv1a64(principal)));
  PROVNET_ASSIGN_OR_RETURN(RsaKeyPair kp, RsaGenerateKeyPair(rsa_bits_, rng));
  Entry entry;
  entry.rsa = std::move(kp);
  entry.hmac_key.resize(32);
  for (auto& b : entry.hmac_key) b = static_cast<uint8_t>(rng.Next());
  auto [pos, inserted] = keys_.emplace(principal, std::move(entry));
  PROVNET_CHECK(inserted);
  return &pos->second;
}

Result<const RsaKeyPair*> KeyStore::KeyPairFor(const Principal& principal) {
  PROVNET_ASSIGN_OR_RETURN(const Entry* entry, EntryFor(principal));
  return &entry->rsa;
}

Result<const RsaPublicKey*> KeyStore::PublicKeyFor(const Principal& principal) {
  PROVNET_ASSIGN_OR_RETURN(const Entry* entry, EntryFor(principal));
  return &entry->rsa.pub;
}

const Bytes& KeyStore::HmacKeyFor(const Principal& principal) {
  Result<const Entry*> entry = EntryFor(principal);
  PROVNET_CHECK(entry.ok()) << entry.status();
  return entry.value()->hmac_key;
}

}  // namespace provnet
