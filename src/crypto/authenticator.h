// The "says" operator (SeNDlog, Section 2.2).
//
// "says" abstracts authentication. The paper: "In a hostile world, says may
// require digital signatures; in a more benign world, says may simply append
// a cleartext principal header — and this will of course be cheaper. The
// policy writer could additionally provide hints ... supporting multiple
// says operators with different security levels."
//
// We implement exactly that ladder:
//   kCleartext  - principal name only, no cryptography
//   kHmac       - HMAC-SHA256 with the principal's shared key
//   kRsa        - RSA signature over the payload (the evaluation's setting)
#ifndef PROVNET_CRYPTO_AUTHENTICATOR_H_
#define PROVNET_CRYPTO_AUTHENTICATOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "crypto/keystore.h"
#include "util/bytes.h"
#include "util/status.h"

namespace provnet {

enum class SaysLevel : uint8_t { kCleartext = 0, kHmac = 1, kRsa = 2 };

const char* SaysLevelName(SaysLevel level);

// An authentication tag attached to an exported tuple or provenance node.
struct SaysTag {
  SaysLevel level = SaysLevel::kCleartext;
  Principal principal;
  Bytes proof;  // empty for kCleartext; MAC or signature otherwise

  // Wire encoding appended to message payloads (its size is charged to
  // bandwidth).
  void Serialize(ByteWriter& out) const;
  static Result<SaysTag> Deserialize(ByteReader& in);

  // Serialized size in bytes.
  size_t WireSize() const;
};

// Signs and verifies SaysTags against a KeyStore. Counts operations so
// benches can report per-primitive work.
class Authenticator {
 public:
  explicit Authenticator(KeyStore* keystore) : keystore_(keystore) {}

  // Produces a tag asserting `principal says payload` at `level`.
  Result<SaysTag> Say(const Principal& principal, const Bytes& payload,
                      SaysLevel level);

  // Verifies the tag against the payload. kCleartext always verifies (it
  // asserts identity without proof). Returns kUnauthenticated on mismatch.
  Status Verify(const SaysTag& tag, const Bytes& payload);

  uint64_t sign_count() const {
    return sign_count_.load(std::memory_order_relaxed);
  }
  uint64_t verify_count() const {
    return verify_count_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    sign_count_.store(0, std::memory_order_relaxed);
    verify_count_.store(0, std::memory_order_relaxed);
  }

 private:
  KeyStore* keystore_;
  // Relaxed atomics: worker shards sign/verify concurrently; the totals are
  // commutative sums, identical at every thread count.
  std::atomic<uint64_t> sign_count_{0};
  std::atomic<uint64_t> verify_count_{0};
};

}  // namespace provnet

#endif  // PROVNET_CRYPTO_AUTHENTICATOR_H_
