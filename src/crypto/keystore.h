// Principal identities and key material.
//
// A Principal is a named security context (SeNDlog's "At S:"). The KeyStore
// plays the role of the deployment's PKI: it deterministically derives each
// principal's RSA key pair and HMAC secret from (global seed, principal
// name), so all simulated nodes agree on public keys without modelling key
// exchange.
#ifndef PROVNET_CRYPTO_KEYSTORE_H_
#define PROVNET_CRYPTO_KEYSTORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/status.h"

namespace provnet {

using Principal = std::string;

class KeyStore {
 public:
  // `rsa_bits` controls the modulus size of derived keys (even, >= 128).
  explicit KeyStore(uint64_t seed, size_t rsa_bits = 512);

  size_t rsa_bits() const { return rsa_bits_; }

  // Derives (and caches) key material for `principal` on first use.
  Result<const RsaKeyPair*> KeyPairFor(const Principal& principal);
  Result<const RsaPublicKey*> PublicKeyFor(const Principal& principal);

  // Per-principal symmetric secret for the HMAC says level. In the simulated
  // deployment every node can verify every principal's MAC (a shared-key
  // world, the paper's "more benign" setting).
  const Bytes& HmacKeyFor(const Principal& principal);

  // Number of principals with derived material (for tests/inspection).
  size_t size() const;

 private:
  struct Entry {
    RsaKeyPair rsa;
    Bytes hmac_key;
  };

  Result<const Entry*> EntryFor(const Principal& principal);

  uint64_t seed_;
  size_t rsa_bits_;
  // Guards keys_: worker shards sign/verify concurrently and may race a
  // first-use derivation. Derived material depends only on (seed_,
  // principal), and std::map node stability keeps returned pointers valid
  // across later inserts, so derivation order never affects results.
  mutable std::mutex mu_;
  std::map<Principal, Entry> keys_;
};

}  // namespace provnet

#endif  // PROVNET_CRYPTO_KEYSTORE_H_
