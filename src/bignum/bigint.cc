#include "bignum/bigint.h"

#include <algorithm>
#include <ostream>

#include "util/logging.h"

namespace provnet {
namespace {

constexpr uint64_t kBase = 1ULL << 32;

// Small primes for trial division during prime generation.
constexpr uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

BigInt::BigInt(int64_t v) {
  uint64_t mag;
  if (v < 0) {
    negative_ = true;
    mag = static_cast<uint64_t>(-(v + 1)) + 1;  // avoids INT64_MIN overflow
  } else {
    mag = static_cast<uint64_t>(v);
  }
  if (mag != 0) {
    limbs_.push_back(static_cast<uint32_t>(mag));
    if (mag >> 32) limbs_.push_back(static_cast<uint32_t>(mag >> 32));
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::FromU64(uint64_t v) {
  BigInt out;
  if (v != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(v));
    if (v >> 32) out.limbs_.push_back(static_cast<uint32_t>(v >> 32));
  }
  return out;
}

BigInt BigInt::FromLimbs(std::vector<uint32_t> limbs, bool negative) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.negative_ = negative;
  out.Normalize();
  return out;
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

Result<BigInt> BigInt::FromDecimal(const std::string& text) {
  if (text.empty()) return InvalidArgumentError("empty decimal literal");
  size_t i = 0;
  bool negative = false;
  if (text[0] == '-') {
    negative = true;
    i = 1;
    if (text.size() == 1) return InvalidArgumentError("bare minus sign");
  }
  BigInt out;
  BigInt ten(10);
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return InvalidArgumentError("bad decimal digit in: " + text);
    }
    out = out * ten + BigInt(c - '0');
  }
  out.negative_ = negative && !out.IsZero();
  return out;
}

Result<BigInt> BigInt::FromHex(const std::string& text) {
  if (text.empty()) return InvalidArgumentError("empty hex literal");
  BigInt out;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return InvalidArgumentError("bad hex digit in: " + text);
    }
    out = out.ShiftLeft(4) + BigInt(digit);
  }
  return out;
}

BigInt BigInt::FromBytes(const Bytes& bytes) {
  BigInt out;
  for (uint8_t b : bytes) {
    out = out.ShiftLeft(8) + BigInt(b);
  }
  return out;
}

Bytes BigInt::ToBytes() const {
  Bytes out;
  size_t bits = BitLength();
  size_t nbytes = (bits + 7) / 8;
  out.resize(nbytes);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t limb = i / 4;
    size_t shift = (i % 4) * 8;
    out[nbytes - 1 - i] = static_cast<uint8_t>(limbs_[limb] >> shift);
  }
  return out;
}

Result<Bytes> BigInt::ToBytesPadded(size_t width) const {
  Bytes raw = ToBytes();
  if (raw.size() > width) {
    return OutOfRangeError("value does not fit in " + std::to_string(width) +
                           " bytes");
  }
  Bytes out(width - raw.size(), 0);
  out.insert(out.end(), raw.begin(), raw.end());
  return out;
}

std::string BigInt::ToDecimal() const {
  if (IsZero()) return "0";
  // Repeated division by 10^9 to peel decimal chunks.
  std::vector<uint32_t> work = limbs_;
  std::string digits;
  while (!work.empty()) {
    uint64_t rem = 0;
    for (size_t i = work.size(); i > 0; --i) {
      uint64_t cur = (rem << 32) | work[i - 1];
      work[i - 1] = static_cast<uint32_t>(cur / 1000000000U);
      rem = cur % 1000000000U;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i > 0; --i) {
    for (int nib = 7; nib >= 0; --nib) {
      out.push_back(kHex[(limbs_[i - 1] >> (nib * 4)) & 0xF]);
    }
  }
  size_t first = out.find_first_not_of('0');
  out = out.substr(first);
  if (negative_) out.insert(out.begin(), '-');
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::GetBit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigInt::CompareMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i > 0; --i) {
    if (a[i - 1] != b[i - 1]) return a[i - 1] < b[i - 1] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMag(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

int BigInt::CompareMagnitude(const BigInt& other) const {
  return CompareMag(limbs_, other.limbs_);
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

std::vector<uint32_t> BigInt::AddMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> out(big.size() + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < big.size(); ++i) {
    uint64_t sum = carry + big[i] + (i < small.size() ? small[i] : 0);
    out[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out[big.size()] = static_cast<uint32_t>(carry);
  return out;
}

std::vector<uint32_t> BigInt::SubMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out(a.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<uint32_t>(diff);
  }
  return out;
}

std::vector<uint32_t> BigInt::MulMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    out[i + b.size()] = static_cast<uint32_t>(carry);
  }
  return out;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  if (negative_ == rhs.negative_) {
    return FromLimbs(AddMag(limbs_, rhs.limbs_), negative_);
  }
  int cmp = CompareMag(limbs_, rhs.limbs_);
  if (cmp == 0) return BigInt();
  if (cmp > 0) return FromLimbs(SubMag(limbs_, rhs.limbs_), negative_);
  return FromLimbs(SubMag(rhs.limbs_, limbs_), rhs.negative_);
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  return FromLimbs(MulMag(limbs_, rhs.limbs_), negative_ != rhs.negative_);
}

BigInt BigInt::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) return *this;
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  std::vector<uint32_t> out(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<uint32_t>(v);
    out[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  return FromLimbs(std::move(out), negative_);
}

BigInt BigInt::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  size_t bit_shift = bits % 32;
  std::vector<uint32_t> out(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out[i] = static_cast<uint32_t>(v);
  }
  return FromLimbs(std::move(out), negative_);
}

Result<BigIntDivMod> BigInt::DivMod(const BigInt& divisor) const {
  if (divisor.IsZero()) return InvalidArgumentError("division by zero");

  // Magnitude comparison shortcuts.
  int cmp = CompareMag(limbs_, divisor.limbs_);
  if (cmp < 0) {
    return BigIntDivMod{BigInt(), *this};
  }

  std::vector<uint32_t> q;
  std::vector<uint32_t> r;

  if (divisor.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    uint32_t d = divisor.limbs_[0];
    q.assign(limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = limbs_.size(); i > 0; --i) {
      uint64_t cur = (rem << 32) | limbs_[i - 1];
      q[i - 1] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    if (rem != 0) r.push_back(static_cast<uint32_t>(rem));
  } else {
    // Knuth algorithm D. Normalize so the divisor's top limb has its high
    // bit set.
    size_t n = divisor.limbs_.size();
    int shift = 0;
    uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000U) == 0) {
      top <<= 1;
      ++shift;
    }
    BigInt u = Abs().ShiftLeft(shift);
    BigInt v = divisor.Abs().ShiftLeft(shift);
    std::vector<uint32_t> un = u.limbs_;
    un.push_back(0);  // extra limb for the algorithm
    const std::vector<uint32_t>& vn = v.limbs_;
    size_t m = un.size() - 1 - n;
    q.assign(m + 1, 0);

    for (size_t j = m + 1; j > 0; --j) {
      size_t jj = j - 1;
      uint64_t numerator =
          (static_cast<uint64_t>(un[jj + n]) << 32) | un[jj + n - 1];
      uint64_t qhat = numerator / vn[n - 1];
      uint64_t rhat = numerator % vn[n - 1];
      while (qhat >= kBase ||
             qhat * vn[n - 2] > ((rhat << 32) | un[jj + n - 2])) {
        --qhat;
        rhat += vn[n - 1];
        if (rhat >= kBase) break;
      }
      // Multiply-subtract qhat * vn from un[jj .. jj+n].
      int64_t borrow = 0;
      uint64_t carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t p = qhat * vn[i] + carry;
        carry = p >> 32;
        int64_t t = static_cast<int64_t>(un[i + jj]) -
                    static_cast<int64_t>(p & 0xFFFFFFFFU) - borrow;
        if (t < 0) {
          t += static_cast<int64_t>(kBase);
          borrow = 1;
        } else {
          borrow = 0;
        }
        un[i + jj] = static_cast<uint32_t>(t);
      }
      int64_t t = static_cast<int64_t>(un[jj + n]) -
                  static_cast<int64_t>(carry) - borrow;
      if (t < 0) {
        // qhat was one too large; add the divisor back.
        t += static_cast<int64_t>(kBase);
        --qhat;
        uint64_t carry2 = 0;
        for (size_t i = 0; i < n; ++i) {
          uint64_t sum = static_cast<uint64_t>(un[i + jj]) + vn[i] + carry2;
          un[i + jj] = static_cast<uint32_t>(sum);
          carry2 = sum >> 32;
        }
        t += static_cast<int64_t>(carry2);
      }
      un[jj + n] = static_cast<uint32_t>(t);
      q[jj] = static_cast<uint32_t>(qhat);
    }
    un.resize(n);
    BigInt rem = FromLimbs(std::move(un), false).ShiftRight(shift);
    r = rem.limbs_;
  }

  BigIntDivMod out;
  out.quotient = FromLimbs(std::move(q), negative_ != divisor.negative_);
  out.remainder = FromLimbs(std::move(r), negative_);
  return out;
}

Result<BigInt> BigInt::Mod(const BigInt& modulus) const {
  if (modulus.IsZero()) return InvalidArgumentError("mod by zero");
  PROVNET_ASSIGN_OR_RETURN(BigIntDivMod dm, DivMod(modulus));
  BigInt r = dm.remainder;
  if (r.IsNegative()) r = r + modulus.Abs();
  return r;
}

namespace {

// Montgomery context for an odd modulus N with R = 2^(32*n_limbs).
class MontgomeryCtx {
 public:
  // Requires n odd, nonzero.
  explicit MontgomeryCtx(const std::vector<uint32_t>& n) : n_(n) {
    // n' = -n^{-1} mod 2^32, via Newton iteration on 32-bit words.
    uint32_t n0 = n_[0];
    uint32_t inv = n0;  // inverse mod 2^4 seed (n0 odd => n0*n0 ≡ 1 mod 8)
    for (int i = 0; i < 5; ++i) inv *= 2 - n0 * inv;
    nprime_ = ~inv + 1;  // -inv mod 2^32
  }

  size_t limbs() const { return n_.size(); }

  // out = a*b*R^{-1} mod n (CIOS). a and b must be < n, length limbs().
  void MulInto(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
               std::vector<uint32_t>& out) const {
    size_t s = n_.size();
    std::vector<uint64_t> t(s + 2, 0);
    for (size_t i = 0; i < s; ++i) {
      uint64_t carry = 0;
      uint64_t ai = a[i];
      for (size_t j = 0; j < s; ++j) {
        uint64_t cur = t[j] + ai * b[j] + carry;
        t[j] = cur & 0xFFFFFFFFU;
        carry = cur >> 32;
      }
      uint64_t cur = t[s] + carry;
      t[s] = cur & 0xFFFFFFFFU;
      t[s + 1] = cur >> 32;

      uint32_t m = static_cast<uint32_t>(t[0]) * nprime_;
      carry = 0;
      uint64_t first = t[0] + static_cast<uint64_t>(m) * n_[0];
      carry = first >> 32;
      for (size_t j = 1; j < s; ++j) {
        uint64_t cur2 = t[j] + static_cast<uint64_t>(m) * n_[j] + carry;
        t[j - 1] = cur2 & 0xFFFFFFFFU;
        carry = cur2 >> 32;
      }
      uint64_t cur2 = t[s] + carry;
      t[s - 1] = cur2 & 0xFFFFFFFFU;
      t[s] = t[s + 1] + (cur2 >> 32);
      t[s + 1] = 0;
    }
    out.assign(s, 0);
    for (size_t i = 0; i < s; ++i) out[i] = static_cast<uint32_t>(t[i]);
    // Conditional subtraction if out >= n (also when the extra limb is set).
    bool ge = t[s] != 0;
    if (!ge) {
      ge = true;
      for (size_t i = s; i > 0; --i) {
        if (out[i - 1] != n_[i - 1]) {
          ge = out[i - 1] > n_[i - 1];
          break;
        }
      }
    }
    if (ge) {
      int64_t borrow = 0;
      for (size_t i = 0; i < s; ++i) {
        int64_t diff = static_cast<int64_t>(out[i]) -
                       static_cast<int64_t>(n_[i]) - borrow;
        if (diff < 0) {
          diff += static_cast<int64_t>(kBase);
          borrow = 1;
        } else {
          borrow = 0;
        }
        out[i] = static_cast<uint32_t>(diff);
      }
    }
  }

 private:
  std::vector<uint32_t> n_;
  uint32_t nprime_;
};

}  // namespace

Result<BigInt> BigInt::ModExp(const BigInt& exponent,
                              const BigInt& modulus) const {
  if (exponent.IsNegative()) {
    return InvalidArgumentError("negative exponent in ModExp");
  }
  if (modulus.IsZero() || modulus.IsNegative()) {
    return InvalidArgumentError("ModExp requires a positive modulus");
  }
  if (modulus.limbs_.size() == 1 && modulus.limbs_[0] == 1) return BigInt();
  PROVNET_ASSIGN_OR_RETURN(BigInt base, Mod(modulus));
  if (exponent.IsZero()) return BigInt(1);

  if (modulus.IsOdd()) {
    // Montgomery 4-bit fixed-window exponentiation.
    MontgomeryCtx ctx(modulus.limbs_);
    size_t s = ctx.limbs();
    auto widen = [s](const BigInt& v) {
      std::vector<uint32_t> out = v.limbs_;
      out.resize(s, 0);
      return out;
    };
    // R mod n and R^2 mod n via shifting.
    BigInt r = BigInt(1).ShiftLeft(32 * s);
    PROVNET_ASSIGN_OR_RETURN(BigInt r_mod, r.Mod(modulus));
    PROVNET_ASSIGN_OR_RETURN(BigInt r2_mod, (r_mod * r_mod).Mod(modulus));

    std::vector<uint32_t> base_m(s), one_m(s), tmp(s);
    ctx.MulInto(widen(base), widen(r2_mod), base_m);   // base * R mod n
    one_m = widen(r_mod);                              // 1 * R mod n

    // Precompute odd powers table: base^0..base^15 in Montgomery form.
    std::vector<std::vector<uint32_t>> table(16);
    table[0] = one_m;
    table[1] = base_m;
    for (int i = 2; i < 16; ++i) {
      table[i].resize(s);
      ctx.MulInto(table[i - 1], base_m, table[i]);
    }

    size_t bits = exponent.BitLength();
    size_t windows = (bits + 3) / 4;
    std::vector<uint32_t> acc = one_m;
    for (size_t w = windows; w > 0; --w) {
      // Square 4 times.
      for (int i = 0; i < 4; ++i) {
        ctx.MulInto(acc, acc, tmp);
        acc.swap(tmp);
      }
      size_t lo = (w - 1) * 4;
      int digit = 0;
      for (int i = 3; i >= 0; --i) {
        digit = (digit << 1) | (exponent.GetBit(lo + i) ? 1 : 0);
      }
      if (digit != 0) {
        ctx.MulInto(acc, table[digit], tmp);
        acc.swap(tmp);
      }
    }
    // Convert out of Montgomery form: acc * 1 * R^{-1}.
    std::vector<uint32_t> one(s, 0);
    one[0] = 1;
    ctx.MulInto(acc, one, tmp);
    return FromLimbs(std::move(tmp), false);
  }

  // Generic square-and-multiply with division-based reduction (even moduli;
  // rare in practice, used by tests).
  BigInt acc(1);
  size_t bits = exponent.BitLength();
  for (size_t i = bits; i > 0; --i) {
    PROVNET_ASSIGN_OR_RETURN(acc, (acc * acc).Mod(modulus));
    if (exponent.GetBit(i - 1)) {
      PROVNET_ASSIGN_OR_RETURN(acc, (acc * base).Mod(modulus));
    }
  }
  return acc;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.IsZero()) {
    Result<BigInt> r = x.Mod(y);
    PROVNET_CHECK(r.ok());
    x = y;
    y = std::move(r).value();
  }
  return x;
}

Result<BigInt> BigInt::ModInverse(const BigInt& modulus) const {
  if (modulus.IsZero() || modulus.IsNegative()) {
    return InvalidArgumentError("ModInverse requires a positive modulus");
  }
  // Extended Euclid on (a, m).
  PROVNET_ASSIGN_OR_RETURN(BigInt a, Mod(modulus));
  BigInt m = modulus;
  BigInt x0(0), x1(1);
  BigInt r0 = m, r1 = a;
  while (!r1.IsZero()) {
    PROVNET_ASSIGN_OR_RETURN(BigIntDivMod dm, r0.DivMod(r1));
    BigInt q = dm.quotient;
    BigInt r2 = dm.remainder;
    r0 = r1;
    r1 = r2;
    BigInt x2 = x0 - q * x1;
    x0 = x1;
    x1 = x2;
  }
  if (!(r0 == BigInt(1))) {
    return FailedPreconditionError("values are not coprime; no inverse");
  }
  return x0.Mod(modulus);
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng& rng) {
  PROVNET_CHECK(!bound.IsZero() && !bound.IsNegative())
      << "RandomBelow requires a positive bound";
  size_t bits = bound.BitLength();
  size_t limbs = (bits + 31) / 32;
  while (true) {
    std::vector<uint32_t> v(limbs);
    for (auto& limb : v) limb = static_cast<uint32_t>(rng.Next());
    // Mask the top limb to the bound's bit length to make rejection cheap.
    size_t top_bits = bits - (limbs - 1) * 32;
    if (top_bits < 32) v.back() &= (1U << top_bits) - 1;
    BigInt candidate = FromLimbs(std::move(v), false);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::RandomWithBits(size_t bits, Rng& rng) {
  PROVNET_CHECK(bits >= 1);
  size_t limbs = (bits + 31) / 32;
  std::vector<uint32_t> v(limbs);
  for (auto& limb : v) limb = static_cast<uint32_t>(rng.Next());
  size_t top_bits = bits - (limbs - 1) * 32;
  if (top_bits < 32) v.back() &= (1U << top_bits) - 1;
  v.back() |= 1U << (top_bits - 1);  // force exact bit length
  return FromLimbs(std::move(v), false);
}

bool BigInt::IsProbablePrime(const BigInt& n, int rounds, Rng& rng) {
  if (n.IsNegative() || n.IsZero()) return false;
  if (n == BigInt(1)) return false;
  for (uint32_t p : kSmallPrimes) {
    BigInt bp(p);
    if (n == bp) return true;
    Result<BigInt> rem = n.Mod(bp);
    PROVNET_CHECK(rem.ok());
    if (rem.value().IsZero()) return false;
  }
  // Write n-1 = d * 2^r.
  BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t r = 0;
  while (d.IsEven()) {
    d = d.ShiftRight(1);
    ++r;
  }
  for (int round = 0; round < rounds; ++round) {
    BigInt a = RandomBelow(n - BigInt(3), rng) + BigInt(2);  // [2, n-2]
    Result<BigInt> x_res = a.ModExp(d, n);
    PROVNET_CHECK(x_res.ok());
    BigInt x = std::move(x_res).value();
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (size_t i = 1; i < r; ++i) {
      Result<BigInt> sq = (x * x).Mod(n);
      PROVNET_CHECK(sq.ok());
      x = std::move(sq).value();
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::GeneratePrime(size_t bits, Rng& rng) {
  PROVNET_CHECK(bits >= 8) << "prime size too small";
  while (true) {
    BigInt candidate = RandomWithBits(bits, rng);
    if (candidate.IsEven()) candidate = candidate + BigInt(1);
    // Walk odd numbers from the candidate; cap the walk to keep the bit
    // length stable.
    for (int step = 0; step < 512; ++step) {
      if (candidate.BitLength() != bits) break;
      if (IsProbablePrime(candidate, 20, rng)) return candidate;
      candidate = candidate + BigInt(2);
    }
  }
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToDecimal();
}

}  // namespace provnet
