// Arbitrary-precision integers.
//
// This is the arithmetic substrate for crypto/rsa.*, replacing the paper's
// use of OpenSSL. Magnitudes are vectors of 32-bit limbs (little-endian);
// the sign is stored separately. Zero is canonically (empty limbs, positive).
//
// Performance notes: multiplication is schoolbook (sufficient for <=2048-bit
// RSA), division is Knuth algorithm D, and modular exponentiation uses
// Montgomery multiplication (CIOS) for odd moduli with a 4-bit fixed window.
#ifndef PROVNET_BIGNUM_BIGINT_H_
#define PROVNET_BIGNUM_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/random.h"
#include "util/status.h"

namespace provnet {

struct BigIntDivMod;

class BigInt {
 public:
  // Zero.
  BigInt() = default;

  // From a machine integer.
  explicit BigInt(int64_t v);
  static BigInt FromU64(uint64_t v);

  // Parsing. Decimal accepts an optional leading '-'. Hex accepts lowercase
  // or uppercase digits, no prefix.
  static Result<BigInt> FromDecimal(const std::string& text);
  static Result<BigInt> FromHex(const std::string& text);

  // Big-endian magnitude (no sign); an empty input is zero.
  static BigInt FromBytes(const Bytes& bytes);
  // Minimal-length big-endian magnitude; zero encodes as empty.
  Bytes ToBytes() const;
  // Like ToBytes but left-padded with zeros to exactly `width` bytes.
  // Returns an error when the magnitude does not fit.
  Result<Bytes> ToBytesPadded(size_t width) const;

  std::string ToDecimal() const;
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsNegative() const { return negative_; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool IsEven() const { return !IsOdd(); }

  // Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;
  // Bit `i` of the magnitude (false beyond BitLength).
  bool GetBit(size_t i) const;

  // Returns -1, 0, +1 comparing signed values.
  int Compare(const BigInt& other) const;
  // Magnitude-only comparison.
  int CompareMagnitude(const BigInt& other) const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;

  // Truncated division (C semantics: quotient rounds toward zero, remainder
  // has the dividend's sign). Division by zero returns an error.
  Result<BigIntDivMod> DivMod(const BigInt& divisor) const;

  // Euclidean remainder in [0, |modulus|). Modulus must be nonzero.
  Result<BigInt> Mod(const BigInt& modulus) const;

  // Left/right shifts by an arbitrary bit count (magnitude shift; sign kept).
  BigInt ShiftLeft(size_t bits) const;
  BigInt ShiftRight(size_t bits) const;

  // (this ^ exponent) mod modulus. Requires exponent >= 0 and modulus > 0.
  // Uses Montgomery exponentiation when the modulus is odd.
  Result<BigInt> ModExp(const BigInt& exponent, const BigInt& modulus) const;

  // Greatest common divisor of magnitudes.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  // Inverse of this mod modulus, in [0, modulus). Errors when gcd != 1.
  Result<BigInt> ModInverse(const BigInt& modulus) const;

  // Uniform value in [0, bound). bound must be positive.
  static BigInt RandomBelow(const BigInt& bound, Rng& rng);
  // Random value with exactly `bits` bits (top bit set). bits must be >= 1.
  static BigInt RandomWithBits(size_t bits, Rng& rng);

  // Miller-Rabin probabilistic primality test (plus small-prime trial
  // division). Error probability <= 4^-rounds for composites.
  static bool IsProbablePrime(const BigInt& n, int rounds, Rng& rng);
  // Deterministic search: next probable prime with exactly `bits` bits.
  static BigInt GeneratePrime(size_t bits, Rng& rng);

  bool operator==(const BigInt& rhs) const { return Compare(rhs) == 0; }
  bool operator!=(const BigInt& rhs) const { return Compare(rhs) != 0; }
  bool operator<(const BigInt& rhs) const { return Compare(rhs) < 0; }
  bool operator<=(const BigInt& rhs) const { return Compare(rhs) <= 0; }
  bool operator>(const BigInt& rhs) const { return Compare(rhs) > 0; }
  bool operator>=(const BigInt& rhs) const { return Compare(rhs) >= 0; }

 private:
  static BigInt FromLimbs(std::vector<uint32_t> limbs, bool negative);
  void Normalize();

  // Magnitude helpers; ignore signs.
  static std::vector<uint32_t> AddMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static int CompareMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);

  std::vector<uint32_t> limbs_;  // little-endian, normalized
  bool negative_ = false;        // never true when limbs_ is empty
};

// Quotient/remainder pair returned by BigInt::DivMod.
struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace provnet

#endif  // PROVNET_BIGNUM_BIGINT_H_
