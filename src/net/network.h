// Discrete-event network simulator.
//
// Replaces the paper's deployment of up to 100 P2 OS processes on one host.
// All node contexts run in-process; messages are serialized byte buffers
// delivered through a virtual-time priority queue. Two meters drive the
// evaluation:
//   * bandwidth  - every payload byte enqueued via Send() is charged to the
//     sender, the receiver, and the global counter (Figure 4's metric);
//   * time       - virtual time advances by per-link latency, and the
//     caller separately measures real wall-clock work (Figure 3's metric,
//     since the paper's numbers are CPU-bound on one host too).
#ifndef PROVNET_NET_NETWORK_H_
#define PROVNET_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"
#include "util/bytes.h"
#include "util/status.h"

namespace provnet {

struct NetMessage {
  NodeId from = 0;
  NodeId to = 0;
  Bytes payload;
  double send_time = 0.0;
  double deliver_time = 0.0;
  uint64_t seq = 0;  // FIFO tie-break for equal delivery times
};

class Network {
 public:
  // `default_latency_s` applies to pairs without an explicit link latency.
  explicit Network(size_t num_nodes, double default_latency_s = 0.01);

  size_t num_nodes() const { return num_nodes_; }

  // Overrides the latency of the (from, to) pair.
  void SetLatency(NodeId from, NodeId to, double latency_s);

  // Enqueues a message for delivery at now + latency. Bytes are charged to
  // the meters immediately (unless a send tap drops the message first).
  Status Send(NodeId from, NodeId to, Bytes payload);

  // --- Fault injection (src/adversary/) -------------------------------------
  // A send tap observes every message before it is queued and may drop it or
  // add delivery delay — the hook the Byzantine fault-injection layer uses
  // for selective suppression, delaying, and wire capture. Dropped messages
  // are never metered (they never reach the wire); they are counted
  // separately. Honest deployments install no tap and behave exactly as
  // before.
  struct TapVerdict {
    bool drop = false;
    double extra_delay_s = 0.0;  // added on top of the link latency
  };
  using SendTap = std::function<TapVerdict(const NetMessage&)>;
  void SetSendTap(SendTap tap) { tap_ = std::move(tap); }
  void ClearSendTap() { tap_ = nullptr; }
  uint64_t dropped_messages() const { return dropped_messages_; }
  uint64_t delayed_messages() const { return delayed_messages_; }

  // Delivery callback: (to, from, payload).
  using Handler = std::function<void(NodeId, NodeId, const Bytes&)>;
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  // Delivers the next message (advancing virtual time). False when idle.
  bool Step();

  // Runs until no messages remain or `max_messages` deliveries happened.
  // Returns the number of deliveries.
  size_t Run(size_t max_messages = SIZE_MAX);

  // Pops every message due at the earliest delivery time — one delivery
  // "wave" — advancing virtual time to it. Returned in ascending seq order,
  // exactly the order repeated Step() calls would have delivered them.
  // Empty when idle. The handler is NOT invoked. The parallel executor
  // shards a wave across worker lanes; Requeue() hands back a wave it
  // decided not to process.
  std::vector<NetMessage> PopWave();
  // Re-enqueues messages previously popped by PopWave(). Sequence numbers,
  // meters, and send taps are not re-applied — the messages were already
  // charged and tapped when first sent.
  void Requeue(std::vector<NetMessage> messages);

  bool Idle() const { return queue_.empty(); }
  double now() const { return now_; }
  // Advances virtual time when the network is idle (for TTL experiments).
  void AdvanceTime(double seconds);

  // --- Meters ---------------------------------------------------------------
  // Point-in-time meter snapshot; subtract two to charge a window (the
  // churn driver's per-event bandwidth accounting).
  struct Meters {
    uint64_t bytes = 0;
    uint64_t messages = 0;
  };
  Meters MeterSnapshot() const { return {total_bytes_, total_messages_}; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }
  uint64_t bytes_sent_by(NodeId node) const;
  uint64_t bytes_received_by(NodeId node) const;
  void ResetMeters();

 private:
  struct Later {
    bool operator()(const NetMessage& a, const NetMessage& b) const {
      if (a.deliver_time != b.deliver_time) {
        return a.deliver_time > b.deliver_time;
      }
      return a.seq > b.seq;
    }
  };

  double LatencyOf(NodeId from, NodeId to) const;

  size_t num_nodes_;
  double default_latency_;
  std::unordered_map<uint64_t, double> link_latency_;  // key = from<<32|to
  Handler handler_;
  SendTap tap_;
  uint64_t dropped_messages_ = 0;
  uint64_t delayed_messages_ = 0;
  std::priority_queue<NetMessage, std::vector<NetMessage>, Later> queue_;
  double now_ = 0.0;
  uint64_t seq_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
  std::vector<uint64_t> tx_bytes_;
  std::vector<uint64_t> rx_bytes_;
};

}  // namespace provnet

#endif  // PROVNET_NET_NETWORK_H_
