// Discrete-event network simulator.
//
// Replaces the paper's deployment of up to 100 P2 OS processes on one host.
// All node contexts run in-process; messages are serialized byte buffers
// delivered through a virtual-time priority queue. Two meters drive the
// evaluation:
//   * bandwidth  - every payload byte enqueued via Send() is charged to the
//     sender, the receiver, and the global counter (Figure 4's metric);
//   * time       - virtual time advances by per-link latency, and the
//     caller separately measures real wall-clock work (Figure 3's metric,
//     since the paper's numbers are CPU-bound on one host too).
//
// Reliable transport (opt-in, EnableTransport): engine payloads are wrapped
// in checksummed data frames carrying a per-link (generation, seq) pair;
// receivers ack every frame and dedup duplicates in a sliding window, and
// senders retransmit unacked frames with exponential backoff in virtual
// time until a bounded retry budget declares the link dead. Dedup happens
// *below* the engine handler, so a retransmitted honest message never
// reaches the adversary layer's ReplayGuard — only genuinely replayed
// signed bytes (which arrive under a fresh frame seq) do. Acks and
// retransmissions are transport overhead: they are excluded from the
// bandwidth meters (which keep counting each engine payload exactly once)
// and tallied separately. With transport off, the wire format and every
// meter are byte-identical to the lossless FIFO this class has always been.
//
// Fault injection (InstallFaultPlan, src/net/faults.h) perturbs *framed*
// transmissions: loss, duplication, corruption, reorder delay, and timed
// partitions, all drawn from a counter-based RNG so runs are reproducible.
// The adversary send tap keeps observing unframed engine payloads before
// any of this — an adversarial drop is final (never retransmitted), while a
// benign fault-plan loss is masked by retransmission.
#ifndef PROVNET_NET_NETWORK_H_
#define PROVNET_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"
#include "net/faults.h"
#include "util/bytes.h"
#include "util/status.h"

namespace provnet {

namespace obs {
class Registry;
struct Counter;
}  // namespace obs

struct NetMessage {
  NodeId from = 0;
  NodeId to = 0;
  Bytes payload;
  double send_time = 0.0;
  double deliver_time = 0.0;
  uint64_t seq = 0;  // FIFO tie-break for equal delivery times
};

// Knobs of the ack/retransmit machinery. All times are virtual seconds.
struct TransportOptions {
  double rto_initial_s = 0.05;  // first retransmission timeout
  double rto_backoff = 2.0;     // multiplier per retry
  double rto_max_s = 2.0;       // backoff ceiling
  size_t max_attempts = 10;     // transmissions before the link is dead
};

class Network {
 public:
  // `default_latency_s` applies to pairs without an explicit link latency.
  explicit Network(size_t num_nodes, double default_latency_s = 0.01);
  ~Network();

  size_t num_nodes() const { return num_nodes_; }

  // Overrides the latency of the (from, to) pair.
  void SetLatency(NodeId from, NodeId to, double latency_s);

  // Enqueues a message for delivery at now + latency. Bytes are charged to
  // the meters immediately (unless a send tap drops the message first).
  Status Send(NodeId from, NodeId to, Bytes payload);

  // --- Reliable transport & fault injection ---------------------------------
  void EnableTransport(TransportOptions options);
  bool TransportEnabled() const { return transport_enabled_; }
  // Installs benign faults (implies nothing about transport: callers who
  // want loss masked must also EnableTransport).
  void InstallFaultPlan(FaultPlan plan);
  const FaultInjector* fault_injector() const { return injector_.get(); }

  // Registry for the transport/fault/drop counters (net.*, faults.*).
  // Counters are registered lazily — only when transport or a fault plan
  // activates, or on the first tap drop — so telemetry snapshots of
  // fault-free runs keep exactly their historical key set.
  void SetObsRegistry(obs::Registry* registry) { obs_ = registry; }

  // Fail-stop crash state. While crashed, every delivery to (and queued
  // message from) the node is discarded. Crashing purges the node's
  // outbound retransmit state and its receive windows (in-memory loss);
  // un-crashing (restart) bumps the node's outbound link generations so
  // peers reset their dedup windows, and revives links peers had declared
  // dead while the node was down.
  void SetCrashed(NodeId node, bool crashed);
  bool IsCrashed(NodeId node) const { return crashed_[node] != 0; }

  // --- Fault injection (src/adversary/) -------------------------------------
  // A send tap observes every message before it is queued and may drop it or
  // add delivery delay — the hook the Byzantine fault-injection layer uses
  // for selective suppression, delaying, and wire capture. Dropped messages
  // are never metered (they never reach the wire); they are counted
  // separately. Honest deployments install no tap and behave exactly as
  // before. The tap sees the *unframed* engine payload: transport framing
  // happens after it, so an adversarial drop is never retransmitted.
  struct TapVerdict {
    bool drop = false;
    double extra_delay_s = 0.0;  // added on top of the link latency
  };
  using SendTap = std::function<TapVerdict(const NetMessage&)>;
  void SetSendTap(SendTap tap) { tap_ = std::move(tap); }
  void ClearSendTap() { tap_ = nullptr; }
  uint64_t dropped_messages() const { return dropped_messages_; }
  uint64_t delayed_messages() const { return delayed_messages_; }

  // Delivery callback: (to, from, payload).
  using Handler = std::function<void(NodeId, NodeId, const Bytes&)>;
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  // Delivers the next event (advancing virtual time): an engine payload, a
  // transport frame, or a retransmission timer. False when idle.
  bool Step();

  // Runs until no messages remain or `max_messages` deliveries happened.
  // Returns the number of deliveries.
  size_t Run(size_t max_messages = SIZE_MAX);

  // Pops every message due at the earliest delivery time — one delivery
  // "wave" — advancing virtual time to it. Returned in ascending seq order,
  // exactly the order repeated Step() calls would have delivered them.
  // Empty when idle. The handler is NOT invoked. The parallel executor
  // shards a wave across worker lanes; Requeue() hands back a wave it
  // decided not to process. Callers must not use waves while transport is
  // enabled (frames and retransmission timers need Step()'s sequencing);
  // the parallel executor checks TransportEnabled() first.
  std::vector<NetMessage> PopWave();
  // Re-enqueues messages previously popped by PopWave(). Sequence numbers,
  // meters, and send taps are not re-applied — the messages were already
  // charged and tapped when first sent.
  void Requeue(std::vector<NetMessage> messages);

  bool Idle() const { return queue_.empty() && !HasPendingRetransmits(); }
  double now() const { return now_; }
  // Advances virtual time when the network is idle (for TTL experiments).
  void AdvanceTime(double seconds);
  // Jumps virtual time forward to `t` (>= now). The caller guarantees no
  // queued event is due before `t` — used by deadline-driven loops (query
  // timeouts, scripted crash/restart events).
  void AdvanceTo(double t);
  // Virtual time of the next queued delivery or retransmission timer;
  // +infinity when idle.
  double NextEventTime() const;

  // --- Meters ---------------------------------------------------------------
  // Point-in-time meter snapshot; subtract two to charge a window (the
  // churn driver's per-event bandwidth accounting).
  struct Meters {
    uint64_t bytes = 0;
    uint64_t messages = 0;
  };
  Meters MeterSnapshot() const { return {total_bytes_, total_messages_}; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }
  uint64_t bytes_sent_by(NodeId node) const;
  uint64_t bytes_received_by(NodeId node) const;
  void ResetMeters();

  // Engine-payload deliveries (handler invocations) so far. Transport
  // frames, acks, and timer firings are not deliveries.
  uint64_t deliveries() const { return deliveries_; }
  // Transport tallies (all zero while transport is off).
  uint64_t retransmits() const { return retransmits_; }
  uint64_t acks_received() const { return acks_received_; }
  uint64_t links_dead() const { return links_dead_; }
  uint64_t duplicates_deduped() const { return dup_deduped_; }
  uint64_t corrupt_dropped() const { return corrupt_dropped_; }

 private:
  struct Later {
    bool operator()(const NetMessage& a, const NetMessage& b) const {
      if (a.deliver_time != b.deliver_time) {
        return a.deliver_time > b.deliver_time;
      }
      return a.seq > b.seq;
    }
  };

  // Why a message never reached (or left) the wire.
  enum class DropCause { kTap, kFault, kPartition, kCrash, kDeadLink };

  // Sender-side state of one directed link.
  struct LinkTx {
    uint64_t generation = 1;
    uint64_t next_seq = 1;
    bool dead = false;
    struct Pending {
      Bytes payload;  // unframed engine payload
      size_t attempts = 1;
      double rto = 0.0;
      double next_retry = 0.0;
    };
    std::map<uint64_t, Pending> unacked;  // frame seq -> pending (ordered)
  };

  // Receiver-side dedup window of one directed link (ReplayGuard-shaped:
  // high-water mark plus a 64-deep bitmap; frames older than the window
  // are treated as duplicates).
  struct LinkRx {
    uint64_t generation = 0;
    bool any = false;
    uint64_t high = 0;
    uint64_t mask = 0;
    bool Accept(uint64_t seq);
  };

  double LatencyOf(NodeId from, NodeId to) const;
  void CountDrop(DropCause cause);
  // Frames `payload` and puts it on the wire (fault plan applied). One
  // transmission attempt; retransmissions call it again.
  void TransmitFrame(NodeId from, NodeId to, uint64_t generation,
                     uint64_t frame_seq, const Bytes& payload,
                     double extra_delay_s, bool is_retransmit);
  void SendAck(NodeId from, NodeId to, uint64_t generation,
               uint64_t frame_seq);
  void Enqueue(NodeId from, NodeId to, Bytes framed, double extra_delay_s);
  void HandleFrame(const NetMessage& msg);
  bool HasPendingRetransmits() const;
  double NextRetransmitTime() const;
  void FireRetransmits();
  void PurgeQueueFor(NodeId node);
  obs::Counter* TransportCounter(const char* name);
  obs::Counter* DropCounter(DropCause cause);
  obs::Counter* FaultCounter(const char* name);
  void SyncFaultCounters(const FaultCounts& before);

  size_t num_nodes_;
  double default_latency_;
  std::unordered_map<uint64_t, double> link_latency_;  // key = from<<32|to
  Handler handler_;
  SendTap tap_;
  uint64_t dropped_messages_ = 0;
  uint64_t delayed_messages_ = 0;
  std::priority_queue<NetMessage, std::vector<NetMessage>, Later> queue_;
  double now_ = 0.0;
  uint64_t seq_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
  std::vector<uint64_t> tx_bytes_;
  std::vector<uint64_t> rx_bytes_;
  uint64_t deliveries_ = 0;

  // Transport + faults (inert until EnableTransport / InstallFaultPlan).
  bool transport_enabled_ = false;
  TransportOptions transport_;
  std::unique_ptr<FaultInjector> injector_;
  std::map<uint64_t, LinkTx> tx_links_;  // key = from<<32|to (ordered:
  std::map<uint64_t, LinkRx> rx_links_;  // timer scans stay deterministic)
  std::vector<char> crashed_;
  uint64_t retransmits_ = 0;
  uint64_t acks_received_ = 0;
  uint64_t links_dead_ = 0;
  uint64_t dup_deduped_ = 0;
  uint64_t corrupt_dropped_ = 0;

  obs::Registry* obs_ = nullptr;
  std::unordered_map<std::string, obs::Counter*> counters_;  // lazy cache
};

}  // namespace provnet

#endif  // PROVNET_NET_NETWORK_H_
