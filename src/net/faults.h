// Deterministic fault injection for the discrete-event network.
//
// A FaultPlan is a *script*, not a live random process: per-link benign
// fault rates (loss / duplication / corruption / reorder-delay), timed link
// partitions, and scripted node crash–restart events. The injector draws
// every verdict from a counter-based hash RNG keyed on (plan seed, directed
// link, per-link attempt counter), so a run's fault sequence is a pure
// function of the plan and of the order transmissions hit each link — which
// the engine keeps canonical across thread counts (sends are replayed in
// (time, seq) order by the parallel executor's commit phase). Re-running
// the same plan is therefore byte-identical at threads ∈ {1, N}, the same
// determinism contract ChurnDriver and AttackScript honor.
//
// Faults are *benign*: they model the lossy wire of ROADMAP item 5(b)'s
// sparse-network scenario, in contrast to the adversary tap
// (Network::SetSendTap) which models a Byzantine endpoint. The two compose:
// the tap sees payloads before transport framing (so wire capture and
// selective suppression still work on engine bytes), faults apply to the
// framed copy afterwards (so retransmission masks loss but never masks an
// adversarial drop).
#ifndef PROVNET_NET_FAULTS_H_
#define PROVNET_NET_FAULTS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"

namespace provnet {

// Wildcard in LinkFaultSpec endpoints: "every node".
inline constexpr NodeId kAnyNode = ~static_cast<NodeId>(0);

// Benign fault rates of one directed link (or the kAnyNode wildcard).
// Rates are probabilities in [0, 1] evaluated independently per
// transmission attempt (retransmissions draw fresh verdicts).
struct LinkFaultSpec {
  NodeId from = kAnyNode;
  NodeId to = kAnyNode;
  double loss = 0.0;         // message vanishes on the wire
  double duplication = 0.0;  // a second copy is delivered
  double corruption = 0.0;   // payload bytes flip (checksum catches it)
  double reorder = 0.0;      // copy is held back by reorder_delay_s
  double reorder_delay_s = 0.05;
};

// A link is down (both payloads and acks vanish) while start <= t < end.
struct PartitionSpec {
  double start = 0.0;
  double end = 0.0;
  NodeId a = 0;
  NodeId b = 0;
  bool bidirectional = true;  // also cuts b -> a
};

// Scripted fail-stop crash: the node loses all in-memory state at
// `crash_at` and rejoins (replaying its durable archive, if any) at
// `restart_at`. restart_at < 0 means the node never comes back.
struct CrashSpec {
  double crash_at = 0.0;
  double restart_at = -1.0;
  NodeId node = 0;
};

struct FaultPlan {
  uint64_t seed = 0;
  std::vector<LinkFaultSpec> links;
  std::vector<PartitionSpec> partitions;
  std::vector<CrashSpec> crashes;

  bool Empty() const {
    return links.empty() && partitions.empty() && crashes.empty();
  }

  // Uniform benign loss on every link — the canned CI / bench plan.
  static FaultPlan UniformLoss(double rate, uint64_t seed);

  // Parses the PROVNET_FAULT_PLAN mini-language:
  //   "loss=0.01,dup=0.001,corrupt=0.001,reorder=0.01,seed=7"
  // Unknown keys are an error; an empty spec yields an empty plan.
  static FaultPlan ParseSpec(const std::string& spec, bool* ok);
};

// Monotone per-run fault tallies, surfaced through the obs registry as
// faults.* by the engine.
struct FaultCounts {
  uint64_t losses = 0;
  uint64_t duplicates = 0;
  uint64_t corruptions = 0;
  uint64_t reorders = 0;
  uint64_t partition_drops = 0;
};

// Draws per-transmission verdicts from the plan. Stateless apart from the
// per-link attempt counters that key the hash RNG.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  struct Verdict {
    bool drop = false;       // loss
    bool duplicate = false;  // deliver a second copy
    bool corrupt = false;    // flip a payload byte
    double extra_delay_s = 0.0;  // reorder hold-back
  };

  // One transmission attempt on (from, to); advances the link's counter.
  Verdict OnTransmit(NodeId from, NodeId to);

  // True while any partition window covers (from, to) at time `now`.
  bool Partitioned(NodeId from, NodeId to, double now) const;
  // Tallies a transmission the caller suppressed because of a partition.
  void CountPartitionDrop() { ++counts_.partition_drops; }

  const FaultPlan& plan() const { return plan_; }
  const FaultCounts& counts() const { return counts_; }

 private:
  // Uniform double in [0, 1) for draw number `n` of `salt` on this link.
  double Draw(NodeId from, NodeId to, uint64_t counter, uint64_t salt) const;
  const LinkFaultSpec* SpecFor(NodeId from, NodeId to) const;

  FaultPlan plan_;
  FaultCounts counts_;
  std::unordered_map<uint64_t, uint64_t> attempt_counters_;  // from<<32|to
};

}  // namespace provnet

#endif  // PROVNET_NET_FAULTS_H_
