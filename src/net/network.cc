#include "net/network.h"

#include "obs/mem.h"
#include "util/logging.h"

namespace provnet {
namespace {

uint64_t PairKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

// Queued-message charge against obs::MemSubsystem::kNetworkQueues: payload
// plus the NetMessage envelope. Push/pop use the same number (the payload
// size is immutable while queued) so the gauge cannot drift.
uint64_t QueuedAccountedBytes(const NetMessage& msg) {
  return sizeof(NetMessage) + msg.payload.size();
}

}  // namespace

Network::Network(size_t num_nodes, double default_latency_s)
    : num_nodes_(num_nodes),
      default_latency_(default_latency_s),
      tx_bytes_(num_nodes, 0),
      rx_bytes_(num_nodes, 0) {}

void Network::SetLatency(NodeId from, NodeId to, double latency_s) {
  link_latency_[PairKey(from, to)] = latency_s;
}

double Network::LatencyOf(NodeId from, NodeId to) const {
  auto it = link_latency_.find(PairKey(from, to));
  return it == link_latency_.end() ? default_latency_ : it->second;
}

Status Network::Send(NodeId from, NodeId to, Bytes payload) {
  if (from >= num_nodes_ || to >= num_nodes_) {
    return InvalidArgumentError("Send: node id out of range");
  }
  NetMessage msg;
  msg.from = from;
  msg.to = to;
  msg.send_time = now_;
  msg.deliver_time = now_ + LatencyOf(from, to);
  msg.payload = std::move(payload);
  if (tap_) {
    TapVerdict verdict = tap_(msg);
    if (verdict.drop) {
      ++dropped_messages_;
      return OkStatus();  // suppressed before it touched the wire
    }
    if (verdict.extra_delay_s > 0.0) {
      msg.deliver_time += verdict.extra_delay_s;
      ++delayed_messages_;
    }
  }
  msg.seq = seq_++;
  total_bytes_ += msg.payload.size();
  total_messages_ += 1;
  tx_bytes_[from] += msg.payload.size();
  rx_bytes_[to] += msg.payload.size();
  obs::MemAccounting::Global().Add(obs::MemSubsystem::kNetworkQueues,
                                   QueuedAccountedBytes(msg));
  queue_.push(std::move(msg));
  return OkStatus();
}

bool Network::Step() {
  if (queue_.empty()) return false;
  NetMessage msg = queue_.top();
  queue_.pop();
  obs::MemAccounting::Global().Sub(obs::MemSubsystem::kNetworkQueues,
                                   QueuedAccountedBytes(msg));
  now_ = msg.deliver_time;
  if (handler_) handler_(msg.to, msg.from, msg.payload);
  return true;
}

size_t Network::Run(size_t max_messages) {
  size_t delivered = 0;
  while (delivered < max_messages && Step()) ++delivered;
  return delivered;
}

std::vector<NetMessage> Network::PopWave() {
  std::vector<NetMessage> wave;
  if (queue_.empty()) return wave;
  const double t = queue_.top().deliver_time;
  now_ = t;
  // Exact double comparison is intentional: wave membership means "computed
  // the same delivery instant", not "close in time".
  while (!queue_.empty() && queue_.top().deliver_time == t) {
    wave.push_back(queue_.top());
    queue_.pop();
    obs::MemAccounting::Global().Sub(obs::MemSubsystem::kNetworkQueues,
                                     QueuedAccountedBytes(wave.back()));
  }
  return wave;
}

void Network::Requeue(std::vector<NetMessage> messages) {
  for (NetMessage& msg : messages) {
    obs::MemAccounting::Global().Add(obs::MemSubsystem::kNetworkQueues,
                                     QueuedAccountedBytes(msg));
    queue_.push(std::move(msg));
  }
}

void Network::AdvanceTime(double seconds) {
  PROVNET_CHECK(seconds >= 0);
  now_ += seconds;
}

uint64_t Network::bytes_sent_by(NodeId node) const {
  PROVNET_CHECK(node < num_nodes_);
  return tx_bytes_[node];
}

uint64_t Network::bytes_received_by(NodeId node) const {
  PROVNET_CHECK(node < num_nodes_);
  return rx_bytes_[node];
}

void Network::ResetMeters() {
  total_bytes_ = 0;
  total_messages_ = 0;
  tx_bytes_.assign(num_nodes_, 0);
  rx_bytes_.assign(num_nodes_, 0);
}

}  // namespace provnet
