#include "net/network.h"

#include <algorithm>
#include <limits>

#include "obs/mem.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/logging.h"

namespace provnet {
namespace {

uint64_t PairKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

// Queued-message charge against obs::MemSubsystem::kNetworkQueues: payload
// plus the NetMessage envelope. Push/pop use the same number (the payload
// size is immutable while queued) so the gauge cannot drift.
uint64_t QueuedAccountedBytes(const NetMessage& msg) {
  return sizeof(NetMessage) + msg.payload.size();
}

// Transport frame markers. Engine wire kinds are small (1..4), so a framed
// payload is unambiguous from its first byte.
constexpr uint8_t kFrameData = 0xF1;
constexpr uint8_t kFrameAck = 0xF2;

bool IsFrame(const Bytes& payload) {
  return !payload.empty() &&
         (payload[0] == kFrameData || payload[0] == kFrameAck);
}

Bytes BuildDataFrame(uint64_t generation, uint64_t frame_seq,
                     const Bytes& payload) {
  ByteWriter w;
  w.PutU8(kFrameData);
  w.PutVarint(generation);
  w.PutVarint(frame_seq);
  w.PutU64(Fnv1a64(payload));
  w.PutRaw(payload.data(), payload.size());
  return std::move(w).Take();
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

bool Network::LinkRx::Accept(uint64_t seq) {
  if (!any) {
    any = true;
    high = seq;
    mask = 0;
    return true;
  }
  if (seq == high) return false;
  if (seq > high) {
    uint64_t shift = seq - high;
    mask = shift >= 64 ? 0 : ((mask << shift) | (1ull << (shift - 1)));
    high = seq;
    return true;
  }
  uint64_t behind = high - seq;
  if (behind > 64) return false;  // beyond the window: assume duplicate
  uint64_t bit = 1ull << (behind - 1);
  if (mask & bit) return false;
  mask |= bit;
  return true;
}

Network::Network(size_t num_nodes, double default_latency_s)
    : num_nodes_(num_nodes),
      default_latency_(default_latency_s),
      tx_bytes_(num_nodes, 0),
      rx_bytes_(num_nodes, 0),
      crashed_(num_nodes, 0) {}

Network::~Network() = default;

void Network::SetLatency(NodeId from, NodeId to, double latency_s) {
  link_latency_[PairKey(from, to)] = latency_s;
}

double Network::LatencyOf(NodeId from, NodeId to) const {
  auto it = link_latency_.find(PairKey(from, to));
  return it == link_latency_.end() ? default_latency_ : it->second;
}

void Network::EnableTransport(TransportOptions options) {
  transport_enabled_ = true;
  transport_ = options;
  // Touch the transport counters so a telemetry snapshot shows them (at
  // zero) as soon as the subsystem is armed, not only after the first loss.
  TransportCounter("net.retransmits");
  TransportCounter("net.acks_received");
  TransportCounter("net.links_dead");
  TransportCounter("net.dup_deduped");
  TransportCounter("net.corrupt_dropped");
}

void Network::InstallFaultPlan(FaultPlan plan) {
  injector_ = std::make_unique<FaultInjector>(std::move(plan));
  FaultCounter("faults.losses");
  FaultCounter("faults.duplicates");
  FaultCounter("faults.corruptions");
  FaultCounter("faults.reorders");
  FaultCounter("faults.partition_drops");
}

obs::Counter* Network::TransportCounter(const char* name) {
  if (obs_ == nullptr) return nullptr;
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  obs::Counter* c = obs_->GetCounter(name);
  counters_.emplace(name, c);
  return c;
}

obs::Counter* Network::FaultCounter(const char* name) {
  return TransportCounter(name);
}

obs::Counter* Network::DropCounter(DropCause cause) {
  if (obs_ == nullptr) return nullptr;
  const char* label = nullptr;
  switch (cause) {
    case DropCause::kTap:
      label = "tap";
      break;
    case DropCause::kFault:
      label = "fault";
      break;
    case DropCause::kPartition:
      label = "partition";
      break;
    case DropCause::kCrash:
      label = "crash";
      break;
    case DropCause::kDeadLink:
      label = "dead_link";
      break;
  }
  std::string key = std::string("net.dropped/") + label;
  auto it = counters_.find(key);
  if (it != counters_.end()) return it->second;
  obs::Counter* c = obs_->GetCounter("net.dropped", {{"cause", label}});
  counters_.emplace(std::move(key), c);
  return c;
}

void Network::CountDrop(DropCause cause) {
  ++dropped_messages_;
  if (obs::Counter* c = DropCounter(cause)) ++c->value;
}

Status Network::Send(NodeId from, NodeId to, Bytes payload) {
  if (from >= num_nodes_ || to >= num_nodes_) {
    return InvalidArgumentError("Send: node id out of range");
  }
  NetMessage msg;
  msg.from = from;
  msg.to = to;
  msg.send_time = now_;
  msg.deliver_time = now_ + LatencyOf(from, to);
  msg.payload = std::move(payload);
  double extra_delay = 0.0;
  if (tap_) {
    TapVerdict verdict = tap_(msg);
    if (verdict.drop) {
      CountDrop(DropCause::kTap);
      return OkStatus();  // suppressed before it touched the wire
    }
    if (verdict.extra_delay_s > 0.0) {
      extra_delay = verdict.extra_delay_s;
      ++delayed_messages_;
    }
  }
  if (!transport_enabled_) {
    msg.deliver_time += extra_delay;
    msg.seq = seq_++;
    total_bytes_ += msg.payload.size();
    total_messages_ += 1;
    tx_bytes_[from] += msg.payload.size();
    rx_bytes_[to] += msg.payload.size();
    obs::MemAccounting::Global().Add(obs::MemSubsystem::kNetworkQueues,
                                     QueuedAccountedBytes(msg));
    queue_.push(std::move(msg));
    return OkStatus();
  }

  // Transport path. The bandwidth meters charge each engine payload exactly
  // once, here — retransmissions and acks are overhead tallied separately,
  // so loss rates never skew the Figure 4 bandwidth reproduction.
  total_bytes_ += msg.payload.size();
  total_messages_ += 1;
  tx_bytes_[from] += msg.payload.size();
  rx_bytes_[to] += msg.payload.size();
  if (crashed_[from]) {
    CountDrop(DropCause::kCrash);
    return OkStatus();
  }
  LinkTx& tx = tx_links_[PairKey(from, to)];
  if (tx.dead) {
    CountDrop(DropCause::kDeadLink);
    return OkStatus();
  }
  uint64_t frame_seq = tx.next_seq++;
  LinkTx::Pending pending;
  pending.payload = std::move(msg.payload);
  pending.attempts = 1;
  pending.rto = transport_.rto_initial_s;
  pending.next_retry = now_ + pending.rto;
  const Bytes& wire_payload =
      tx.unacked.emplace(frame_seq, std::move(pending)).first->second.payload;
  TransmitFrame(from, to, tx.generation, frame_seq, wire_payload, extra_delay,
                /*is_retransmit=*/false);
  return OkStatus();
}

void Network::TransmitFrame(NodeId from, NodeId to, uint64_t generation,
                            uint64_t frame_seq, const Bytes& payload,
                            double extra_delay_s, bool is_retransmit) {
  if (crashed_[from]) return;
  if (injector_ != nullptr) {
    if (injector_->Partitioned(from, to, now_)) {
      injector_->CountPartitionDrop();
      if (obs::Counter* c = FaultCounter("faults.partition_drops")) {
        ++c->value;
      }
      CountDrop(DropCause::kPartition);
      return;  // the pending entry stays; retransmission will retry
    }
    FaultInjector::Verdict v = injector_->OnTransmit(from, to);
    if (v.drop) {
      if (obs::Counter* c = FaultCounter("faults.losses")) ++c->value;
      CountDrop(DropCause::kFault);
      return;
    }
    Bytes framed = BuildDataFrame(generation, frame_seq, payload);
    if (v.corrupt) {
      framed.back() ^= 0x5A;  // checksum catches it at the receiver
      if (obs::Counter* c = FaultCounter("faults.corruptions")) ++c->value;
    }
    if (v.extra_delay_s > 0.0) {
      if (obs::Counter* c = FaultCounter("faults.reorders")) ++c->value;
    }
    double delay = extra_delay_s + v.extra_delay_s;
    if (v.duplicate) {
      if (obs::Counter* c = FaultCounter("faults.duplicates")) ++c->value;
      Enqueue(from, to, BuildDataFrame(generation, frame_seq, payload), delay);
    }
    Enqueue(from, to, std::move(framed), delay);
  } else {
    Enqueue(from, to, BuildDataFrame(generation, frame_seq, payload),
            extra_delay_s);
  }
  if (is_retransmit) {
    ++retransmits_;
    if (obs::Counter* c = TransportCounter("net.retransmits")) ++c->value;
  }
}

void Network::SendAck(NodeId from, NodeId to, uint64_t generation,
                      uint64_t frame_seq) {
  if (crashed_[from]) return;
  if (injector_ != nullptr) {
    if (injector_->Partitioned(from, to, now_)) {
      injector_->CountPartitionDrop();
      return;  // lost ack: the sender retransmits, the receiver re-acks
    }
    FaultInjector::Verdict v = injector_->OnTransmit(from, to);
    if (v.drop) return;
  }
  ByteWriter w;
  w.PutU8(kFrameAck);
  w.PutVarint(generation);
  w.PutVarint(frame_seq);
  Enqueue(from, to, std::move(w).Take(), 0.0);
}

void Network::Enqueue(NodeId from, NodeId to, Bytes framed,
                      double extra_delay_s) {
  NetMessage msg;
  msg.from = from;
  msg.to = to;
  msg.send_time = now_;
  msg.deliver_time = now_ + LatencyOf(from, to) + extra_delay_s;
  msg.payload = std::move(framed);
  msg.seq = seq_++;
  obs::MemAccounting::Global().Add(obs::MemSubsystem::kNetworkQueues,
                                   QueuedAccountedBytes(msg));
  queue_.push(std::move(msg));
}

bool Network::HasPendingRetransmits() const {
  for (const auto& [key, tx] : tx_links_) {
    if (!tx.dead && !tx.unacked.empty()) return true;
  }
  return false;
}

double Network::NextRetransmitTime() const {
  double next = kInf;
  for (const auto& [key, tx] : tx_links_) {
    if (tx.dead) continue;
    for (const auto& [seq, pending] : tx.unacked) {
      next = std::min(next, pending.next_retry);
    }
  }
  return next;
}

double Network::NextEventTime() const {
  double next = queue_.empty() ? kInf : queue_.top().deliver_time;
  if (transport_enabled_) next = std::min(next, NextRetransmitTime());
  return next;
}

void Network::FireRetransmits() {
  for (auto& [key, tx] : tx_links_) {
    if (tx.dead) continue;
    NodeId from = static_cast<NodeId>(key >> 32);
    NodeId to = static_cast<NodeId>(key & 0xFFFFFFFFu);
    for (auto it = tx.unacked.begin(); it != tx.unacked.end();) {
      LinkTx::Pending& p = it->second;
      if (p.next_retry > now_) {
        ++it;
        continue;
      }
      if (p.attempts >= transport_.max_attempts) {
        // Retry budget exhausted: the link is dead. Surface it and stop
        // retrying everything queued behind the lost frame.
        tx.dead = true;
        ++links_dead_;
        if (obs::Counter* c = TransportCounter("net.links_dead")) ++c->value;
        tx.unacked.clear();
        break;
      }
      ++p.attempts;
      p.rto = std::min(p.rto * transport_.rto_backoff, transport_.rto_max_s);
      p.next_retry = now_ + p.rto;
      TransmitFrame(from, to, tx.generation, it->first, p.payload, 0.0,
                    /*is_retransmit=*/true);
      ++it;
    }
  }
}

void Network::HandleFrame(const NetMessage& msg) {
  ByteReader reader(msg.payload);
  Result<uint8_t> kind = reader.GetU8();
  Result<uint64_t> generation = reader.GetVarint();
  Result<uint64_t> frame_seq = reader.GetVarint();
  if (!kind.ok() || !generation.ok() || !frame_seq.ok()) {
    ++corrupt_dropped_;
    if (obs::Counter* c = TransportCounter("net.corrupt_dropped")) ++c->value;
    return;
  }
  if (kind.value() == kFrameAck) {
    if (crashed_[msg.to]) return;
    auto it = tx_links_.find(PairKey(msg.to, msg.from));
    if (it == tx_links_.end()) return;
    LinkTx& tx = it->second;
    if (generation.value() != tx.generation) return;  // pre-restart ack
    if (tx.unacked.erase(frame_seq.value()) > 0) {
      ++acks_received_;
      if (obs::Counter* c = TransportCounter("net.acks_received")) {
        ++c->value;
      }
    }
    return;
  }
  // Data frame.
  if (crashed_[msg.to]) {
    CountDrop(DropCause::kCrash);
    return;
  }
  Result<uint64_t> checksum = reader.GetU64();
  if (!checksum.ok()) {
    ++corrupt_dropped_;
    if (obs::Counter* c = TransportCounter("net.corrupt_dropped")) ++c->value;
    return;
  }
  Bytes payload(msg.payload.begin() + reader.position(), msg.payload.end());
  if (Fnv1a64(payload) != checksum.value()) {
    // Bit rot on the wire: drop silently; the sender's retransmission
    // carries a clean copy.
    ++corrupt_dropped_;
    if (obs::Counter* c = TransportCounter("net.corrupt_dropped")) ++c->value;
    return;
  }
  // Ack every structurally-valid data frame, duplicates included — the
  // duplicate may mean our previous ack was lost.
  SendAck(msg.to, msg.from, generation.value(), frame_seq.value());
  LinkRx& rx = rx_links_[PairKey(msg.from, msg.to)];
  if (generation.value() < rx.generation) {
    ++dup_deduped_;
    if (obs::Counter* c = TransportCounter("net.dup_deduped")) ++c->value;
    return;
  }
  if (generation.value() > rx.generation) {
    rx = LinkRx{};  // the sender restarted: fresh window
    rx.generation = generation.value();
  }
  if (!rx.Accept(frame_seq.value())) {
    // Duplicate (fault-plan duplication or a retransmission racing its
    // ack): swallowed below the engine, so verification never sees it and
    // no kReplay security event can fire for an honest duplicate.
    ++dup_deduped_;
    if (obs::Counter* c = TransportCounter("net.dup_deduped")) ++c->value;
    return;
  }
  ++deliveries_;
  if (handler_) handler_(msg.to, msg.from, payload);
}

bool Network::Step() {
  double retry_at = transport_enabled_ ? NextRetransmitTime() : kInf;
  if (queue_.empty()) {
    if (retry_at == kInf) return false;
    now_ = retry_at;
    FireRetransmits();
    return true;
  }
  if (retry_at < queue_.top().deliver_time) {
    now_ = retry_at;
    FireRetransmits();
    return true;
  }
  NetMessage msg = queue_.top();
  queue_.pop();
  obs::MemAccounting::Global().Sub(obs::MemSubsystem::kNetworkQueues,
                                   QueuedAccountedBytes(msg));
  now_ = msg.deliver_time;
  if (transport_enabled_ && IsFrame(msg.payload)) {
    HandleFrame(msg);
    return true;
  }
  if (crashed_[msg.to]) {
    CountDrop(DropCause::kCrash);
    return true;
  }
  ++deliveries_;
  if (handler_) handler_(msg.to, msg.from, msg.payload);
  return true;
}

size_t Network::Run(size_t max_messages) {
  size_t delivered = 0;
  while (delivered < max_messages && Step()) ++delivered;
  return delivered;
}

std::vector<NetMessage> Network::PopWave() {
  std::vector<NetMessage> wave;
  if (queue_.empty()) return wave;
  const double t = queue_.top().deliver_time;
  now_ = t;
  // Exact double comparison is intentional: wave membership means "computed
  // the same delivery instant", not "close in time".
  while (!queue_.empty() && queue_.top().deliver_time == t) {
    wave.push_back(queue_.top());
    queue_.pop();
    obs::MemAccounting::Global().Sub(obs::MemSubsystem::kNetworkQueues,
                                     QueuedAccountedBytes(wave.back()));
  }
  return wave;
}

void Network::Requeue(std::vector<NetMessage> messages) {
  for (NetMessage& msg : messages) {
    obs::MemAccounting::Global().Add(obs::MemSubsystem::kNetworkQueues,
                                     QueuedAccountedBytes(msg));
    queue_.push(std::move(msg));
  }
}

void Network::AdvanceTime(double seconds) {
  PROVNET_CHECK(seconds >= 0);
  now_ += seconds;
}

void Network::AdvanceTo(double t) {
  PROVNET_CHECK(t >= now_);
  now_ = t;
}

void Network::PurgeQueueFor(NodeId node) {
  std::vector<NetMessage> keep;
  while (!queue_.empty()) {
    NetMessage msg = queue_.top();
    queue_.pop();
    obs::MemAccounting::Global().Sub(obs::MemSubsystem::kNetworkQueues,
                                     QueuedAccountedBytes(msg));
    if (msg.from == node || msg.to == node) {
      CountDrop(DropCause::kCrash);
      continue;
    }
    keep.push_back(std::move(msg));
  }
  Requeue(std::move(keep));
}

void Network::SetCrashed(NodeId node, bool crashed) {
  PROVNET_CHECK(node < num_nodes_);
  if (crashed) {
    crashed_[node] = 1;
    // In-flight messages touching the node vanish with it.
    PurgeQueueFor(node);
    for (auto& [key, tx] : tx_links_) {
      if (static_cast<NodeId>(key >> 32) == node) tx.unacked.clear();
    }
    // The node's receive windows were in memory.
    for (auto it = rx_links_.begin(); it != rx_links_.end();) {
      if (static_cast<NodeId>(it->first & 0xFFFFFFFFu) == node) {
        it = rx_links_.erase(it);
      } else {
        ++it;
      }
    }
  } else {
    crashed_[node] = 0;
    for (auto& [key, tx] : tx_links_) {
      NodeId from = static_cast<NodeId>(key >> 32);
      NodeId to = static_cast<NodeId>(key & 0xFFFFFFFFu);
      if (from == node) {
        // Fresh outbound sessions: peers reset their dedup windows on the
        // higher generation.
        ++tx.generation;
        tx.next_seq = 1;
        tx.dead = false;
      } else if (to == node) {
        // Links peers gave up on while the node was down come back.
        tx.dead = false;
        // Restart every surviving pending's backoff clock so recovery
        // retransmissions happen promptly after the restart.
        for (auto& [seq, pending] : tx.unacked) {
          pending.rto = transport_.rto_initial_s;
          pending.next_retry = now_ + pending.rto;
        }
      }
    }
  }
}

uint64_t Network::bytes_sent_by(NodeId node) const {
  PROVNET_CHECK(node < num_nodes_);
  return tx_bytes_[node];
}

uint64_t Network::bytes_received_by(NodeId node) const {
  PROVNET_CHECK(node < num_nodes_);
  return rx_bytes_[node];
}

void Network::ResetMeters() {
  total_bytes_ = 0;
  total_messages_ = 0;
  tx_bytes_.assign(num_nodes_, 0);
  rx_bytes_.assign(num_nodes_, 0);
}

}  // namespace provnet
