// Topology generators for the evaluation workloads.
//
// The paper's Section 6 workload: "we insert link tables for N nodes with
// average outdegree of three", N from 10 to 100. RandomOutDegree reproduces
// that; RingPlusRandom is the connected variant used by the figure benches
// (a Hamiltonian ring guarantees the recursive query reaches a global
// fixpoint involving all nodes, keeping run-to-run variance low).
#ifndef PROVNET_NET_TOPOLOGY_H_
#define PROVNET_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datalog/value.h"
#include "util/random.h"

namespace provnet {

struct TopoEdge {
  NodeId from = 0;
  NodeId to = 0;
  int64_t cost = 1;
};

struct Topology {
  size_t num_nodes = 0;
  std::vector<TopoEdge> edges;

  // The 3-node example of Figures 1-2: links a->b, a->c, b->c
  // (a=0, b=1, c=2), unit costs.
  static Topology FigureAbc();

  // Every node gets exactly `outdegree` random distinct targets; costs
  // uniform in [min_cost, max_cost]. May be disconnected (as in the paper).
  static Topology RandomOutDegree(size_t n, size_t outdegree, Rng& rng,
                                  int64_t min_cost = 1, int64_t max_cost = 10);

  // Ring i -> i+1 plus (outdegree - 1) random extra links per node; exactly
  // `outdegree` out-links per node and strongly connected.
  static Topology RingPlusRandom(size_t n, size_t outdegree, Rng& rng,
                                 int64_t min_cost = 1, int64_t max_cost = 10);

  // Simple chain 0 -> 1 -> ... -> n-1 (unit costs).
  static Topology Line(size_t n);

  // Full mesh without self loops (unit costs).
  static Topology FullMesh(size_t n);

  double AverageOutDegree() const;
  std::string ToString() const;
};

}  // namespace provnet

#endif  // PROVNET_NET_TOPOLOGY_H_
