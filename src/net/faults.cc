#include "net/faults.h"

#include <cstdlib>

#include "util/hash.h"

namespace provnet {
namespace {

uint64_t LinkKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

// Salts separating the independent per-attempt draws.
constexpr uint64_t kLossSalt = 0x6c6f7373;      // "loss"
constexpr uint64_t kDupSalt = 0x64757000;       // "dup"
constexpr uint64_t kCorruptSalt = 0x636f7272;   // "corr"
constexpr uint64_t kReorderSalt = 0x72656f72;   // "reor"

}  // namespace

FaultPlan FaultPlan::UniformLoss(double rate, uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (rate > 0.0) {
    LinkFaultSpec spec;
    spec.loss = rate;
    plan.links.push_back(spec);
  }
  return plan;
}

FaultPlan FaultPlan::ParseSpec(const std::string& spec, bool* ok) {
  FaultPlan plan;
  LinkFaultSpec link;  // wildcard endpoints
  bool any_rate = false;
  *ok = true;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      *ok = false;
      return FaultPlan{};
    }
    std::string key = item.substr(0, eq);
    std::string val = item.substr(eq + 1);
    char* end = nullptr;
    double num = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0') {
      *ok = false;
      return FaultPlan{};
    }
    if (key == "seed") {
      plan.seed = static_cast<uint64_t>(num);
    } else if (key == "loss") {
      link.loss = num;
      any_rate = true;
    } else if (key == "dup") {
      link.duplication = num;
      any_rate = true;
    } else if (key == "corrupt") {
      link.corruption = num;
      any_rate = true;
    } else if (key == "reorder") {
      link.reorder = num;
      any_rate = true;
    } else if (key == "reorder_delay") {
      link.reorder_delay_s = num;
    } else {
      *ok = false;
      return FaultPlan{};
    }
  }
  if (any_rate) plan.links.push_back(link);
  return plan;
}

const LinkFaultSpec* FaultInjector::SpecFor(NodeId from, NodeId to) const {
  const LinkFaultSpec* wildcard = nullptr;
  for (const LinkFaultSpec& spec : plan_.links) {
    if (spec.from == from && spec.to == to) return &spec;
    bool from_ok = spec.from == kAnyNode || spec.from == from;
    bool to_ok = spec.to == kAnyNode || spec.to == to;
    if (from_ok && to_ok && wildcard == nullptr) wildcard = &spec;
  }
  return wildcard;
}

double FaultInjector::Draw(NodeId from, NodeId to, uint64_t counter,
                           uint64_t salt) const {
  uint64_t h = HashCombine(plan_.seed, LinkKey(from, to));
  h = HashCombine(h, counter);
  h = Mix64(h ^ salt);
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultInjector::Verdict FaultInjector::OnTransmit(NodeId from, NodeId to) {
  Verdict verdict;
  const LinkFaultSpec* spec = SpecFor(from, to);
  if (spec == nullptr) return verdict;
  uint64_t counter = attempt_counters_[LinkKey(from, to)]++;
  if (spec->loss > 0.0 && Draw(from, to, counter, kLossSalt) < spec->loss) {
    verdict.drop = true;
    ++counts_.losses;
    return verdict;  // a lost message can be nothing else
  }
  if (spec->duplication > 0.0 &&
      Draw(from, to, counter, kDupSalt) < spec->duplication) {
    verdict.duplicate = true;
    ++counts_.duplicates;
  }
  if (spec->corruption > 0.0 &&
      Draw(from, to, counter, kCorruptSalt) < spec->corruption) {
    verdict.corrupt = true;
    ++counts_.corruptions;
  }
  if (spec->reorder > 0.0 &&
      Draw(from, to, counter, kReorderSalt) < spec->reorder) {
    verdict.extra_delay_s = spec->reorder_delay_s;
    ++counts_.reorders;
  }
  return verdict;
}

bool FaultInjector::Partitioned(NodeId from, NodeId to, double now) const {
  for (const PartitionSpec& p : plan_.partitions) {
    if (now < p.start || now >= p.end) continue;
    if (p.a == from && p.b == to) return true;
    if (p.bidirectional && p.a == to && p.b == from) return true;
  }
  return false;
}

}  // namespace provnet
