#include "net/topology.h"

#include <set>

#include "util/logging.h"
#include "util/strings.h"

namespace provnet {

Topology Topology::FigureAbc() {
  Topology t;
  t.num_nodes = 3;
  t.edges = {{0, 1, 1}, {0, 2, 1}, {1, 2, 1}};
  return t;
}

Topology Topology::RandomOutDegree(size_t n, size_t outdegree, Rng& rng,
                                   int64_t min_cost, int64_t max_cost) {
  PROVNET_CHECK(n >= 2);
  PROVNET_CHECK(outdegree < n) << "outdegree must leave room for distinct "
                                  "targets";
  Topology t;
  t.num_nodes = n;
  for (NodeId from = 0; from < n; ++from) {
    std::set<NodeId> targets;
    while (targets.size() < outdegree) {
      NodeId to = static_cast<NodeId>(rng.NextBelow(n));
      if (to == from) continue;
      targets.insert(to);
    }
    for (NodeId to : targets) {
      t.edges.push_back({from, to, rng.NextInRange(min_cost, max_cost)});
    }
  }
  return t;
}

Topology Topology::RingPlusRandom(size_t n, size_t outdegree, Rng& rng,
                                  int64_t min_cost, int64_t max_cost) {
  PROVNET_CHECK(n >= 2);
  PROVNET_CHECK(outdegree >= 1 && outdegree < n);
  Topology t;
  t.num_nodes = n;
  for (NodeId from = 0; from < n; ++from) {
    NodeId ring_to = static_cast<NodeId>((from + 1) % n);
    std::set<NodeId> targets{ring_to};
    while (targets.size() < outdegree) {
      NodeId to = static_cast<NodeId>(rng.NextBelow(n));
      if (to == from) continue;
      targets.insert(to);
    }
    for (NodeId to : targets) {
      t.edges.push_back({from, to, rng.NextInRange(min_cost, max_cost)});
    }
  }
  return t;
}

Topology Topology::Line(size_t n) {
  PROVNET_CHECK(n >= 1);
  Topology t;
  t.num_nodes = n;
  for (NodeId i = 0; i + 1 < n; ++i) {
    t.edges.push_back({i, static_cast<NodeId>(i + 1), 1});
  }
  return t;
}

Topology Topology::FullMesh(size_t n) {
  PROVNET_CHECK(n >= 1);
  Topology t;
  t.num_nodes = n;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i != j) t.edges.push_back({i, j, 1});
    }
  }
  return t;
}

double Topology::AverageOutDegree() const {
  if (num_nodes == 0) return 0.0;
  return static_cast<double>(edges.size()) / static_cast<double>(num_nodes);
}

std::string Topology::ToString() const {
  std::string out = StrFormat("topology(n=%zu, edges=%zu, avg_out=%.2f)\n",
                              num_nodes, edges.size(), AverageOutDegree());
  for (const TopoEdge& e : edges) {
    out += StrFormat("  %u -> %u cost %lld\n", e.from, e.to,
                     static_cast<long long>(e.cost));
  }
  return out;
}

}  // namespace provnet
