// Security audit events and anti-replay state — the bookkeeping half of the
// receive-side verification pipeline.
//
// The paper's security argument (Sections 2.2, 4.3) is that authenticated
// provenance lets honest nodes *attribute* misbehavior: every rejected
// message is evidence against a principal, and every accepted tuple carries
// a signed assertion chain. This module records the evidence: each
// verification rejection becomes a SecurityEvent in an engine-wide
// SecurityLog (timestamped in virtual time, so detection latency is
// measurable), and each (receiver, sender-principal) pair maintains a
// ReplayGuard — a high-water sequence number plus a sliding bitmap window —
// that rejects re-sent authenticated messages.
#ifndef PROVNET_ADVERSARY_AUDIT_H_
#define PROVNET_ADVERSARY_AUDIT_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "crypto/keystore.h"
#include "datalog/value.h"

namespace provnet {

enum class SecurityEventKind : uint8_t {
  kBadSignature = 0,        // says tag failed cryptographic verification
  kMissingSignature = 1,    // authenticated network, no says tag attached
  kUnknownPrincipal = 2,    // principal outside the deployment's PKI
  kReplay = 3,              // sequence number already seen (or too old)
  kMisdirected = 4,         // signed destination != receiving node
  kUnauthorizedRetract = 5, // retraction from a principal that never
                            // asserted the tuple (and holds no capability)
  kMalformed = 6,           // verified sender shipped unparseable content
  kBogusResponse = 7,       // kMsgProvResponse answering no outstanding
                            // query (wrong id/responder/digest, or none)
  kForeignProvenance = 8,   // piggybacked annotation cube omitting the
                            // sender's own variable (framing attempt)
  kSilentResponder = 9,     // claims-exchange responder that never answered
                            // the auditor (suppression is itself evidence)
  kLyingComparer = 10,      // compare-exchange responder whose reported
                            // conflicts disagree with the auditor's local
                            // re-comparison of a spot-checked bucket
};

const char* SecurityEventKindName(SecurityEventKind kind);

// One verification rejection, with enough context to attribute it.
struct SecurityEvent {
  double at = 0.0;        // virtual time of the rejection
  SecurityEventKind kind = SecurityEventKind::kBadSignature;
  NodeId node = 0;        // the rejecting (honest) node
  NodeId from = 0;        // transport-level sender
  Principal claimed;      // principal the message claimed to speak for
  std::string detail;     // free-form evidence (tuple, seq, ...)

  std::string ToString() const;
};

// Engine-wide audit sink. Append-only within a run; the attack-campaign
// scorer reads it incrementally (EventsSince) to match rejections to
// injected attacks and measure detection latency.
class SecurityLog {
 public:
  void Record(SecurityEvent event) { events_.push_back(std::move(event)); }

  const std::vector<SecurityEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  size_t CountOf(SecurityEventKind kind) const;
  // Events with index >= `mark` (a cursor previously read from size()).
  std::vector<const SecurityEvent*> EventsSince(size_t mark) const;
  void Clear() { events_.clear(); }

 private:
  std::vector<SecurityEvent> events_;
};

// Anti-replay window for one (receiver, sender-principal) pair. Sequence
// numbers are issued monotonically per sender principal; a receiver sees an
// increasing (but gappy — one counter feeds many receivers) subsequence.
// Accept() tracks the highest sequence seen plus a 64-wide bitmap of recent
// ones, so moderate reordering passes while any duplicate — the replayed
// message — is rejected. Sequences older than the bitmap are checked
// exactly against the archive of accepted-then-aged-out sequences: a frame
// whose original was lost and retransmitted arrives arbitrarily late but
// *fresh*, and must not be booked as a replay (the loss-vs-malice
// distinction the fault-tolerant transport depends on), while a captured
// message re-sent by an attacker was genuinely accepted once and is
// rejected however old it is.
class ReplayGuard {
 public:
  // True if `seq` is fresh (records it); false on replay.
  bool Accept(uint64_t seq);

  uint64_t high_water() const { return high_; }

 private:
  static constexpr uint64_t kWindow = 64;
  bool any_ = false;
  uint64_t high_ = 0;   // highest accepted sequence
  uint64_t mask_ = 1;   // bit i set => (high_ - i) seen; bit 0 is high_
  // Accepted sequences that slid out of the bitmap. Exact history (memory
  // grows with accepted traffic per principal pair) — the price of zero
  // false positives on loss-delayed honest frames.
  std::unordered_set<uint64_t> old_;
};

}  // namespace provnet

#endif  // PROVNET_ADVERSARY_AUDIT_H_
