// Attack-campaign driver: timed attack scripts composed with link churn,
// plus the detection/traceback scorer.
//
// Mirrors dynamics/ChurnDriver: a campaign is a time-sorted list of events —
// churn (delegated to ChurnDriver), attack injections (delegated to the
// Adversary), and audit sweeps. Each event advances virtual time, applies
// its mutation, and runs the engine to the new distributed fixpoint.
//
// Detection combines three mechanisms, scored per injected attack:
//
//   verify:*            the receive-side verification pipeline rejected the
//                       message (bad/missing signature, unknown principal,
//                       replay, misdirected, unauthorized retract) — matched
//                       from the engine's SecurityLog;
//   audit:equivocation  a cross-node audit found one principal asserting
//                       conflicting claims (same predicate + primary key,
//                       different tuples) at different nodes;
//   audit:traceback     a policy-violating tuple was found in an honest
//                       node's state; its authenticated assertion chain
//                       (asserted_by, provenance annotation, distributed
//                       traceback) localizes the compromised principal —
//                       Section 4.2's "determine the set of nodes affected
//                       by the malicious node" made executable.
//
// When `respond` is set, each localized principal is revoked
// (Engine::RetractPrincipal) and the engine re-run, so a successful campaign
// ends with zero forged tuples in any honest node's fixpoint — the
// acceptance bar this subsystem is judged on.
#ifndef PROVNET_ADVERSARY_CAMPAIGN_H_
#define PROVNET_ADVERSARY_CAMPAIGN_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "dynamics/churn.h"

namespace provnet {

// One scripted injection (or Byzantine-policy activation).
struct AttackAction {
  AttackKind kind = AttackKind::kForgeStolenKey;
  NodeId attacker = 0;
  NodeId victim = 0;
  Tuple tuple;
  // kEquivocate: the conflicting second claim.
  NodeId victim2 = 0;
  Tuple tuple2;
  // Forgeries: the principal spoken for (empty = the attacker's own).
  Principal as;
  // kReplay: divert the captured message to this node instead.
  std::optional<NodeId> redirect;
  // kDrop / kDelay: the policy to activate on `attacker`.
  AdversaryPolicy policy;
};

struct CampaignEvent {
  enum class Kind : uint8_t { kChurn = 0, kAttack = 1, kAudit = 2 };
  double at = 0.0;
  Kind kind = Kind::kAttack;
  ChurnEvent churn;     // kChurn
  AttackAction attack;  // kAttack
};

struct AttackScript {
  std::vector<CampaignEvent> events;

  void AddChurn(const ChurnScript& churn);
  void AddAttack(double at, AttackAction action);
  // Periodic detection sweeps in [start, end].
  void AddAuditSweeps(double start, double interval, double end);
  // Stable time sort (call after composing).
  void SortByTime();

  // A canned campaign over `topo`: `per_class` injections each of stolen-key
  // forgery, bad-signature forgery, replay, equivocation, and unauthorized
  // retraction, staggered from `start` every `spacing` seconds and
  // attributed to round-robin `attackers`. Compose with churn + audit
  // sweeps yourself (see bench/bench_adversary.cc).
  static AttackScript RandomAttacks(const Topology& topo,
                                    const std::vector<NodeId>& attackers,
                                    size_t per_class, double start,
                                    double spacing, Rng& rng);
};

// Scorer verdict for one injection.
struct AttackOutcome {
  InjectionRecord injection;
  bool detected = false;
  double detected_at = -1.0;
  std::string method;   // "verify:replay", "audit:traceback", ...
  std::set<Principal> localized;
  bool localized_correct = false;  // localized names attacker or claimed key

  double latency() const {
    return detected ? detected_at - injection.at : -1.0;
  }
};

struct EquivocationFinding {
  Principal principal;
  NodeId node_a = 0;
  NodeId node_b = 0;
  Tuple claim_a;
  Tuple claim_b;
};

// Cross-node equivocation audit over `predicates` (claims a principal makes
// about keyed facts): one principal, same primary key, different tuples at
// different honest nodes. Distributed twice over: the auditor collects
// every honest node's claims through the authenticated query wire path (a
// ClaimsExchange of src/query/), then spreads the pairwise digest
// comparison itself across the responding nodes (a CompareExchange — each
// equivocation key hashes to one comparer, which answers with the
// conflicting entry indices), so both the audit's bandwidth *and* its
// comparison work are real metered traffic charged to
// RunStats::prov_query_bytes. The findings are identical to the old
// auditor-centralized comparison. `auditor` defaults to the first
// non-skipped node. A responder that never answers does not abort the
// audit: it is recorded as a kSilentResponder SecurityEvent and, when
// `silent` is non-null, reported there so the caller can treat suppression
// as incriminating — a failed audit still never reads as a clean one.
Result<std::vector<EquivocationFinding>> EquivocationAudit(
    Engine& engine, const std::set<std::string>& predicates,
    const std::set<NodeId>& skip_nodes,
    std::optional<NodeId> auditor = std::nullopt,
    std::set<NodeId>* silent = nullptr);

struct CampaignReport {
  std::vector<AttackOutcome> outcomes;
  size_t injected = 0;
  size_t detected = 0;
  size_t rejected_at_verify = 0;
  size_t localized_correct = 0;
  // Ground-truth forged/equivocated tuples still stored at any honest node
  // after the final fixpoint + response. The acceptance bar: zero.
  size_t forged_in_fixpoint = 0;
  double mean_detection_latency_s = 0.0;
  double max_detection_latency_s = 0.0;
  uint64_t bytes = 0;
  uint64_t messages = 0;
  double wall_seconds = 0.0;
  uint64_t dropped_by_adversary = 0;
  std::set<Principal> flagged;  // principals the campaign localized

  std::string Summary() const;
};

struct CampaignOptions {
  // Cadence fallback when the script carries no kAudit events is the
  // script's own sweeps; these control what a sweep does.
  bool respond = true;  // RetractPrincipal every newly localized principal
  // Policy predicate: true for tuples that cannot occur honestly (the
  // operator's invariant). Default: any link/path/bestPath cost below 1.
  std::function<bool(const Tuple&)> violation;
  // Predicates subject to the equivocation audit (claims about one's own
  // keyed facts). Default: {"link"}.
  std::set<std::string> audit_predicates = {"link"};
  // Issue a distributed provenance traceback for the first violating tuple
  // per sweep (charges query traffic to the meters). Needs provenance
  // recording (record_online or ProvMode::kPointers).
  bool traceback = true;
  size_t link_arity = 3;
};

class AttackCampaignDriver {
 public:
  AttackCampaignDriver(Engine& engine, Adversary& adversary,
                       CampaignOptions options = {});

  // Replays the script (engine must be at its initial fixpoint), runs the
  // final audit sweep + response, and scores.
  Result<CampaignReport> Replay(const AttackScript& script);

 private:
  Status ApplyAttack(const AttackAction& action);
  // Matches fresh SecurityLog rejections to pending outcomes.
  void MatchSecurityEvents(CampaignReport& report);
  // Equivocation audit + violation scan + traceback + optional response.
  Status RunAuditSweep(CampaignReport& report);
  void MarkDetected(AttackOutcome& outcome, double at, std::string method,
                    std::set<Principal> localized);

  Engine& engine_;
  Adversary& adversary_;
  CampaignOptions opts_;
  ChurnDriver churn_;
  size_t log_cursor_ = 0;        // SecurityLog read position
  size_t injection_cursor_ = 0;  // Adversary::injections() read position
};

}  // namespace provnet

#endif  // PROVNET_ADVERSARY_CAMPAIGN_H_
