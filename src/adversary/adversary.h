// Byzantine node model and fault-injection layer.
//
// The reproduction's Network delivers every message faithfully; the paper's
// security claims, however, are about what authenticated provenance buys
// *against an adversary*. This module supplies that adversary, following the
// taxonomy threat models for provenance systems converge on (Hambolu et al.,
// "Provenance Threat Modeling"; Alam & Wang's survey): forgery (invented and
// stolen keys), replay of captured authenticated messages, equivocation
// (conflicting claims to different neighbors), selective suppression/delay,
// and unauthorized retractions.
//
// The Adversary owns a set of compromised nodes, each with an
// AdversaryPolicy. Two mechanisms implement the behaviors:
//
//   * a Network send tap (Network::SetSendTap) applies per-node drop/delay
//     policies to traffic leaving compromised nodes and captures wire
//     payloads crossing them (the replay corpus);
//   * injection primitives craft wire-faithful messages — same byte format
//     Engine::SendTuple/SendRetract emit, including the signed
//     (sequence, destination) header and, in condensed-provenance mode,
//     mimicked provenance cubes — and push them through Network::Send, so
//     attack traffic is metered like any other traffic.
//
// Key compromise is modeled honestly: the simulated KeyStore derives any
// principal's key material, so "stealing" principal P's key means signing
// with P's real key and continuing P's sequence counter. Detection of such
// forgeries is *supposed* to fall to provenance (Section 4.2), not to
// signature checks — which is exactly what the campaign scorer measures.
#ifndef PROVNET_ADVERSARY_ADVERSARY_H_
#define PROVNET_ADVERSARY_ADVERSARY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/random.h"

namespace provnet {

enum class AttackKind : uint8_t {
  kForgeBadSig = 0,     // forged tuple, signature does not verify
  kForgeStolenKey = 1,  // forged tuple under a compromised principal's key
  kForgeNoSig = 2,      // forged tuple with no says tag at all
  kReplay = 3,          // re-send a captured authenticated message
  kEquivocate = 4,      // conflicting signed claims to different neighbors
  kRogueRetract = 5,    // retraction for a tuple the speaker never asserted
  kDrop = 6,            // selective suppression at a compromised node
  kDelay = 7,           // selective delaying at a compromised node
};

const char* AttackKindName(AttackKind kind);

// Per-compromised-node misbehavior policy (the always-on behaviors; one-shot
// injections go through the Inject* primitives).
struct AdversaryPolicy {
  double drop_rate = 0.0;       // P(drop) per message the node sends
  double delay_seconds = 0.0;   // extra delivery delay for its messages
  bool capture = true;          // archive traffic crossing the node
};

// What one injection put on the wire — the ground truth the campaign scorer
// checks fixpoints and audit logs against.
struct InjectionRecord {
  AttackKind kind = AttackKind::kForgeBadSig;
  double at = 0.0;            // virtual time of injection
  NodeId attacker = 0;        // transport-level sender
  NodeId victim = 0;          // destination node
  Principal claimed;          // principal the message spoke for
  Tuple tuple;                // forged/equivocated/retracted tuple (if any)
};

class Adversary {
 public:
  // Installs the send tap on `engine`'s network. The tap stays benign until
  // the first Compromise().
  Adversary(Engine& engine, uint64_t seed);
  ~Adversary();

  // Marks `node` Byzantine with `policy`. Compromising twice updates the
  // policy.
  void Compromise(NodeId node, AdversaryPolicy policy = {});
  bool IsCompromised(NodeId node) const {
    return policies_.find(node) != policies_.end();
  }
  const std::map<NodeId, AdversaryPolicy>& compromised() const {
    return policies_;
  }

  // --- Injection primitives -------------------------------------------------
  // Each crafts one message, sends it through the metered network, and logs
  // an InjectionRecord.

  // Forged tuple claiming "`as` says tuple", delivered to `victim`.
  //   kForgeStolenKey - signed with `as`'s real key (key theft);
  //   kForgeBadSig    - signed, then the proof bytes are corrupted;
  //   kForgeNoSig     - shipped without any says tag.
  // In condensed-provenance mode the forgery mimics honest wire format and
  // attaches provenance cubes naming `as` — a smart forger does not ship a
  // tuple whose missing annotation gives it away.
  Status InjectForgedTuple(AttackKind kind, NodeId attacker, NodeId victim,
                           const Tuple& tuple, const Principal& as);

  // Re-sends a captured authenticated message of `msg_type` (kMsgTuple by
  // default; kMsgProvResponse replays a captured provenance-query answer).
  // The replay targets the original destination (defeated by the sequence
  // window) or, when `redirect` names a different node, that node (defeated
  // by the signed destination). Fails with NotFound when nothing suitable
  // was captured.
  Status InjectReplay(NodeId attacker, std::optional<NodeId> redirect = {},
                      uint8_t msg_type = kMsgTuple);

  // Forged kMsgProvResponse claiming to answer `query_id` from the node of
  // principal `as` with a fabricated base record of `tuple`:
  //   kForgeStolenKey - validly signed with `as`'s real key; defeated by
  //                     the (query_id, responder, digest) outstanding-query
  //                     match (kBogusResponse);
  //   kForgeBadSig    - proof bytes corrupted (kBadSignature);
  //   kForgeNoSig     - shipped without a says tag (kMissingSignature).
  Status InjectForgedProvResponse(AttackKind kind, NodeId attacker,
                                  NodeId victim, uint64_t query_id,
                                  const Tuple& tuple, const Principal& as);

  // Framing forgery (the PR 3 follow-up the receive-side framing check
  // closes): a tuple signed with `as`'s stolen key whose piggybacked
  // condensed cubes name only `framed` — blame-shifting provenance that a
  // later traceback would pin on an innocent principal. Only meaningful in
  // ProvMode::kCondensed.
  Status InjectFramedTuple(NodeId attacker, NodeId victim, const Tuple& tuple,
                           const Principal& as, const Principal& framed);

  // Conflicting claims: `tuple_a` to `victim_a` and `tuple_b` to
  // `victim_b`, both validly signed by the attacker's own principal with
  // fresh sequence numbers — indistinguishable from honest traffic at each
  // receiver; only a cross-node audit exposes the equivocation.
  Status InjectEquivocation(NodeId attacker, NodeId victim_a,
                            const Tuple& tuple_a, NodeId victim_b,
                            const Tuple& tuple_b);

  // kMsgRetract for `tuple` at `victim`, validly signed by the attacker's
  // own principal (which never asserted the tuple). `killed` is an optional
  // poisoned killed-variable payload — restriction-set pollution the
  // verification pipeline must confine to the target's own annotation.
  Status InjectRogueRetract(NodeId attacker, NodeId victim,
                            const Tuple& tuple,
                            std::vector<ProvVar> killed = {});

  // --- Ground truth for scoring --------------------------------------------
  const std::vector<InjectionRecord>& injections() const {
    return injections_;
  }
  size_t captured_count() const { return captured_.size(); }
  uint64_t dropped_count() const { return dropped_; }

 private:
  struct Captured {
    NodeId from = 0;
    NodeId to = 0;
    Bytes payload;
  };

  Network::TapVerdict OnSend(const NetMessage& msg);
  // Wire-faithful tuple message: [kMsgTuple][blob: header+tuple+prov]
  // [has_says][tag]. `corrupt_sig`/`attach_says` select the forgery class;
  // `frame_as` (condensed mode) names a different principal inside the
  // mimicked cubes than the one speaking.
  Result<Bytes> BuildTupleMessage(const Principal& as, NodeId dest,
                                  const Tuple& tuple, bool attach_says,
                                  bool corrupt_sig,
                                  const Principal* frame_as = nullptr);
  Result<Bytes> BuildRetractMessage(const Principal& as, NodeId dest,
                                    const Tuple& tuple,
                                    const std::vector<ProvVar>& killed);
  void LogInjection(AttackKind kind, NodeId attacker, NodeId victim,
                    const Principal& claimed, const Tuple& tuple);

  Engine& engine_;
  Rng rng_;
  std::map<NodeId, AdversaryPolicy> policies_;
  std::vector<Captured> captured_;
  std::vector<InjectionRecord> injections_;
  uint64_t dropped_ = 0;
  bool injecting_ = false;  // tap bypass while sending our own messages
};

}  // namespace provnet

#endif  // PROVNET_ADVERSARY_ADVERSARY_H_
