// Receive-side verification pipeline (Engine member functions live here,
// next to the audit state they feed — the same layout as dynamics/delta.cc
// and core/distquery.cc).
//
// An authenticated deployment rejects, and audits, five classes of inbound
// misbehavior before a message touches any table:
//
//   1. missing signature   - authenticated network, bare message;
//   2. unknown principal   - the claimed principal is outside the
//                            deployment's PKI (an *invented* key would
//                            otherwise verify, since the simulated KeyStore
//                            derives key material on demand);
//   3. bad signature       - tampered content or a forger without the key;
//   4. misdirected         - the signed destination is another node
//                            (cross-receiver replay of a captured message);
//   5. replay              - the signed per-sender sequence number was
//                            already accepted (or fell out of the window).
//
// Retraction authorization (HandleRetractMessage in dynamics/delta.cc) adds
// the sixth: a kMsgRetract is honored only when the speaker asserted the
// tuple, is a recorded co-asserter, holds an operator capability, or is a
// principal the tuple's own provenance depends on — retraction authority
// derived from authenticated provenance, the paper's Section 4.2 usage.

#include "core/engine.h"
#include "util/strings.h"

namespace provnet {

void Engine::RecordSecurityEvent(SecurityEventKind kind, NodeId node,
                                 NodeId from, const Principal& claimed,
                                 std::string detail) {
  // Worker lane: the security log and its trace event are ordered state —
  // buffer the whole call and replay it in canonical commit order (the
  // audit sweep at the epoch barrier).
  ExecSlot& ex = exec();
  if (ex.buffered) {
    ExecSlot::Effect fx;
    fx.kind = ExecSlot::Effect::Kind::kSecurity;
    fx.sec_kind = kind;
    fx.node = node;
    fx.peer = from;
    fx.claimed = claimed;
    fx.detail = std::move(detail);
    ex.effects->push_back(std::move(fx));
    return;
  }
  // Every rejection kind is its own queryable detector ("Provenance Threat
  // Modeling", arXiv 1703.03835: forgery / suppression / flooding need
  // distinct signals): one labeled counter per SecurityEventKind, plus an
  // unsampled trace event so detection latency is measurable in virtual
  // time.
  size_t k = static_cast<size_t>(kind);
  if (k < cells_.security_events.size()) {
    ++cells_.security_events[k]->value;
  }
  if (tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.node = node;
    ev.kind = "security";
    ev.attrs = {{"event", SecurityEventKindName(kind)},
                {"from", PrincipalOf(from)},
                {"claimed", claimed}};
    tracer_.Emit(std::move(ev));
  }
  SecurityEvent event;
  event.at = net_.now();
  event.kind = kind;
  event.node = node;
  event.from = from;
  event.claimed = claimed;
  event.detail = std::move(detail);
  security_log_.Record(std::move(event));
}

void Engine::PutAuthHeader(ByteWriter& content, const Principal& sender,
                           NodeId dest) {
  if (!options_.authenticate) return;
  content.PutVarint(NextSendSeq(sender));
  content.PutVarint(dest);
}

Result<bool> Engine::VerifyInbound(NodeId to, NodeId from,
                                   const std::optional<SaysTag>& tag,
                                   const Bytes& content, ByteReader& body,
                                   const char* what) {
  obs::Profiler::Scope verify_scope(profiler_, obs::Phase::kVerify);
  const bool enforce = options_.authenticate && options_.verify_incoming;
  ExecSlot& ex = exec();

  if (enforce) {
    if (!tag.has_value()) {
      ++ex.cells.auth_failures->value;
      RecordSecurityEvent(SecurityEventKind::kMissingSignature, to, from, "",
                          what);
      return false;
    }
    if (node_of_.find(tag->principal) == node_of_.end()) {
      // The simulated PKI derives keys for any name, so an invented
      // principal's signature would verify; deployment membership is the
      // certificate check.
      ++ex.cells.auth_failures->value;
      RecordSecurityEvent(SecurityEventKind::kUnknownPrincipal, to, from,
                          tag->principal, what);
      return false;
    }
    Status verdict = auth_.Verify(*tag, content);
    if (!verdict.ok()) {
      ++ex.cells.auth_failures->value;
      RecordSecurityEvent(SecurityEventKind::kBadSignature, to, from,
                          tag->principal, what);
      return false;
    }
  }

  if (options_.authenticate) {
    // The signed header: (sequence, destination). Parsed whenever the
    // sender attached it (format is symmetric), enforced when verifying.
    PROVNET_ASSIGN_OR_RETURN(uint64_t seq, body.GetVarint());
    PROVNET_ASSIGN_OR_RETURN(uint64_t dest, body.GetVarint());
    if (enforce && options_.replay_protection && tag.has_value()) {
      if (dest != to) {
        ++ex.cells.replays_rejected->value;
        RecordSecurityEvent(
            SecurityEventKind::kMisdirected, to, from, tag->principal,
            StrFormat("%s signed for node %llu", what,
                      static_cast<unsigned long long>(dest)));
        return false;
      }
      if (!contexts_[to]->ReplayGuardFor(tag->principal).Accept(seq)) {
        ++ex.cells.replays_rejected->value;
        RecordSecurityEvent(
            SecurityEventKind::kReplay, to, from, tag->principal,
            StrFormat("%s seq %llu", what,
                      static_cast<unsigned long long>(seq)));
        return false;
      }
    }
  }
  return true;
}

bool Engine::AuthorizedRetractor(NodeId node, const Principal& claimed,
                                 const StoredTuple& stored) const {
  if (claimed == stored.asserted_by) return true;
  for (const Principal& op : options_.operators) {
    if (claimed == op) return true;
  }
  if (contexts_[node]->IsCoAsserter(DigestOf(stored.tuple), claimed)) {
    return true;
  }
  // Aggregate groups: any recorded contributor may retract a contribution
  // (the stored asserted_by only names the latest one).
  const Table* table = contexts_[node]->FindTable(stored.tuple.predicate());
  if (table != nullptr && table->options().agg != AggKind::kNone &&
      contexts_[node]->IsCoAsserter(table->GroupDigest(stored.tuple),
                                    claimed)) {
    return true;
  }
  // Provenance-derived authority: with principal-grain annotations, a
  // principal the tuple's derivation depends on asserted part of its
  // support and may withdraw it.
  if (AnnotationsComplete() &&
      options_.prov_grain == ProvGrain::kPrincipal && !stored.prov.IsZero()) {
    std::optional<ProvVar> v = registry_.Find(claimed);
    if (v.has_value() && stored.prov.DependsOnAny({*v})) return true;
  }
  return false;
}

}  // namespace provnet
