#include "adversary/campaign.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "apps/forensics.h"
#include "provenance/store.h"
#include "query/provquery.h"
#include "util/strings.h"

namespace provnet {

namespace {

bool IsForgeKind(AttackKind kind) {
  return kind == AttackKind::kForgeStolenKey ||
         kind == AttackKind::kForgeBadSig ||
         kind == AttackKind::kForgeNoSig;
}

bool LeavesStateKind(AttackKind kind) {
  // Attack classes whose injected tuple could end up stored somewhere.
  return IsForgeKind(kind) || kind == AttackKind::kEquivocate;
}

// Default operator invariant: no link/path/bestPath can honestly cost less
// than 1 (RingPlusRandom topologies use positive costs).
bool DefaultViolation(const Tuple& t) {
  size_t cost_arg;
  if (t.predicate() == "link" && t.arity() >= 3) {
    cost_arg = 2;
  } else if ((t.predicate() == "path" || t.predicate() == "bestPath") &&
             t.arity() >= 4) {
    cost_arg = 3;
  } else if (t.predicate() == "bestPathCost" && t.arity() >= 3) {
    cost_arg = 2;
  } else {
    return false;
  }
  const Value& v = t.arg(cost_arg);
  return v.kind() == ValueKind::kInt && v.AsInt() < 1;
}

}  // namespace

void AttackScript::AddChurn(const ChurnScript& churn) {
  for (const ChurnEvent& e : churn.events) {
    CampaignEvent event;
    event.at = e.at;
    event.kind = CampaignEvent::Kind::kChurn;
    event.churn = e;
    events.push_back(std::move(event));
  }
}

void AttackScript::AddAttack(double at, AttackAction action) {
  CampaignEvent event;
  event.at = at;
  event.kind = CampaignEvent::Kind::kAttack;
  event.attack = std::move(action);
  events.push_back(std::move(event));
}

void AttackScript::AddAuditSweeps(double start, double interval, double end) {
  for (double at = start; at <= end; at += interval) {
    CampaignEvent event;
    event.at = at;
    event.kind = CampaignEvent::Kind::kAudit;
    events.push_back(std::move(event));
  }
}

void AttackScript::SortByTime() {
  std::stable_sort(events.begin(), events.end(),
                   [](const CampaignEvent& a, const CampaignEvent& b) {
                     return a.at < b.at;
                   });
}

AttackScript AttackScript::RandomAttacks(const Topology& topo,
                                         const std::vector<NodeId>& attackers,
                                         size_t per_class, double start,
                                         double spacing, Rng& rng) {
  AttackScript script;
  if (attackers.empty() || topo.num_nodes < 4) return script;

  std::vector<NodeId> honest;
  for (NodeId n = 0; n < topo.num_nodes; ++n) {
    if (std::find(attackers.begin(), attackers.end(), n) == attackers.end()) {
      honest.push_back(n);
    }
  }
  if (honest.size() < 2) return script;
  auto pick_honest = [&]() { return honest[rng.NextBelow(honest.size())]; };
  auto link3 = [](NodeId a, NodeId b, int64_t c) {
    return Tuple("link",
                 {Value::Address(a), Value::Address(b), Value::Int(c)});
  };
  // A forged link must not collide with a real edge: the table's (src, dst)
  // primary key would *replace* the honest base fact, and base facts are
  // never re-derived — the attack would double as vandalism the golden
  // checks cannot score. Forge non-existent links only.
  auto pick_non_neighbor = [&](NodeId src) {
    for (int probe = 0; probe < 16; ++probe) {
      NodeId cand = static_cast<NodeId>(rng.NextBelow(topo.num_nodes));
      if (cand == src) continue;
      bool edge_exists = false;
      for (const TopoEdge& e : topo.edges) {
        if (e.from == src && e.to == cand) {
          edge_exists = true;
          break;
        }
      }
      if (!edge_exists) return cand;
    }
    return src;  // pathological topology; the forgery becomes a no-op
  };

  double at = start;
  for (size_t i = 0; i < per_class; ++i) {
    NodeId attacker = attackers[i % attackers.size()];

    // Stolen-key forgery: a zero-cost link at an honest node. Signed with
    // the attacker's own (compromised-but-valid) key, so verification
    // passes and the forged link *fires rules* at the victim — only
    // provenance can catch it.
    {
      AttackAction a;
      a.kind = AttackKind::kForgeStolenKey;
      a.attacker = attacker;
      a.victim = pick_honest();
      a.tuple = link3(a.victim, pick_non_neighbor(a.victim), 0);
      script.AddAttack(at, std::move(a));
      at += spacing;
    }
    // Bad-signature forgery: same shape, corrupted proof bytes.
    {
      AttackAction a;
      a.kind = AttackKind::kForgeBadSig;
      a.attacker = attacker;
      a.victim = pick_honest();
      a.tuple = link3(a.victim, pick_non_neighbor(a.victim), 0);
      script.AddAttack(at, std::move(a));
      at += spacing;
    }
    // Replay of a captured authenticated message; alternate between the
    // original destination (sequence window) and a diverted one (signed
    // destination check).
    {
      AttackAction a;
      a.kind = AttackKind::kReplay;
      a.attacker = attacker;
      if (i % 2 == 1) a.redirect = pick_honest();
      script.AddAttack(at, std::move(a));
      at += spacing;
    }
    // Equivocation: conflicting claims about the attacker's own link state
    // to two different honest nodes.
    {
      AttackAction a;
      a.kind = AttackKind::kEquivocate;
      a.attacker = attacker;
      a.victim = pick_honest();
      a.victim2 = pick_honest();
      if (a.victim2 == a.victim) a.victim2 = honest[(honest.front() == a.victim) ? honest.size() - 1 : 0];
      NodeId target = pick_honest();
      a.tuple = link3(attacker, target, 1);
      a.tuple2 = link3(attacker, target, 99);
      script.AddAttack(at, std::move(a));
      at += spacing;
    }
    // Unauthorized retraction of a real link the victim asserted.
    {
      const TopoEdge* edge = nullptr;
      for (size_t probe = 0; probe < topo.edges.size(); ++probe) {
        const TopoEdge& e = topo.edges[rng.NextBelow(topo.edges.size())];
        if (std::find(attackers.begin(), attackers.end(), e.from) ==
            attackers.end()) {
          edge = &e;
          break;
        }
      }
      if (edge != nullptr) {
        AttackAction a;
        a.kind = AttackKind::kRogueRetract;
        a.attacker = attacker;
        a.victim = edge->from;
        a.tuple = link3(edge->from, edge->to, edge->cost);
        script.AddAttack(at, std::move(a));
      }
      at += spacing;
    }
  }
  script.SortByTime();
  return script;
}

Result<std::vector<EquivocationFinding>> EquivocationAudit(
    Engine& engine, const std::set<std::string>& predicates,
    const std::set<NodeId>& skip_nodes, std::optional<NodeId> auditor,
    std::set<NodeId>* silent) {
  NodeId audit_node = 0;
  bool have_auditor = auditor.has_value();
  if (have_auditor) {
    audit_node = *auditor;
  } else {
    for (NodeId n = 0; n < engine.num_nodes(); ++n) {
      if (skip_nodes.count(n) == 0) {
        audit_node = n;
        have_auditor = true;
        break;
      }
    }
  }
  if (!have_auditor) {
    return FailedPreconditionError("equivocation audit: no honest auditor");
  }

  // Phase one — the digest exchange: every honest node ships its claims of
  // the audited predicates to the auditor over the signed query wire path.
  ClaimsExchange exchange(engine, audit_node);
  PROVNET_ASSIGN_OR_RETURN(std::vector<ClaimsExchange::Claim> collected,
                           exchange.Collect(predicates, skip_nodes));
  if (silent != nullptr) *silent = exchange.silent();

  // Key columns resolved once per audited predicate, not per claim.
  std::map<std::string, std::vector<int>> keys_of;
  for (const std::string& pred : predicates) {
    keys_of.emplace(pred, engine.plan().OptionsFor(pred).key_columns);
  }

  // Bucket claims by equivocation key (predicate | principal | key columns)
  // in collected order, so each bucket's entry 0 is the key's first claim —
  // the baseline the centralized sweep compared everything against. 64-bit
  // FNV tuple digests stand in for the tuples themselves: equal tuples
  // always match, and a colliding pair of *different* claims is the usual
  // negligible-digest-collision caveat (the full claims stay at the auditor
  // for confirmation).
  std::map<std::string, size_t> bucket_of;
  std::vector<CompareExchange::Bucket> buckets;
  std::vector<std::vector<size_t>> members;  // bucket -> collected indices
  for (size_t i = 0; i < collected.size(); ++i) {
    const ClaimsExchange::Claim& claim = collected[i];
    const std::string& pred = claim.tuple.predicate();
    const std::vector<int>& keys = keys_of[pred];
    std::string key = pred + "|" + claim.asserted_by + "|";
    if (keys.empty()) {
      key += claim.tuple.ToString();
    } else {
      for (int c : keys) {
        if (static_cast<size_t>(c) < claim.tuple.arity()) {
          key += claim.tuple.arg(static_cast<size_t>(c)).ToString() + ",";
        }
      }
    }
    auto [it, fresh] = bucket_of.emplace(key, buckets.size());
    if (fresh) {
      buckets.push_back(CompareExchange::Bucket{key, {}});
      members.emplace_back();
    }
    buckets[it->second].digests.push_back(DigestOf(claim.tuple));
    members[it->second].push_back(i);
  }

  // Phase two — the pairwise comparison, spread across the eligible
  // comparers (every non-skipped node that answered phase one; a responder
  // that suppressed its claims is a suspect, not a delegate).
  std::vector<NodeId> comparers;
  for (NodeId n = 0; n < engine.num_nodes(); ++n) {
    if (skip_nodes.count(n) != 0) continue;
    if (exchange.silent().count(n) != 0) continue;
    comparers.push_back(n);
  }
  CompareExchange compare(engine, audit_node);
  PROVNET_ASSIGN_OR_RETURN(std::vector<CompareExchange::Conflict> conflicts,
                           compare.Compare(buckets, comparers));

  // Map conflict indices back to full claims. Centralized order was "by the
  // conflicting claim's position in the collected stream"; sorting by the
  // global index of entry `b` restores exactly that.
  std::sort(conflicts.begin(), conflicts.end(),
            [&](const CompareExchange::Conflict& x,
                const CompareExchange::Conflict& y) {
              return members[x.bucket][x.b] < members[y.bucket][y.b];
            });
  std::vector<EquivocationFinding> findings;
  for (const CompareExchange::Conflict& c : conflicts) {
    const ClaimsExchange::Claim& first = collected[members[c.bucket][c.a]];
    const ClaimsExchange::Claim& other = collected[members[c.bucket][c.b]];
    EquivocationFinding f;
    f.principal = other.asserted_by;
    f.node_a = first.node;
    f.node_b = other.node;
    f.claim_a = first.tuple;
    f.claim_b = other.tuple;
    findings.push_back(std::move(f));
  }
  return findings;
}

std::string CampaignReport::Summary() const {
  return StrFormat(
      "%zu injected: %zu detected (%zu at verify, %zu localized correctly), "
      "forged-in-fixpoint=%zu, latency mean=%.3fs max=%.3fs, bytes=%llu "
      "msgs=%llu dropped=%llu flagged=%zu",
      injected, detected, rejected_at_verify, localized_correct,
      forged_in_fixpoint, mean_detection_latency_s, max_detection_latency_s,
      static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(messages),
      static_cast<unsigned long long>(dropped_by_adversary), flagged.size());
}

AttackCampaignDriver::AttackCampaignDriver(Engine& engine,
                                           Adversary& adversary,
                                           CampaignOptions options)
    : engine_(engine),
      adversary_(adversary),
      opts_(std::move(options)),
      churn_(engine, opts_.link_arity) {
  if (!opts_.violation) opts_.violation = DefaultViolation;
}

void AttackCampaignDriver::MarkDetected(AttackOutcome& outcome, double at,
                                        std::string method,
                                        std::set<Principal> localized) {
  outcome.detected = true;
  outcome.detected_at = at;
  outcome.method = std::move(method);
  outcome.localized = std::move(localized);
  Principal attacker_principal = engine_.PrincipalOf(outcome.injection.attacker);
  outcome.localized_correct =
      outcome.localized.count(attacker_principal) != 0 ||
      (!outcome.injection.claimed.empty() &&
       outcome.localized.count(outcome.injection.claimed) != 0);
}

void AttackCampaignDriver::MatchSecurityEvents(CampaignReport& report) {
  const std::vector<SecurityEvent>& log = engine_.security_log().events();
  for (; log_cursor_ < log.size(); ++log_cursor_) {
    const SecurityEvent& ev = log[log_cursor_];
    auto matches = [&](const AttackOutcome& o) {
      if (o.detected) return false;
      const InjectionRecord& inj = o.injection;
      switch (ev.kind) {
        case SecurityEventKind::kBadSignature:
          if (inj.kind != AttackKind::kForgeBadSig) return false;
          break;
        case SecurityEventKind::kMissingSignature:
          if (inj.kind != AttackKind::kForgeNoSig) return false;
          break;
        case SecurityEventKind::kUnknownPrincipal:
          if (!IsForgeKind(inj.kind)) return false;
          break;
        case SecurityEventKind::kReplay:
        case SecurityEventKind::kMisdirected:
          if (inj.kind != AttackKind::kReplay) return false;
          break;
        case SecurityEventKind::kUnauthorizedRetract:
          if (inj.kind != AttackKind::kRogueRetract) return false;
          break;
        case SecurityEventKind::kMalformed:
          return false;
        case SecurityEventKind::kSilentResponder:
          // Attributed by the audit sweep itself (suspect set), not by
          // matching an injection record.
          return false;
      }
      return ev.node == inj.victim;
    };
    for (AttackOutcome& o : report.outcomes) {
      if (!matches(o)) continue;
      // Verification rejections attribute via the transport-level sender.
      MarkDetected(o, ev.at,
                   std::string("verify:") + SecurityEventKindName(ev.kind),
                   {engine_.PrincipalOf(ev.from)});
      break;
    }
  }
}

Status AttackCampaignDriver::RunAuditSweep(CampaignReport& report) {
  double now = engine_.network().now();
  std::set<NodeId> compromised;
  for (const auto& [node, policy] : adversary_.compromised()) {
    compromised.insert(node);
  }

  std::set<Principal> suspects;

  // 1. Cross-node equivocation audit. A responder that suppresses its
  // answer incriminates itself: silence joins the suspect set directly.
  std::set<NodeId> silent;
  PROVNET_ASSIGN_OR_RETURN(
      std::vector<EquivocationFinding> findings,
      EquivocationAudit(engine_, opts_.audit_predicates, compromised,
                        std::nullopt, &silent));
  for (NodeId n : silent) {
    suspects.insert(engine_.PrincipalOf(n));
  }
  for (const EquivocationFinding& f : findings) {
    suspects.insert(f.principal);
    for (AttackOutcome& o : report.outcomes) {
      if (!o.detected && o.injection.kind == AttackKind::kEquivocate &&
          o.injection.claimed == f.principal) {
        MarkDetected(o, now, "audit:equivocation", {f.principal});
      }
    }
  }

  // 2. Policy-violation scan over honest state, localizing via the
  // authenticated assertion (asserted_by) or, for derived tuples, the
  // intersection of principal-grain annotation variables.
  struct Violation {
    NodeId node = 0;
    Tuple tuple;
    Principal asserted_by;
    bool foreign = false;  // asserted by someone other than the holder
  };
  std::vector<Violation> violations;
  std::set<Principal> anno_intersection;
  bool first_annotation = true;
  for (NodeId n = 0; n < engine_.num_nodes(); ++n) {
    if (compromised.count(n) != 0) continue;
    Principal own = engine_.PrincipalOf(n);
    for (Table* table : engine_.node(n).AllTables()) {
      for (const StoredTuple* e : table->Scan()) {
        if (!opts_.violation(e->tuple)) continue;
        Violation v;
        v.node = n;
        v.tuple = e->tuple;
        v.asserted_by = e->asserted_by;
        v.foreign = !e->asserted_by.empty() && e->asserted_by != own;
        if (v.foreign) {
          suspects.insert(e->asserted_by);
        } else if (!e->prov.IsZero() && !e->prov.IsOne()) {
          // Honest-derived violation: every derivation of it passes through
          // the culprit, so the culprit survives the intersection.
          std::set<Principal> here;
          for (ProvVar var : e->prov.Variables()) {
            Principal name = engine_.VarName(var);
            if (name != own && engine_.NodeOf(name).ok()) here.insert(name);
          }
          if (first_annotation) {
            anno_intersection = std::move(here);
            first_annotation = false;
          } else {
            std::set<Principal> merged;
            for (const Principal& p : anno_intersection) {
              if (here.count(p) != 0) merged.insert(p);
            }
            anno_intersection = std::move(merged);
          }
        }
        violations.push_back(std::move(v));
      }
    }
  }
  if (suspects.empty()) suspects = anno_intersection;

  // 3. Distributed provenance traceback on the first violation: confirms
  // the origin over the wire (charged to the meters) — the Section 3/4.2
  // forensic query.
  if (opts_.traceback && !violations.empty()) {
    Result<TracebackReport> trace =
        Traceback(engine_, violations.front().node, violations.front().tuple);
    if (trace.ok()) {
      for (NodeId origin : trace.value().origin_nodes) {
        if (compromised.count(origin) != 0) {
          suspects.insert(engine_.PrincipalOf(origin));
        }
      }
    }
  }

  // 4. Score: a violating tuple (or a suspect naming) detects the forgery
  // that planted it.
  if (!violations.empty() || !suspects.empty()) {
    for (AttackOutcome& o : report.outcomes) {
      if (o.detected || !LeavesStateKind(o.injection.kind)) continue;
      bool tuple_seen = false;
      for (const Violation& v : violations) {
        if (v.tuple == o.injection.tuple) {
          tuple_seen = true;
          break;
        }
      }
      if (tuple_seen || suspects.count(o.injection.claimed) != 0) {
        MarkDetected(o, now, "audit:traceback", suspects);
      }
    }
  }

  // 5. Respond: revoke every localized principal and re-run to the
  // post-revocation fixpoint (Section 4.2's compromise response). Suspects
  // are only non-empty while tainted state exists, so a re-offending
  // principal is revoked again on the next sweep and the loop converges.
  bool revoked = false;
  for (const Principal& p : suspects) {
    report.flagged.insert(p);
    if (opts_.respond) {
      PROVNET_RETURN_IF_ERROR(engine_.RetractPrincipal(p));
      revoked = true;
    }
  }
  if (revoked) {
    PROVNET_RETURN_IF_ERROR(engine_.Run().status());
    MatchSecurityEvents(report);
  }
  return OkStatus();
}

Status AttackCampaignDriver::ApplyAttack(const AttackAction& action) {
  switch (action.kind) {
    case AttackKind::kForgeBadSig:
    case AttackKind::kForgeStolenKey:
    case AttackKind::kForgeNoSig: {
      Principal as = action.as.empty() ? engine_.PrincipalOf(action.attacker)
                                       : action.as;
      return adversary_.InjectForgedTuple(action.kind, action.attacker,
                                          action.victim, action.tuple, as);
    }
    case AttackKind::kReplay: {
      Status s = adversary_.InjectReplay(action.attacker, action.redirect);
      // Nothing captured yet: the script fired before any traffic crossed a
      // compromised node. Not an error; the attack simply never happened.
      if (!s.ok() && s.code() == StatusCode::kNotFound) return OkStatus();
      return s;
    }
    case AttackKind::kEquivocate:
      return adversary_.InjectEquivocation(action.attacker, action.victim,
                                           action.tuple, action.victim2,
                                           action.tuple2);
    case AttackKind::kRogueRetract: {
      // An adversary observing the victim would not retract a tuple it does
      // not hold (churn may have beaten the script to it); and an absent
      // target makes the attack an unscoreable no-op.
      const Table* table =
          engine_.node(action.victim).FindTable(action.tuple.predicate());
      if (table == nullptr || table->Find(action.tuple) == nullptr) {
        return OkStatus();
      }
      return adversary_.InjectRogueRetract(action.attacker, action.victim,
                                           action.tuple);
    }
    case AttackKind::kDrop:
    case AttackKind::kDelay:
      adversary_.Compromise(action.attacker, action.policy);
      return OkStatus();
  }
  return InvalidArgumentError("unknown attack kind");
}

Result<CampaignReport> AttackCampaignDriver::Replay(
    const AttackScript& script) {
  CampaignReport report;
  Network& net = engine_.network();
  Network::Meters meters0 = net.MeterSnapshot();
  auto t0 = std::chrono::steady_clock::now();

  for (const CampaignEvent& event : script.events) {
    switch (event.kind) {
      case CampaignEvent::Kind::kChurn: {
        PROVNET_RETURN_IF_ERROR(churn_.Step(event.churn).status());
        break;
      }
      case CampaignEvent::Kind::kAttack: {
        if (event.at > net.now()) net.AdvanceTime(event.at - net.now());
        engine_.ExpireNow();
        PROVNET_RETURN_IF_ERROR(ApplyAttack(event.attack));
        PROVNET_RETURN_IF_ERROR(engine_.Run().status());
        break;
      }
      case CampaignEvent::Kind::kAudit: {
        if (event.at > net.now()) net.AdvanceTime(event.at - net.now());
        PROVNET_RETURN_IF_ERROR(RunAuditSweep(report));
        break;
      }
    }
    // New injections become pending outcomes; fresh rejections resolve them.
    const std::vector<InjectionRecord>& injections = adversary_.injections();
    for (; injection_cursor_ < injections.size(); ++injection_cursor_) {
      AttackOutcome outcome;
      outcome.injection = injections[injection_cursor_];
      report.outcomes.push_back(std::move(outcome));
    }
    MatchSecurityEvents(report);
  }

  // Final sweep: whatever slipped past the inline defenses must fall to the
  // audit, and the response must leave the fixpoint clean.
  PROVNET_RETURN_IF_ERROR(RunAuditSweep(report));
  MatchSecurityEvents(report);

  auto t1 = std::chrono::steady_clock::now();
  Network::Meters meters1 = net.MeterSnapshot();
  report.bytes = meters1.bytes - meters0.bytes;
  report.messages = meters1.messages - meters0.messages;
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  report.dropped_by_adversary = adversary_.dropped_count();

  report.injected = report.outcomes.size();
  double latency_sum = 0.0;
  size_t latency_n = 0;
  for (const AttackOutcome& o : report.outcomes) {
    if (!o.detected) continue;
    ++report.detected;
    if (o.method.rfind("verify:", 0) == 0) ++report.rejected_at_verify;
    if (o.localized_correct) ++report.localized_correct;
    latency_sum += o.latency();
    report.max_detection_latency_s =
        std::max(report.max_detection_latency_s, o.latency());
    ++latency_n;
  }
  if (latency_n > 0) report.mean_detection_latency_s = latency_sum / latency_n;

  // Ground truth: no forged/equivocated tuple may survive in honest state.
  for (const AttackOutcome& o : report.outcomes) {
    if (!LeavesStateKind(o.injection.kind)) continue;
    const Tuple& t = o.injection.tuple;
    if (t.predicate().empty()) continue;
    for (NodeId n = 0; n < engine_.num_nodes(); ++n) {
      if (adversary_.IsCompromised(n)) continue;
      std::vector<Tuple> stored = engine_.TuplesAt(n, t.predicate());
      if (std::find(stored.begin(), stored.end(), t) != stored.end()) {
        ++report.forged_in_fixpoint;
        break;
      }
    }
  }
  return report;
}

}  // namespace provnet
