#include "adversary/adversary.h"

#include <utility>

#include "provenance/condense.h"
#include "provenance/derivation.h"
#include "provenance/store.h"
#include "query/provquery.h"

namespace provnet {

const char* AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kForgeBadSig:
      return "forge_bad_sig";
    case AttackKind::kForgeStolenKey:
      return "forge_stolen_key";
    case AttackKind::kForgeNoSig:
      return "forge_no_sig";
    case AttackKind::kReplay:
      return "replay";
    case AttackKind::kEquivocate:
      return "equivocate";
    case AttackKind::kRogueRetract:
      return "rogue_retract";
    case AttackKind::kDrop:
      return "drop";
    case AttackKind::kDelay:
      return "delay";
  }
  return "?";
}

Adversary::Adversary(Engine& engine, uint64_t seed)
    : engine_(engine), rng_(seed) {
  engine_.network().SetSendTap(
      [this](const NetMessage& msg) { return OnSend(msg); });
}

Adversary::~Adversary() { engine_.network().ClearSendTap(); }

void Adversary::Compromise(NodeId node, AdversaryPolicy policy) {
  policies_[node] = policy;
}

Network::TapVerdict Adversary::OnSend(const NetMessage& msg) {
  Network::TapVerdict verdict;
  if (policies_.empty()) return verdict;

  // Capture traffic crossing a compromised node (either endpoint): the
  // replay corpus. Injected messages are attack traffic already.
  auto wants_capture = [this](NodeId node) {
    auto it = policies_.find(node);
    return it != policies_.end() && it->second.capture;
  };
  if (!injecting_ && (wants_capture(msg.from) || wants_capture(msg.to))) {
    captured_.push_back(Captured{msg.from, msg.to, msg.payload});
  }

  if (injecting_) return verdict;  // never suppress our own injections
  auto it = policies_.find(msg.from);
  if (it == policies_.end()) return verdict;
  const AdversaryPolicy& policy = it->second;
  if (policy.drop_rate > 0.0 && rng_.NextBernoulli(policy.drop_rate)) {
    ++dropped_;
    verdict.drop = true;
    return verdict;
  }
  verdict.extra_delay_s = policy.delay_seconds;
  return verdict;
}

void Adversary::LogInjection(AttackKind kind, NodeId attacker, NodeId victim,
                             const Principal& claimed, const Tuple& tuple) {
  // An injecting node is Byzantine by definition: mark it compromised so
  // honest-state scans and audits exclude it (and its traffic is captured).
  if (!IsCompromised(attacker)) Compromise(attacker);
  InjectionRecord rec;
  rec.kind = kind;
  rec.at = engine_.network().now();
  rec.attacker = attacker;
  rec.victim = victim;
  rec.claimed = claimed;
  rec.tuple = tuple;
  injections_.push_back(std::move(rec));
}

Result<Bytes> Adversary::BuildTupleMessage(const Principal& as, NodeId dest,
                                           const Tuple& tuple,
                                           bool attach_says,
                                           bool corrupt_sig,
                                           const Principal* frame_as) {
  const EngineOptions& opts = engine_.options();

  ByteWriter content;
  if (opts.authenticate) {
    // Key theft includes counter theft: continue the victim principal's
    // sequence so the header is indistinguishable from honest traffic.
    content.PutVarint(engine_.NextSendSeq(as));
    content.PutVarint(dest);
  }
  {
    // Counter theft extends to the causal layer: the forged span continues
    // the impersonated node's sequence, indistinguishable from honest
    // traffic, and roots a fresh trace (no inbound context to extend).
    // Invented identities have no node; any counter parses, and the
    // receiver rejects the message before adopting its causal ids.
    Result<NodeId> as_node = engine_.NodeOf(as);
    uint64_t span = engine_.NewCausalSpan(as_node.ok() ? as_node.value() : dest);
    PutCausalIds(content, CausalIds{span, span});
  }
  tuple.Serialize(content);
  switch (opts.prov_mode) {
    case ProvMode::kNone:
    case ProvMode::kPointers:
      content.PutU8(kProvPayloadNone);
      break;
    case ProvMode::kCondensed: {
      // Mimic honest wire format: cubes claiming `as` asserted the tuple. A
      // forgery without an annotation would be trivially conspicuous — and
      // this is also what makes provenance-driven response (retracting the
      // principal) reach everything derived from the forgery.
      content.PutU8(kProvPayloadCubes);
      ProvExpr base = ProvExpr::Var(
          engine_.registry().Intern(frame_as != nullptr ? *frame_as : as));
      Condense(base).Serialize(content);
      break;
    }
    case ProvMode::kFull: {
      content.PutU8(kProvPayloadTree);
      DerivationPtr deriv = MakeBaseDerivation(
          tuple, dest, as, engine_.network().now(), -1.0);
      if (opts.authenticate) {
        PROVNET_ASSIGN_OR_RETURN(
            deriv, SignDerivation(deriv, engine_.authenticator(),
                                  opts.says_level));
      }
      deriv->Serialize(content);
      break;
    }
  }

  ByteWriter msg;
  msg.PutU8(kMsgTuple);
  msg.PutBlob(content.bytes());
  msg.PutU8(attach_says ? 1 : 0);
  if (attach_says) {
    SaysLevel level =
        opts.authenticate ? opts.says_level : SaysLevel::kCleartext;
    PROVNET_ASSIGN_OR_RETURN(
        SaysTag tag,
        engine_.authenticator().Say(as, content.bytes(), level));
    if (corrupt_sig) {
      if (tag.proof.empty()) {
        tag.proof.push_back(0x5a);  // cleartext tags carry no proof to mangle
      } else {
        tag.proof[0] ^= 0xff;
      }
    }
    tag.Serialize(msg);
  }
  return std::move(msg).Take();
}

Result<Bytes> Adversary::BuildRetractMessage(
    const Principal& as, NodeId dest, const Tuple& tuple,
    const std::vector<ProvVar>& killed) {
  const EngineOptions& opts = engine_.options();
  ByteWriter content;
  if (opts.authenticate) {
    content.PutVarint(engine_.NextSendSeq(as));
    content.PutVarint(dest);
  }
  {
    Result<NodeId> as_node = engine_.NodeOf(as);
    uint64_t span = engine_.NewCausalSpan(as_node.ok() ? as_node.value() : dest);
    PutCausalIds(content, CausalIds{span, span});
  }
  tuple.Serialize(content);
  content.PutVarint(killed.size());
  for (ProvVar v : killed) content.PutU32(v);

  ByteWriter msg;
  msg.PutU8(kMsgRetract);
  msg.PutBlob(content.bytes());
  bool attach_says = opts.authenticate || engine_.plan().sendlog();
  msg.PutU8(attach_says ? 1 : 0);
  if (attach_says) {
    SaysLevel level =
        opts.authenticate ? opts.says_level : SaysLevel::kCleartext;
    PROVNET_ASSIGN_OR_RETURN(
        SaysTag tag,
        engine_.authenticator().Say(as, content.bytes(), level));
    tag.Serialize(msg);
  }
  return std::move(msg).Take();
}

Status Adversary::InjectForgedTuple(AttackKind kind, NodeId attacker,
                                    NodeId victim, const Tuple& tuple,
                                    const Principal& as) {
  bool attach_says = kind != AttackKind::kForgeNoSig;
  bool corrupt_sig = kind == AttackKind::kForgeBadSig;
  PROVNET_ASSIGN_OR_RETURN(
      Bytes msg, BuildTupleMessage(as, victim, tuple, attach_says,
                                   corrupt_sig));
  injecting_ = true;
  Status sent = engine_.network().Send(attacker, victim, std::move(msg));
  injecting_ = false;
  PROVNET_RETURN_IF_ERROR(sent);
  LogInjection(kind, attacker, victim, as, tuple);
  return OkStatus();
}

Status Adversary::InjectReplay(NodeId attacker,
                               std::optional<NodeId> redirect,
                               uint8_t msg_type) {
  // Replay corpus: captured payloads of the requested wire type (signed
  // tuple messages by default; provenance-query responses for attacks on
  // the forensic path).
  std::vector<size_t> candidates;
  for (size_t i = 0; i < captured_.size(); ++i) {
    if (!captured_[i].payload.empty() &&
        captured_[i].payload[0] == msg_type) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return NotFoundError("replay: nothing captured yet");
  }
  const Captured& pick =
      captured_[candidates[rng_.NextBelow(candidates.size())]];
  NodeId dest = redirect.value_or(pick.to);

  // Best-effort parse of the captured message for the scoring record (the
  // bytes go out verbatim regardless).
  Principal claimed;
  Tuple tuple;
  {
    ByteReader reader(pick.payload);
    (void)reader.GetU8();
    Result<Bytes> content = reader.GetBlob();
    Result<uint8_t> has_says = reader.GetU8();
    if (has_says.ok() && has_says.value() != 0) {
      Result<SaysTag> tag = SaysTag::Deserialize(reader);
      if (tag.ok()) claimed = tag.value().principal;
    }
    if (content.ok()) {
      ByteReader body(content.value());
      if (engine_.options().authenticate) {
        (void)body.GetVarint();
        (void)body.GetVarint();
      }
      Result<Tuple> t = Tuple::Deserialize(body);
      if (t.ok()) tuple = std::move(t).value();
    }
  }

  Bytes payload = pick.payload;  // copy; the corpus entry stays replayable
  injecting_ = true;
  Status sent = engine_.network().Send(attacker, dest, std::move(payload));
  injecting_ = false;
  PROVNET_RETURN_IF_ERROR(sent);
  LogInjection(AttackKind::kReplay, attacker, dest, claimed, tuple);
  return OkStatus();
}

Status Adversary::InjectEquivocation(NodeId attacker, NodeId victim_a,
                                     const Tuple& tuple_a, NodeId victim_b,
                                     const Tuple& tuple_b) {
  Principal self = engine_.PrincipalOf(attacker);
  PROVNET_ASSIGN_OR_RETURN(
      Bytes msg_a, BuildTupleMessage(self, victim_a, tuple_a,
                                     /*attach_says=*/true,
                                     /*corrupt_sig=*/false));
  PROVNET_ASSIGN_OR_RETURN(
      Bytes msg_b, BuildTupleMessage(self, victim_b, tuple_b,
                                     /*attach_says=*/true,
                                     /*corrupt_sig=*/false));
  injecting_ = true;
  Status sent_a = engine_.network().Send(attacker, victim_a, std::move(msg_a));
  Status sent_b = engine_.network().Send(attacker, victim_b, std::move(msg_b));
  injecting_ = false;
  PROVNET_RETURN_IF_ERROR(sent_a);
  PROVNET_RETURN_IF_ERROR(sent_b);
  LogInjection(AttackKind::kEquivocate, attacker, victim_a, self, tuple_a);
  LogInjection(AttackKind::kEquivocate, attacker, victim_b, self, tuple_b);
  return OkStatus();
}

Status Adversary::InjectForgedProvResponse(AttackKind kind, NodeId attacker,
                                           NodeId victim, uint64_t query_id,
                                           const Tuple& tuple,
                                           const Principal& as) {
  const EngineOptions& opts = engine_.options();
  // The responder the signed content claims: the node `as` operates (so a
  // stolen key exercises the outstanding-query match, not the trivial
  // responder/principal check).
  NodeId responder = attacker;
  Result<NodeId> as_node = engine_.NodeOf(as);
  if (as_node.ok()) responder = as_node.value();

  // A fabricated base record: "this tuple originated here, no questions".
  ProvRecord rec;
  rec.tuple = tuple;
  rec.rule = kBaseRule;
  rec.location = responder;
  rec.asserted_by = as;
  rec.created_at = engine_.network().now();

  ByteWriter content;
  if (opts.authenticate) {
    content.PutVarint(engine_.NextSendSeq(as));
    content.PutVarint(victim);
  }
  {
    Result<NodeId> as_node = engine_.NodeOf(as);
    uint64_t span =
        engine_.NewCausalSpan(as_node.ok() ? as_node.value() : victim);
    PutCausalIds(content, CausalIds{span, span});
  }
  content.PutU8(kQueryRecords);
  content.PutU64(query_id);
  content.PutU32(responder);
  content.PutU64(DigestOf(tuple));
  content.PutU8(0);  // offline-archive flag (wire-faithful forgery)
  content.PutVarint(1);
  rec.Serialize(content);

  bool attach_says = kind != AttackKind::kForgeNoSig &&
                     (opts.authenticate || engine_.plan().sendlog());
  ByteWriter msg;
  msg.PutU8(kMsgProvResponse);
  msg.PutBlob(content.bytes());
  msg.PutU8(attach_says ? 1 : 0);
  if (attach_says) {
    SaysLevel level =
        opts.authenticate ? opts.says_level : SaysLevel::kCleartext;
    PROVNET_ASSIGN_OR_RETURN(
        SaysTag tag,
        engine_.authenticator().Say(as, content.bytes(), level));
    if (kind == AttackKind::kForgeBadSig) {
      if (tag.proof.empty()) {
        tag.proof.push_back(0x5a);
      } else {
        tag.proof[0] ^= 0xff;
      }
    }
    tag.Serialize(msg);
  }

  injecting_ = true;
  Status sent = engine_.network().Send(attacker, victim, std::move(msg).Take());
  injecting_ = false;
  PROVNET_RETURN_IF_ERROR(sent);
  LogInjection(kind, attacker, victim, as, tuple);
  return OkStatus();
}

Status Adversary::InjectFramedTuple(NodeId attacker, NodeId victim,
                                    const Tuple& tuple, const Principal& as,
                                    const Principal& framed) {
  PROVNET_ASSIGN_OR_RETURN(
      Bytes msg, BuildTupleMessage(as, victim, tuple, /*attach_says=*/true,
                                   /*corrupt_sig=*/false, &framed));
  injecting_ = true;
  Status sent = engine_.network().Send(attacker, victim, std::move(msg));
  injecting_ = false;
  PROVNET_RETURN_IF_ERROR(sent);
  LogInjection(AttackKind::kForgeStolenKey, attacker, victim, as, tuple);
  return OkStatus();
}

Status Adversary::InjectRogueRetract(NodeId attacker, NodeId victim,
                                     const Tuple& tuple,
                                     std::vector<ProvVar> killed) {
  Principal self = engine_.PrincipalOf(attacker);
  PROVNET_ASSIGN_OR_RETURN(Bytes msg,
                           BuildRetractMessage(self, victim, tuple, killed));
  injecting_ = true;
  Status sent = engine_.network().Send(attacker, victim, std::move(msg));
  injecting_ = false;
  PROVNET_RETURN_IF_ERROR(sent);
  LogInjection(AttackKind::kRogueRetract, attacker, victim, self, tuple);
  return OkStatus();
}

}  // namespace provnet
