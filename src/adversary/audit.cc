#include "adversary/audit.h"

#include "util/strings.h"

namespace provnet {

const char* SecurityEventKindName(SecurityEventKind kind) {
  switch (kind) {
    case SecurityEventKind::kBadSignature:
      return "bad_signature";
    case SecurityEventKind::kMissingSignature:
      return "missing_signature";
    case SecurityEventKind::kUnknownPrincipal:
      return "unknown_principal";
    case SecurityEventKind::kReplay:
      return "replay";
    case SecurityEventKind::kMisdirected:
      return "misdirected";
    case SecurityEventKind::kUnauthorizedRetract:
      return "unauthorized_retract";
    case SecurityEventKind::kMalformed:
      return "malformed";
    case SecurityEventKind::kBogusResponse:
      return "bogus_response";
    case SecurityEventKind::kForeignProvenance:
      return "foreign_provenance";
    case SecurityEventKind::kSilentResponder:
      return "silent_responder";
    case SecurityEventKind::kLyingComparer:
      return "lying_comparer";
  }
  return "?";
}

std::string SecurityEvent::ToString() const {
  return StrFormat("t=%.3f node=%u from=%u %s claimed=%s %s", at, node, from,
                   SecurityEventKindName(kind), claimed.c_str(),
                   detail.c_str());
}

size_t SecurityLog::CountOf(SecurityEventKind kind) const {
  size_t n = 0;
  for (const SecurityEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<const SecurityEvent*> SecurityLog::EventsSince(size_t mark) const {
  std::vector<const SecurityEvent*> out;
  for (size_t i = mark; i < events_.size(); ++i) out.push_back(&events_[i]);
  return out;
}

bool ReplayGuard::Accept(uint64_t seq) {
  if (!any_) {
    any_ = true;
    high_ = seq;
    mask_ = 1;
    return true;
  }
  if (seq > high_) {
    uint64_t shift = seq - high_;
    // Archive the accepted bits about to slide out of the bitmap, so a
    // below-window arrival can be judged exactly. The conservative
    // reject-all-stale rule this replaces booked loss-delayed honest
    // retransmits as replays: one lost frame, retransmitted after the
    // sender's shared per-principal counter advanced past the window, was
    // indistinguishable from an attack.
    uint64_t falling = shift >= kWindow ? kWindow : shift;
    for (uint64_t age = kWindow - falling; age < kWindow; ++age) {
      if (high_ >= age && (mask_ & (1ull << age))) old_.insert(high_ - age);
    }
    mask_ = shift >= 64 ? 0 : mask_ << shift;
    mask_ |= 1;
    high_ = seq;
    return true;
  }
  uint64_t age = high_ - seq;
  if (age >= kWindow) {
    // Older than the bitmap: consult the exact archive. Seen before =>
    // replay; never seen => a late original (lost-then-retransmitted).
    return old_.insert(seq).second;
  }
  uint64_t bit = 1ull << age;
  if (mask_ & bit) return false;  // duplicate: the replay case
  mask_ |= bit;
  return true;
}

}  // namespace provnet
