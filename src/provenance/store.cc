#include "provenance/store.h"

#include <algorithm>

#include "store/archive.h"
#include "util/strings.h"

namespace provnet {

TupleDigest DigestOf(const Tuple& tuple) { return tuple.Hash(); }

void ProvChildRef::Serialize(ByteWriter& out) const {
  out.PutU32(node);
  out.PutU64(digest);
  out.PutU8(is_base ? 1 : 0);
  if (is_base) base_tuple.Serialize(out);
  out.PutString(asserted_by);
}

Result<ProvChildRef> ProvChildRef::Deserialize(ByteReader& in) {
  ProvChildRef ref;
  PROVNET_ASSIGN_OR_RETURN(ref.node, in.GetU32());
  PROVNET_ASSIGN_OR_RETURN(ref.digest, in.GetU64());
  PROVNET_ASSIGN_OR_RETURN(uint8_t base, in.GetU8());
  ref.is_base = base != 0;
  if (ref.is_base) {
    PROVNET_ASSIGN_OR_RETURN(ref.base_tuple, Tuple::Deserialize(in));
  }
  PROVNET_ASSIGN_OR_RETURN(ref.asserted_by, in.GetString());
  return ref;
}

void ProvRecord::Serialize(ByteWriter& out) const {
  tuple.Serialize(out);
  out.PutString(rule);
  out.PutU32(location);
  out.PutString(asserted_by);
  out.PutDouble(created_at);
  out.PutDouble(expires_at);
  out.PutU8(persist ? 1 : 0);
  out.PutVarint(children.size());
  for (const ProvChildRef& c : children) c.Serialize(out);
}

Result<ProvRecord> ProvRecord::Deserialize(ByteReader& in) {
  ProvRecord rec;
  PROVNET_ASSIGN_OR_RETURN(rec.tuple, Tuple::Deserialize(in));
  PROVNET_ASSIGN_OR_RETURN(rec.rule, in.GetString());
  PROVNET_ASSIGN_OR_RETURN(rec.location, in.GetU32());
  PROVNET_ASSIGN_OR_RETURN(rec.asserted_by, in.GetString());
  PROVNET_ASSIGN_OR_RETURN(rec.created_at, in.GetDouble());
  PROVNET_ASSIGN_OR_RETURN(rec.expires_at, in.GetDouble());
  PROVNET_ASSIGN_OR_RETURN(uint8_t persist, in.GetU8());
  rec.persist = persist != 0;
  PROVNET_ASSIGN_OR_RETURN(uint64_t n, in.GetVarint());
  if (n > in.remaining()) return InvalidArgumentError("too many children");
  for (uint64_t i = 0; i < n; ++i) {
    PROVNET_ASSIGN_OR_RETURN(ProvChildRef ref, ProvChildRef::Deserialize(in));
    rec.children.push_back(std::move(ref));
  }
  return rec;
}

std::string ProvRecord::ToString() const {
  std::string out = tuple.ToString() + " via " + rule + " @" +
                    std::to_string(location);
  if (!asserted_by.empty()) out += " (" + asserted_by + " says)";
  out += StrFormat(" t=%.2f", created_at);
  if (expires_at >= 0) out += StrFormat(" exp=%.2f", expires_at);
  if (persist) out += " [persist]";
  out += StrFormat(" children=%zu", children.size());
  return out;
}

void OnlineProvStore::Add(ProvRecord record) {
  records_[DigestOf(record.tuple)].push_back(std::move(record));
  ++count_;
}

const std::vector<ProvRecord>* OnlineProvStore::Lookup(
    TupleDigest digest) const {
  auto it = records_.find(digest);
  return it == records_.end() ? nullptr : &it->second;
}

size_t OnlineProvStore::ExpireBefore(double now) {
  size_t dropped = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    auto& vec = it->second;
    size_t before = vec.size();
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [now](const ProvRecord& r) {
                               return r.expires_at >= 0 && r.expires_at < now;
                             }),
              vec.end());
    dropped += before - vec.size();
    if (vec.empty()) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  count_ -= dropped;
  return dropped;
}

size_t OnlineProvStore::Remove(TupleDigest digest) {
  auto it = records_.find(digest);
  if (it == records_.end()) return 0;
  size_t n = it->second.size();
  records_.erase(it);
  count_ -= n;
  return n;
}

std::vector<TupleDigest> OnlineProvStore::DependentsOf(
    const Principal& principal) const {
  // Transitive closure over local records: seed with records having a child
  // asserted by `principal`, then propagate through local parent links.
  std::vector<TupleDigest> out;
  std::unordered_map<TupleDigest, bool> tainted;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [digest, recs] : records_) {
      if (tainted.count(digest)) continue;
      for (const ProvRecord& rec : recs) {
        bool hit = rec.asserted_by == principal;
        for (const ProvChildRef& c : rec.children) {
          if (hit) break;
          if (c.asserted_by == principal) hit = true;
          if (!c.is_base && tainted.count(c.digest)) hit = true;
        }
        if (hit) {
          tainted.emplace(digest, true);
          changed = true;
          break;
        }
      }
    }
  }
  out.reserve(tainted.size());
  for (const auto& [digest, _] : tainted) out.push_back(digest);
  std::sort(out.begin(), out.end());
  return out;
}

OfflineProvStore::OfflineProvStore()
    : archive_(std::make_unique<store::ProvArchive>()) {
  // Memory-resident archive; cannot fail with the defaults.
  (void)archive_->Open("", store::ArchiveOptions{});
}

OfflineProvStore::~OfflineProvStore() = default;

Status OfflineProvStore::Open(const std::string& path, size_t page_bytes,
                              size_t cache_pages) {
  auto fresh = std::make_unique<store::ProvArchive>();
  store::ArchiveOptions options;
  options.page.page_bytes = page_bytes;
  options.page.cache_pages = cache_pages;
  PROVNET_RETURN_IF_ERROR(fresh->Open(path, options));
  archive_ = std::move(fresh);
  return OkStatus();
}

void OfflineProvStore::Crash() {
  archive_->Abandon();
  archive_ = std::make_unique<store::ProvArchive>();
  (void)archive_->Open("", store::ArchiveOptions{});
}

void OfflineProvStore::Add(const ProvRecord& record) {
  archive_->Add(record);
}

size_t OfflineProvStore::EvictOlderThan(double cutoff) {
  return archive_->EvictOlderThan(cutoff);
}

size_t OfflineProvStore::MarkPersistent(TupleDigest digest) {
  return archive_->MarkPersistent(digest);
}

std::vector<ProvRecord> OfflineProvStore::FindByDigest(
    TupleDigest digest) const {
  return archive_->FindByDigest(digest);
}

std::vector<ProvRecord> OfflineProvStore::FindByPredicate(
    const std::string& predicate) const {
  return archive_->FindByPredicate(predicate);
}

std::vector<ProvRecord> OfflineProvStore::FindInWindow(double from,
                                                       double to) const {
  return archive_->FindInWindow(from, to);
}

size_t OfflineProvStore::size() const { return archive_->size(); }

size_t OfflineProvStore::ApproxBytes() const { return archive_->ApproxBytes(); }

Status OfflineProvStore::Flush() { return archive_->Flush(); }

uint64_t OfflineProvStore::DiskBytes() const { return archive_->DiskBytes(); }

bool OfflineProvStore::on_disk() const { return archive_->on_disk(); }

store::ArchiveIo OfflineProvStore::TakeIo() const { return archive_->TakeIo(); }

}  // namespace provnet
