// Provenance-semiring expressions (Green et al., PODS'07), the annotation
// language behind condensed provenance (Section 4.4) and quantifiable
// provenance (Section 4.5).
//
// A ProvExpr is a polynomial over provenance variables: '+' is alternative
// derivation (union), '*' is joint derivation (join). Variables usually
// denote the *principal* that asserted a base tuple (the paper annotates
// with principals: <a+a*b>), but the registry also supports per-tuple
// variables for finer-grained lineage.
//
// Expressions are immutable DAGs with structural sharing, so annotating a
// large recursive computation does not blow up memory.
#ifndef PROVNET_PROVENANCE_PROV_EXPR_H_
#define PROVNET_PROVENANCE_PROV_EXPR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace provnet {

using ProvVar = uint32_t;

enum class ProvExprKind : uint8_t {
  kZero = 0,  // no derivation
  kOne = 1,   // axiomatic derivation (annotation-free base)
  kVar = 2,
  kPlus = 3,
  kTimes = 4,
};

class ProvExpr {
 public:
  // Defaults to Zero (no derivation).
  ProvExpr() = default;

  static ProvExpr Zero();
  static ProvExpr One();
  static ProvExpr Var(ProvVar v);
  static ProvExpr Plus(const ProvExpr& a, const ProvExpr& b);
  static ProvExpr Times(const ProvExpr& a, const ProvExpr& b);

  // Structure-preserving variants for the derivation arena's interner
  // (store/arena.*): the annihilator shortcuts (0+x, 0*x) still apply, but
  // no node is ever *elided* — in particular Plus builds a union node even
  // when both operands are the same physical node. The arena rebuilds
  // expressions with maximal sharing, so operands that used to be
  // structurally-equal-but-distinct become pointer-equal; letting the
  // factory's physical-identity idempotence fire there would collapse
  // genuinely distinct alternatives and change DerivationCount.
  static ProvExpr PlusRaw(const ProvExpr& a, const ProvExpr& b);
  static ProvExpr TimesRaw(const ProvExpr& a, const ProvExpr& b);

  ProvExprKind kind() const;
  bool IsZero() const { return kind() == ProvExprKind::kZero; }
  bool IsOne() const { return kind() == ProvExprKind::kOne; }

  // For kVar.
  ProvVar var() const;
  // For kPlus/kTimes: exactly two children (cheap shared-pointer copies).
  ProvExpr left() const;
  ProvExpr right() const;

  // Number of nodes in the DAG (shared nodes counted once) — the "size" that
  // condensation reduces.
  size_t NodeCount() const;

  // Distinct variables, ascending.
  std::vector<ProvVar> Variables() const;

  // True when any of `vars` occurs in the expression.
  bool DependsOnAny(const std::unordered_set<ProvVar>& vars) const;

  // Substitutes Zero for every variable in `vars` and simplifies with the
  // semiring identities (0+x=x, 0*x=0). The result enumerates exactly the
  // derivations that avoid the killed variables — the pruning step of
  // provenance-aware deletion: a tuple whose restricted annotation is
  // non-Zero survives a retraction without re-derivation.
  ProvExpr Restrict(const std::unordered_set<ProvVar>& vars) const;

  // Structural equality (cheap pointer check first).
  bool Equals(const ProvExpr& other) const;

  // Stable identity of the underlying DAG node (nullptr for Zero). Shared
  // subexpressions have the same identity, so evaluators can memoize over
  // the DAG instead of exploding it into a tree (see DerivationCountExact).
  const void* NodeIdentity() const { return node_.get(); }

  // "a + a*b" given a naming function.
  std::string ToString(
      const std::function<std::string(ProvVar)>& var_name) const;
  std::string ToString() const;  // variables rendered as v<id>

  // Compact self-delimiting preorder bytecode; the wire format used when
  // provenance is piggybacked on tuples (its length is what Figure 4
  // charges).
  void Serialize(ByteWriter& out) const;
  static Result<ProvExpr> Deserialize(ByteReader& in);
  size_t WireSize() const;

 private:
  struct Node;
  explicit ProvExpr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  // Null node_ means Zero (so the default constructor is free).
  std::shared_ptr<const Node> node_;
};

// Maps provenance variables to human-readable names (principals or base
// tuples). Interning is deterministic in insertion order.
//
// Thread-safe: worker shards annotate received base tuples concurrently
// during parallel epochs. Determinism note: every name a worker looks up is
// already interned by the main thread (principals at Init, base tuples at
// InsertFact), so concurrent calls are read-hits and variable numbering
// stays insertion-ordered regardless of thread count; the lock makes the
// stray first-use insert safe rather than ordered.
class ProvVarRegistry {
 public:
  // Returns the variable for `name`, interning it on first use.
  ProvVar Intern(const std::string& name);
  // Name of a variable; "v<id>" if unknown.
  std::string NameOf(ProvVar v) const;
  // Number of interned variables.
  size_t size() const;
  // Lookup without interning; nullopt if absent.
  std::optional<ProvVar> Find(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ProvVar> index_;
  std::vector<std::string> names_;
};

}  // namespace provnet

#endif  // PROVNET_PROVENANCE_PROV_EXPR_H_
