#include "provenance/derivation.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace provnet {

DerivationNode::DerivationNode(const DerivationNode& other)
    : tuple(other.tuple),
      rule(other.rule),
      location(other.location),
      asserted_by(other.asserted_by),
      created_at(other.created_at),
      ttl(other.ttl),
      signature(other.signature),
      children(other.children) {}

DerivationNode& DerivationNode::operator=(const DerivationNode& other) {
  tuple = other.tuple;
  rule = other.rule;
  location = other.location;
  asserted_by = other.asserted_by;
  created_at = other.created_at;
  ttl = other.ttl;
  signature = other.signature;
  children = other.children;
  digest_valid_ = false;
  return *this;
}

Sha256Digest DerivationNode::ContentDigest() const {
  if (digest_valid_) return digest_cache_;
  ByteWriter w;
  tuple.Serialize(w);
  w.PutString(rule);
  w.PutU32(location);
  w.PutString(asserted_by);
  w.PutDouble(created_at);
  w.PutDouble(ttl);
  for (const DerivationPtr& child : children) {
    Sha256Digest d = child->ContentDigest();
    w.PutRaw(d.data(), d.size());
  }
  digest_cache_ = Sha256::Hash(w.bytes());
  digest_valid_ = true;
  return digest_cache_;
}

size_t DerivationNode::TreeSize() const {
  std::unordered_set<const DerivationNode*> seen;
  std::vector<const DerivationNode*> stack{this};
  while (!stack.empty()) {
    const DerivationNode* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    for (const DerivationPtr& c : n->children) stack.push_back(c.get());
  }
  return seen.size();
}

size_t DerivationNode::TreeDepth() const {
  std::unordered_map<const DerivationNode*, size_t> memo;
  std::function<size_t(const DerivationNode*)> depth =
      [&](const DerivationNode* n) -> size_t {
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    size_t best = 0;
    for (const DerivationPtr& c : n->children) {
      best = std::max(best, depth(c.get()));
    }
    memo.emplace(n, best + 1);
    return best + 1;
  };
  return depth(this);
}

std::vector<Tuple> DerivationNode::Leaves() const {
  std::vector<Tuple> out;
  std::unordered_set<const DerivationNode*> seen;
  std::function<void(const DerivationNode&)> walk =
      [&](const DerivationNode& n) {
        if (!seen.insert(&n).second) return;
        if (n.children.empty()) {
          out.push_back(n.tuple);
          return;
        }
        for (const DerivationPtr& c : n.children) walk(*c);
      };
  walk(*this);
  return out;
}

std::string DerivationNode::ToString(
    const std::function<std::string(NodeId)>& node_name) const {
  std::string out;
  std::function<void(const DerivationNode&, int)> walk =
      [&](const DerivationNode& n, int depth) {
        out.append(static_cast<size_t>(depth) * 2, ' ');
        out += n.tuple.ToString();
        out += "  [" + n.rule + " @" + node_name(n.location);
        if (!n.asserted_by.empty()) out += ", " + n.asserted_by + " says";
        if (n.ttl >= 0) out += StrFormat(", t=%.2f ttl=%.0f", n.created_at, n.ttl);
        if (!n.signature.empty()) out += ", signed";
        out += "]\n";
        for (const DerivationPtr& c : n.children) walk(*c, depth + 1);
      };
  walk(*this, 0);
  return out;
}

std::string DerivationNode::ToString() const {
  return ToString([](NodeId id) { return std::to_string(id); });
}

void DerivationNode::Serialize(ByteWriter& out) const {
  // Children-first topological order over distinct nodes; children encoded
  // as indices into that order. Sharing on the wire mirrors sharing in
  // memory, keeping recursive-query provenance polynomial-sized.
  std::vector<const DerivationNode*> order;
  std::unordered_map<const DerivationNode*, uint64_t> index;
  std::function<void(const DerivationNode*)> visit =
      [&](const DerivationNode* n) {
        if (index.count(n)) return;
        for (const DerivationPtr& c : n->children) visit(c.get());
        index.emplace(n, order.size());
        order.push_back(n);
      };
  visit(this);

  out.PutVarint(order.size());
  for (const DerivationNode* n : order) {
    n->tuple.Serialize(out);
    out.PutString(n->rule);
    out.PutU32(n->location);
    out.PutString(n->asserted_by);
    out.PutDouble(n->created_at);
    out.PutDouble(n->ttl);
    out.PutBlob(n->signature);
    out.PutVarint(n->children.size());
    for (const DerivationPtr& c : n->children) {
      out.PutVarint(index.at(c.get()));
    }
  }
}

Result<DerivationPtr> DerivationNode::Deserialize(ByteReader& in) {
  PROVNET_ASSIGN_OR_RETURN(uint64_t count, in.GetVarint());
  if (count == 0 || count > in.remaining()) {
    return InvalidArgumentError("bad derivation node count");
  }
  std::vector<std::shared_ptr<DerivationNode>> nodes;
  nodes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    auto node = std::make_shared<DerivationNode>();
    PROVNET_ASSIGN_OR_RETURN(node->tuple, Tuple::Deserialize(in));
    PROVNET_ASSIGN_OR_RETURN(node->rule, in.GetString());
    PROVNET_ASSIGN_OR_RETURN(node->location, in.GetU32());
    PROVNET_ASSIGN_OR_RETURN(node->asserted_by, in.GetString());
    PROVNET_ASSIGN_OR_RETURN(node->created_at, in.GetDouble());
    PROVNET_ASSIGN_OR_RETURN(node->ttl, in.GetDouble());
    PROVNET_ASSIGN_OR_RETURN(node->signature, in.GetBlob());
    PROVNET_ASSIGN_OR_RETURN(uint64_t kids, in.GetVarint());
    if (kids > in.remaining() + 1) {
      return InvalidArgumentError("derivation child count too large");
    }
    for (uint64_t k = 0; k < kids; ++k) {
      PROVNET_ASSIGN_OR_RETURN(uint64_t child, in.GetVarint());
      if (child >= i) {
        return InvalidArgumentError("derivation child not topological");
      }
      node->children.push_back(nodes[child]);
    }
    nodes.push_back(std::move(node));
  }
  return DerivationPtr(nodes.back());
}

size_t DerivationNode::WireSize() const {
  ByteWriter w;
  Serialize(w);
  return w.size();
}

DerivationPtr MakeBaseDerivation(Tuple tuple, NodeId location,
                                 Principal asserted_by, double created_at,
                                 double ttl) {
  auto node = std::make_shared<DerivationNode>();
  node->tuple = std::move(tuple);
  node->rule = kBaseRule;
  node->location = location;
  node->asserted_by = std::move(asserted_by);
  node->created_at = created_at;
  node->ttl = ttl;
  return node;
}

DerivationPtr MakeRuleDerivation(Tuple tuple, std::string rule,
                                 NodeId location, Principal asserted_by,
                                 double created_at, double ttl,
                                 std::vector<DerivationPtr> children) {
  auto node = std::make_shared<DerivationNode>();
  node->tuple = std::move(tuple);
  node->rule = std::move(rule);
  node->location = location;
  node->asserted_by = std::move(asserted_by);
  node->created_at = created_at;
  node->ttl = ttl;
  node->children = std::move(children);
  return node;
}

DerivationPtr MergeAlternatives(const DerivationPtr& a,
                                const DerivationPtr& b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  auto node = std::make_shared<DerivationNode>();
  node->tuple = a->tuple;
  node->rule = kUnionRule;
  node->location = a->location;
  node->asserted_by = a->asserted_by;
  node->created_at = std::min(a->created_at, b->created_at);
  node->ttl = std::max(a->ttl, b->ttl);
  auto append = [&node](const DerivationPtr& d) {
    if (d->rule == kUnionRule) {
      node->children.insert(node->children.end(), d->children.begin(),
                            d->children.end());
    } else {
      node->children.push_back(d);
    }
  };
  append(a);
  append(b);
  // Deduplicate identical alternatives by content digest.
  std::unordered_set<std::string> seen;
  std::vector<DerivationPtr> unique;
  for (const DerivationPtr& c : node->children) {
    Sha256Digest d = c->ContentDigest();
    if (seen.insert(std::string(d.begin(), d.end())).second) {
      unique.push_back(c);
    }
  }
  if (unique.size() == 1) return unique[0];
  node->children = std::move(unique);
  return node;
}

Result<DerivationPtr> SignDerivation(const DerivationPtr& node,
                                     Authenticator& auth, SaysLevel level) {
  if (node->asserted_by.empty()) {
    return FailedPreconditionError(
        "cannot sign a derivation with no asserting principal");
  }
  auto copy = std::make_shared<DerivationNode>(*node);
  copy->signature.clear();
  Sha256Digest digest = copy->ContentDigest();
  PROVNET_ASSIGN_OR_RETURN(
      SaysTag tag, auth.Say(copy->asserted_by, DigestToBytes(digest), level));
  // For cleartext says the proof is empty by design; store the level byte so
  // verification knows what was promised.
  ByteWriter w;
  tag.Serialize(w);
  copy->signature = std::move(w).Take();
  return DerivationPtr(copy);
}

Status VerifyDerivationTree(const DerivationPtr& root, Authenticator& auth,
                            bool require_signatures) {
  if (root->signature.empty()) {
    if (require_signatures && root->rule != kUnionRule) {
      return UnauthenticatedError("unsigned derivation node for " +
                                  root->tuple.ToString());
    }
  } else {
    DerivationNode unsigned_copy = *root;
    unsigned_copy.signature.clear();
    Sha256Digest digest = unsigned_copy.ContentDigest();
    ByteReader r(root->signature);
    PROVNET_ASSIGN_OR_RETURN(SaysTag tag, SaysTag::Deserialize(r));
    if (tag.principal != root->asserted_by) {
      return UnauthenticatedError("signature principal mismatch for " +
                                  root->tuple.ToString());
    }
    PROVNET_RETURN_IF_ERROR(auth.Verify(tag, DigestToBytes(digest)));
  }
  for (const DerivationPtr& c : root->children) {
    PROVNET_RETURN_IF_ERROR(VerifyDerivationTree(c, auth, require_signatures));
  }
  return OkStatus();
}

}  // namespace provnet
