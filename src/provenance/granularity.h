// Provenance granularity (Section 5): aggregate provenance at the
// autonomous-system level instead of per node/principal. Coarser provenance
// cannot attribute blame to a single node, but it is sufficient for
// aggregated events (e.g. spoofed-packet floods from a malicious AS) at a
// fraction of the storage.
#ifndef PROVNET_PROVENANCE_GRANULARITY_H_
#define PROVNET_PROVENANCE_GRANULARITY_H_

#include <cstdint>
#include <vector>

#include "provenance/condense.h"
#include "provenance/derivation.h"

namespace provnet {

using AsId = uint32_t;

// Node -> AS assignment.
class AsMapping {
 public:
  // Round-robin blocks: node i belongs to AS i / nodes_per_as.
  static AsMapping Blocks(size_t num_nodes, size_t nodes_per_as);
  // Explicit table.
  explicit AsMapping(std::vector<AsId> node_to_as);

  AsId AsOf(NodeId node) const;
  size_t num_ases() const;
  size_t num_nodes() const { return node_to_as_.size(); }

 private:
  std::vector<AsId> node_to_as_;
};

// Collapses a derivation tree to AS granularity: each node's location becomes
// its AS, and chains of derivation steps within the same AS merge into one
// step. The result is smaller but preserves inter-AS structure.
DerivationPtr ProjectDerivationToAs(const DerivationPtr& root,
                                    const AsMapping& mapping);

// Projects a condensed annotation through var -> AS-var renaming (vars that
// map to the same AS merge inside cubes) and re-minimizes by absorption.
CondensedProv ProjectCondensedToAs(
    const CondensedProv& prov,
    const std::function<ProvVar(ProvVar)>& var_to_as_var);

// AS-level path of a derivation: the sequence of distinct ASes encountered
// on a root-to-deepest-leaf walk (consecutive duplicates removed).
std::vector<AsId> AsPathOf(const DerivationPtr& root, const AsMapping& mapping);

}  // namespace provnet

#endif  // PROVNET_PROVENANCE_GRANULARITY_H_
