#include "provenance/semiring.h"

namespace provnet {

bool DerivableFrom(const ProvExpr& expr,
                   const std::unordered_map<ProvVar, bool>& trusted) {
  BooleanSemiring s;
  return EvalIn(s, expr, trusted, /*missing=*/false);
}

int64_t TrustLevelOf(const ProvExpr& expr,
                     const std::unordered_map<ProvVar, int64_t>& levels,
                     int64_t default_level) {
  TrustLevelSemiring s;
  return EvalIn(s, expr, levels, default_level);
}

namespace {

// Fold in BigInt, memoized by DAG node identity: each shared node is
// evaluated once, so the cost tracks ProvExpr::NodeCount() rather than the
// (possibly exponential) tree unfolding.
const BigInt& CountExactRec(const ProvExpr& expr,
                            std::unordered_map<const void*, BigInt>& memo) {
  const void* id = expr.NodeIdentity();
  auto it = memo.find(id);
  if (it != memo.end()) return it->second;
  BigInt value;
  switch (expr.kind()) {
    case ProvExprKind::kZero:
      break;  // zero derivations
    case ProvExprKind::kOne:
    case ProvExprKind::kVar:
      value = BigInt::FromU64(1);  // one way: the base assertion itself
      break;
    case ProvExprKind::kPlus:
      value = CountExactRec(expr.left(), memo) +
              CountExactRec(expr.right(), memo);
      break;
    case ProvExprKind::kTimes:
      value = CountExactRec(expr.left(), memo) *
              CountExactRec(expr.right(), memo);
      break;
  }
  return memo.emplace(id, std::move(value)).first->second;
}

}  // namespace

BigInt DerivationCountExact(const ProvExpr& expr) {
  std::unordered_map<const void*, BigInt> memo;
  return CountExactRec(expr, memo);
}

BigInt DerivationCountExact(const ProvExpr& expr,
                            std::unordered_map<const void*, BigInt>* memo) {
  return CountExactRec(expr, *memo);
}

uint64_t DerivationCount(const ProvExpr& expr) {
  BigInt exact = DerivationCountExact(expr);
  if (exact.Compare(BigInt::FromU64(UINT64_MAX)) > 0) return UINT64_MAX;
  uint64_t out = 0;
  for (uint8_t byte : exact.ToBytes()) out = (out << 8) | byte;
  return out;
}

}  // namespace provnet
