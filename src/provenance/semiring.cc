#include "provenance/semiring.h"

namespace provnet {

bool DerivableFrom(const ProvExpr& expr,
                   const std::unordered_map<ProvVar, bool>& trusted) {
  BooleanSemiring s;
  return EvalIn(s, expr, trusted, /*missing=*/false);
}

int64_t TrustLevelOf(const ProvExpr& expr,
                     const std::unordered_map<ProvVar, int64_t>& levels,
                     int64_t default_level) {
  TrustLevelSemiring s;
  return EvalIn(s, expr, levels, default_level);
}

uint64_t DerivationCount(const ProvExpr& expr) {
  CountingSemiring s;
  return EvalIn(s, expr, {}, /*missing=*/1);
}

}  // namespace provnet
