// Quantifiable provenance (Section 4.5): evaluate one provenance polynomial
// in different semirings to answer different trust questions.
//
//   boolean      - is the tuple derivable from trusted bases?
//   trust level  - (+ = max, * = min) over per-principal security levels;
//                  the paper's example: <a + a*b> with level(a)=2, level(b)=1
//                  evaluates to max(2, min(2,1)) = 2
//   counting     - number of distinct derivations (Gupta et al. view
//                  maintenance counts)
//
// Each semiring provides Zero/One/Plus/Times over its value type; EvalIn
// folds the expression. Vote-style "K principals assert this" trust operates
// on *condensed* cubes instead (see condense.h).
#ifndef PROVNET_PROVENANCE_SEMIRING_H_
#define PROVNET_PROVENANCE_SEMIRING_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "bignum/bigint.h"
#include "provenance/prov_expr.h"

namespace provnet {

// Generic fold. `assignment` maps each variable to a semiring value;
// variables missing from the map evaluate to `missing`.
template <typename S>
typename S::Value EvalIn(const S& semiring, const ProvExpr& expr,
                         const std::unordered_map<ProvVar, typename S::Value>&
                             assignment,
                         typename S::Value missing) {
  switch (expr.kind()) {
    case ProvExprKind::kZero:
      return semiring.Zero();
    case ProvExprKind::kOne:
      return semiring.One();
    case ProvExprKind::kVar: {
      auto it = assignment.find(expr.var());
      return it == assignment.end() ? missing : it->second;
    }
    case ProvExprKind::kPlus:
      return semiring.Plus(EvalIn(semiring, expr.left(), assignment, missing),
                           EvalIn(semiring, expr.right(), assignment, missing));
    case ProvExprKind::kTimes:
      return semiring.Times(
          EvalIn(semiring, expr.left(), assignment, missing),
          EvalIn(semiring, expr.right(), assignment, missing));
  }
  return semiring.Zero();
}

// Why-provenance / trust membership.
struct BooleanSemiring {
  using Value = bool;
  Value Zero() const { return false; }
  Value One() const { return true; }
  Value Plus(Value a, Value b) const { return a || b; }
  Value Times(Value a, Value b) const { return a && b; }
};

// Security levels: a derivation is as trustworthy as its weakest input; a
// tuple is as trustworthy as its strongest derivation.
struct TrustLevelSemiring {
  using Value = int64_t;
  // Identity elements: Zero = "no derivation" (lowest possible trust),
  // One = "axiomatic" (highest).
  static constexpr int64_t kBottom = INT64_MIN;
  static constexpr int64_t kTop = INT64_MAX;
  Value Zero() const { return kBottom; }
  Value One() const { return kTop; }
  Value Plus(Value a, Value b) const { return a > b ? a : b; }
  Value Times(Value a, Value b) const { return a < b ? a : b; }
};

// How many distinct derivations exist. Beware: machine arithmetic wraps
// mod 2^64 on aggregate-heavy proofs — DerivationCount/DerivationCountExact
// below are the overflow-safe entry points.
struct CountingSemiring {
  using Value = uint64_t;
  Value Zero() const { return 0; }
  Value One() const { return 1; }
  Value Plus(Value a, Value b) const { return a + b; }
  Value Times(Value a, Value b) const { return a * b; }
};

// Convenience wrappers ---------------------------------------------------

// Is the expression true when exactly the given variables are trusted?
bool DerivableFrom(const ProvExpr& expr,
                   const std::unordered_map<ProvVar, bool>& trusted);

// Trust level of a tuple given per-principal security levels; principals
// absent from the map get `default_level`.
int64_t TrustLevelOf(const ProvExpr& expr,
                     const std::unordered_map<ProvVar, int64_t>& levels,
                     int64_t default_level);

// Number of derivations, counting each base tuple as one way. Saturates at
// UINT64_MAX instead of wrapping mod 2^64 (a recursive Best-Path proof over
// a dense network multiplies counts fast enough to overflow a machine word).
uint64_t DerivationCount(const ProvExpr& expr);

// Exact derivation count in arbitrary precision (src/bignum). Memoized by
// DAG node identity, so the cost is linear in the *shared* expression size
// even when the count itself is astronomical.
BigInt DerivationCountExact(const ProvExpr& expr);

// As above but memoizing into a caller-owned table, so entries survive
// across calls. Only sound when the node identities the table keys on stay
// alive and stable for its lifetime — the derivation arena's interned
// expressions (store/arena.*) are the intended caller; repeated queries
// against the same interned sub-proofs then reuse counts.
BigInt DerivationCountExact(const ProvExpr& expr,
                            std::unordered_map<const void*, BigInt>* memo);

}  // namespace provnet

#endif  // PROVNET_PROVENANCE_SEMIRING_H_
