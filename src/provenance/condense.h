// Condensed provenance (Section 4.4): encode a provenance polynomial as a
// boolean function in a BDD, exploit canonicity for absorption
// (<a + a*b> -> <a>), and read back the minimal sum-of-products form.
//
// The condensed form is both the compact *wire* representation (what
// SeNDLogProv piggybacks on tuples) and the input to source-origin trust
// decisions (a receiving node only needs the minimal support sets).
#ifndef PROVNET_PROVENANCE_CONDENSE_H_
#define PROVNET_PROVENANCE_CONDENSE_H_

#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "provenance/prov_expr.h"
#include "util/bytes.h"
#include "util/status.h"

namespace provnet {

// A condensed annotation: minimal support sets (antichain of variable sets).
// Empty cube list = unsatisfiable (zero); a single empty cube = One.
struct CondensedProv {
  std::vector<std::vector<ProvVar>> cubes;

  bool IsZero() const { return cubes.empty(); }
  bool IsOne() const { return cubes.size() == 1 && cubes[0].empty(); }

  // Rebuilds a (minimal DNF) polynomial.
  ProvExpr ToExpr() const;

  // "<a + b*c>" rendering with a naming function.
  std::string ToString(
      const std::function<std::string(ProvVar)>& var_name) const;
  std::string ToString() const;

  // Wire encoding: varint cube count, then per cube varint size + var ids.
  void Serialize(ByteWriter& out) const;
  static Result<CondensedProv> Deserialize(ByteReader& in);
  size_t WireSize() const;

  // Trust helpers used by apps/trust:
  //  * satisfied by a trusted set?
  bool SatisfiedBy(const std::vector<ProvVar>& trusted) const;
  //  * number of independent minimal witness sets (the paper's "vote").
  size_t VoteCount() const { return cubes.size(); }
  //  * size of the smallest witness set.
  size_t MinWitnessSize() const;

  bool operator==(const CondensedProv& other) const {
    return cubes == other.cubes;
  }
};

// Encodes `expr` into `mgr` (one BDD variable per ProvVar).
BddRef ProvToBdd(const ProvExpr& expr, BddManager& mgr);

// Full condensation pipeline: expr -> BDD -> minimal monotone cubes.
CondensedProv Condense(const ProvExpr& expr, BddManager& mgr);

// Convenience: condense with a throwaway manager.
CondensedProv Condense(const ProvExpr& expr);

}  // namespace provnet

#endif  // PROVNET_PROVENANCE_CONDENSE_H_
