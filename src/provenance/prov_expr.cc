#include "provenance/prov_expr.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "obs/mem.h"
#include "util/logging.h"

namespace provnet {

struct ProvExpr::Node {
  ProvExprKind kind;
  ProvVar var = 0;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;

  // Constructor/destructor pair meters live annotation nodes (the dominant
  // full-provenance memory consumer). The estimate is the node itself plus
  // the shared_ptr control block; Add/Sub use the same number so the gauge
  // cannot drift. Short-circuited factory calls (0+x, 1*x, shared-node
  // unions) construct nothing and are free.
  Node(ProvExprKind k, ProvVar v, std::shared_ptr<const Node> l,
       std::shared_ptr<const Node> r)
      : kind(k), var(v), left(std::move(l)), right(std::move(r)) {
    obs::MemAccounting::Global().Add(obs::MemSubsystem::kProvAnnotations,
                                     kAccountedBytes);
  }
  ~Node() {
    obs::MemAccounting::Global().Sub(obs::MemSubsystem::kProvAnnotations,
                                     kAccountedBytes);
  }
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  static constexpr uint64_t kAccountedBytes =
      sizeof(ProvVar) + sizeof(ProvExprKind) + 2 * sizeof(void*) +  // payload
      4 * sizeof(void*);  // shared_ptr control block estimate
};

ProvExpr ProvExpr::Zero() { return ProvExpr(); }

ProvExpr ProvExpr::One() {
  // Shared singleton for One (Zero is the null pointer). Function-local
  // static pointer avoids a non-trivially-destructible global.
  static const auto* node = new std::shared_ptr<const Node>(
      std::make_shared<const Node>(ProvExprKind::kOne, 0, nullptr, nullptr));
  return ProvExpr(*node);
}

ProvExpr ProvExpr::Var(ProvVar v) {
  return ProvExpr(
      std::make_shared<const Node>(ProvExprKind::kVar, v, nullptr, nullptr));
}

ProvExpr ProvExpr::Plus(const ProvExpr& a, const ProvExpr& b) {
  // 0 + x = x; x + 0 = x.
  if (a.IsZero()) return b;
  if (b.IsZero()) return a;
  // Re-observing the *same* derivation (shared node) is not a new
  // alternative; keep unions idempotent on physical identity.
  if (a.node_ == b.node_) return a;
  ProvExpr out(std::make_shared<const Node>(ProvExprKind::kPlus, 0, a.node_,
                                            b.node_));
  return out;
}

ProvExpr ProvExpr::Times(const ProvExpr& a, const ProvExpr& b) {
  // 0 * x = 0; 1 * x = x.
  if (a.IsZero() || b.IsZero()) return Zero();
  if (a.IsOne()) return b;
  if (b.IsOne()) return a;
  ProvExpr out(std::make_shared<const Node>(ProvExprKind::kTimes, 0, a.node_,
                                            b.node_));
  return out;
}

ProvExpr ProvExpr::PlusRaw(const ProvExpr& a, const ProvExpr& b) {
  if (a.IsZero()) return b;
  if (b.IsZero()) return a;
  return ProvExpr(
      std::make_shared<const Node>(ProvExprKind::kPlus, 0, a.node_, b.node_));
}

ProvExpr ProvExpr::TimesRaw(const ProvExpr& a, const ProvExpr& b) {
  if (a.IsZero() || b.IsZero()) return Zero();
  return ProvExpr(
      std::make_shared<const Node>(ProvExprKind::kTimes, 0, a.node_, b.node_));
}

ProvExprKind ProvExpr::kind() const {
  return node_ == nullptr ? ProvExprKind::kZero : node_->kind;
}

ProvVar ProvExpr::var() const {
  PROVNET_CHECK(kind() == ProvExprKind::kVar);
  return node_->var;
}

ProvExpr ProvExpr::left() const {
  PROVNET_CHECK(kind() == ProvExprKind::kPlus ||
                kind() == ProvExprKind::kTimes);
  return ProvExpr(node_->left);
}

ProvExpr ProvExpr::right() const {
  PROVNET_CHECK(kind() == ProvExprKind::kPlus ||
                kind() == ProvExprKind::kTimes);
  return ProvExpr(node_->right);
}

size_t ProvExpr::NodeCount() const {
  if (node_ == nullptr) return 1;  // Zero counts as one conceptual node
  std::unordered_set<const Node*> seen;
  std::vector<const Node*> stack{node_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n == nullptr || !seen.insert(n).second) continue;
    if (n->left) stack.push_back(n->left.get());
    if (n->right) stack.push_back(n->right.get());
  }
  return seen.size();
}

std::vector<ProvVar> ProvExpr::Variables() const {
  std::set<ProvVar> vars;
  std::unordered_set<const Node*> seen;
  std::vector<const Node*> stack;
  if (node_) stack.push_back(node_.get());
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (n->kind == ProvExprKind::kVar) vars.insert(n->var);
    if (n->left) stack.push_back(n->left.get());
    if (n->right) stack.push_back(n->right.get());
  }
  return {vars.begin(), vars.end()};
}

bool ProvExpr::DependsOnAny(const std::unordered_set<ProvVar>& vars) const {
  if (vars.empty() || node_ == nullptr) return false;
  std::unordered_set<const Node*> seen;
  std::vector<const Node*> stack{node_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (n->kind == ProvExprKind::kVar && vars.count(n->var)) return true;
    if (n->left) stack.push_back(n->left.get());
    if (n->right) stack.push_back(n->right.get());
  }
  return false;
}

ProvExpr ProvExpr::Restrict(const std::unordered_set<ProvVar>& vars) const {
  if (vars.empty() || node_ == nullptr) return *this;
  // Memoized over shared nodes so DAGs restrict in O(nodes), and untouched
  // subtrees are returned as-is (preserving structural sharing).
  std::unordered_map<const Node*, ProvExpr> memo;
  std::function<ProvExpr(const std::shared_ptr<const Node>&)> walk =
      [&](const std::shared_ptr<const Node>& n) -> ProvExpr {
    auto it = memo.find(n.get());
    if (it != memo.end()) return it->second;
    ProvExpr out;
    switch (n->kind) {
      case ProvExprKind::kZero:
        out = Zero();
        break;
      case ProvExprKind::kOne:
        out = One();
        break;
      case ProvExprKind::kVar:
        out = vars.count(n->var) ? Zero() : ProvExpr(n);
        break;
      case ProvExprKind::kPlus:
        out = Plus(walk(n->left), walk(n->right));
        break;
      case ProvExprKind::kTimes:
        out = Times(walk(n->left), walk(n->right));
        break;
    }
    memo.emplace(n.get(), out);
    return out;
  };
  return walk(node_);
}

bool ProvExpr::Equals(const ProvExpr& other) const {
  std::function<bool(const Node*, const Node*)> eq =
      [&eq](const Node* a, const Node* b) -> bool {
    if (a == b) return true;
    if (a == nullptr || b == nullptr) return false;
    if (a->kind != b->kind || a->var != b->var) return false;
    return eq(a->left.get(), b->left.get()) &&
           eq(a->right.get(), b->right.get());
  };
  return eq(node_.get(), other.node_.get());
}

std::string ProvExpr::ToString(
    const std::function<std::string(ProvVar)>& var_name) const {
  // Renders + at top precedence and * below; parens only when needed.
  std::function<std::string(const Node*, bool)> render =
      [&](const Node* n, bool in_times) -> std::string {
    if (n == nullptr) return "0";
    switch (n->kind) {
      case ProvExprKind::kZero:
        return "0";
      case ProvExprKind::kOne:
        return "1";
      case ProvExprKind::kVar:
        return var_name(n->var);
      case ProvExprKind::kPlus: {
        std::string s = render(n->left.get(), false) + " + " +
                        render(n->right.get(), false);
        return in_times ? "(" + s + ")" : s;
      }
      case ProvExprKind::kTimes:
        return render(n->left.get(), true) + "*" + render(n->right.get(), true);
    }
    return "?";
  };
  return render(node_.get(), false);
}

std::string ProvExpr::ToString() const {
  return ToString([](ProvVar v) { return "v" + std::to_string(v); });
}

void ProvExpr::Serialize(ByteWriter& out) const {
  // Preorder bytecode (self-delimiting): KIND [payload] [children].
  std::function<void(const Node*)> emit = [&](const Node* n) {
    if (n == nullptr) {
      out.PutU8(static_cast<uint8_t>(ProvExprKind::kZero));
      return;
    }
    out.PutU8(static_cast<uint8_t>(n->kind));
    switch (n->kind) {
      case ProvExprKind::kZero:
      case ProvExprKind::kOne:
        break;
      case ProvExprKind::kVar:
        out.PutVarint(n->var);
        break;
      case ProvExprKind::kPlus:
      case ProvExprKind::kTimes:
        emit(n->left.get());
        emit(n->right.get());
        break;
    }
  };
  emit(node_.get());
}

Result<ProvExpr> ProvExpr::Deserialize(ByteReader& in) {
  // Depth-limited recursive preorder parse (inputs may be hostile).
  constexpr int kMaxDepth = 10000;
  std::function<Result<ProvExpr>(int)> parse =
      [&](int depth) -> Result<ProvExpr> {
    if (depth > kMaxDepth) {
      return InvalidArgumentError("provenance expression too deep");
    }
    PROVNET_ASSIGN_OR_RETURN(uint8_t op, in.GetU8());
    switch (static_cast<ProvExprKind>(op)) {
      case ProvExprKind::kZero:
        return Zero();
      case ProvExprKind::kOne:
        return One();
      case ProvExprKind::kVar: {
        PROVNET_ASSIGN_OR_RETURN(uint64_t v, in.GetVarint());
        if (v > UINT32_MAX) return InvalidArgumentError("prov var overflow");
        return Var(static_cast<ProvVar>(v));
      }
      case ProvExprKind::kPlus:
      case ProvExprKind::kTimes: {
        PROVNET_ASSIGN_OR_RETURN(ProvExpr a, parse(depth + 1));
        PROVNET_ASSIGN_OR_RETURN(ProvExpr b, parse(depth + 1));
        return static_cast<ProvExprKind>(op) == ProvExprKind::kPlus
                   ? Plus(a, b)
                   : Times(a, b);
      }
      default:
        return InvalidArgumentError("bad provenance opcode");
    }
  };
  return parse(0);
}

size_t ProvExpr::WireSize() const {
  ByteWriter w;
  Serialize(w);
  return w.size();
}

ProvVar ProvVarRegistry::Intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  ProvVar v = static_cast<ProvVar>(names_.size());
  names_.push_back(name);
  index_.emplace(name, v);
  return v;
}

std::string ProvVarRegistry::NameOf(ProvVar v) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (v < names_.size()) return names_[v];
  return "v" + std::to_string(v);
}

size_t ProvVarRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

std::optional<ProvVar> ProvVarRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace provnet
