#include "provenance/condense.h"

#include <algorithm>

#include "util/strings.h"

namespace provnet {

ProvExpr CondensedProv::ToExpr() const {
  ProvExpr sum = ProvExpr::Zero();
  for (const auto& cube : cubes) {
    ProvExpr product = ProvExpr::One();
    for (ProvVar v : cube) product = ProvExpr::Times(product, ProvExpr::Var(v));
    sum = ProvExpr::Plus(sum, product);
  }
  return sum;
}

std::string CondensedProv::ToString(
    const std::function<std::string(ProvVar)>& var_name) const {
  if (IsZero()) return "<0>";
  std::vector<std::string> terms;
  terms.reserve(cubes.size());
  for (const auto& cube : cubes) {
    if (cube.empty()) {
      terms.push_back("1");
      continue;
    }
    std::vector<std::string> factors;
    factors.reserve(cube.size());
    for (ProvVar v : cube) factors.push_back(var_name(v));
    terms.push_back(StrJoin(factors, "*"));
  }
  return "<" + StrJoin(terms, " + ") + ">";
}

std::string CondensedProv::ToString() const {
  return ToString([](ProvVar v) { return "v" + std::to_string(v); });
}

void CondensedProv::Serialize(ByteWriter& out) const {
  out.PutVarint(cubes.size());
  for (const auto& cube : cubes) {
    out.PutVarint(cube.size());
    for (ProvVar v : cube) out.PutVarint(v);
  }
}

Result<CondensedProv> CondensedProv::Deserialize(ByteReader& in) {
  CondensedProv out;
  PROVNET_ASSIGN_OR_RETURN(uint64_t n, in.GetVarint());
  if (n > in.remaining()) return InvalidArgumentError("too many cubes");
  out.cubes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PROVNET_ASSIGN_OR_RETURN(uint64_t k, in.GetVarint());
    if (k > in.remaining()) return InvalidArgumentError("cube too large");
    std::vector<ProvVar> cube;
    cube.reserve(k);
    for (uint64_t j = 0; j < k; ++j) {
      PROVNET_ASSIGN_OR_RETURN(uint64_t v, in.GetVarint());
      if (v > UINT32_MAX) return InvalidArgumentError("prov var overflow");
      cube.push_back(static_cast<ProvVar>(v));
    }
    out.cubes.push_back(std::move(cube));
  }
  return out;
}

size_t CondensedProv::WireSize() const {
  ByteWriter w;
  Serialize(w);
  return w.size();
}

bool CondensedProv::SatisfiedBy(const std::vector<ProvVar>& trusted) const {
  for (const auto& cube : cubes) {
    bool all = true;
    for (ProvVar v : cube) {
      if (std::find(trusted.begin(), trusted.end(), v) == trusted.end()) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

size_t CondensedProv::MinWitnessSize() const {
  size_t best = SIZE_MAX;
  for (const auto& cube : cubes) best = std::min(best, cube.size());
  return best;
}

namespace {

// Collects the variables of a Plus-free expression into `vars` (setting
// `zero` when a Zero factor nullifies the product). Returns false on the
// first kPlus — the caller then needs the full BDD pipeline.
bool CollectPureProduct(const ProvExpr& expr, bool& zero,
                        std::vector<ProvVar>& vars) {
  switch (expr.kind()) {
    case ProvExprKind::kZero:
      zero = true;
      return true;
    case ProvExprKind::kOne:
      return true;
    case ProvExprKind::kVar:
      vars.push_back(expr.var());
      return true;
    case ProvExprKind::kTimes:
      return CollectPureProduct(expr.left(), zero, vars) &&
             CollectPureProduct(expr.right(), zero, vars);
    case ProvExprKind::kPlus:
      return false;
  }
  return false;
}

}  // namespace

BddRef ProvToBdd(const ProvExpr& expr, BddManager& mgr) {
  switch (expr.kind()) {
    case ProvExprKind::kZero:
      return mgr.False();
    case ProvExprKind::kOne:
      return mgr.True();
    case ProvExprKind::kVar:
      return mgr.Var(expr.var());
    case ProvExprKind::kPlus:
      return mgr.Or(ProvToBdd(expr.left(), mgr), ProvToBdd(expr.right(), mgr));
    case ProvExprKind::kTimes:
      return mgr.And(ProvToBdd(expr.left(), mgr),
                     ProvToBdd(expr.right(), mgr));
  }
  return mgr.False();
}

CondensedProv Condense(const ProvExpr& expr, BddManager& mgr) {
  BddRef f = ProvToBdd(expr, mgr);
  CondensedProv out;
  out.cubes = mgr.MonotoneCubes(f);
  return out;
}

CondensedProv Condense(const ProvExpr& expr) {
  // Fast path: a pure product (the annotation of every freshly-derived
  // head: Times over base variables) condenses to a single cube — no BDD
  // needed. This is the overwhelmingly common case on the wire, where
  // SendTuple condenses per message.
  bool zero = false;
  std::vector<ProvVar> vars;
  if (CollectPureProduct(expr, zero, vars)) {
    CondensedProv out;
    if (!zero) {
      std::sort(vars.begin(), vars.end());
      vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
      out.cubes.push_back(std::move(vars));
    }
    return out;
  }
  BddManager mgr;
  return Condense(expr, mgr);
}

}  // namespace provnet
