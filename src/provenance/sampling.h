// Sampling and summarization optimizations (Section 5):
//
//  * TupleSampler    - IP-traceback-style 1-in-k recording: each tuple's
//    provenance is kept with probability 1/k, decided deterministically from
//    the tuple digest (so every node agrees on the sample set).
//  * BloomFilter     - bit-array filter with double hashing.
//  * ProvDigestStore - ForNet-style synopses: per time window, a Bloom
//    filter of the tuple digests a node forwarded. Trades false positives
//    for O(bits) storage; used for forensic "did X pass through here?".
#ifndef PROVNET_PROVENANCE_SAMPLING_H_
#define PROVNET_PROVENANCE_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "provenance/store.h"
#include "util/status.h"

namespace provnet {

class TupleSampler {
 public:
  // Records one out of `k` tuples in expectation (k >= 1; k == 1 records
  // everything). `seed` de-correlates independent samplers.
  TupleSampler(uint32_t k, uint64_t seed);

  // Deterministic per-tuple decision.
  bool ShouldRecord(const Tuple& tuple) const;
  bool ShouldRecord(TupleDigest digest) const;

  uint32_t k() const { return k_; }

 private:
  uint32_t k_;
  uint64_t seed_;
};

class BloomFilter {
 public:
  // `bits` is rounded up to a multiple of 64. `num_hashes` >= 1.
  BloomFilter(size_t bits, int num_hashes);

  void Insert(uint64_t key);
  bool MayContain(uint64_t key) const;

  size_t bit_count() const { return words_.size() * 64; }
  int num_hashes() const { return num_hashes_; }
  // Fraction of set bits (load factor; drives the false-positive rate).
  double Saturation() const;
  // Storage in bytes.
  size_t ByteSize() const { return words_.size() * 8; }

  void Serialize(ByteWriter& out) const;
  static Result<BloomFilter> Deserialize(ByteReader& in);

 private:
  std::vector<uint64_t> words_;
  int num_hashes_;
};

// Rolling per-window Bloom digests of forwarded tuples (ForNet).
class ProvDigestStore {
 public:
  // `window_seconds` per filter; `bits`/`hashes` size each filter;
  // `max_windows` bounds retained history (0 = unbounded).
  ProvDigestStore(double window_seconds, size_t bits, int hashes,
                  size_t max_windows);

  // Records that `digest` was seen at time `now`.
  void Record(TupleDigest digest, double now);

  // Might `digest` have been seen in [from, to)?
  bool MayContain(TupleDigest digest, double from, double to) const;

  size_t window_count() const { return windows_.size(); }
  size_t TotalBytes() const;

 private:
  struct Window {
    int64_t index;  // floor(time / window_seconds)
    BloomFilter filter;
  };

  double window_seconds_;
  size_t bits_;
  int hashes_;
  size_t max_windows_;
  std::vector<Window> windows_;  // ascending by index
};

}  // namespace provnet

#endif  // PROVNET_PROVENANCE_SAMPLING_H_
