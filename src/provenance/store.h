// Provenance stores realizing the Section 4.1 / 4.2 taxonomy axes:
//
//  * OnlineProvStore  - provenance of *live* soft-state tuples, expiring with
//    them; supports the "react at runtime" use case (delete all routes that
//    depend on a malicious node).
//  * OfflineProvStore - an archive that outlives tuple expiry, with an aging
//    policy plus per-record persist marks (Section 5's reactive retention:
//    age everything out unless flagged during an anomaly).
//  * Distributed provenance - records store *references* to their immediate
//    children; a child is either local (same node) or remote (node id +
//    content digest). Reconstruction walks these pointers with network
//    queries (core/distquery.*), the paper's IP-traceback analogy.
#ifndef PROVNET_PROVENANCE_STORE_H_
#define PROVNET_PROVENANCE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/keystore.h"
#include "datalog/tuple.h"
#include "store/pagefile.h"
#include "util/status.h"

namespace provnet {

namespace store {
class ProvArchive;  // store/archive.h (depends back on ProvRecord)
}  // namespace store

// Stable identifier of a tuple instance for cross-node pointers: the hash of
// its content. (Distinct tuples colliding is harmless for the simulation;
// digests are 64-bit.)
using TupleDigest = uint64_t;

TupleDigest DigestOf(const Tuple& tuple);

struct ProvChildRef {
  NodeId node = 0;          // where the child's record lives
  TupleDigest digest = 0;   // which tuple it refers to
  bool is_base = false;     // leaf marker (no further resolution needed)
  Tuple base_tuple;         // the leaf itself when is_base
  Principal asserted_by;    // who asserted the child (for trust decisions)

  void Serialize(ByteWriter& out) const;
  static Result<ProvChildRef> Deserialize(ByteReader& in);
};

struct ProvRecord {
  Tuple tuple;
  std::string rule;        // deriving rule label (kBaseRule for leaves)
  NodeId location = 0;
  Principal asserted_by;
  double created_at = 0.0;
  double expires_at = -1.0;  // -1 = never
  bool persist = false;      // survives OfflineProvStore aging
  std::vector<ProvChildRef> children;

  void Serialize(ByteWriter& out) const;
  static Result<ProvRecord> Deserialize(ByteReader& in);
  std::string ToString() const;
};

// Online store: one entry set per live tuple digest. Multiple records per
// digest capture alternative derivations.
class OnlineProvStore {
 public:
  void Add(ProvRecord record);

  // All current derivations of a tuple; nullptr when unknown.
  const std::vector<ProvRecord>* Lookup(TupleDigest digest) const;

  // Drops records whose tuples expired before `now` (online provenance only
  // covers currently-valid state). Returns the number dropped.
  size_t ExpireBefore(double now);

  // Removes every record of `digest` (e.g. the tuple was deleted after a
  // trust revocation). Returns the number removed.
  size_t Remove(TupleDigest digest);

  // Digests of all records that (transitively at this node) depend on a
  // child asserted by `principal` — the "delete all routing entries
  // associated with the malicious node" query of Section 4.2.
  std::vector<TupleDigest> DependentsOf(const Principal& principal) const;

  // Drops every record (e.g. simulating fully aged-out online state before
  // an archive-only forensic query).
  void Clear() {
    records_.clear();
    count_ = 0;
  }

  size_t size() const { return count_; }

 private:
  std::unordered_map<TupleDigest, std::vector<ProvRecord>> records_;
  size_t count_ = 0;
};

// Offline archive with aging. Since ISSUE 9 this is a thin facade over the
// durable paged archive (store/archive.*): records live in varint-encoded
// page frames — memory-resident by default, on disk when Open() is given a
// path — and queries decode them on demand through the page cache. The
// facade exists so provenance/ does not depend on store/archive.h (which
// depends back on ProvRecord) and so pre-archive callers keep compiling:
// the Find* family now returns decoded records by value.
class OfflineProvStore {
 public:
  OfflineProvStore();  // memory-resident archive
  ~OfflineProvStore();

  // Re-binds the store to an on-disk archive at `path`, replaying any
  // existing log (crash recovery: a torn final record is truncated away).
  // Records added before Open() are not carried over — the engine opens
  // archives at Init, before any fact flows.
  Status Open(const std::string& path, size_t page_bytes, size_t cache_pages);

  void Add(const ProvRecord& record);

  // Ages out records created before `cutoff` unless persist-marked.
  // Returns the number evicted.
  size_t EvictOlderThan(double cutoff);

  // Marks all records of `digest` persistent (called when an anomaly makes
  // them forensically interesting). Returns how many were marked.
  size_t MarkPersistent(TupleDigest digest);

  // Query interface for forensics: decoded records in append order.
  std::vector<ProvRecord> FindByDigest(TupleDigest digest) const;
  std::vector<ProvRecord> FindByPredicate(const std::string& predicate) const;
  std::vector<ProvRecord> FindInWindow(double from, double to) const;

  size_t size() const;
  // Approximate storage footprint in bytes (for the storage-overhead bench):
  // live record payload bytes in the archive.
  size_t ApproxBytes() const;

  // Fail-stop crash: abandons the backing file without flushing (tearing
  // off records buffered since the last Flush) and re-binds to an empty
  // memory-resident archive. Open() the same path again to recover.
  void Crash();

  // Durability surface (no-ops / zeros for the memory-resident default).
  Status Flush();
  uint64_t DiskBytes() const;
  bool on_disk() const;

  // Page read/write/compaction deltas since the last call.
  store::ArchiveIo TakeIo() const;

 private:
  std::unique_ptr<store::ProvArchive> archive_;
};

}  // namespace provnet

#endif  // PROVNET_PROVENANCE_STORE_H_
