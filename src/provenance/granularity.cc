#include "provenance/granularity.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace provnet {

AsMapping AsMapping::Blocks(size_t num_nodes, size_t nodes_per_as) {
  PROVNET_CHECK(nodes_per_as >= 1);
  std::vector<AsId> table(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    table[i] = static_cast<AsId>(i / nodes_per_as);
  }
  return AsMapping(std::move(table));
}

AsMapping::AsMapping(std::vector<AsId> node_to_as)
    : node_to_as_(std::move(node_to_as)) {}

AsId AsMapping::AsOf(NodeId node) const {
  PROVNET_CHECK(node < node_to_as_.size()) << "node out of mapping range";
  return node_to_as_[node];
}

size_t AsMapping::num_ases() const {
  AsId max_as = 0;
  for (AsId as : node_to_as_) max_as = std::max(max_as, as);
  return node_to_as_.empty() ? 0 : static_cast<size_t>(max_as) + 1;
}

DerivationPtr ProjectDerivationToAs(const DerivationPtr& root,
                                    const AsMapping& mapping) {
  AsId as = mapping.AsOf(root->location);
  // Merge: children in the same AS contribute their own children directly
  // (the intra-AS step disappears); children in other ASes are projected
  // recursively.
  std::vector<DerivationPtr> projected_children;
  std::function<void(const DerivationPtr&)> absorb =
      [&](const DerivationPtr& child) {
        AsId child_as = mapping.AsOf(child->location);
        if (child_as == as && !child->children.empty()) {
          for (const DerivationPtr& grand : child->children) absorb(grand);
        } else {
          projected_children.push_back(ProjectDerivationToAs(child, mapping));
        }
      };
  for (const DerivationPtr& child : root->children) absorb(child);

  auto node = std::make_shared<DerivationNode>(*root);
  node->location = as;  // locations now denote ASes
  node->children = std::move(projected_children);
  return node;
}

CondensedProv ProjectCondensedToAs(
    const CondensedProv& prov,
    const std::function<ProvVar(ProvVar)>& var_to_as_var) {
  CondensedProv out;
  for (const auto& cube : prov.cubes) {
    std::set<ProvVar> mapped;
    for (ProvVar v : cube) mapped.insert(var_to_as_var(v));
    out.cubes.emplace_back(mapped.begin(), mapped.end());
  }
  // Re-minimize: sort by size then apply absorption.
  std::sort(out.cubes.begin(), out.cubes.end(),
            [](const std::vector<ProvVar>& a, const std::vector<ProvVar>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  std::vector<std::vector<ProvVar>> minimal;
  for (const auto& cube : out.cubes) {
    bool dominated = false;
    for (const auto& kept : minimal) {
      if (std::includes(cube.begin(), cube.end(), kept.begin(), kept.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated && (minimal.empty() || minimal.back() != cube)) {
      minimal.push_back(cube);
    }
  }
  std::sort(minimal.begin(), minimal.end());
  minimal.erase(std::unique(minimal.begin(), minimal.end()), minimal.end());
  out.cubes = std::move(minimal);
  return out;
}

std::vector<AsId> AsPathOf(const DerivationPtr& root,
                           const AsMapping& mapping) {
  std::vector<AsId> path;
  const DerivationNode* cur = root.get();
  while (cur != nullptr) {
    AsId as = mapping.AsOf(cur->location);
    if (path.empty() || path.back() != as) path.push_back(as);
    // Follow the deepest child.
    const DerivationNode* next = nullptr;
    size_t best_depth = 0;
    for (const DerivationPtr& c : cur->children) {
      size_t d = c->TreeDepth();
      if (d > best_depth) {
        best_depth = d;
        next = c.get();
      }
    }
    cur = next;
  }
  return path;
}

}  // namespace provnet
