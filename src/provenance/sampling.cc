#include "provenance/sampling.h"

#include <cmath>

#include "util/hash.h"
#include "util/logging.h"

namespace provnet {

TupleSampler::TupleSampler(uint32_t k, uint64_t seed) : k_(k), seed_(seed) {
  PROVNET_CHECK(k >= 1) << "sampling rate k must be >= 1";
}

bool TupleSampler::ShouldRecord(const Tuple& tuple) const {
  return ShouldRecord(DigestOf(tuple));
}

bool TupleSampler::ShouldRecord(TupleDigest digest) const {
  if (k_ == 1) return true;
  return Mix64(digest ^ seed_) % k_ == 0;
}

BloomFilter::BloomFilter(size_t bits, int num_hashes)
    : num_hashes_(num_hashes) {
  PROVNET_CHECK(num_hashes >= 1);
  size_t words = (bits + 63) / 64;
  if (words == 0) words = 1;
  words_.assign(words, 0);
}

void BloomFilter::Insert(uint64_t key) {
  uint64_t h1 = Mix64(key);
  uint64_t h2 = Mix64(key ^ 0x5851f42d4c957f2dULL) | 1;  // odd stride
  size_t bits = bit_count();
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits;
    words_[bit / 64] |= 1ULL << (bit % 64);
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  uint64_t h1 = Mix64(key);
  uint64_t h2 = Mix64(key ^ 0x5851f42d4c957f2dULL) | 1;
  size_t bits = bit_count();
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits;
    if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

double BloomFilter::Saturation() const {
  size_t set = 0;
  for (uint64_t w : words_) set += static_cast<size_t>(__builtin_popcountll(w));
  return static_cast<double>(set) / static_cast<double>(bit_count());
}

void BloomFilter::Serialize(ByteWriter& out) const {
  out.PutU8(static_cast<uint8_t>(num_hashes_));
  out.PutVarint(words_.size());
  for (uint64_t w : words_) out.PutU64(w);
}

Result<BloomFilter> BloomFilter::Deserialize(ByteReader& in) {
  PROVNET_ASSIGN_OR_RETURN(uint8_t hashes, in.GetU8());
  if (hashes < 1) return InvalidArgumentError("bloom filter needs >=1 hash");
  PROVNET_ASSIGN_OR_RETURN(uint64_t words, in.GetVarint());
  if (words == 0 || words * 8 > in.remaining()) {
    return InvalidArgumentError("bad bloom filter size");
  }
  BloomFilter filter(words * 64, hashes);
  for (uint64_t i = 0; i < words; ++i) {
    PROVNET_ASSIGN_OR_RETURN(filter.words_[i], in.GetU64());
  }
  return filter;
}

ProvDigestStore::ProvDigestStore(double window_seconds, size_t bits,
                                 int hashes, size_t max_windows)
    : window_seconds_(window_seconds),
      bits_(bits),
      hashes_(hashes),
      max_windows_(max_windows) {
  PROVNET_CHECK(window_seconds > 0);
}

void ProvDigestStore::Record(TupleDigest digest, double now) {
  int64_t index = static_cast<int64_t>(std::floor(now / window_seconds_));
  if (windows_.empty() || windows_.back().index < index) {
    windows_.push_back(Window{index, BloomFilter(bits_, hashes_)});
    if (max_windows_ > 0 && windows_.size() > max_windows_) {
      windows_.erase(windows_.begin());
    }
  }
  // Out-of-order inserts land in the newest window (approximation noted in
  // DESIGN.md; ForNet does the same with its append-only synopses).
  windows_.back().filter.Insert(digest);
}

bool ProvDigestStore::MayContain(TupleDigest digest, double from,
                                 double to) const {
  int64_t first = static_cast<int64_t>(std::floor(from / window_seconds_));
  int64_t last = static_cast<int64_t>(std::ceil(to / window_seconds_));
  for (const Window& w : windows_) {
    if (w.index < first || w.index >= last) continue;
    if (w.filter.MayContain(digest)) return true;
  }
  return false;
}

size_t ProvDigestStore::TotalBytes() const {
  size_t total = 0;
  for (const Window& w : windows_) total += w.filter.ByteSize();
  return total;
}

}  // namespace provnet
