// Derivation trees (Figures 1 and 2 of the paper) with the stream-provenance
// annotations of Section 4: every node carries its location, creation
// timestamp, and time-to-live; SeNDlog trees additionally carry the
// asserting principal ("P says") and, for authenticated provenance
// (Section 4.3), a digital signature over the node's content.
#ifndef PROVNET_PROVENANCE_DERIVATION_H_
#define PROVNET_PROVENANCE_DERIVATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "crypto/authenticator.h"
#include "crypto/sha256.h"
#include "datalog/tuple.h"
#include "util/status.h"

namespace provnet {

struct DerivationNode;
using DerivationPtr = std::shared_ptr<const DerivationNode>;

// Rule-name conventions for non-rule nodes.
inline constexpr char kBaseRule[] = "base";    // leaf (inserted fact)
inline constexpr char kUnionRule[] = "union";  // alternative derivations

// Derivations are DAGs in memory (sub-derivations are shared via
// shared_ptr), and every operation here — digesting, sizing, serializing —
// respects the sharing. A recursive query re-derives the same sub-tuple
// exponentially often, so expanding the DAG to a tree anywhere would blow
// up; the wire format therefore ships each distinct node once.
struct DerivationNode {
  DerivationNode() = default;
  // Copies reset the digest memo (the copy is usually about to be edited).
  DerivationNode(const DerivationNode& other);
  DerivationNode& operator=(const DerivationNode& other);

  Tuple tuple;
  std::string rule;       // rule label, kBaseRule, or kUnionRule
  NodeId location = 0;    // node where this step executed ("@" annotation)
  Principal asserted_by;  // SeNDlog principal; empty in plain NDlog
  double created_at = 0.0;
  double ttl = -1.0;      // soft-state lifetime in seconds; -1 = infinite
  Bytes signature;        // empty when unauthenticated
  std::vector<DerivationPtr> children;

  // Digest over content and child digests (a Merkle hash); what signatures
  // cover and what distributed child references point at. Memoized per
  // node; mutating a node after the first call is a programming error.
  Sha256Digest ContentDigest() const;

  size_t TreeSize() const;   // distinct DAG nodes reachable from here
  size_t TreeDepth() const;  // 1 for a leaf

  // Base tuples at the leaves (the inputs the paper says provenance must be
  // able to recover from the tree); each distinct leaf reported once.
  std::vector<Tuple> Leaves() const;

  // Figure-1-style ASCII rendering (expands sharing; intended for the small
  // illustrative trees of the examples).
  std::string ToString(
      const std::function<std::string(NodeId)>& node_name) const;
  std::string ToString() const;

  // DAG wire format: distinct nodes once, children by index.
  void Serialize(ByteWriter& out) const;
  static Result<DerivationPtr> Deserialize(ByteReader& in);
  size_t WireSize() const;

 private:
  mutable bool digest_valid_ = false;
  mutable Sha256Digest digest_cache_;
};

// Constructors -----------------------------------------------------------

DerivationPtr MakeBaseDerivation(Tuple tuple, NodeId location,
                                 Principal asserted_by, double created_at,
                                 double ttl);

DerivationPtr MakeRuleDerivation(Tuple tuple, std::string rule,
                                 NodeId location, Principal asserted_by,
                                 double created_at, double ttl,
                                 std::vector<DerivationPtr> children);

// Merges two derivations of the same tuple under a union node (collapses
// nested unions so the union node's children are the individual
// alternatives).
DerivationPtr MergeAlternatives(const DerivationPtr& a,
                                const DerivationPtr& b);

// Authenticated provenance -------------------------------------------------

// Returns a copy of `node` signed by `principal` (signature over the content
// digest). Children are left untouched — each principal signs the step it
// asserts, as in Figure 2.
Result<DerivationPtr> SignDerivation(const DerivationPtr& node,
                                     Authenticator& auth, SaysLevel level);

// Verifies every signed node in the tree against its asserting principal.
// Nodes with empty signatures fail when `require_signatures` is set.
Status VerifyDerivationTree(const DerivationPtr& root, Authenticator& auth,
                            bool require_signatures);

}  // namespace provnet

#endif  // PROVNET_PROVENANCE_DERIVATION_H_
