// Forensics (Section 3): offline traceback over distributed provenance,
// Bloom-digest traceback (ForNet), and random moonwalks (Xie et al.) that
// sample walks toward origins instead of querying all provenance.
#ifndef PROVNET_APPS_FORENSICS_H_
#define PROVNET_APPS_FORENSICS_H_

#include <map>
#include <set>
#include <vector>

#include "core/engine.h"
#include "provenance/sampling.h"

namespace provnet {

struct TracebackReport {
  // Base tuples found at the leaves of the reconstructed provenance.
  std::vector<Tuple> origin_tuples;
  // Nodes asserting those leaves (the attack origin candidates).
  std::set<NodeId> origin_nodes;
  // Provenance-query traffic spent on the reconstruction.
  uint64_t query_messages = 0;
  uint64_t query_bytes = 0;
};

// Full traceback: one distributed ProvQuery (src/query/) reconstructing the
// provenance of `tuple` as stored at `node`, reported as its origins. Works
// against online or offline stores (whatever the engine recorded); the
// query traffic is signed, sequenced, and charged to the meters.
Result<TracebackReport> Traceback(Engine& engine, NodeId node,
                                  const Tuple& tuple);

// Recall of a sampled traceback versus ground truth: |found ∩ truth| /
// |truth| over origin nodes.
double TracebackRecall(const TracebackReport& report,
                       const std::set<NodeId>& truth);

// Random moonwalk: starting from a record of `tuple` at `node`, repeatedly
// hop to a uniformly random provenance child (following remote pointers)
// until a base record is reached; repeat `walks` times and histogram the
// terminal nodes. High-count nodes are origin candidates without exhaustive
// querying.
Result<std::map<NodeId, size_t>> RandomMoonwalk(Engine& engine, NodeId node,
                                                const Tuple& tuple,
                                                size_t walks, Rng& rng);

// ForNet-style digest traceback: builds per-node Bloom digests of every
// tuple recorded in the offline stores, then reports which nodes may have
// processed `tuple` in [from, to). False positives possible by design.
class DigestTraceback {
 public:
  // One filter per node per `window_seconds`, each `bits` wide with
  // `hashes` probes.
  DigestTraceback(Engine& engine, double window_seconds, size_t bits,
                  int hashes);

  std::vector<NodeId> NodesThatMaySawTuple(const Tuple& tuple, double from,
                                           double to) const;
  size_t TotalBytes() const;

 private:
  std::vector<ProvDigestStore> stores_;
};

}  // namespace provnet

#endif  // PROVNET_APPS_FORENSICS_H_
