#include "apps/accountability.h"

#include <algorithm>

#include "util/strings.h"

namespace provnet {

FlowAuditor::FlowAuditor(Engine& engine, double from, double to) {
  for (NodeId n = 0; n < engine.num_nodes(); ++n) {
    const OfflineProvStore& offline = engine.node(n).offline_store();
    for (const ProvRecord& rec : offline.FindInWindow(from, to)) {
      if (rec.asserted_by.empty()) continue;
      UsageRecord& usage = ledger_[rec.asserted_by];
      if (usage.assertions == 0) {
        usage.principal = rec.asserted_by;
        usage.first_seen = rec.created_at;
        usage.last_seen = rec.created_at;
      }
      ++usage.assertions;
      ByteWriter w;
      rec.Serialize(w);
      usage.bytes += w.size();
      usage.first_seen = std::min(usage.first_seen, rec.created_at);
      usage.last_seen = std::max(usage.last_seen, rec.created_at);
    }
  }
}

std::vector<Principal> FlowAuditor::OverQuota(uint64_t quota) const {
  std::vector<Principal> out;
  for (const auto& [principal, usage] : ledger_) {
    if (usage.assertions > quota) out.push_back(principal);
  }
  return out;
}

uint64_t FlowAuditor::TotalAssertions() const {
  uint64_t total = 0;
  for (const auto& [principal, usage] : ledger_) total += usage.assertions;
  return total;
}

std::string FlowAuditor::ToString() const {
  std::string out = "audit ledger:\n";
  for (const auto& [principal, usage] : ledger_) {
    out += StrFormat("  %-8s assertions=%llu bytes=%llu window=[%.2f, %.2f]\n",
                     principal.c_str(),
                     static_cast<unsigned long long>(usage.assertions),
                     static_cast<unsigned long long>(usage.bytes),
                     usage.first_seen, usage.last_seen);
  }
  return out;
}

}  // namespace provnet
