// Packet-level forwarding and spoofing traceback — the paper's original
// forensics motivation (Section 3: IP traceback "to determine where packets
// originated from without trusting the unauthenticated IP headers").
//
// A SeNDlog data plane forwards packets hop by hop along converged best
// paths. The packet header carries a *claimed* source that an attacker can
// spoof freely; the per-hop provenance records cannot be spoofed, so
// traceback over them recovers the true injection point.
#ifndef PROVNET_APPS_PACKETS_H_
#define PROVNET_APPS_PACKETS_H_

#include <set>
#include <string>

#include "core/engine.h"

namespace provnet {

// Best-Path routing plus the forwarding plane, one SeNDlog program:
//   packet(S, Src, D, Pay)  - packet held at S, claiming source Src
//   f2: forward toward D along bestPath's next hop
//   f3: delivered(D, Src, Pay) when the packet reaches D
const std::string& PacketRoutingSendlogProgram();

struct PacketInjection {
  NodeId at = 0;           // where the attacker really injects
  NodeId claimed_src = 0;  // the (possibly spoofed) header source
  NodeId dst = 0;
  int64_t payload = 0;     // payload identifier
};

// Inserts the packet fact at the injection node and runs to fixpoint.
Status InjectPacket(Engine& engine, const PacketInjection& injection);

// The delivered tuple the destination observes for this injection.
Tuple DeliveredTuple(const PacketInjection& injection);

struct SpoofVerdict {
  NodeId claimed_src = 0;  // what the header says
  NodeId true_origin = 0;  // where provenance says the packet entered
  bool spoofed = false;    // the two disagree
  std::set<NodeId> forwarding_path;  // every node whose records touched it
};

// Traceback at the destination: reconstructs the packet's distributed
// provenance and compares the header's claimed source with the injection
// node found at the provenance leaves. Requires ProvMode::kPointers (or
// record_online) during forwarding.
Result<SpoofVerdict> TracePacketOrigin(Engine& engine,
                                       const PacketInjection& injection);

}  // namespace provnet

#endif  // PROVNET_APPS_PACKETS_H_
