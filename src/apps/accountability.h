// Accountability (Section 3): PlanetFlow-style auditing. Every derivation a
// principal asserts is a billable/auditable action; the auditor aggregates
// per-principal activity from the offline provenance archives (call-detail
// records for the network) and flags principals that exceed policy.
#ifndef PROVNET_APPS_ACCOUNTABILITY_H_
#define PROVNET_APPS_ACCOUNTABILITY_H_

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"

namespace provnet {

struct UsageRecord {
  Principal principal;
  uint64_t assertions = 0;   // derivations asserted by this principal
  uint64_t bytes = 0;        // serialized size of those records
  double first_seen = 0.0;
  double last_seen = 0.0;
};

class FlowAuditor {
 public:
  // Builds the audit ledger from every node's offline archive, restricted
  // to [from, to) (call-detail style windows).
  FlowAuditor(Engine& engine, double from, double to);

  const std::map<Principal, UsageRecord>& ledger() const { return ledger_; }

  // Principals whose assertion count exceeds `quota`.
  std::vector<Principal> OverQuota(uint64_t quota) const;

  // Total accounted actions.
  uint64_t TotalAssertions() const;

  std::string ToString() const;

 private:
  std::map<Principal, UsageRecord> ledger_;
};

}  // namespace provnet

#endif  // PROVNET_APPS_ACCOUNTABILITY_H_
