// The evaluation workload (Section 6): the Best-Path query under the three
// system variants, plus an independent shortest-path oracle for verifying
// the distributed fixpoint.
#ifndef PROVNET_APPS_BESTPATH_H_
#define PROVNET_APPS_BESTPATH_H_

#include <map>
#include <memory>
#include <utility>

#include "core/engine.h"
#include "net/topology.h"

namespace provnet {

// The evaluation's three system configurations.
enum class Variant : uint8_t {
  kNdlog = 0,        // no authentication, no provenance
  kSendlog = 1,      // RSA-authenticated communication
  kSendlogProv = 2,  // authenticated + condensed provenance
};

const char* VariantName(Variant variant);

// Engine options implementing `variant` (says level / provenance switches).
// Extra fields of `base` (seed, rsa_bits, latency, ...) are preserved.
EngineOptions OptionsForVariant(Variant variant, EngineOptions base);

struct BestPathRun {
  std::unique_ptr<Engine> engine;
  RunStats stats;
};

// Builds an engine for the Best-Path query on `topo` under `variant`,
// inserts the link facts, and runs to the distributed fixpoint.
Result<BestPathRun> RunBestPath(const Topology& topo, Variant variant,
                                EngineOptions base = {});

// Independent oracle: all-pairs shortest path costs via Bellman-Ford over
// the topology (handles directed edges, positive costs). Key = (src, dst),
// absent = unreachable. Self-pairs are excluded (as in the query, whose
// paths have >= 1 edge; cycles back to the source are allowed).
std::map<std::pair<NodeId, NodeId>, int64_t> ReferenceShortestPaths(
    const Topology& topo);

// Checks every node's bestPath table against the oracle. Returns an error
// describing the first mismatch.
Status VerifyBestPaths(Engine& engine, const Topology& topo);

}  // namespace provnet

#endif  // PROVNET_APPS_BESTPATH_H_
