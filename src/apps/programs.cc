#include "apps/programs.h"

namespace provnet {

const std::string& ReachableNdlogProgram() {
  static const std::string* kSource = new std::string(R"(
    // Section 2.1: distributed transitive closure.
    r1 reachable(@S,D) :- link(@S,D).
    r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
  )");
  return *kSource;
}

const std::string& ReachableSendlogProgram() {
  static const std::string* kSource = new std::string(R"(
    // Section 2.2: reachability with authenticated imports.
    At S:
    s1 reachable(S,D) :- link(S,D).
    s2 linkD(D,S)@D :- link(S,D).
    s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
  )");
  return *kSource;
}

const std::string& BestPathNdlogProgram() {
  static const std::string* kSource = new std::string(R"(
    // Section 6's Best-Path query: the all-pairs reachability query of
    // Section 2.1 "with additional predicates to compute the actual path,
    // cost of the path, and two extra rules for computing the best paths".
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(bestPath, infinity, infinity, keys(1,2)).

    sp1 path(@S,D,P,C) :- link(@S,D,C), P := f_init(S,D).
    sp2 path(@S,D,P,C) :- link(@S,Z,C1), bestPath(@Z,D,P2,C2),
                          f_member(P2,S) == 0, C := C1 + C2,
                          P := f_concatPath(S,P2).
    sp3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
    sp4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
  )");
  return *kSource;
}

const std::string& BestPathSendlogProgram() {
  static const std::string* kSource = new std::string(R"(
    // Best-Path in SeNDlog: bodies are local to the context S; neighbors
    // export their link state (z2) and each improvement is pushed upstream
    // (z3) under "says" authentication.
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(linkD, infinity, infinity, keys(1,2)).
    materialize(bestPath, infinity, infinity, keys(1,2)).

    At S:
    z1 path(S,D,P,C) :- link(S,D,C), P := f_init(S,D).
    z2 linkD(D,S,C)@D :- link(S,D,C).
    z3 path(Z,D,P,C)@Z :- Z says linkD(S,Z,C1), W says bestPath(S,D,P2,C2),
                          f_member(P2,Z) == 0, C := C1 + C2,
                          P := f_concatPath(Z,P2).
    z4 bestPathCost(S,D,min<C>) :- path(S,D,P,C).
    z5 bestPath(S,D,P,C) :- bestPathCost(S,D,C), path(S,D,P,C).
  )");
  return *kSource;
}

}  // namespace provnet
