// Trust management (Sections 3, 4.4, 4.5): Orchestra-style accept/reject of
// updates by their source origins, security-level trust via the max/min
// semiring, and K-of-N vote thresholds over condensed provenance.
#ifndef PROVNET_APPS_TRUST_H_
#define PROVNET_APPS_TRUST_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "provenance/condense.h"
#include "provenance/semiring.h"

namespace provnet {

class TrustPolicy {
 public:
  explicit TrustPolicy(Engine* engine) : engine_(engine) {}

  // --- Source-origin trust (condensed provenance, Section 4.4) -----------
  void TrustPrincipal(const Principal& principal);
  void DistrustPrincipal(const Principal& principal);

  // Accepts a tuple iff some minimal witness set of its condensed
  // provenance is fully trusted — the Orchestra rule: whether b is trusted
  // is inconsequential given <a>, as long as a is trusted.
  bool AcceptsCondensed(const CondensedProv& prov) const;
  Result<bool> AcceptsTuple(NodeId node, const Tuple& tuple) const;

  // --- Security levels (quantifiable provenance, Section 4.5) ------------
  void SetSecurityLevel(const Principal& principal, int64_t level);
  // Trust level of a stored tuple: max over derivations of the min input
  // level, e.g. <a + a*b> with level(a)=2, level(b)=1 -> 2.
  Result<int64_t> TrustLevelOfTuple(NodeId node, const Tuple& tuple,
                                    int64_t default_level) const;

  // --- Votes (Section 4.5 / Section 3 "over K principals assert") --------
  // Accepts when the tuple has at least `k` independent minimal witness
  // sets.
  Result<bool> AcceptsByVote(NodeId node, const Tuple& tuple, size_t k) const;

  // --- Bulk filtering -------------------------------------------------------
  struct FilterResult {
    std::vector<Tuple> accepted;
    std::vector<Tuple> rejected;
  };
  // Partitions all stored tuples of `pred` at `node` under the
  // source-origin rule.
  Result<FilterResult> FilterTable(NodeId node, const std::string& pred) const;

 private:
  Engine* engine_;
  std::set<Principal> trusted_;
  std::map<Principal, int64_t> levels_;
};

}  // namespace provnet

#endif  // PROVNET_APPS_TRUST_H_
