#include "apps/bestpath.h"

#include <limits>

#include "apps/programs.h"
#include "util/strings.h"

namespace provnet {

const char* VariantName(Variant variant) {
  switch (variant) {
    case Variant::kNdlog:
      return "NDLog";
    case Variant::kSendlog:
      return "SeNDLog";
    case Variant::kSendlogProv:
      return "SeNDLogProv";
  }
  return "?";
}

EngineOptions OptionsForVariant(Variant variant, EngineOptions base) {
  switch (variant) {
    case Variant::kNdlog:
      base.authenticate = false;
      base.prov_mode = ProvMode::kNone;
      break;
    case Variant::kSendlog:
      base.authenticate = true;
      base.says_level = SaysLevel::kRsa;
      base.prov_mode = ProvMode::kNone;
      break;
    case Variant::kSendlogProv:
      base.authenticate = true;
      base.says_level = SaysLevel::kRsa;
      base.prov_mode = ProvMode::kCondensed;
      break;
  }
  return base;
}

Result<BestPathRun> RunBestPath(const Topology& topo, Variant variant,
                                EngineOptions base) {
  EngineOptions options = OptionsForVariant(variant, std::move(base));
  const std::string& source = variant == Variant::kNdlog
                                  ? BestPathNdlogProgram()
                                  : BestPathSendlogProgram();
  PROVNET_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                           Engine::Create(topo, source, std::move(options)));
  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_ASSIGN_OR_RETURN(RunStats stats, engine->Run());
  BestPathRun run;
  run.engine = std::move(engine);
  run.stats = stats;
  return run;
}

std::map<std::pair<NodeId, NodeId>, int64_t> ReferenceShortestPaths(
    const Topology& topo) {
  constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
  size_t n = topo.num_nodes;
  std::vector<std::vector<int64_t>> dist(n, std::vector<int64_t>(n, kInf));
  for (const TopoEdge& e : topo.edges) {
    dist[e.from][e.to] = std::min(dist[e.from][e.to], e.cost);
  }
  // Floyd-Warshall (self-distances excluded from the result; the query's
  // paths have >= 1 edge and never revisit their source).
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (dist[i][k] + dist[k][j] < dist[i][j]) {
          dist[i][j] = dist[i][k] + dist[k][j];
        }
      }
    }
  }
  std::map<std::pair<NodeId, NodeId>, int64_t> out;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && dist[i][j] < kInf) {
        out[{static_cast<NodeId>(i), static_cast<NodeId>(j)}] = dist[i][j];
      }
    }
  }
  return out;
}

Status VerifyBestPaths(Engine& engine, const Topology& topo) {
  auto oracle = ReferenceShortestPaths(topo);

  // Edge lookup for path validation.
  std::map<std::pair<NodeId, NodeId>, int64_t> edge_cost;
  for (const TopoEdge& e : topo.edges) {
    auto key = std::make_pair(e.from, e.to);
    auto it = edge_cost.find(key);
    if (it == edge_cost.end() || e.cost < it->second) edge_cost[key] = e.cost;
  }

  size_t exact = 0;
  size_t found = 0;
  for (NodeId node = 0; node < topo.num_nodes; ++node) {
    for (const Tuple& t : engine.TuplesAt(node, "bestPath")) {
      if (t.arity() != 4) {
        return InternalError("bestPath arity: " + t.ToString());
      }
      NodeId src = t.arg(0).AsAddress();
      NodeId dst = t.arg(1).AsAddress();
      const auto& path = t.arg(2).AsList();
      int64_t cost = t.arg(3).AsInt();
      if (src != node) {
        return InternalError("bestPath stored at wrong node: " +
                             t.ToString());
      }
      // Path structure: starts at src, ends at dst, edges exist, costs sum.
      if (path.size() < 2 || path.front().AsAddress() != src ||
          path.back().AsAddress() != dst) {
        return InternalError("malformed path: " + t.ToString());
      }
      int64_t sum = 0;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        auto key = std::make_pair(path[i].AsAddress(),
                                  path[i + 1].AsAddress());
        auto it = edge_cost.find(key);
        if (it == edge_cost.end()) {
          return InternalError("path uses a nonexistent link: " +
                               t.ToString());
        }
        sum += it->second;
      }
      if (sum != cost) {
        return InternalError(StrFormat(
            "path cost mismatch: sum=%lld vs %lld in %s",
            static_cast<long long>(sum), static_cast<long long>(cost),
            t.ToString().c_str()));
      }
      auto want = oracle.find({src, dst});
      if (want == oracle.end()) {
        return InternalError("bestPath for unreachable pair: " +
                             t.ToString());
      }
      if (cost < want->second) {
        return InternalError("path beats the oracle (impossible): " +
                             t.ToString());
      }
      ++found;
      if (cost == want->second) ++exact;
    }
  }
  if (found < oracle.size()) {
    return InternalError(StrFormat(
        "missing best paths: found %zu of %zu reachable pairs", found,
        oracle.size()));
  }
  if (exact != found) {
    // Equal-cost ties can block the simple-path extension (path-vector
    // semantics); surface it as an error so callers decide.
    return FailedPreconditionError(StrFormat(
        "%zu of %zu best paths are tie-blocked above the oracle cost",
        found - exact, found));
  }
  return OkStatus();
}

}  // namespace provnet
