#include "apps/forensics.h"

#include <functional>

#include "query/provquery.h"

namespace provnet {

Result<TracebackReport> Traceback(Engine& engine, NodeId node,
                                  const Tuple& tuple) {
  // One distributed ProvQuery: the reconstruction, its origins, and the
  // traffic it cost all come out of the typed result.
  PROVNET_ASSIGN_OR_RETURN(QueryResult result,
                           ProvQueryBuilder(engine)
                               .At(node)
                               .Of(tuple)
                               .WithScope(QueryScope::kDistributed)
                               .Run());
  TracebackReport report;
  report.query_bytes = result.stats.bytes;
  report.query_messages = result.stats.messages;
  report.origin_tuples = result.dag.Leaves();
  report.origin_nodes = result.dag.OriginNodes();
  return report;
}

double TracebackRecall(const TracebackReport& report,
                       const std::set<NodeId>& truth) {
  if (truth.empty()) return 1.0;
  size_t hit = 0;
  for (NodeId n : truth) {
    if (report.origin_nodes.count(n)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

Result<std::map<NodeId, size_t>> RandomMoonwalk(Engine& engine, NodeId node,
                                                const Tuple& tuple,
                                                size_t walks, Rng& rng) {
  std::map<NodeId, size_t> histogram;
  TupleDigest root = DigestOf(tuple);

  auto records_of = [&engine](NodeId n, TupleDigest digest)
      -> std::vector<ProvRecord> {
    const std::vector<ProvRecord>* online =
        engine.node(n).online_store().Lookup(digest);
    if (online != nullptr) return *online;
    return engine.node(n).offline_store().FindByDigest(digest);
  };

  if (records_of(node, root).empty()) {
    return NotFoundError("no provenance recorded for " + tuple.ToString());
  }

  for (size_t w = 0; w < walks; ++w) {
    NodeId at = node;
    TupleDigest digest = root;
    // Bounded walk (cycles in pointer graphs are cut by the step limit).
    for (int step = 0; step < 256; ++step) {
      std::vector<ProvRecord> records = records_of(at, digest);
      if (records.empty()) break;
      const ProvRecord& rec = records[rng.NextBelow(records.size())];
      if (rec.children.empty()) break;  // base record: an origin
      const ProvChildRef& ref =
          rec.children[rng.NextBelow(rec.children.size())];
      if (ref.is_base) {
        at = ref.node;
        break;
      }
      at = ref.node;
      digest = ref.digest;
    }
    ++histogram[at];
  }
  return histogram;
}

DigestTraceback::DigestTraceback(Engine& engine, double window_seconds,
                                 size_t bits, int hashes) {
  stores_.reserve(engine.num_nodes());
  for (NodeId n = 0; n < engine.num_nodes(); ++n) {
    stores_.emplace_back(window_seconds, bits, hashes, /*max_windows=*/0);
    // Ingest everything the node archived, in creation order.
    const OfflineProvStore& offline = engine.node(n).offline_store();
    for (const ProvRecord& rec : offline.FindInWindow(0.0, 1e18)) {
      stores_.back().Record(DigestOf(rec.tuple), rec.created_at);
    }
  }
}

std::vector<NodeId> DigestTraceback::NodesThatMaySawTuple(const Tuple& tuple,
                                                          double from,
                                                          double to) const {
  std::vector<NodeId> out;
  TupleDigest digest = DigestOf(tuple);
  for (NodeId n = 0; n < stores_.size(); ++n) {
    if (stores_[n].MayContain(digest, from, to)) out.push_back(n);
  }
  return out;
}

size_t DigestTraceback::TotalBytes() const {
  size_t total = 0;
  for (const ProvDigestStore& store : stores_) total += store.TotalBytes();
  return total;
}

}  // namespace provnet
