// Real-time diagnostics (Section 3): a continuous monitoring query that
// counts changes to routing-table entries over a sliding window, raises an
// alarm above a threshold ("an indication of possible divergence"), and
// drills into the provenance of the flapping entry to locate the source.
#ifndef PROVNET_APPS_DIAGNOSTICS_H_
#define PROVNET_APPS_DIAGNOSTICS_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"

namespace provnet {

struct FlapAlarm {
  NodeId node = 0;
  Tuple tuple;          // the most recent value of the flapping entry
  size_t changes = 0;   // changes within the window when the alarm fired
  double fired_at = 0.0;
};

// Sliding-window change counter over one predicate's entries, keyed by the
// given key columns (e.g. bestPath keyed by (src, dst)). Attach to an
// Engine before Run(); alarms accumulate for later inspection.
class RouteFlapMonitor {
 public:
  // Counts kReplaced transitions of `predicate` per key over the last
  // `window_seconds` of virtual time; fires when a key exceeds `threshold`
  // changes. Re-fires only after the count falls below threshold again.
  RouteFlapMonitor(Engine* engine, std::string predicate,
                   std::vector<int> key_columns, double window_seconds,
                   size_t threshold);

  const std::vector<FlapAlarm>& alarms() const { return alarms_; }
  size_t total_changes() const { return total_changes_; }

  // Root-cause drill-down for an alarm: reconstructs the distributed
  // provenance of the flapping tuple and returns the principals asserting
  // its leaves (candidate sources of the instability).
  Result<std::vector<Principal>> SuspectPrincipals(const FlapAlarm& alarm);

 private:
  void OnUpdate(NodeId node, const Tuple& tuple, InsertOutcome outcome,
                double now);
  uint64_t KeyOf(NodeId node, const Tuple& tuple) const;

  Engine* engine_;
  std::string predicate_;
  std::vector<int> key_columns_;
  double window_;
  size_t threshold_;
  std::map<uint64_t, std::deque<double>> history_;
  std::map<uint64_t, bool> alarmed_;
  std::vector<FlapAlarm> alarms_;
  size_t total_changes_ = 0;
};

}  // namespace provnet

#endif  // PROVNET_APPS_DIAGNOSTICS_H_
