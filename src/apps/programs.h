// The paper's NDlog / SeNDlog programs as built-in sources.
#ifndef PROVNET_APPS_PROGRAMS_H_
#define PROVNET_APPS_PROGRAMS_H_

#include <string>

namespace provnet {

// Section 2.1: all-pairs reachability (NDlog, arity-2 links).
//   r1 reachable(@S,D) :- link(@S,D).
//   r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
const std::string& ReachableNdlogProgram();

// Section 2.2: the SeNDlog variant with says-authenticated imports.
//   At S:
//   s1 reachable(S,D) :- link(S,D).
//   s2 linkD(D,S)@D :- link(S,D).
//   s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
const std::string& ReachableSendlogProgram();

// Section 6's Best-Path query (NDlog): all-pairs shortest paths with path
// vectors, MIN-cost aggregation, and cycle avoidance. Links carry costs:
// link(@S,D,C).
const std::string& BestPathNdlogProgram();

// The SeNDlog Best-Path used by the SeNDLog / SeNDLogProv variants: same
// computation, bodies localized in the "At S" context, imports via says.
const std::string& BestPathSendlogProgram();

}  // namespace provnet

#endif  // PROVNET_APPS_PROGRAMS_H_
