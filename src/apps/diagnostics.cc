#include "apps/diagnostics.h"

#include <set>

#include "query/provquery.h"
#include "util/hash.h"

namespace provnet {

RouteFlapMonitor::RouteFlapMonitor(Engine* engine, std::string predicate,
                                   std::vector<int> key_columns,
                                   double window_seconds, size_t threshold)
    : engine_(engine),
      predicate_(std::move(predicate)),
      key_columns_(std::move(key_columns)),
      window_(window_seconds),
      threshold_(threshold) {
  engine_->SetUpdateObserver(
      [this](NodeId node, const Tuple& tuple, InsertOutcome outcome,
             double now) { OnUpdate(node, tuple, outcome, now); });
}

uint64_t RouteFlapMonitor::KeyOf(NodeId node, const Tuple& tuple) const {
  uint64_t h = Mix64(node);
  for (int col : key_columns_) {
    if (static_cast<size_t>(col) < tuple.arity()) {
      h = HashCombine(h, tuple.arg(static_cast<size_t>(col)).Hash());
    }
  }
  return h;
}

void RouteFlapMonitor::OnUpdate(NodeId node, const Tuple& tuple,
                                InsertOutcome outcome, double now) {
  if (tuple.predicate() != predicate_) return;
  if (outcome != InsertOutcome::kReplaced) return;  // only value changes
  ++total_changes_;

  uint64_t key = KeyOf(node, tuple);
  std::deque<double>& times = history_[key];
  times.push_back(now);
  while (!times.empty() && times.front() < now - window_) times.pop_front();

  bool& alarmed = alarmed_[key];
  if (times.size() > threshold_) {
    if (!alarmed) {
      alarmed = true;
      FlapAlarm alarm;
      alarm.node = node;
      alarm.tuple = tuple;
      alarm.changes = times.size();
      alarm.fired_at = now;
      alarms_.push_back(std::move(alarm));
    }
  } else {
    alarmed = false;
  }
}

Result<std::vector<Principal>> RouteFlapMonitor::SuspectPrincipals(
    const FlapAlarm& alarm) {
  PROVNET_ASSIGN_OR_RETURN(QueryResult result,
                           ProvQueryBuilder(*engine_)
                               .At(alarm.node)
                               .Of(alarm.tuple)
                               .WithScope(QueryScope::kDistributed)
                               .Run());
  // Leaf assertions are the base inputs whose churn explains the flap.
  std::set<Principal> principals = result.dag.LeafPrincipals();
  return std::vector<Principal>(principals.begin(), principals.end());
}

}  // namespace provnet
