#include "apps/packets.h"

#include <functional>

#include "apps/forensics.h"
#include "apps/programs.h"
#include "query/provquery.h"

namespace provnet {

const std::string& PacketRoutingSendlogProgram() {
  static const std::string* kSource = new std::string(
      BestPathSendlogProgram() + R"(
    // Forwarding plane: move packets one best-path hop at a time. The
    // claimed source Src is ordinary payload — nothing checks it.
    At S:
    f2 packet(N,Src,D,Pay)@N :- packet(S,Src,D,Pay), S != D,
                                bestPath(S,D,PathV,C),
                                N := f_second(PathV).
    f3 delivered(S,Src,Pay) :- packet(S,Src,D,Pay), S == D.
  )");
  return *kSource;
}

Status InjectPacket(Engine& engine, const PacketInjection& injection) {
  Tuple packet("packet",
               {Value::Address(injection.at),
                Value::Address(injection.claimed_src),
                Value::Address(injection.dst), Value::Int(injection.payload)});
  PROVNET_RETURN_IF_ERROR(engine.InsertFact(injection.at, packet));
  PROVNET_ASSIGN_OR_RETURN(RunStats stats, engine.Run());
  (void)stats;
  return OkStatus();
}

Tuple DeliveredTuple(const PacketInjection& injection) {
  return Tuple("delivered",
               {Value::Address(injection.dst),
                Value::Address(injection.claimed_src),
                Value::Int(injection.payload)});
}

Result<SpoofVerdict> TracePacketOrigin(Engine& engine,
                                       const PacketInjection& injection) {
  Tuple delivered = DeliveredTuple(injection);
  PROVNET_ASSIGN_OR_RETURN(QueryResult result,
                           ProvQueryBuilder(engine)
                               .At(injection.dst)
                               .Of(delivered)
                               .WithScope(QueryScope::kDistributed)
                               .Run());

  SpoofVerdict verdict;
  verdict.claimed_src = injection.claimed_src;

  // The true origin is the location of the base "packet" fact at the
  // provenance leaves; the forwarding path is every node whose records the
  // reconstruction traversed (on packet-chain tuples only).
  bool found_origin = false;
  for (const ProofNode& n : result.dag.nodes) {
    const std::string& pred = n.tuple.predicate();
    if (pred != "packet" && pred != "delivered") continue;
    verdict.forwarding_path.insert(n.location);
    if (n.children.empty() && n.rule == kBaseRule) {
      verdict.true_origin = n.location;
      found_origin = true;
    }
  }

  if (!found_origin) {
    return NotFoundError(
        "packet provenance has no base injection record (sampled out or "
        "expired?)");
  }
  verdict.spoofed = verdict.true_origin != verdict.claimed_src;
  return verdict;
}

}  // namespace provnet
