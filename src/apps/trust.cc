#include "apps/trust.h"

namespace provnet {

void TrustPolicy::TrustPrincipal(const Principal& principal) {
  trusted_.insert(principal);
}

void TrustPolicy::DistrustPrincipal(const Principal& principal) {
  trusted_.erase(principal);
}

bool TrustPolicy::AcceptsCondensed(const CondensedProv& prov) const {
  std::vector<ProvVar> trusted_vars;
  for (const Principal& p : trusted_) {
    std::optional<ProvVar> v = engine_->registry().Find(p);
    if (v.has_value()) trusted_vars.push_back(*v);
  }
  return prov.SatisfiedBy(trusted_vars);
}

Result<bool> TrustPolicy::AcceptsTuple(NodeId node, const Tuple& tuple) const {
  PROVNET_ASSIGN_OR_RETURN(CondensedProv prov,
                           engine_->CondensedOf(node, tuple));
  return AcceptsCondensed(prov);
}

void TrustPolicy::SetSecurityLevel(const Principal& principal,
                                   int64_t level) {
  levels_[principal] = level;
}

Result<int64_t> TrustPolicy::TrustLevelOfTuple(NodeId node,
                                               const Tuple& tuple,
                                               int64_t default_level) const {
  PROVNET_ASSIGN_OR_RETURN(ProvExpr prov, engine_->AnnotationOf(node, tuple));
  std::unordered_map<ProvVar, int64_t> assignment;
  for (const auto& [principal, level] : levels_) {
    std::optional<ProvVar> v = engine_->registry().Find(principal);
    if (v.has_value()) assignment[*v] = level;
  }
  return TrustLevelOf(prov, assignment, default_level);
}

Result<bool> TrustPolicy::AcceptsByVote(NodeId node, const Tuple& tuple,
                                        size_t k) const {
  PROVNET_ASSIGN_OR_RETURN(CondensedProv prov,
                           engine_->CondensedOf(node, tuple));
  return prov.VoteCount() >= k;
}

Result<TrustPolicy::FilterResult> TrustPolicy::FilterTable(
    NodeId node, const std::string& pred) const {
  FilterResult result;
  for (const Tuple& tuple : engine_->TuplesAt(node, pred)) {
    PROVNET_ASSIGN_OR_RETURN(bool ok, AcceptsTuple(node, tuple));
    if (ok) {
      result.accepted.push_back(tuple);
    } else {
      result.rejected.push_back(tuple);
    }
  }
  return result;
}

}  // namespace provnet
