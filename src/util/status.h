// Error handling primitives for provnet.
//
// The library does not use exceptions (Google style). Fallible operations
// return Status, or Result<T> when they produce a value. Usage:
//
//   Result<BigInt> r = BigInt::FromDecimal(text);
//   if (!r.ok()) return r.status();
//   BigInt value = std::move(r).value();
//
// The PROVNET_RETURN_IF_ERROR / PROVNET_ASSIGN_OR_RETURN macros remove the
// boilerplate inside the library.
#ifndef PROVNET_UTIL_STATUS_H_
#define PROVNET_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace provnet {

// Canonical error space, deliberately small.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnauthenticated,   // says-verification failures
  kPermissionDenied,  // trust-policy rejections
  kResourceExhausted,
  kDeadlineExceeded,
};

// Human-readable name ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// Value-semantic status: a code plus an optional message. The OK status
// carries no message and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors mirroring absl.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnauthenticatedError(std::string message);
Status PermissionDeniedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);

// Result<T> is a Status or a T. Accessing value() on an error aborts, so
// callers must check ok() first (or use PROVNET_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(const T& value) : value_(value) {}
  Result(T&& value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    CheckNotOkOnConstruction();
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckNotOkOnConstruction();
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Centralized abort so Result<T> stays header-light.
[[noreturn]] void DieBecauseResultError(const Status& status);
[[noreturn]] void DieBecauseOkResultFromStatus();
}  // namespace internal

template <typename T>
void Result<T>::CheckNotOkOnConstruction() {
  if (status_.ok()) internal::DieBecauseOkResultFromStatus();
}

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieBecauseResultError(status_);
}

}  // namespace provnet

// Evaluates `expr` (a Status); returns it from the enclosing function if not
// OK.
#define PROVNET_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::provnet::Status provnet_status_tmp_ = (expr);    \
    if (!provnet_status_tmp_.ok()) {                   \
      return provnet_status_tmp_;                      \
    }                                                  \
  } while (false)

#define PROVNET_STATUS_CONCAT_INNER_(x, y) x##y
#define PROVNET_STATUS_CONCAT_(x, y) PROVNET_STATUS_CONCAT_INNER_(x, y)

// Evaluates `expr` (a Result<T>); on error returns the status, otherwise
// move-assigns the value into `lhs` (which may be a declaration).
#define PROVNET_ASSIGN_OR_RETURN(lhs, expr)                          \
  PROVNET_ASSIGN_OR_RETURN_IMPL_(                                    \
      PROVNET_STATUS_CONCAT_(provnet_result_, __LINE__), lhs, expr)

#define PROVNET_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

#endif  // PROVNET_UTIL_STATUS_H_
