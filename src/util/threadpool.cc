#include "util/threadpool.h"

namespace provnet {

ThreadPool::ThreadPool(size_t threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (size_t i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Run(size_t n,
                     const std::function<void(size_t, size_t)>& task) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) task(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    task_count_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  cv_work_.notify_all();
  // The caller is lane 0 and claims indexes alongside the workers.
  for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    task(i, 0);
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return active_ == 0; });
  task_ = nullptr;
  task_count_ = 0;
}

void ThreadPool::WorkerLoop(size_t thread_index) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* task = task_;
    const size_t n = task_count_;
    lock.unlock();
    for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      (*task)(i, thread_index);
    }
    lock.lock();
    if (--active_ == 0) cv_done_.notify_all();
  }
}

}  // namespace provnet
