#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace provnet {

std::vector<std::string> StrSplit(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrTrim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace provnet
