// Minimal persistent worker pool for the sharded parallel executor.
//
// One pool per Engine, created lazily on the first parallel fixpoint epoch.
// `Run(n, task)` executes task(index, thread) for every index in [0, n),
// spreading indexes across the pool's worker threads *and* the calling
// thread via an atomic claim counter, then returns once all n indexes have
// completed (a full barrier). `thread` identifies the executing lane
// (0 = the caller, 1..threads-1 = pool workers) so callers can hand each
// lane its own scratch state without locking.
//
// The pool itself is deliberately dumb: no futures, no task queue, no
// stealing. The engine's epoch structure (run shards to quiescence, commit
// effects in canonical order) provides all the ordering; the pool only
// provides the parallelism and the barrier.
#ifndef PROVNET_UTIL_THREADPOOL_H_
#define PROVNET_UTIL_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace provnet {

class ThreadPool {
 public:
  // `threads` counts the calling thread: ThreadPool(4) spawns 3 workers.
  // Values < 1 are clamped to 1 (no workers; Run degenerates to a loop).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t threads() const { return threads_; }

  // Runs task(index, thread) for every index in [0, n); returns after all
  // have completed. Indexes are claimed dynamically (load-balanced); the
  // mapping of index to thread is therefore NOT deterministic — callers
  // must not bake ordering assumptions into it. Not reentrant.
  void Run(size_t n, const std::function<void(size_t, size_t)>& task);

 private:
  void WorkerLoop(size_t thread_index);

  size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(size_t, size_t)>* task_ = nullptr;  // guarded by mu_
  size_t task_count_ = 0;                                      // guarded by mu_
  std::atomic<size_t> next_{0};
  size_t active_ = 0;        // workers still inside the current batch
  uint64_t generation_ = 0;  // bumped per Run() to wake workers exactly once
  bool stop_ = false;
};

}  // namespace provnet

#endif  // PROVNET_UTIL_THREADPOOL_H_
