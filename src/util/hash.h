// Non-cryptographic hashing (FNV-1a) and hash combining. Cryptographic
// digests live in crypto/sha256.h.
#ifndef PROVNET_UTIL_HASH_H_
#define PROVNET_UTIL_HASH_H_

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace provnet {

// 64-bit FNV-1a over an arbitrary byte range.
uint64_t Fnv1a64(const uint8_t* data, size_t len);
uint64_t Fnv1a64(const std::string& s);
uint64_t Fnv1a64(const Bytes& b);

// Boost-style combiner for building composite hashes.
uint64_t HashCombine(uint64_t seed, uint64_t value);

// Mixes a 64-bit value (splitmix64 finalizer); good avalanche for table
// bucketing of sequential ids.
uint64_t Mix64(uint64_t x);

}  // namespace provnet

#endif  // PROVNET_UTIL_HASH_H_
