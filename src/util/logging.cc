#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace provnet {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }

LogLevel MinLogLevel() { return g_min_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to shorten lines.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace provnet
