// Byte-level serialization used for every message on the simulated wire.
//
// Bandwidth in the Figure 4 reproduction is *defined* as the total number of
// bytes produced by ByteWriter for delivered messages, so this module is the
// single source of truth for message sizes.
#ifndef PROVNET_UTIL_BYTES_H_
#define PROVNET_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace provnet {

using Bytes = std::vector<uint8_t>;

// Append-only encoder. Integers use little-endian fixed width; varints use
// LEB128; strings/blobs are length-prefixed with a varint.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);  // zigzag varint
  void PutVarint(uint64_t v);
  void PutDouble(double v);
  void PutString(const std::string& s);
  void PutBlob(const Bytes& b);
  void PutRaw(const uint8_t* data, size_t len);

  size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes Take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Sequential decoder over a borrowed buffer. All getters report malformed or
// truncated input via Status instead of crashing, since messages may arrive
// from untrusted peers.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : data_(buf.data()), len_(buf.size()) {}
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<uint64_t> GetVarint();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Bytes> GetBlob();

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

// Hex helpers (used by digests and test goldens).
std::string BytesToHex(const Bytes& bytes);
Result<Bytes> HexToBytes(const std::string& hex);

}  // namespace provnet

#endif  // PROVNET_UTIL_BYTES_H_
