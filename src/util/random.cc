#include "util/random.h"

#include "util/hash.h"
#include "util/logging.h"

namespace provnet {
namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // splitmix64 expansion of the seed, per the xoshiro authors'
  // recommendation; guarantees a nonzero state.
  uint64_t x = seed;
  for (int i = 0; i < 4; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    s_[i] = Mix64(x);
  }
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  uint64_t result = RotL(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  PROVNET_CHECK(bound > 0) << "NextBelow requires a positive bound";
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  PROVNET_CHECK(lo <= hi) << "NextInRange requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace provnet
