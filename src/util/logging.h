// Minimal leveled logging for provnet.
//
//   PROVNET_LOG(kInfo) << "fixpoint reached after " << rounds << " rounds";
//   PROVNET_CHECK(x > 0) << "x must be positive, got " << x;
//
// The default minimum level is kWarning so tests and benches stay quiet;
// call SetMinLogLevel(LogLevel::kDebug) to see everything.
#ifndef PROVNET_UTIL_LOGGING_H_
#define PROVNET_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace provnet {

enum class LogLevel : uint8_t { kDebug = 0, kInfo, kWarning, kError, kFatal };

const char* LogLevelName(LogLevel level);

// Sets / gets the process-wide minimum level that is actually emitted.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal {

// Accumulates one log line and flushes it (to stderr) on destruction.
// kFatal aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is below the minimum.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace provnet

#define PROVNET_LOG(severity)                                        \
  (::provnet::LogLevel::severity < ::provnet::MinLogLevel())         \
      ? void(0)                                                      \
      : ::provnet::internal::LogVoidify() &                          \
            ::provnet::internal::LogMessage(                         \
                ::provnet::LogLevel::severity, __FILE__, __LINE__)   \
                .stream()

#define PROVNET_CHECK(condition)                                     \
  (condition)                                                        \
      ? void(0)                                                      \
      : ::provnet::internal::LogVoidify() &                          \
            ::provnet::internal::LogMessage(::provnet::LogLevel::kFatal, \
                                            __FILE__, __LINE__)      \
                    .stream()                                        \
                << "Check failed: " #condition " "

namespace provnet::internal {
// Lets the macros above have type void regardless of streamed operands.
struct LogVoidify {
  void operator&(std::ostream&) {}
};
}  // namespace provnet::internal

#endif  // PROVNET_UTIL_LOGGING_H_
