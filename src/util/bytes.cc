#include "util/bytes.h"

#include <bit>
#include <cstring>

namespace provnet {

void ByteWriter::PutU8(uint8_t v) { buf_.push_back(v); }

void ByteWriter::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutI64(int64_t v) {
  // Zigzag encoding keeps small negative numbers short.
  uint64_t encoded =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint(encoded);
}

void ByteWriter::PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PutBlob(const Bytes& b) {
  PutVarint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::PutRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

Status ByteReader::Need(size_t n) const {
  if (len_ - pos_ < n) {
    return OutOfRangeError("truncated buffer: need " + std::to_string(n) +
                           " bytes, have " + std::to_string(len_ - pos_));
  }
  return OkStatus();
}

Result<uint8_t> ByteReader::GetU8() {
  PROVNET_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> ByteReader::GetU16() {
  PROVNET_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::GetU32() {
  PROVNET_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  PROVNET_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    PROVNET_RETURN_IF_ERROR(Need(1));
    uint8_t byte = data_[pos_++];
    if (shift >= 64) return InvalidArgumentError("varint too long");
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<int64_t> ByteReader::GetI64() {
  PROVNET_ASSIGN_OR_RETURN(uint64_t encoded, GetVarint());
  return static_cast<int64_t>((encoded >> 1) ^ (~(encoded & 1) + 1));
}

Result<double> ByteReader::GetDouble() {
  PROVNET_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  return std::bit_cast<double>(bits);
}

Result<std::string> ByteReader::GetString() {
  PROVNET_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  PROVNET_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<Bytes> ByteReader::GetBlob() {
  PROVNET_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  PROVNET_RETURN_IF_ERROR(Need(n));
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

std::string BytesToHex(const Bytes& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

Result<Bytes> HexToBytes(const std::string& hex) {
  if (hex.size() % 2 != 0) return InvalidArgumentError("odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return InvalidArgumentError("bad hex digit");
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace provnet
