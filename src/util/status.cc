#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace provnet {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnauthenticated:
      return "Unauthenticated";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnauthenticatedError(std::string message) {
  return Status(StatusCode::kUnauthenticated, std::move(message));
}
Status PermissionDeniedError(std::string message) {
  return Status(StatusCode::kPermissionDenied, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

namespace internal {

void DieBecauseResultError(const Status& status) {
  std::fprintf(stderr, "provnet: Result<T>::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieBecauseOkResultFromStatus() {
  std::fprintf(stderr,
               "provnet: Result<T> constructed from an OK status; use the "
               "value constructor instead\n");
  std::abort();
}

}  // namespace internal
}  // namespace provnet
