#include "util/hash.h"

namespace provnet {

uint64_t Fnv1a64(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Fnv1a64(const std::string& s) {
  return Fnv1a64(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

uint64_t Fnv1a64(const Bytes& b) { return Fnv1a64(b.data(), b.size()); }

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace provnet
