// Deterministic PRNG (xoshiro256**). Everything stochastic in provnet —
// topology generation, sampling, moonwalks, key generation candidates — draws
// from an explicitly seeded Rng so experiments are reproducible.
#ifndef PROVNET_UTIL_RANDOM_H_
#define PROVNET_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace provnet {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace provnet

#endif  // PROVNET_UTIL_RANDOM_H_
