// Small string helpers (split/join/trim/printf-style formatting).
#ifndef PROVNET_UTIL_STRINGS_H_
#define PROVNET_UTIL_STRINGS_H_

#include <string>
#include <vector>

namespace provnet {

// Splits on a single character; keeps empty pieces.
std::vector<std::string> StrSplit(const std::string& text, char sep);

// Joins with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

// Removes leading/trailing ASCII whitespace.
std::string StrTrim(const std::string& text);

bool StartsWith(const std::string& text, const std::string& prefix);
bool EndsWith(const std::string& text, const std::string& suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace provnet

#endif  // PROVNET_UTIL_STRINGS_H_
