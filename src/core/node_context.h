// Per-node runtime state: the tuple tables plus the node's provenance
// stores. One NodeContext corresponds to one P2 process in the paper's
// deployment.
#ifndef PROVNET_CORE_NODE_CONTEXT_H_
#define PROVNET_CORE_NODE_CONTEXT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "adversary/audit.h"
#include "core/plan.h"
#include "core/table.h"
#include "provenance/store.h"

namespace provnet {

class NodeContext {
 public:
  NodeContext(NodeId id, Principal principal, const Plan* plan)
      : id_(id), principal_(std::move(principal)), plan_(plan) {}

  NodeId id() const { return id_; }
  const Principal& principal() const { return principal_; }

  // Returns the table for `pred`, creating it from the plan's options on
  // first use.
  Table& TableFor(const std::string& pred);
  // Nullptr when the node never stored tuples of `pred`.
  const Table* FindTable(const std::string& pred) const;
  Table* FindTableMutable(const std::string& pred);

  OnlineProvStore& online_store() { return online_; }
  const OnlineProvStore& online_store() const { return online_; }
  OfflineProvStore& offline_store() { return offline_; }
  const OfflineProvStore& offline_store() const { return offline_; }

  // Total stored tuples across tables (diagnostics).
  size_t TupleCount() const;

  // All tables this node ever stored into (unspecified order). Used by
  // whole-state sweeps (principal revocation, diagnostics).
  std::vector<Table*> AllTables();

  // Drops expired tuples from every table; returns how many were dropped.
  // When `expired` is non-null, the dropped entries are appended to it so
  // the caller can fire deletion deltas for them.
  size_t ExpireTablesBefore(double now,
                            std::vector<StoredTuple>* expired = nullptr);

  // Content-idempotent refreshes for every table (current and future); see
  // Table::set_dedup_refresh. The engine turns this on with the reliable
  // transport so retransmitted advertisements stay byte-invisible.
  void SetDedupRefresh(bool on);

  // Fail-stop crash: drops everything this node kept in memory — tables,
  // online provenance, anti-replay windows, co-asserter notes. The offline
  // archive facade is re-bound to a fresh memory-resident store; a restart
  // re-opens the durable archive_dir log (whose unflushed tail is exactly
  // what the crash tore off). Engine::CrashNode drives this.
  void ResetForCrash();

  // --- Receive-side verification state (src/adversary/) --------------------
  // Anti-replay window for authenticated messages from `sender`.
  ReplayGuard& ReplayGuardFor(const Principal& sender) {
    return replay_guards_[sender];
  }

  // Records that `principal` also asserted the tuple with `digest` (a
  // refresh under a different principal than the stored copy's). Retraction
  // authorization consults this: any principal that contributed an
  // assertion of a tuple may retract it. Entries are retained after the
  // tuple is removed — "once an asserter" is the durable fact retraction
  // authority rests on.
  void NoteCoAsserter(uint64_t digest, const Principal& principal);
  bool IsCoAsserter(uint64_t digest, const Principal& principal) const;

 private:
  NodeId id_;
  Principal principal_;
  const Plan* plan_;
  bool dedup_refresh_ = false;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  OnlineProvStore online_;
  OfflineProvStore offline_;
  std::unordered_map<Principal, ReplayGuard> replay_guards_;
  std::unordered_map<uint64_t, std::vector<Principal>> co_asserters_;
};

}  // namespace provnet

#endif  // PROVNET_CORE_NODE_CONTEXT_H_
