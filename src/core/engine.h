// The provenance-aware secure declarative networking engine — the system the
// paper builds by extending P2 (Section 6: "We modified the P2 declarative
// networking system to support the SeNDlog query language, ... signed with
// RSA signatures. We further modify various relational operators
// (particularly joins) to support provenance.")
//
// One Engine runs a whole simulated deployment: it analyzes/localizes the
// program, instantiates a NodeContext per simulated node, and executes the
// distributed dataflow over the byte-metered Network until the distributed
// fixpoint. Three orthogonal switches reproduce the evaluation's variants:
//
//   authenticate=false, prov=kNone       -> "NDLog"
//   authenticate=true,  prov=kNone       -> "SeNDLog"
//   authenticate=true,  prov=kCondensed  -> "SeNDLogProv"
//
// plus the taxonomy modes of Section 4: kFull (local provenance piggybacks
// entire derivation trees), kPointers (distributed provenance: per-hop
// pointers, reconstructed on demand with QueryDistributedProvenance).
#ifndef PROVNET_CORE_ENGINE_H_
#define PROVNET_CORE_ENGINE_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/eval.h"
#include "core/node_context.h"
#include "core/plan.h"
#include "crypto/authenticator.h"
#include "datalog/parser.h"
#include "net/network.h"
#include "net/topology.h"
#include "provenance/condense.h"
#include "provenance/prov_expr.h"
#include "util/status.h"

namespace provnet {

enum class ProvMode : uint8_t {
  kNone = 0,       // no provenance (NDLog / SeNDLog baselines)
  kCondensed = 1,  // BDD-condensed annotations piggybacked (SeNDLogProv)
  kFull = 2,       // entire derivation tree piggybacked (local provenance)
  kPointers = 3,   // per-hop pointers only (distributed provenance)
};

const char* ProvModeName(ProvMode mode);

enum class ProvGrain : uint8_t {
  kPrincipal = 0,  // one variable per asserting principal (paper's figures)
  kTuple = 1,      // one variable per base tuple (classic semiring lineage)
};

struct EngineOptions {
  // --- says / authentication (Section 2.2, 4.3) ---
  bool authenticate = false;
  SaysLevel says_level = SaysLevel::kRsa;
  bool verify_incoming = true;  // receivers check tags (drop on failure)
  size_t rsa_bits = 256;

  // --- provenance (Section 4) ---
  ProvMode prov_mode = ProvMode::kNone;
  ProvGrain prov_grain = ProvGrain::kPrincipal;
  bool record_online = false;   // populate OnlineProvStore
  bool record_offline = false;  // populate OfflineProvStore
  bool recording_enabled = true;  // false = reactive mode (Section 5)
  uint32_t sample_k = 1;          // 1-in-k provenance sampling (Section 5)
  // Local annotations are re-condensed when they outgrow this node count.
  size_t condense_threshold = 64;

  // --- execution ---
  uint64_t seed = 1;
  double default_ttl = -1.0;  // table TTL unless materialize says otherwise
  double link_latency = 0.01;
  uint64_t max_steps = 100000000;  // safety valve (events + deliveries)
  // Principal names per node; defaults to "n0", "n1", ...
  std::vector<std::string> node_names;
};

struct RunStats {
  double wall_seconds = 0.0;  // Figure 3's metric
  double sim_seconds = 0.0;
  uint64_t deliveries = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;  // Figure 4's metric
  uint64_t tuple_bytes = 0;
  uint64_t auth_bytes = 0;
  uint64_t prov_bytes = 0;
  uint64_t events = 0;
  uint64_t derivations = 0;
  uint64_t signs = 0;
  uint64_t verifies = 0;
  uint64_t auth_failures = 0;

  std::string ToString() const;
};

class Engine {
 public:
  // `source` is NDlog or SeNDlog program text.
  static Result<std::unique_ptr<Engine>> Create(const Topology& topo,
                                                const std::string& source,
                                                EngineOptions options);
  static Result<std::unique_ptr<Engine>> Create(const Topology& topo,
                                                Program program,
                                                EngineOptions options);

  // Inserts the topology's link facts: link(@S, D, C). Called by Create;
  // exposed for tests building custom initial states.
  Status InsertLinkFacts();

  // Inserts an external base fact at `node` (enqueues a local event).
  Status InsertFact(NodeId node, const Tuple& tuple, double ttl = -1.0);

  // Processes events and messages to the distributed fixpoint.
  Result<RunStats> Run();

  // --- Inspection -----------------------------------------------------------
  size_t num_nodes() const { return contexts_.size(); }
  NodeContext& node(NodeId id) { return *contexts_[id]; }
  const NodeContext& node(NodeId id) const { return *contexts_[id]; }
  Network& network() { return net_; }
  Authenticator& authenticator() { return auth_; }
  ProvVarRegistry& registry() { return registry_; }
  const EngineOptions& options() const { return options_; }
  const Plan& plan() const { return plan_; }

  // Sorted tuples of `pred` stored at `node`.
  std::vector<Tuple> TuplesAt(NodeId node, const std::string& pred) const;

  Principal PrincipalOf(NodeId id) const;
  Result<NodeId> NodeOf(const Principal& principal) const;
  std::string VarName(ProvVar v) const { return registry_.NameOf(v); }

  // --- Provenance queries ---------------------------------------------------
  // Semiring annotation of a stored tuple.
  Result<ProvExpr> AnnotationOf(NodeId node, const Tuple& tuple) const;
  // Condensed annotation (<a + a*b> -> <a>).
  Result<CondensedProv> CondensedOf(NodeId node, const Tuple& tuple) const;
  // Full local derivation tree (ProvMode::kFull).
  Result<DerivationPtr> LocalDerivationOf(NodeId node,
                                          const Tuple& tuple) const;
  // Distributed reconstruction over the network (ProvMode::kPointers; also
  // works in other modes when record_online is on). Issues ProvReq/ProvResp
  // messages whose bytes are charged to the bandwidth meters.
  Result<DerivationPtr> QueryDistributedProvenance(NodeId node,
                                                   const Tuple& tuple);

  // Reactive provenance control (Section 5).
  void SetRecordingEnabled(bool enabled) {
    options_.recording_enabled = enabled;
  }

  // Observer invoked on every materialized tuple change (new/replaced/
  // refreshed). Drives the continuous monitoring queries of apps/diagnostics.
  using UpdateObserver =
      std::function<void(NodeId, const Tuple&, InsertOutcome, double now)>;
  void SetUpdateObserver(UpdateObserver observer) {
    observer_ = std::move(observer);
  }

  // Soft-state maintenance: expire tuples/provenance older than network time.
  void ExpireNow();

 private:
  Engine(const Topology& topo, EngineOptions options);

  Status Init(Program program);

  struct PendingEvent {
    NodeId node;
    Tuple tuple;
  };

  ProvExpr BaseAnnotation(const Principal& principal, const Tuple& tuple);

  Status ProcessEvent(const PendingEvent& event);
  Status FireStrand(NodeId node_id, const CompiledRule& cr, int delta_index,
                    const StoredTuple& delta_entry);
  Status JoinFrom(NodeId node_id, const CompiledRule& cr, size_t literal_pos,
                  int delta_index, Env& env,
                  std::vector<const StoredTuple*>& used);
  Status EmitHead(NodeId node_id, const CompiledRule& cr, const Env& env,
                  const std::vector<const StoredTuple*>& used);
  // Stores a tuple locally; enqueues a delta event when it changed state.
  Status DeliverLocal(NodeId node_id, StoredTuple entry,
                      const std::vector<const StoredTuple*>* used,
                      const std::string& rule_label);
  Status SendTuple(NodeId from, NodeId to, const Tuple& tuple,
                   const ProvExpr& prov, const DerivationPtr& deriv);
  bool SaysMatches(const Term& says, const StoredTuple& entry, Env& env) const;

  void MaybeRecordProvenance(NodeId node_id, const Tuple& tuple,
                             const std::string& rule, TupleOrigin origin,
                             NodeId from_node, const Principal& asserted_by,
                             const std::vector<const StoredTuple*>* used,
                             double expires_at);

  Status HandleMessage(NodeId to, NodeId from, const Bytes& payload);
  Status HandleTupleMessage(NodeId to, NodeId from, ByteReader& reader);
  Status HandleProvRequest(NodeId to, NodeId from, ByteReader& reader);
  Status HandleProvResponse(NodeId to, NodeId from, ByteReader& reader);

  Topology topo_;
  EngineOptions options_;
  Network net_;
  KeyStore keystore_;
  Authenticator auth_;
  ProvVarRegistry registry_;
  Plan plan_;
  std::vector<std::unique_ptr<NodeContext>> contexts_;
  std::deque<PendingEvent> events_;
  RunStats stats_;
  Status async_error_;  // first error raised inside a network handler
  UpdateObserver observer_;

  // Distributed provenance query state.
  struct ProvQueryState {
    std::map<std::pair<NodeId, TupleDigest>, std::vector<ProvRecord>>
        collected;
    std::set<std::pair<NodeId, TupleDigest>> requested;
    size_t outstanding = 0;
  };
  std::unique_ptr<ProvQueryState> prov_query_;
  uint64_t next_query_id_ = 1;
};

}  // namespace provnet

#endif  // PROVNET_CORE_ENGINE_H_
