// The provenance-aware secure declarative networking engine — the system the
// paper builds by extending P2 (Section 6: "We modified the P2 declarative
// networking system to support the SeNDlog query language, ... signed with
// RSA signatures. We further modify various relational operators
// (particularly joins) to support provenance.")
//
// One Engine runs a whole simulated deployment: it analyzes/localizes the
// program, instantiates a NodeContext per simulated node, and executes the
// distributed dataflow over the byte-metered Network until the distributed
// fixpoint. Three orthogonal switches reproduce the evaluation's variants:
//
//   authenticate=false, prov=kNone       -> "NDLog"
//   authenticate=true,  prov=kNone       -> "SeNDLog"
//   authenticate=true,  prov=kCondensed  -> "SeNDLogProv"
//
// plus the taxonomy modes of Section 4: kFull (local provenance piggybacks
// entire derivation trees), kPointers (distributed provenance: per-hop
// pointers, reconstructed on demand through the ProvQuery API of
// src/query/).
#ifndef PROVNET_CORE_ENGINE_H_
#define PROVNET_CORE_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "adversary/audit.h"
#include "core/causal.h"
#include "core/eval.h"
#include "core/node_context.h"
#include "core/plan.h"
#include "crypto/authenticator.h"
#include "datalog/parser.h"
#include "net/network.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "provenance/condense.h"
#include "provenance/prov_expr.h"
#include "util/status.h"

namespace provnet {

class ThreadPool;  // util/threadpool.h

namespace store {
class ProvArena;  // store/arena.h
}  // namespace store

enum class ProvMode : uint8_t {
  kNone = 0,       // no provenance (NDLog / SeNDLog baselines)
  kCondensed = 1,  // BDD-condensed annotations piggybacked (SeNDLogProv)
  kFull = 2,       // entire derivation tree piggybacked (local provenance)
  kPointers = 3,   // per-hop pointers only (distributed provenance)
};

const char* ProvModeName(ProvMode mode);

// Wire message tags, shared by every protocol handler (core/engine.cc,
// query/wire.cc, dynamics/delta.cc) so senders and the dispatcher can
// never disagree.
inline constexpr uint8_t kMsgTuple = 1;
inline constexpr uint8_t kMsgProvRequest = 2;
inline constexpr uint8_t kMsgProvResponse = 3;
inline constexpr uint8_t kMsgRetract = 4;

// Provenance payload kinds inside tuple messages. In the header (not
// engine.cc) because the fault-injection layer (src/adversary/) crafts
// wire-faithful forged messages and must agree on the format.
inline constexpr uint8_t kProvPayloadNone = 0;
inline constexpr uint8_t kProvPayloadCubes = 1;
inline constexpr uint8_t kProvPayloadTree = 2;

enum class ProvGrain : uint8_t {
  kPrincipal = 0,  // one variable per asserting principal (paper's figures)
  kTuple = 1,      // one variable per base tuple (classic semiring lineage)
};

struct EngineOptions {
  // --- says / authentication (Section 2.2, 4.3) ---
  bool authenticate = false;
  SaysLevel says_level = SaysLevel::kRsa;
  bool verify_incoming = true;  // receivers check tags (drop on failure)
  size_t rsa_bits = 256;

  // --- receive-side verification pipeline (src/adversary/) ---
  // With authentication on, every kMsgTuple/kMsgRetract carries a signed
  // (sequence, destination) header: the destination check defeats
  // cross-receiver replay, the per-sender ReplayGuard defeats re-sent
  // messages. Off => the header is still sent/parsed but not enforced (for
  // measuring enforcement overhead in isolation).
  bool replay_protection = true;
  // Principals with an operator capability: allowed to retract tuples they
  // did not assert (the "network operator" of Section 4.2's compromise
  // response). Everyone else may only retract their own assertions.
  std::vector<Principal> operators;

  // --- provenance (Section 4) ---
  ProvMode prov_mode = ProvMode::kNone;
  ProvGrain prov_grain = ProvGrain::kPrincipal;
  bool record_online = false;   // populate OnlineProvStore
  bool record_offline = false;  // populate OfflineProvStore
  bool recording_enabled = true;  // false = reactive mode (Section 5)
  uint32_t sample_k = 1;          // 1-in-k provenance sampling (Section 5)
  // Local annotations are re-condensed when they outgrow this node count.
  size_t condense_threshold = 64;

  // --- durable provenance store (src/store/) ---
  // Non-empty: each node's offline archive lives on disk at
  // <archive_dir>/node<i>.prov (append-only paged log; reopening an engine
  // over the same directory replays the log, so archives — and the
  // distributed ProvQuery offline fallback — survive process restarts).
  // Empty: archives are memory-resident page images in the same format.
  std::string archive_dir;
  size_t archive_page_bytes = 4096;  // archive page size
  size_t archive_cache_pages = 64;   // decoded-page LRU capacity per node

  // --- fault tolerance (src/net/faults.*) ---
  // A non-empty plan arms the deterministic fault injector and (because
  // lossy links are useless without it) the reliable transport. Scripted
  // crash/restart events are driven by Run() on the virtual clock. The
  // PROVNET_FAULT_PLAN environment variable ("loss=0.01,seed=7") installs
  // a uniform plan when this is left empty.
  FaultPlan fault_plan;
  // Ack/retransmit framing even without a fault plan (loss-free reliable
  // delivery costs only the frame bytes). Off and with an empty plan, the
  // wire format, meters, and telemetry key set are byte-identical to the
  // lossless FIFO.
  bool reliable_transport = false;
  TransportOptions transport;
  // Distributed ProvQuery per-hop timeout, in virtual seconds. <= 0 picks
  // a default when the transport is on (10 x rto_initial) and disables
  // timeouts otherwise (the lossless network always answers).
  double query_hop_timeout = 0.0;
  size_t query_max_attempts = 3;  // request transmissions before giving up

  // --- execution ---
  uint64_t seed = 1;
  double default_ttl = -1.0;  // table TTL unless materialize says otherwise
  double link_latency = 0.01;
  uint64_t max_steps = 100000000;  // safety valve (events + deliveries)
  // Worker lanes for the sharded parallel executor (src/core/parallel.cc).
  // 1 = today's single-threaded loop, bit-for-bit. 0 = hardware
  // concurrency. >1 shards event cascades and delivery waves across a
  // worker pool; buffered side effects commit in canonical (time, seq)
  // order at epoch barriers, so fixpoints, derivation counts, and telemetry
  // snapshots are byte-identical at every thread count. When left at the
  // default 1, the PROVNET_THREADS environment variable overrides it (CI
  // runs the whole suite parallel that way).
  size_t threads = 1;
  // Principal names per node; defaults to "n0", "n1", ...
  std::vector<std::string> node_names;
};

struct RunStats {
  double wall_seconds = 0.0;  // Figure 3's metric
  double sim_seconds = 0.0;
  uint64_t deliveries = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;  // Figure 4's metric
  uint64_t tuple_bytes = 0;
  uint64_t auth_bytes = 0;
  uint64_t prov_bytes = 0;
  uint64_t events = 0;
  uint64_t derivations = 0;
  // Join-candidate tuples examined by the rule-firing inner loop; the
  // denominator of the evaluator's selectivity and the work the slot
  // compiler is judged on (bench_fixpoint).
  uint64_t join_candidates = 0;
  uint64_t signs = 0;
  uint64_t verifies = 0;
  uint64_t auth_failures = 0;
  // Verification-pipeline rejections beyond signature failures: replayed or
  // misdirected sequence headers, and unauthorized retractions.
  uint64_t replays_rejected = 0;
  uint64_t retracts_rejected = 0;
  // Provenance-query API (src/query/): queries executed over the wire,
  // their request/response traffic, and responses dropped by the
  // verification pipeline (forged, replayed, misdirected, or answering no
  // outstanding query).
  uint64_t prov_queries = 0;
  uint64_t prov_query_bytes = 0;
  uint64_t prov_responses_rejected = 0;
  // Piggybacked annotations rejected by the receive-side framing check (a
  // shipped cube that does not contain the sender's own variable).
  uint64_t prov_frames_rejected = 0;
  // Incremental maintenance (src/dynamics/): deletion deltas processed and
  // tuples restored by the re-derivation phase.
  uint64_t retractions = 0;
  uint64_t rederivations = 0;

  // Peak accounted bytes by subsystem ("table_rows=N prov_annotations=M
  // ..."), filled by Run() when obs::MemAccounting is enabled — empty
  // otherwise, so the default ToString() is unchanged. Wall-clock-free but
  // interleaving-dependent (peaks vary with thread count), hence excluded
  // from the determinism oracles.
  std::string peak_mem;

  std::string ToString() const;
};

struct DeltaState;  // epoch state of the incremental evaluator (dynamics/delta.h)
struct ProvQuerySession;  // in-flight provenance query (query/session.h)

class Engine {
 public:
  // `source` is NDlog or SeNDlog program text.
  static Result<std::unique_ptr<Engine>> Create(const Topology& topo,
                                                const std::string& source,
                                                EngineOptions options);
  static Result<std::unique_ptr<Engine>> Create(const Topology& topo,
                                                Program program,
                                                EngineOptions options);

  // Inserts the topology's link facts: link(@S, D, C). Called by Create;
  // exposed for tests building custom initial states.
  Status InsertLinkFacts();

  ~Engine();

  // Inserts an external base fact at `node` (enqueues a local event).
  // After an initial fixpoint this is an incremental *insertion delta*: only
  // the strands reachable from the new tuple re-fire (pipelined semi-naive
  // evaluation), so the next Run() costs proportional to the change.
  Status InsertFact(NodeId node, const Tuple& tuple, double ttl = -1.0);

  // --- Incremental update & churn (src/dynamics/) ---------------------------
  // Retracts a stored tuple at `node` and enqueues a deletion delta. The
  // next Run() propagates it DRed-style: every tuple derived (transitively,
  // across nodes) from the deleted one is over-deleted, then tuples with
  // surviving alternative derivations are restored. With condensed/full
  // provenance at ProvGrain::kTuple the restore is pruned through the
  // semiring annotations: a dependent whose annotation stays non-Zero after
  // zeroing the deleted base keeps its tuple (and gets the restricted
  // annotation) without any re-derivation. Externally deleted facts are
  // never resurrected by the re-derivation phase.
  Status DeleteFact(NodeId node, const Tuple& tuple);

  // Compromise response (Section 4.2's "delete all routing entries that
  // depend on the malicious node"): revokes every assertion of `principal`
  // and enqueues deletion deltas for all tuples whose provenance depends on
  // it, across every node. Tuples independently derivable through other
  // principals survive (or are re-derived with untainted provenance).
  // Follow with Run() to reach the post-revocation fixpoint.
  Status RetractPrincipal(const Principal& principal);

  // --- Fail-stop crash & recovery (src/net/faults.*) ------------------------
  // Crashes `node` now: all in-memory state (tables, online provenance,
  // anti-replay windows) is lost, the durable archive's unflushed tail is
  // torn off, in-flight messages to/from the node vanish, and deliveries
  // while down are discarded. Engine-held identity (the principal's signing
  // key and send sequence — the node's "stable storage") survives.
  // Run() drives scripted CrashSpec events through these automatically.
  Status CrashNode(NodeId node);
  // Restarts a crashed node: re-opens its archive_dir log (replaying every
  // intact frame; a torn tail is truncated away), re-inserts the node's
  // base facts from the engine's journal, and bounces each neighbor's link
  // fact toward the node so the next Run() re-derives — and re-advertises —
  // everything the node held, converging back to the fault-free fixpoint.
  Status RestartNode(NodeId node);

  // Processes events and messages to the distributed fixpoint.
  Result<RunStats> Run();

  // --- Inspection -----------------------------------------------------------
  size_t num_nodes() const { return contexts_.size(); }
  NodeContext& node(NodeId id) { return *contexts_[id]; }
  const NodeContext& node(NodeId id) const { return *contexts_[id]; }
  Network& network() { return net_; }
  Authenticator& authenticator() { return auth_; }
  ProvVarRegistry& registry() { return registry_; }
  const EngineOptions& options() const { return options_; }
  const Plan& plan() const { return plan_; }

  // --- Verification & audit (src/adversary/verify.cc) -----------------------
  // Every receive-side rejection (bad/missing signature, replay, misdirected
  // destination, unauthorized retraction, malformed content) lands here.
  const SecurityLog& security_log() const { return security_log_; }
  SecurityLog& security_log() { return security_log_; }
  // Issues the next authenticated-message sequence number for `principal`.
  // Public because key compromise includes counter compromise: an adversary
  // holding a principal's key continues its sequence (src/adversary/).
  uint64_t NextSendSeq(const Principal& principal) {
    return ++send_seq_[principal];
  }

  // Annotation aging (ROADMAP follow-up from PR 1): restricts every stored
  // annotation by the base variables whose base tuples are no longer stored
  // anywhere (expired un-refreshed or externally removed), so restriction
  // pruning agrees with DRed. Tuples left with Zero support are enqueued as
  // deletion deltas (run Run() afterwards). Only meaningful with complete
  // annotations at ProvGrain::kTuple; a no-op otherwise. Returns the number
  // of annotations restricted or retired.
  size_t AgeAnnotations();

  // Sorted tuples of `pred` stored at `node`.
  std::vector<Tuple> TuplesAt(NodeId node, const std::string& pred) const;

  Principal PrincipalOf(NodeId id) const;
  Result<NodeId> NodeOf(const Principal& principal) const;
  std::string VarName(ProvVar v) const { return registry_.NameOf(v); }

  // --- Provenance queries ---------------------------------------------------
  // Raw stored-state accessors. Reconstruction and evaluation — local or
  // over the network — goes through the ProvQuery API (src/query/), which
  // issues signed, sequenced request/response messages whose bytes are
  // charged to the bandwidth meters and to RunStats::prov_query_bytes.
  //
  // Semiring annotation of a stored tuple.
  Result<ProvExpr> AnnotationOf(NodeId node, const Tuple& tuple) const;
  // Condensed annotation (<a + a*b> -> <a>).
  Result<CondensedProv> CondensedOf(NodeId node, const Tuple& tuple) const;
  // Full local derivation tree (ProvMode::kFull).
  Result<DerivationPtr> LocalDerivationOf(NodeId node,
                                          const Tuple& tuple) const;
  // Hash-consing derivation arena (src/store/arena.h): non-null only in
  // kFull mode, where every stored derivation and annotation is interned
  // through it. Queries and tests reach it for memoized exact derivation
  // counts over stable arena ids.
  store::ProvArena* arena() const { return arena_.get(); }
  // Cumulative engine counters (RunStats returns per-Run() windows; this is
  // the running total). Meter-style fields — wall/sim seconds, messages,
  // bytes — are computed per window and stay zero here; the tuple/auth/prov
  // byte splits and all rejection counters are cumulative. RunStats is a
  // *view*: the counters live in the metrics registry (per rule, per link,
  // per security-event kind) and are summed back into the flat struct here.
  const RunStats& cumulative_stats() const {
    stats_view_ = StatsView();
    return stats_view_;
  }

  // --- Observability (src/obs/) ---------------------------------------------
  // The typed metrics registry every engine counter lives in: per-rule
  // firing/candidate/derivation counts, per-link bytes by message kind,
  // per-kind security-event counters, provenance-query latency histograms.
  // Export with obs::SnapshotJson / obs::SnapshotText (obs/export.h).
  obs::Registry& metrics() { return obs_; }
  const obs::Registry& metrics() const { return obs_; }
  // Virtual-time tracer (off by default; Enable() to capture spans for rule
  // firings, message hops, deletion cascades, and ProvQuery walks).
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  // Wall-clock phase profiler (off by default; Enable() before Run() to
  // measure where the wall time goes — parallel compute vs. serial commit
  // replay, crypto, delivery, query serving). Never feeds the golden
  // registry snapshot; export with obs::ProfileJson / obs_dump --prof.
  obs::Profiler& profiler() { return profiler_; }
  const obs::Profiler& profiler() const { return profiler_; }

  // Mints the next causal span id for a message sent by `node` —
  // deterministic (per-node counter, see core/causal.h). Public because
  // the fault-injection layer crafts wire-faithful messages and a stolen
  // key includes the victim's causal stream.
  uint64_t NewCausalSpan(NodeId node) {
    return PackSpanId(node, ++causal_seqs_[node]);
  }

  // Fault-injection seam (src/adversary/): a lying comparer suppresses
  // every conflict it finds when answering kQueryCompare requests, so
  // equivocation it was assigned to check goes unreported. The
  // CompareExchange auditor's deterministic spot-check re-comparison is
  // what detects it (kLyingComparer).
  void SetLyingComparer(NodeId node, bool lying) {
    if (lying) {
      lying_comparers_.insert(node);
    } else {
      lying_comparers_.erase(node);
    }
  }

  // Reactive provenance control (Section 5).
  void SetRecordingEnabled(bool enabled) {
    options_.recording_enabled = enabled;
  }

  // Observer invoked on every materialized tuple change (new/replaced/
  // refreshed). Drives the continuous monitoring queries of apps/diagnostics.
  using UpdateObserver =
      std::function<void(NodeId, const Tuple&, InsertOutcome, double now)>;
  void SetUpdateObserver(UpdateObserver observer) {
    observer_ = std::move(observer);
  }

  // Soft-state maintenance: expire tuples/provenance older than network time.
  void ExpireNow();

 private:
  Engine(const Topology& topo, EngineOptions options);

  Status Init(Program program);

  // --- Observability plumbing (src/obs/) ------------------------------------
  // Registers every engine instrument and resolves the hot-path handles
  // (raw pointers into the registry). Runs once at Init, after the plan is
  // compiled and node principals are known.
  void InitObs();
  // The flat RunStats recovered from the registry (per-rule counters summed
  // into the global totals). Meter-style fields stay zero; Run() fills them
  // from the network/authenticator meters per window.
  RunStats StatsView() const;
  // Per-(src, dst, message-kind) byte counter, interned on first traffic.
  obs::Counter* LinkBytesCell(NodeId from, NodeId to, uint8_t msg_kind);
  // Index of a compiled rule within plan_.rules() (contiguous storage).
  size_t RuleIndex(const CompiledRule& cr) const {
    return static_cast<size_t>(&cr - plan_.rules().data());
  }

  // Pre-resolved registry handles: registration (string hashing) happens at
  // InitObs, never on the firing/receive hot paths.
  struct ObsCells {
    obs::Counter* deliveries = nullptr;
    obs::Counter* events = nullptr;
    obs::Counter* retractions = nullptr;
    obs::Counter* rederivations = nullptr;
    obs::Counter* tuple_bytes = nullptr;
    obs::Counter* auth_bytes = nullptr;
    obs::Counter* prov_bytes = nullptr;
    obs::Counter* auth_failures = nullptr;
    obs::Counter* replays_rejected = nullptr;
    obs::Counter* retracts_rejected = nullptr;
    obs::Counter* prov_queries = nullptr;
    obs::Counter* prov_query_bytes = nullptr;
    obs::Counter* prov_responses_rejected = nullptr;
    obs::Counter* prov_frames_rejected = nullptr;
    obs::Counter* query_offline_hits = nullptr;
    // Durable-store health (src/store/). Conditionally registered: the
    // arena pair only in kFull mode, the archive trio only with
    // record_offline — so condensed/none telemetry snapshots keep exactly
    // their pre-store key set. Null when not registered (ForEachCell and
    // the worker-mirror plumbing tolerate null handles).
    obs::Counter* store_interned_nodes = nullptr;
    obs::Counter* store_interned_hits = nullptr;
    obs::Counter* archive_page_reads = nullptr;
    obs::Counter* archive_page_writes = nullptr;
    obs::Counter* archive_compactions = nullptr;
    // Indexed by position in plan_.rules().
    std::vector<obs::Counter*> rule_firings;
    std::vector<obs::Counter*> rule_candidates;
    std::vector<obs::Counter*> rule_derivations;
    // Indexed by SecurityEventKind.
    std::vector<obs::Counter*> security_events;
    // Virtual-time latency distributions of the ProvQuery walk.
    obs::Histogram* query_latency = nullptr;
    obs::Histogram* query_hop_latency = nullptr;
  };

  struct PendingEvent {
    NodeId node;
    Tuple tuple;
    // Causal context the event was created under (the inbound message that
    // delivered the tuple, or zero for external inserts). Cascade sends
    // processing this event inherit it.
    CausalIds causal;
  };

  ProvExpr BaseAnnotation(const Principal& principal, const Tuple& tuple);

  Status ProcessEvent(const PendingEvent& event);
  Status FireStrand(NodeId node_id, const CompiledRule& cr, int delta_index,
                    const StoredTuple& delta_entry);
  Status EmitHead(NodeId node_id, const CompiledRule& cr, const Frame& frame,
                  const std::vector<const StoredTuple*>& used);
  // Stores a tuple locally; enqueues a delta event when it changed state.
  // `children` are the provenance child refs captured at emit time (empty
  // for base facts and received tuples, which build their own).
  Status DeliverLocal(NodeId node_id, StoredTuple entry,
                      std::vector<ProvChildRef> children,
                      const std::string& rule_label);
  Status SendTuple(NodeId from, NodeId to, const Tuple& tuple,
                   const ProvExpr& prov, const DerivationPtr& deriv);
  bool SaysMatches(const SlotSays& says, const StoredTuple& entry,
                   Frame& frame) const;

  // True when any provenance-record sink is active (pointer mode or
  // explicit stores) and recording is enabled. Child refs are only captured
  // at emit time when this holds.
  bool RecordingPossible() const;
  // Captures the provenance child refs of a local rule firing while the
  // `used` pointers are still valid (i.e. before deferred mutations apply).
  std::vector<ProvChildRef> BuildChildRefs(
      NodeId node_id, const std::vector<const StoredTuple*>& used) const;
  void RecordProvenance(NodeId node_id, const Tuple& tuple,
                        const std::string& rule, TupleOrigin origin,
                        NodeId from_node, const Principal& asserted_by,
                        std::vector<ProvChildRef> children, double expires_at);

  Status HandleMessage(NodeId to, NodeId from, const Bytes& payload);
  Status HandleTupleMessage(NodeId to, NodeId from, ByteReader& reader);

  // --- Provenance-query wire path (implemented in src/query/wire.cc) -------
  // The ProvQuery/ClaimsExchange drivers (src/query/provquery.cc) run as
  // friends: they install the active session, issue requests, and pump the
  // network; the handlers below verify and fold responses into it.
  friend class ProvQuery;
  friend class ClaimsExchange;
  friend class CompareExchange;
  // Wraps `inner` in the authenticated query envelope — the same framing as
  // kMsgTuple/kMsgRetract: signed (sequence, destination) header + says tag
  // over the content — and ships it, charging prov_query_bytes.
  Status SendQueryWire(NodeId from, NodeId to, uint8_t msg_type,
                       const Bytes& inner);
  // Issues one signed records request for `digest` to `to`, registering it
  // in the session's pending set.
  Status ProvQuerySendRequest(ProvQuerySession& session, NodeId to,
                              TupleDigest digest);
  // Records a detaching session's unanswered query ids so their late
  // responses are recognized as stale rather than audited as attacks.
  void NoteAbandonedQueries(const ProvQuerySession& session);
  // Folds one accepted request->response round trip into the hop-latency
  // histogram (virtual time) and the trace stream.
  void ObserveQueryHop(NodeId asker, NodeId responder, double sent_at);
  // Issues one signed claims request for `predicates` to `to`.
  Status ProvQuerySendClaimsRequest(ProvQuerySession& session, NodeId to,
                                    const std::set<std::string>& predicates);
  // Issues one signed digest-comparison request to `to`, carrying
  // (bucket id, claim digests) pairs — the decentralized equivocation
  // audit's work assignment for that comparer.
  Status ProvQuerySendCompareRequest(
      ProvQuerySession& session, NodeId to,
      const std::vector<std::pair<uint64_t, std::vector<TupleDigest>>>&
          buckets);
  // Records of `digest` at `node`: online store preferred, offline archive
  // as fallback (forensics over expired state, Section 4.2).
  std::vector<ProvRecord> ProvRecordsAt(NodeId node, TupleDigest digest,
                                        bool* offline_hit) const;
  // Folds the offline archive's I/O deltas (page reads/writes, compactions)
  // at `node` into the executing lane's cells. No-op unless the archive
  // counters were registered (record_offline). Const because the read-side
  // query path is const; the counters live behind stable pointers.
  void RecordArchiveIo(NodeId node) const;
  // End-of-Run() barrier for the durable store: folds the arena's dedup
  // counters into the registry cells and flushes every node's archive tail
  // page to disk (crash durability at fixpoint), charging the I/O.
  Status FlushDurableStores();
  // Attributable claims `node` stores of the given predicates — what a
  // claims request answers and what the auditor reads locally; one
  // definition so responders and the auditor can never diverge.
  std::vector<const StoredTuple*> ClaimTuplesAt(
      NodeId node, const std::set<std::string>& predicates) const;
  // Folds a batch of records for (at, digest) into the session: stores them
  // and expands unseen child references (local frontier or signed requests),
  // honoring the session's depth/fanout/record limits.
  Status ProvQueryIngest(ProvQuerySession& session, NodeId at,
                         TupleDigest digest, std::vector<ProvRecord> records);
  Status HandleProvRequest(NodeId to, NodeId from, ByteReader& reader);
  Status HandleProvResponse(NodeId to, NodeId from, ByteReader& reader);
  // Effective per-hop virtual-time deadline for distributed queries:
  // query_hop_timeout when set, 10x the transport's initial RTO when the
  // fault-tolerant transport is active, 0 (disabled) otherwise.
  double QueryTimeoutSeconds() const;
  // Fires every armed per-hop deadline at or before net_.now(): due requests
  // are re-sent under the same query id with exponential backoff until the
  // session's attempt budget runs out, then degrade — records hops fall back
  // to the responder's offline archive (or an `unreachable` proof leaf),
  // claims/compare hops are disarmed and left for the caller's
  // silent-responder audit.
  Status HandleQueryTimeouts(ProvQuerySession& session);
  // One pump round for a query driver: advances the network by one event or
  // fires due deadlines, whichever is sooner in virtual time. Returns false
  // when neither can make progress anymore (network idle, nothing armed).
  Result<bool> PumpQueryOnce(ProvQuerySession& session);

  // --- Receive-side verification (implemented in src/adversary/verify.cc) --
  // Appends the signed (sequence, destination) header authenticated senders
  // prepend to message content.
  void PutAuthHeader(ByteWriter& content, const Principal& sender,
                     NodeId dest);
  // Runs the verification pipeline over an inbound message: signature
  // present/valid/known principal, then the signed header's destination and
  // anti-replay checks (consumed from `body`). Returns false when the
  // message must be dropped — the rejection has been audited and counted.
  Result<bool> VerifyInbound(NodeId to, NodeId from,
                             const std::optional<SaysTag>& tag,
                             const Bytes& content, ByteReader& body,
                             const char* what);
  // True when `claimed` may retract `stored` at `node`: the asserting
  // principal, a recorded co-asserter, an operator capability, or a
  // principal the tuple's (principal-grain) annotation depends on.
  bool AuthorizedRetractor(NodeId node, const Principal& claimed,
                           const StoredTuple& stored) const;
  void RecordSecurityEvent(SecurityEventKind kind, NodeId node, NodeId from,
                           const Principal& claimed, std::string detail);

  // --- Incremental deletion (implemented in src/dynamics/delta.cc) ---------
  // True when stored annotations enumerate every derivation (condensed/full
  // piggybacked provenance), i.e. restriction-based pruning is sound.
  bool AnnotationsComplete() const;
  // Records the provenance variable of a deleted base tuple in the epoch's
  // killed set (ProvGrain::kTuple only; no-op otherwise).
  void NoteKilledBase(const Tuple& tuple);
  // Adds `entry` to the deletion-delta queue and the epoch overlay;
  // optionally schedules the tuple (or its aggregate group) for the
  // re-derivation phase.
  void EnqueueRetraction(NodeId node, StoredTuple entry, bool rederive,
                         bool rederive_group);
  // Fires delete-mode strands for a retracted tuple (DRed over-deletion).
  Status ProcessRetraction(NodeId node, const StoredTuple& entry);
  Status FireDeleteStrand(NodeId node, const CompiledRule& cr,
                          int delta_index, const StoredTuple& delta_entry);
  // Shared join recursion for insert-mode strands, delete-mode strands, and
  // re-derivation: runs the rule's slot program over `frame` with trail
  // undo, iterating stored tuples by pointer (zero copies). `use_overlay`
  // also matches tuples deleted this epoch (the pre-deletion database DRed
  // joins against), `delta_index` may be -1 (no delta literal), and the
  // head action is the caller's `emit`. Emits must not mutate tables
  // directly — they defer through `pending_` (see DrainPending).
  using EmitFn =
      std::function<Status(Frame&, const std::vector<const StoredTuple*>&)>;
  Status DynJoin(NodeId node, const CompiledRule& cr, size_t literal_pos,
                 int delta_index, bool use_overlay, Frame& frame,
                 std::vector<const StoredTuple*>& used, const EmitFn& emit);
  // Resolves a delete-mode head: schedules removal of the local tuple (or a
  // retraction message when the head lives remotely). `used` identifies the
  // dying derivation so COUNT-aggregate heads decrement exactly once even
  // when several deleted body tuples each enumerate it.
  Status OverDeleteHead(NodeId node, const CompiledRule& cr,
                        const Frame& frame,
                        const std::vector<const StoredTuple*>& used);
  // Applies an over-deletion to whatever `node` stores for `tuple`,
  // consulting annotation restriction before cascading. `deriv_id`
  // identifies the dying derivation for COUNT witness retirement (0 =
  // unidentified, e.g. a remote retract: count groups then recompute).
  Status OverDeleteAt(NodeId node, const Tuple& tuple, uint64_t deriv_id = 0);
  // Identity of a local rule firing: hash over rule label, executing node,
  // head, and the body tuples used. Computed identically at emit time
  // (EmitHead -> StoredTuple::deriv_id) and delete time (OverDeleteHead),
  // so COUNT witness bookkeeping is idempotent per derivation.
  uint64_t CountDerivId(const CompiledRule& cr, NodeId node, const Tuple& head,
                        const std::vector<const StoredTuple*>& used) const;
  Status SendRetract(NodeId from, NodeId to, const Tuple& tuple);
  Status HandleRetractMessage(NodeId to, NodeId from, ByteReader& reader);
  // DRed phase 2: attempts to restore over-deleted tuples from surviving
  // support (runs once the over-deletion cascade has quiesced).
  Status RunRederivePass();
  Status RederiveTuple(NodeId node, const Tuple& tuple, bool group_only);
  // Candidate executing sites for a rule whose local variable the head does
  // not pin: the intersection, over the rule's body-atom predicates, of the
  // nodes that ever stored that predicate (the predicate->site index).
  std::vector<NodeId> CandidateSites(const CompiledRule& cr) const;

  // Mutations scheduled by emits while a join scan is in flight. Tables
  // stay untouched until the scan completes, so candidate pointers remain
  // valid without per-literal snapshots; DrainPending applies them in emit
  // order (preserving event-queue order).
  struct PendingAction {
    enum class Kind : uint8_t { kDeliver, kOverDelete, kSendRetract };
    Kind kind = Kind::kDeliver;
    NodeId node = 0;  // executing node (kDeliver/kOverDelete), sender else
    NodeId dest = 0;  // retract destination (kSendRetract)
    StoredTuple entry;                    // kDeliver
    std::vector<ProvChildRef> children;   // kDeliver provenance capture
    std::string rule_label;               // kDeliver
    Tuple head;                           // kOverDelete / kSendRetract
    uint64_t deriv_id = 0;                // kOverDelete COUNT retirement
  };
  Status DrainPending();

  // --- Parallel sharded execution (implemented in src/core/parallel.cc) ----
  // One execution lane's private state. Lane 0 of the sequential path (the
  // main slot) owns the real registry-backed counter handles and applies
  // side effects directly. Worker lanes are `buffered`: their counter
  // handles point into a private mirror array (merged into the registry at
  // the epoch barrier — sums commute, so merge order is free), and every
  // externally visible side effect — network sends, trace events, security
  // events, observer callbacks — is appended to the current node's effect
  // stream, which the main thread replays in canonical (time, seq) order.
  // That replay is what keeps fixpoints and telemetry byte-identical at
  // every thread count. Hot-path code reaches its lane through exec().
  struct ExecSlot {
    // One buffered side effect of a worker-lane cascade.
    struct Effect {
      enum class Kind : uint8_t { kSend, kTrace, kSecurity, kObserver };
      Kind kind = Kind::kSend;
      NodeId node = 0;  // sender (kSend), executing node (else)
      NodeId peer = 0;  // destination (kSend), offending sender (kSecurity)
      // kSend: a fully built (sequenced, signed) wire message. Per-principal
      // send sequences are assigned node-locally by the worker; the commit
      // runs Network::Send so the *global* wire order — network sequence
      // numbers, fault-injection taps, byte meters — matches sequential
      // execution exactly.
      Bytes payload;
      // kTrace: `sampled` events consume the tracer's 1-in-k counter at
      // commit (Tracer::EmitSampled); structural events bypass it.
      obs::TraceEvent trace;
      bool sampled = false;
      // kSecurity: replayed through RecordSecurityEvent at commit.
      SecurityEventKind sec_kind{};
      Principal claimed;
      std::string detail;
      // kObserver: the tuple-change callback.
      Tuple observed;
      InsertOutcome outcome = InsertOutcome::kNew;
    };

    ObsCells cells;  // main slot: real handles; workers: into cell_storage
    Frame frame;
    // Causal context of the unit currently executing on this lane: set from
    // the wire pair when handling an inbound message, from the stored pair
    // when processing an event/retraction, zeroed at external entry points.
    // Sends read it as the parent of the spans they mint.
    CausalIds causal;
    std::vector<PendingAction> pending;
    // Where DeliverLocal queues delta events: &Engine::events_ on the main
    // slot, the per-node local queue on worker lanes.
    std::deque<PendingEvent>* events = nullptr;
    // Non-null on worker lanes while running a node: its effect stream.
    std::vector<Effect>* effects = nullptr;
    // Worker-lane counter mirrors and order-free buffers, merged at the
    // barrier.
    std::vector<obs::Counter> cell_storage;
    struct LinkCharge {
      NodeId from = 0;
      NodeId to = 0;
      uint8_t msg_kind = 0;
      uint64_t bytes = 0;
    };
    std::vector<LinkCharge> link_charges;
    std::vector<std::pair<std::string, NodeId>> pred_sites;
    bool buffered = false;  // true on worker lanes: defer side effects
  };

  // The executing lane's state: the worker slot bound to this thread during
  // a parallel phase, the main slot otherwise.
  ExecSlot& exec() { return tls_slot_ != nullptr ? *tls_slot_ : main_slot_; }

  // Enumerates every counter handle of an ObsCells in one fixed order, so
  // worker mirrors can be allocated and merged positionally.
  template <typename Fn>
  static void ForEachCell(ObsCells& cells, Fn&& fn) {
    fn(cells.deliveries);
    fn(cells.events);
    fn(cells.retractions);
    fn(cells.rederivations);
    fn(cells.tuple_bytes);
    fn(cells.auth_bytes);
    fn(cells.prov_bytes);
    fn(cells.auth_failures);
    fn(cells.replays_rejected);
    fn(cells.retracts_rejected);
    fn(cells.prov_queries);
    fn(cells.prov_query_bytes);
    fn(cells.prov_responses_rejected);
    fn(cells.prov_frames_rejected);
    fn(cells.query_offline_hits);
    fn(cells.store_interned_nodes);
    fn(cells.store_interned_hits);
    fn(cells.archive_page_reads);
    fn(cells.archive_page_writes);
    fn(cells.archive_compactions);
    for (obs::Counter*& c : cells.rule_firings) fn(c);
    for (obs::Counter*& c : cells.rule_candidates) fn(c);
    for (obs::Counter*& c : cells.rule_derivations) fn(c);
    for (obs::Counter*& c : cells.security_events) fn(c);
  }

  // Side-effect helpers shared by the sequential and worker-lane paths.
  // Per-link byte charge: direct on the main slot, buffered (interned at
  // the barrier) on workers — the cells are sums, so order is free.
  void ChargeLink(NodeId from, NodeId to, uint8_t msg_kind, uint64_t bytes);
  // Hot-path sampled trace event: EmitSampled on the main slot (consuming
  // the 1-in-k counter immediately), buffered to consume it at commit on
  // workers. Callers check tracer().enabled() before building the event.
  void TraceSampled(obs::TraceEvent ev);
  // Predicate->site index fill (grow-only set union; order-free).
  void NotePredSite(const std::string& pred, NodeId node);

  // Worker-pool plumbing and the two parallel phase drivers.
  size_t ResolvedThreads();  // options_.threads with PROVNET_THREADS/0=hw
  void EnsureParallelRuntime();
  void MergeWorkerSlots();
  Status CommitEffects(std::vector<ExecSlot::Effect>& effects, size_t begin,
                       size_t end);
  // Drains the entire local-event queue as one parallel epoch: events are
  // partitioned by node (cascades are strictly node-local), workers run
  // each node's queue to quiescence buffering effects per event unit, and
  // the main thread replays the original FIFO token order, committing each
  // unit's effects and re-enqueueing the units it spawned — reproducing the
  // sequential engine's event order exactly.
  Status ParallelDrainEvents(uint64_t* steps);
  // Attempts to deliver the next wave (all messages due at the earliest
  // instant) in parallel, grouped by destination with per-message cascade
  // units committed in wave seq order. Returns false — after requeueing the
  // wave untouched — when the wave is ineligible (single message, single
  // destination, or any non-kMsgTuple message): the caller falls back to
  // the sequential Step() path.
  Result<bool> TryParallelWave(uint64_t* steps);

  Topology topo_;
  EngineOptions options_;
  Network net_;
  KeyStore keystore_;
  Authenticator auth_;
  ProvVarRegistry registry_;
  Plan plan_;
  std::vector<std::unique_ptr<NodeContext>> contexts_;
  std::deque<PendingEvent> events_;
  // Principal -> node lookup (SaysMatches runs on the join hot path).
  std::unordered_map<Principal, NodeId> node_of_;
  // Predicate -> nodes that ever stored it (grow-only, so always a
  // superset of current support); prunes re-derivation site scans.
  std::unordered_map<std::string, std::set<NodeId>> pred_sites_;
  // The sequential execution lane: scratch frame and deferred-mutation
  // buffer reused across rule firings (never nested: emits defer their
  // mutations), registry-backed counter handles, events -> &events_.
  // Worker lanes get buffered ExecSlots of their own (see exec()).
  ExecSlot main_slot_;
  static thread_local ExecSlot* tls_slot_;
  std::unique_ptr<ThreadPool> pool_;  // lazily built on first parallel phase
  std::vector<std::unique_ptr<ExecSlot>> worker_slots_;  // one per lane
  size_t resolved_threads_ = 0;  // cached ResolvedThreads(); 0 = unresolved
  // Metrics registry + resolved handles (see InitObs). The registry is the
  // single source of truth for counters; RunStats is computed from it.
  obs::Registry obs_;
  obs::Tracer tracer_;
  obs::Profiler profiler_;
  ObsCells cells_;
  // (src, dst, kind) -> byte counter, keyed packed (from<<40 | to<<8 | kind).
  std::unordered_map<uint64_t, obs::Counter*> link_cells_;
  mutable RunStats stats_view_;  // scratch for cumulative_stats()
  Status async_error_;  // first error raised inside a network handler
  UpdateObserver observer_;
  SecurityLog security_log_;
  // Per-principal authenticated-message sequence counters (send side).
  std::unordered_map<Principal, uint64_t> send_seq_;
  // Per-node causal span counters (core/causal.h). Indexed by NodeId;
  // worker lanes touch only their own node's element, in canonical cascade
  // order, so minted ids are identical at every thread count (the
  // NextSendSeq argument).
  std::vector<uint64_t> causal_seqs_;
  // Nodes flagged by SetLyingComparer (fault injection).
  std::set<NodeId> lying_comparers_;

  // --- Fault-plan driving (src/net/faults.*) --------------------------------
  // True when the ack/retransmit transport is armed: reliable_transport, or
  // a non-empty fault plan (lossy links need retransmission to converge).
  bool TransportActive() const {
    return options_.reliable_transport || !options_.fault_plan.Empty();
  }
  // Scripted crash/restart instants, expanded from fault_plan.crashes into
  // one time-sorted schedule Run() consumes against the virtual clock.
  struct FaultEvent {
    double at = 0.0;
    NodeId node = 0;
    bool restart = false;  // false = crash
  };
  // Virtual time of the next unconsumed scripted event (+inf when drained).
  double NextFaultEventTime() const;
  // Fires every scheduled crash/restart at or before `t` (advancing the
  // network clock to each event's instant first, so timers and TTLs agree).
  Status ProcessFaultEventsUpTo(double t);
  std::vector<FaultEvent> fault_events_;
  size_t next_fault_event_ = 0;
  // Externally inserted base facts per node — (tuple, ttl), digest-deduped.
  // This is the engine-side "stable storage" RestartNode replays: the
  // simulation's stand-in for an operator's fact file surviving the crash.
  std::vector<std::vector<std::pair<Tuple, double>>> base_fact_journal_;
  std::vector<std::unordered_set<uint64_t>> journal_digests_;
  // Phase 2 of crash recovery. RestartNode deletes every live node's base
  // facts (phase 1) and stages the reinserts here; the run loop applies
  // them only once the global over-deletion has drained to quiescence.
  // Interleaving delete and reinsert synchronously livelocks on cyclic
  // topologies: in-flight cross-node retracts race the re-derivation
  // refreshes around the cycle, each lap re-triggering the other.
  struct RecoveryReinsert {
    NodeId node = 0;
    Tuple tuple;
    double ttl = -1.0;
  };
  std::vector<RecoveryReinsert> recovery_reinserts_;
  obs::Counter* faults_crashes_ = nullptr;
  obs::Counter* faults_restarts_ = nullptr;

  // The provenance query currently pumping the network (nullptr when none).
  // Non-owning: the ProvQuery/ClaimsExchange driver owns the session on its
  // stack and detaches before returning.
  ProvQuerySession* query_session_ = nullptr;
  uint64_t next_query_id_ = 1;
  // Query ids whose session ended before their responses arrived (aborted
  // or error-terminated queries). A late response matching one is stale
  // honest traffic — dropped silently, neither counted nor audited, and
  // the id is consumed. Anything else answering no outstanding query is a
  // bogus (attack) response.
  std::unordered_set<uint64_t> abandoned_queries_;

  // Incremental-evaluator epoch state (deletion queue, overlay of deleted
  // tuples, killed provenance variables, re-derivation worklist).
  std::unique_ptr<DeltaState> dynamics_;

  // Hash-consing arena for kFull derivations and annotations (src/store/).
  // Null outside kFull. Not thread-safe: every kFull run is pinned to the
  // sequential executor (see Run()).
  std::unique_ptr<store::ProvArena> arena_;
};

}  // namespace provnet

#endif  // PROVNET_CORE_ENGINE_H_
