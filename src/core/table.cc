#include "core/table.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

namespace provnet {

Table::Table(std::string name, TableOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (options_.agg != AggKind::kNone) {
    PROVNET_CHECK(options_.agg_column >= 0)
        << "aggregate table needs an aggregate column";
  }
}

uint64_t Table::KeyHash(const Tuple& tuple) const {
  uint64_t h = Fnv1a64(name_);
  if (options_.key_columns.empty()) {
    return HashCombine(h, tuple.Hash());
  }
  for (int col : options_.key_columns) {
    PROVNET_CHECK(col >= 0 && static_cast<size_t>(col) < tuple.arity())
        << "key column out of range for " << tuple.ToString();
    h = HashCombine(h, tuple.arg(static_cast<size_t>(col)).Hash());
  }
  return h;
}

void Table::IndexInsert(const Tuple& tuple) {
  uint64_t key = KeyHash(tuple);
  for (auto& [col, buckets] : column_index_) {
    if (static_cast<size_t>(col) >= tuple.arity()) continue;
    buckets[tuple.arg(static_cast<size_t>(col)).Hash()].push_back(key);
  }
}

void Table::IndexErase(const Tuple& tuple) {
  uint64_t key = KeyHash(tuple);
  for (auto& [col, buckets] : column_index_) {
    if (static_cast<size_t>(col) >= tuple.arity()) continue;
    auto it = buckets.find(tuple.arg(static_cast<size_t>(col)).Hash());
    if (it == buckets.end()) continue;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), key), vec.end());
  }
}

InsertResult Table::Insert(StoredTuple entry, double now) {
  entry.inserted_at = now;
  if (entry.expires_at < 0 && options_.default_ttl >= 0) {
    entry.expires_at = now + options_.default_ttl;
  }

  uint64_t key = KeyHash(entry.tuple);
  auto it = rows_.find(key);

  // --- Aggregate tables ------------------------------------------------
  if (options_.agg != AggKind::kNone) {
    size_t agg_col = static_cast<size_t>(options_.agg_column);
    PROVNET_CHECK(agg_col < entry.tuple.arity());

    if (options_.agg == AggKind::kCount) {
      auto& wit = witnesses_[key];
      bool fresh = wit.emplace(entry.tuple.Hash(), true).second;
      int64_t count = static_cast<int64_t>(wit.size());
      std::vector<Value> args = entry.tuple.args();
      args[agg_col] = Value::Int(count);
      Tuple stored(entry.tuple.predicate(), std::move(args));
      if (!fresh && it != rows_.end()) {
        // Duplicate witness: merge provenance only.
        it->second.prov = ProvExpr::Plus(it->second.prov, entry.prov);
        it->second.deriv = MergeAlternatives(it->second.deriv, entry.deriv);
        return {InsertOutcome::kRefreshed, it->second.tuple};
      }
      StoredTuple agg_entry = entry;
      agg_entry.tuple = stored;
      if (it != rows_.end()) {
        agg_entry.prov = ProvExpr::Plus(it->second.prov, entry.prov);
        agg_entry.deriv = MergeAlternatives(it->second.deriv, entry.deriv);
        IndexErase(it->second.tuple);
        rows_.erase(it);
        auto [pos, ok] = rows_.emplace(key, std::move(agg_entry));
        PROVNET_CHECK(ok);
        IndexInsert(pos->second.tuple);
        return {InsertOutcome::kReplaced, pos->second.tuple};
      }
      auto [pos, ok] = rows_.emplace(key, std::move(agg_entry));
      PROVNET_CHECK(ok);
      IndexInsert(pos->second.tuple);
      insertion_order_.push_back(key);
      return {InsertOutcome::kNew, pos->second.tuple};
    }

    // MIN / MAX.
    if (it != rows_.end()) {
      const Value& current = it->second.tuple.arg(agg_col);
      const Value& candidate = entry.tuple.arg(agg_col);
      int cmp = candidate.Compare(current);
      bool improves =
          options_.agg == AggKind::kMin ? cmp < 0 : cmp > 0;
      if (!improves) {
        if (cmp == 0 && entry.tuple == it->second.tuple) {
          // Same extremum re-derived: merge provenance, refresh TTL.
          it->second.prov = ProvExpr::Plus(it->second.prov, entry.prov);
          it->second.deriv = MergeAlternatives(it->second.deriv, entry.deriv);
          it->second.expires_at =
              std::max(it->second.expires_at, entry.expires_at);
          return {InsertOutcome::kRefreshed, it->second.tuple};
        }
        return {InsertOutcome::kRejected, it->second.tuple};
      }
      IndexErase(it->second.tuple);
      Tuple stored = entry.tuple;
      it->second = std::move(entry);
      IndexInsert(stored);
      return {InsertOutcome::kReplaced, stored};
    }
    Tuple stored = entry.tuple;
    auto [pos, ok] = rows_.emplace(key, std::move(entry));
    PROVNET_CHECK(ok);
    IndexInsert(stored);
    insertion_order_.push_back(key);
    return {InsertOutcome::kNew, stored};
  }

  // --- Plain tables -------------------------------------------------------
  if (it != rows_.end()) {
    if (it->second.tuple == entry.tuple) {
      it->second.prov = ProvExpr::Plus(it->second.prov, entry.prov);
      it->second.deriv = MergeAlternatives(it->second.deriv, entry.deriv);
      it->second.expires_at = std::max(it->second.expires_at,
                                       entry.expires_at);
      return {InsertOutcome::kRefreshed, it->second.tuple};
    }
    // Key collision with different value: replace (P2 update semantics).
    IndexErase(it->second.tuple);
    Tuple stored = entry.tuple;
    it->second = std::move(entry);
    IndexInsert(stored);
    return {InsertOutcome::kReplaced, stored};
  }

  Tuple stored = entry.tuple;
  auto [pos, ok] = rows_.emplace(key, std::move(entry));
  PROVNET_CHECK(ok);
  IndexInsert(stored);
  insertion_order_.push_back(key);

  // FIFO eviction.
  if (options_.max_size >= 0 &&
      rows_.size() > static_cast<size_t>(options_.max_size)) {
    for (size_t i = 0; i < insertion_order_.size(); ++i) {
      auto victim = rows_.find(insertion_order_[i]);
      if (victim == rows_.end()) continue;
      if (victim->first == key) continue;  // never evict what we just added
      IndexErase(victim->second.tuple);
      rows_.erase(victim);
      insertion_order_.erase(insertion_order_.begin() +
                             static_cast<long>(i));
      break;
    }
  }
  return {InsertOutcome::kNew, stored};
}

const StoredTuple* Table::Find(const Tuple& tuple) const {
  auto it = rows_.find(KeyHash(tuple));
  if (it == rows_.end() || it->second.tuple != tuple) return nullptr;
  return &it->second;
}

StoredTuple* Table::FindMutable(const Tuple& tuple) {
  auto it = rows_.find(KeyHash(tuple));
  if (it == rows_.end() || it->second.tuple != tuple) return nullptr;
  return &it->second;
}

const StoredTuple* Table::FindGroup(const Tuple& tuple) const {
  auto it = rows_.find(KeyHash(tuple));
  return it == rows_.end() ? nullptr : &it->second;
}

std::vector<const StoredTuple*> Table::Scan() const {
  std::vector<const StoredTuple*> out;
  out.reserve(rows_.size());
  for (const auto& [key, entry] : rows_) out.push_back(&entry);
  return out;
}

std::vector<const StoredTuple*> Table::LookupByColumn(int col,
                                                      const Value& v) {
  auto idx_it = column_index_.find(col);
  if (idx_it == column_index_.end()) {
    // Build the index lazily.
    auto& buckets = column_index_[col];
    for (const auto& [key, entry] : rows_) {
      if (static_cast<size_t>(col) < entry.tuple.arity()) {
        buckets[entry.tuple.arg(static_cast<size_t>(col)).Hash()]
            .push_back(key);
      }
    }
    idx_it = column_index_.find(col);
  }
  std::vector<const StoredTuple*> out;
  auto bucket = idx_it->second.find(v.Hash());
  if (bucket == idx_it->second.end()) return out;
  for (uint64_t key : bucket->second) {
    auto row = rows_.find(key);
    if (row == rows_.end()) continue;
    if (static_cast<size_t>(col) >= row->second.tuple.arity()) continue;
    if (row->second.tuple.arg(static_cast<size_t>(col)) == v) {
      out.push_back(&row->second);
    }
  }
  return out;
}

std::vector<StoredTuple> Table::ExpireBefore(double now) {
  std::vector<StoredTuple> dropped;
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (it->second.expires_at >= 0 && it->second.expires_at < now) {
      IndexErase(it->second.tuple);
      witnesses_.erase(it->first);
      dropped.push_back(std::move(it->second));
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

std::optional<StoredTuple> Table::Remove(const Tuple& tuple) {
  uint64_t key = KeyHash(tuple);
  auto it = rows_.find(key);
  if (it == rows_.end() || it->second.tuple != tuple) return std::nullopt;
  IndexErase(it->second.tuple);
  witnesses_.erase(key);
  StoredTuple removed = std::move(it->second);
  rows_.erase(it);
  return removed;
}

std::string Table::ToString() const {
  std::vector<std::string> lines;
  for (const auto& [key, entry] : rows_) lines.push_back(entry.tuple.ToString());
  std::sort(lines.begin(), lines.end());
  return name_ + " (" + std::to_string(rows_.size()) + " rows)\n  " +
         StrJoin(lines, "\n  ");
}

}  // namespace provnet
