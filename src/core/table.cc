#include "core/table.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "obs/mem.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

namespace provnet {

namespace {
// Relaxed atomic: worker shards copy StoredTuples concurrently during
// parallel epochs, and the total (a commutative sum) is what tests assert —
// it is identical at every thread count.
std::atomic<uint64_t> g_stored_tuple_copies{0};

// Hash of the tuple's values on the mask's columns (ascending column
// order). False when the tuple lacks one of the columns (not indexable
// under that mask — such tuples can never match an equality on it).
bool MaskHash(const Tuple& tuple, uint64_t mask, uint64_t* out) {
  uint64_t h = Mix64(mask);
  for (int col = 0; col < 64 && (mask >> col) != 0; ++col) {
    if ((mask & (1ull << col)) == 0) continue;
    if (static_cast<size_t>(col) >= tuple.arity()) return false;
    h = HashCombine(h, tuple.arg(static_cast<size_t>(col)).Hash());
  }
  *out = h;
  return true;
}
}  // namespace

StoredTuple::StoredTuple(const StoredTuple& other)
    : tuple(other.tuple),
      inserted_at(other.inserted_at),
      expires_at(other.expires_at),
      prov(other.prov),
      deriv(other.deriv),
      asserted_by(other.asserted_by),
      origin(other.origin),
      from_node(other.from_node),
      rule(other.rule),
      deriv_id(other.deriv_id) {
  g_stored_tuple_copies.fetch_add(1, std::memory_order_relaxed);
}

StoredTuple& StoredTuple::operator=(const StoredTuple& other) {
  if (this != &other) {
    tuple = other.tuple;
    inserted_at = other.inserted_at;
    expires_at = other.expires_at;
    prov = other.prov;
    deriv = other.deriv;
    asserted_by = other.asserted_by;
    origin = other.origin;
    from_node = other.from_node;
    rule = other.rule;
    deriv_id = other.deriv_id;
    g_stored_tuple_copies.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

uint64_t StoredTuple::CopyCount() {
  return g_stored_tuple_copies.load(std::memory_order_relaxed);
}
void StoredTuple::ResetCopyCount() {
  g_stored_tuple_copies.store(0, std::memory_order_relaxed);
}

Table::Table(std::string name, TableOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (options_.agg != AggKind::kNone) {
    PROVNET_CHECK(options_.agg_column >= 0)
        << "aggregate table needs an aggregate column";
  }
}

Table::~Table() {
  obs::MemAccounting& mem = obs::MemAccounting::Global();
  if (accounted_row_bytes_ > 0) {
    mem.Sub(obs::MemSubsystem::kTableRows, accounted_row_bytes_);
  }
  if (accounted_index_bytes_ > 0) {
    mem.Sub(obs::MemSubsystem::kTableIndexes, accounted_index_bytes_);
  }
}

namespace {
// Stable per-row estimate: the StoredTuple shell, predicate name, argument
// slots, and the multimap node overhead. Depends only on the predicate and
// arity, both invariant across the in-place replace paths, so those paths
// need no hooks.
uint64_t RowAccountedBytes(const StoredTuple& entry) {
  return sizeof(StoredTuple) + entry.tuple.predicate().size() +
         entry.tuple.arity() * sizeof(Value) + 3 * sizeof(void*);
}
// One column-index bucket slot: the entry pointer plus amortized bucket
// overhead.
constexpr uint64_t kIndexEntryAccountedBytes = 3 * sizeof(void*);
}  // namespace

void Table::ChargeRow(const StoredTuple& entry) {
  uint64_t b = RowAccountedBytes(entry);
  accounted_row_bytes_ += b;
  obs::MemAccounting::Global().Add(obs::MemSubsystem::kTableRows, b);
}

void Table::ReleaseRow(const StoredTuple& entry) {
  uint64_t b = RowAccountedBytes(entry);
  accounted_row_bytes_ -= b > accounted_row_bytes_ ? accounted_row_bytes_ : b;
  obs::MemAccounting::Global().Sub(obs::MemSubsystem::kTableRows, b);
}

void Table::ChargeIndexEntries(uint64_t n) {
  if (n == 0) return;
  uint64_t b = n * kIndexEntryAccountedBytes;
  accounted_index_bytes_ += b;
  obs::MemAccounting::Global().Add(obs::MemSubsystem::kTableIndexes, b);
}

void Table::ReleaseIndexEntries(uint64_t n) {
  if (n == 0) return;
  uint64_t b = n * kIndexEntryAccountedBytes;
  accounted_index_bytes_ -= b > accounted_index_bytes_ ? accounted_index_bytes_
                                                       : b;
  obs::MemAccounting::Global().Sub(obs::MemSubsystem::kTableIndexes, b);
}

uint64_t Table::KeyHash(const Tuple& tuple) const {
  uint64_t h = Fnv1a64(name_);
  if (options_.key_columns.empty()) {
    return HashCombine(h, tuple.Hash());
  }
  for (int col : options_.key_columns) {
    PROVNET_CHECK(col >= 0 && static_cast<size_t>(col) < tuple.arity())
        << "key column out of range for " << tuple.ToString();
    h = HashCombine(h, tuple.arg(static_cast<size_t>(col)).Hash());
  }
  return h;
}

bool Table::SameKey(const Tuple& a, const Tuple& b) const {
  if (options_.key_columns.empty()) return a == b;
  for (int col : options_.key_columns) {
    size_t c = static_cast<size_t>(col);
    if (c >= a.arity() || c >= b.arity()) return false;
    if (!(a.arg(c) == b.arg(c))) return false;
  }
  return true;
}

std::unordered_map<uint64_t, Table::WitnessDerivs>& Table::WitnessesFor(
    uint64_t key, const Tuple& tuple) {
  std::vector<WitnessChain>& chain = witnesses_[key];
  for (WitnessChain& w : chain) {
    if (SameKey(w.group, tuple)) return w.seen;
  }
  chain.push_back(WitnessChain{tuple, {}});
  return chain.back().seen;
}

void Table::WitnessErase(uint64_t key, const Tuple& tuple) {
  auto it = witnesses_.find(key);
  if (it == witnesses_.end()) return;
  auto& chain = it->second;
  chain.erase(std::remove_if(chain.begin(), chain.end(),
                             [&](const WitnessChain& w) {
                               return SameKey(w.group, tuple);
                             }),
              chain.end());
  if (chain.empty()) witnesses_.erase(it);
}

Table::RowMap::iterator Table::FindRow(uint64_t key, const Tuple& tuple) {
  auto [begin, end] = rows_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (SameKey(it->second.tuple, tuple)) return it;
  }
  return rows_.end();
}

Table::RowMap::const_iterator Table::FindRow(uint64_t key,
                                             const Tuple& tuple) const {
  auto [begin, end] = rows_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (SameKey(it->second.tuple, tuple)) return it;
  }
  return rows_.end();
}

void Table::IndexInsert(const StoredTuple* entry) {
  uint64_t added = 0;
  for (auto& [mask, buckets] : column_index_) {
    uint64_t h;
    if (MaskHash(entry->tuple, mask, &h)) {
      buckets[h].push_back(entry);
      ++added;
    }
  }
  ChargeIndexEntries(added);
}

void Table::IndexErase(const StoredTuple* entry) {
  uint64_t removed = 0;
  for (auto& [mask, buckets] : column_index_) {
    uint64_t h;
    if (!MaskHash(entry->tuple, mask, &h)) continue;
    auto it = buckets.find(h);
    if (it == buckets.end()) continue;
    auto& vec = it->second;
    size_t before = vec.size();
    vec.erase(std::remove(vec.begin(), vec.end(), entry), vec.end());
    removed += before - vec.size();
  }
  ReleaseIndexEntries(removed);
}

void Table::OrderPush(const StoredTuple* entry) {
  if (options_.max_size < 0) return;
  insertion_order_.push_back(entry);
}

void Table::OrderErase(const StoredTuple* entry) {
  if (options_.max_size < 0) return;
  insertion_order_.erase(
      std::remove(insertion_order_.begin(), insertion_order_.end(), entry),
      insertion_order_.end());
}

void Table::EvictOver(const StoredTuple* just_inserted) {
  if (options_.max_size < 0 ||
      rows_.size() <= static_cast<size_t>(options_.max_size)) {
    return;
  }
  for (size_t i = 0; i < insertion_order_.size(); ++i) {
    const StoredTuple* victim = insertion_order_[i];
    if (victim == just_inserted) continue;  // never evict what we just added
    uint64_t key = KeyHash(victim->tuple);
    auto [begin, end] = rows_.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (&it->second != victim) continue;
      IndexErase(victim);
      insertion_order_.erase(insertion_order_.begin() +
                             static_cast<long>(i));
      ReleaseRow(it->second);
      rows_.erase(it);
      return;
    }
  }
}

bool Table::MergeRefresh(StoredTuple& row, StoredTuple& entry) {
  if (dedup_refresh_) {
    if (row.deriv != nullptr || entry.deriv != nullptr) {
      DerivationPtr merged = MergeAlternatives(row.deriv, entry.deriv);
      if (row.deriv != nullptr && merged != nullptr &&
          merged->ContentDigest() == row.deriv->ContentDigest()) {
        return true;  // every incoming alternative was already stored
      }
      row.prov = ProvExpr::Plus(row.prov, entry.prov);
      row.deriv = std::move(merged);
      return false;
    }
    // No trees (condensed/none): duplicate iff the incoming annotation is
    // already one of the stored Plus alternatives.
    std::function<bool(const ProvExpr&)> contains =
        [&](const ProvExpr& stored) {
          if (stored.Equals(entry.prov)) return true;
          if (stored.kind() == ProvExprKind::kPlus) {
            return contains(stored.left()) || contains(stored.right());
          }
          return false;
        };
    if (contains(row.prov)) return true;
    row.prov = ProvExpr::Plus(row.prov, entry.prov);
    return false;
  }
  row.prov = ProvExpr::Plus(row.prov, entry.prov);
  row.deriv = MergeAlternatives(row.deriv, entry.deriv);
  return false;
}

InsertResult Table::Insert(StoredTuple entry, double now) {
  entry.inserted_at = now;
  if (entry.expires_at < 0 && options_.default_ttl >= 0) {
    entry.expires_at = now + options_.default_ttl;
  }

  uint64_t key = KeyHash(entry.tuple);
  auto it = FindRow(key, entry.tuple);

  // --- Aggregate tables ------------------------------------------------
  if (options_.agg != AggKind::kNone) {
    size_t agg_col = static_cast<size_t>(options_.agg_column);
    PROVNET_CHECK(agg_col < entry.tuple.arity());

    if (options_.agg == AggKind::kCount) {
      auto& wit = WitnessesFor(key, entry.tuple);
      // Multiset of derivation identities: inserting the same derivation
      // twice (pipelined semi-naive emits it once per same-epoch body
      // delta) is a no-op, and deletions retire derivations one at a time
      // (RemoveWitness). Unidentified derivations are refcounted blind.
      WitnessDerivs& derivs = wit[entry.tuple.Hash()];
      bool fresh = derivs.Dead();
      if (entry.deriv_id != 0) {
        derivs.ids.insert(entry.deriv_id);
      } else {
        ++derivs.anonymous;
      }
      int64_t count = static_cast<int64_t>(wit.size());
      std::vector<Value> args = entry.tuple.args();
      args[agg_col] = Value::Int(count);
      Tuple stored(entry.tuple.predicate(), std::move(args));
      if (!fresh && it != rows_.end()) {
        // Duplicate witness: merge provenance only.
        bool dup = MergeRefresh(it->second, entry);
        return {InsertOutcome::kRefreshed, it->second.tuple, dup};
      }
      StoredTuple agg_entry = std::move(entry);
      agg_entry.tuple = stored;
      if (it != rows_.end()) {
        agg_entry.prov = ProvExpr::Plus(it->second.prov, agg_entry.prov);
        agg_entry.deriv = MergeAlternatives(it->second.deriv, agg_entry.deriv);
        // The count changed but the group (and FIFO position) did not:
        // swap the new tuple in place, keeping the entry's address stable.
        IndexErase(&it->second);
        it->second = std::move(agg_entry);
        IndexInsert(&it->second);
        return {InsertOutcome::kReplaced, it->second.tuple};
      }
      auto pos = rows_.emplace(key, std::move(agg_entry));
      ChargeRow(pos->second);
      IndexInsert(&pos->second);
      OrderPush(&pos->second);
      return {InsertOutcome::kNew, pos->second.tuple};
    }

    // MIN / MAX.
    if (it != rows_.end()) {
      const Value& current = it->second.tuple.arg(agg_col);
      const Value& candidate = entry.tuple.arg(agg_col);
      int cmp = candidate.Compare(current);
      bool improves =
          options_.agg == AggKind::kMin ? cmp < 0 : cmp > 0;
      if (!improves) {
        if (cmp == 0 && entry.tuple == it->second.tuple) {
          // Same extremum re-derived: merge provenance, refresh TTL.
          bool dup = MergeRefresh(it->second, entry);
          it->second.expires_at =
              std::max(it->second.expires_at, entry.expires_at);
          return {InsertOutcome::kRefreshed, it->second.tuple, dup};
        }
        return {InsertOutcome::kRejected, it->second.tuple};
      }
      IndexErase(&it->second);
      Tuple stored = entry.tuple;
      it->second = std::move(entry);
      IndexInsert(&it->second);
      return {InsertOutcome::kReplaced, stored};
    }
    Tuple stored = entry.tuple;
    auto pos = rows_.emplace(key, std::move(entry));
    ChargeRow(pos->second);
    IndexInsert(&pos->second);
    OrderPush(&pos->second);
    return {InsertOutcome::kNew, stored};
  }

  // --- Plain tables -------------------------------------------------------
  if (it != rows_.end()) {
    if (it->second.tuple == entry.tuple) {
      bool dup = MergeRefresh(it->second, entry);
      it->second.expires_at = std::max(it->second.expires_at,
                                       entry.expires_at);
      return {InsertOutcome::kRefreshed, it->second.tuple, dup};
    }
    // Same primary key, different value: replace (P2 update semantics).
    IndexErase(&it->second);
    Tuple stored = entry.tuple;
    it->second = std::move(entry);
    IndexInsert(&it->second);
    return {InsertOutcome::kReplaced, stored};
  }

  Tuple stored = entry.tuple;
  auto pos = rows_.emplace(key, std::move(entry));
  ChargeRow(pos->second);
  IndexInsert(&pos->second);
  OrderPush(&pos->second);
  EvictOver(&pos->second);
  return {InsertOutcome::kNew, stored};
}

const StoredTuple* Table::Find(const Tuple& tuple) const {
  auto it = FindRow(KeyHash(tuple), tuple);
  if (it == rows_.end() || it->second.tuple != tuple) return nullptr;
  return &it->second;
}

StoredTuple* Table::FindMutable(const Tuple& tuple) {
  auto it = FindRow(KeyHash(tuple), tuple);
  if (it == rows_.end() || it->second.tuple != tuple) return nullptr;
  return &it->second;
}

const StoredTuple* Table::FindGroup(const Tuple& tuple) const {
  auto it = FindRow(KeyHash(tuple), tuple);
  return it == rows_.end() ? nullptr : &it->second;
}

std::vector<const StoredTuple*> Table::Scan() const {
  std::vector<const StoredTuple*> out;
  out.reserve(rows_.size());
  for (const auto& [key, entry] : rows_) out.push_back(&entry);
  return out;
}

const std::vector<const StoredTuple*>* Table::EqBucket(const ColumnEq* eqs,
                                                       size_t n) {
  uint64_t mask = 0;
  for (size_t i = 0; i < n; ++i) {
    PROVNET_CHECK(eqs[i].col >= 0 && eqs[i].col < 64)
        << "index column out of range";
    mask |= 1ull << eqs[i].col;
  }
  auto idx_it = column_index_.find(mask);
  if (idx_it == column_index_.end()) {
    // Build the column set's index lazily.
    auto& buckets = column_index_[mask];
    uint64_t added = 0;
    for (const auto& [key, entry] : rows_) {
      uint64_t h;
      if (MaskHash(entry.tuple, mask, &h)) {
        buckets[h].push_back(&entry);
        ++added;
      }
    }
    ChargeIndexEntries(added);
    idx_it = column_index_.find(mask);
  }
  // `eqs` arrives in ascending column order, matching MaskHash's mixing
  // order.
  uint64_t h = Mix64(mask);
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, eqs[i].value->Hash());
  auto bucket = idx_it->second.find(h);
  return bucket == idx_it->second.end() ? nullptr : &bucket->second;
}

std::vector<const StoredTuple*> Table::LookupByColumn(int col,
                                                      const Value& v) {
  std::vector<const StoredTuple*> out;
  ColumnEq eq{col, &v};
  const std::vector<const StoredTuple*>* bucket = EqBucket(&eq, 1);
  if (bucket == nullptr) return out;
  for (const StoredTuple* entry : *bucket) {
    if (static_cast<size_t>(col) >= entry->tuple.arity()) continue;
    if (entry->tuple.arg(static_cast<size_t>(col)) == v) {
      out.push_back(entry);
    }
  }
  return out;
}

std::vector<StoredTuple> Table::ExpireBefore(double now) {
  std::vector<StoredTuple> dropped;
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (it->second.expires_at >= 0 && it->second.expires_at < now) {
      IndexErase(&it->second);
      OrderErase(&it->second);
      WitnessErase(it->first, it->second.tuple);
      ReleaseRow(it->second);
      dropped.push_back(std::move(it->second));
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

Table::WitnessRemoval Table::RemoveWitness(const Tuple& candidate,
                                           uint64_t deriv_id) {
  WitnessRemoval out;
  if (options_.agg != AggKind::kCount || deriv_id == 0) return out;
  uint64_t key = KeyHash(candidate);
  auto wit_it = witnesses_.find(key);
  if (wit_it == witnesses_.end()) return out;
  WitnessChain* chain = nullptr;
  for (WitnessChain& w : wit_it->second) {
    if (SameKey(w.group, candidate)) {
      chain = &w;
      break;
    }
  }
  if (chain == nullptr) return out;
  auto seen_it = chain->seen.find(candidate.Hash());
  if (seen_it == chain->seen.end()) return out;
  // Unknown identity: this derivation was never counted here (or rode in
  // anonymously). Only a recomputation can answer it.
  if (seen_it->second.ids.erase(deriv_id) == 0) return out;

  if (!seen_it->second.Dead()) {
    out.kind = WitnessRemoval::Kind::kRefcounted;
    return out;
  }
  chain->seen.erase(seen_it);
  size_t new_count = chain->seen.size();

  auto row = FindRow(key, candidate);
  if (row == rows_.end()) return out;  // inconsistent: caller falls back
  out.old_entry = row->second;  // annotation and all — the cascade's delta

  if (new_count == 0) {
    IndexErase(&row->second);
    OrderErase(&row->second);
    WitnessErase(key, candidate);
    ReleaseRow(row->second);
    rows_.erase(row);
    out.kind = WitnessRemoval::Kind::kGroupEmptied;
    return out;
  }

  size_t agg_col = static_cast<size_t>(options_.agg_column);
  std::vector<Value> args = row->second.tuple.args();
  args[agg_col] = Value::Int(static_cast<int64_t>(new_count));
  Tuple updated(row->second.tuple.predicate(), std::move(args));
  // Swap the decremented count in place: same group key, same FIFO slot,
  // stable entry address. The merged annotation is left as-is — COUNT
  // annotations are approximate by design (they cannot express "n distinct
  // witnesses"), which is also why restriction pruning never trusts them.
  IndexErase(&row->second);
  row->second.tuple = updated;
  IndexInsert(&row->second);
  out.new_tuple = std::move(updated);
  out.kind = WitnessRemoval::Kind::kCountChanged;
  return out;
}

std::optional<StoredTuple> Table::Remove(const Tuple& tuple) {
  uint64_t key = KeyHash(tuple);
  auto it = FindRow(key, tuple);
  if (it == rows_.end() || it->second.tuple != tuple) return std::nullopt;
  IndexErase(&it->second);
  OrderErase(&it->second);
  WitnessErase(key, it->second.tuple);
  ReleaseRow(it->second);
  StoredTuple removed = std::move(it->second);
  rows_.erase(it);
  return removed;
}

std::string Table::ToString() const {
  std::vector<std::string> lines;
  for (const auto& [key, entry] : rows_) lines.push_back(entry.tuple.ToString());
  std::sort(lines.begin(), lines.end());
  return name_ + " (" + std::to_string(rows_.size()) + " rows)\n  " +
         StrJoin(lines, "\n  ");
}

}  // namespace provnet
