#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <limits>

#include "datalog/analysis.h"
#include "dynamics/delta.h"
#include "obs/mem.h"
#include "provenance/sampling.h"
#include "store/arena.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace provnet {

// Worker lanes bind their ExecSlot here for the duration of a parallel
// phase; null means "the main slot" (see Engine::exec()).
thread_local Engine::ExecSlot* Engine::tls_slot_ = nullptr;

namespace {

// Human label of a wire message tag, for the per-link byte counters and
// trace events.
const char* MsgKindName(uint8_t kind) {
  switch (kind) {
    case kMsgTuple:
      return "tuple";
    case kMsgProvRequest:
      return "prov_request";
    case kMsgProvResponse:
      return "prov_response";
    case kMsgRetract:
      return "retract";
  }
  return "?";
}

// Number of SecurityEventKind values (adversary/audit.h); the per-kind
// rejection counters are pre-registered so every snapshot has the full
// schema even when a run sees no attacks.
constexpr size_t kNumSecurityEventKinds = 11;

}  // namespace

const char* ProvModeName(ProvMode mode) {
  switch (mode) {
    case ProvMode::kNone:
      return "none";
    case ProvMode::kCondensed:
      return "condensed";
    case ProvMode::kFull:
      return "full";
    case ProvMode::kPointers:
      return "pointers";
  }
  return "?";
}

std::string RunStats::ToString() const {
  std::string out = StrFormat(
      "wall=%.3fs sim=%.3fs msgs=%llu bytes=%llu (tuple=%llu auth=%llu "
      "prov=%llu) events=%llu derivations=%llu candidates=%llu signs=%llu "
      "verifies=%llu auth_failures=%llu replays_rejected=%llu "
      "retracts_rejected=%llu retractions=%llu rederivations=%llu "
      "prov_queries=%llu prov_query_bytes=%llu prov_responses_rejected=%llu "
      "prov_frames_rejected=%llu",
      wall_seconds, sim_seconds, static_cast<unsigned long long>(messages),
      static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(tuple_bytes),
      static_cast<unsigned long long>(auth_bytes),
      static_cast<unsigned long long>(prov_bytes),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(derivations),
      static_cast<unsigned long long>(join_candidates),
      static_cast<unsigned long long>(signs),
      static_cast<unsigned long long>(verifies),
      static_cast<unsigned long long>(auth_failures),
      static_cast<unsigned long long>(replays_rejected),
      static_cast<unsigned long long>(retracts_rejected),
      static_cast<unsigned long long>(retractions),
      static_cast<unsigned long long>(rederivations),
      static_cast<unsigned long long>(prov_queries),
      static_cast<unsigned long long>(prov_query_bytes),
      static_cast<unsigned long long>(prov_responses_rejected),
      static_cast<unsigned long long>(prov_frames_rejected));
  // Peak accounted memory (obs::MemAccounting) — present only when byte
  // accounting was enabled for the run, so golden-stats comparisons that
  // toggle observability exclude it explicitly.
  if (!peak_mem.empty()) {
    out += " peak_mem[";
    out += peak_mem;
    out += ']';
  }
  return out;
}

Engine::~Engine() = default;

Engine::Engine(const Topology& topo, EngineOptions options)
    : topo_(topo),
      options_(std::move(options)),
      net_(topo.num_nodes, options_.link_latency),
      keystore_(options_.seed, options_.rsa_bits),
      auth_(&keystore_) {
  // The sequential lane queues delta events straight onto the engine queue;
  // wired before Init so program-fact insertion goes through it too.
  main_slot_.events = &events_;
}

Result<std::unique_ptr<Engine>> Engine::Create(const Topology& topo,
                                               const std::string& source,
                                               EngineOptions options) {
  PROVNET_ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  return Create(topo, std::move(program), std::move(options));
}

Result<std::unique_ptr<Engine>> Engine::Create(const Topology& topo,
                                               Program program,
                                               EngineOptions options) {
  // PROVNET_FAULT_PLAN mirrors PROVNET_THREADS: a spec like "loss=0.01,
  // seed=7" arms a uniform fault plan for runs that never touch
  // EngineOptions (CI's fault matrix), unless the caller installed one.
  if (options.fault_plan.Empty()) {
    if (const char* env = std::getenv("PROVNET_FAULT_PLAN");
        env != nullptr && env[0] != '\0') {
      bool ok = false;
      options.fault_plan = FaultPlan::ParseSpec(env, &ok);
      if (!ok) {
        return InvalidArgumentError(std::string("bad PROVNET_FAULT_PLAN: ") +
                                    env);
      }
    }
  }
  std::unique_ptr<Engine> engine(new Engine(topo, std::move(options)));
  PROVNET_RETURN_IF_ERROR(engine->Init(std::move(program)));
  return engine;
}

Status Engine::Init(Program program) {
  dynamics_ = std::make_unique<DeltaState>();
  PROVNET_RETURN_IF_ERROR(AnalyzeProgram(program));
  PROVNET_ASSIGN_OR_RETURN(LocalizedProgram localized,
                           LocalizeProgram(program));
  PROVNET_ASSIGN_OR_RETURN(
      plan_, Plan::Compile(localized, program.materialize,
                           options_.default_ttl));

  if (!options_.node_names.empty() &&
      options_.node_names.size() != topo_.num_nodes) {
    return InvalidArgumentError("node_names size must match topology");
  }

  contexts_.reserve(topo_.num_nodes);
  for (NodeId id = 0; id < topo_.num_nodes; ++id) {
    Principal principal = options_.node_names.empty()
                              ? "n" + std::to_string(id)
                              : options_.node_names[id];
    // Deterministic provenance variable ids: one per principal, in node
    // order, interned up front so all nodes agree.
    registry_.Intern(principal);
    node_of_.emplace(principal, id);
    // Pre-populate the send-sequence map so worker lanes never insert into
    // it concurrently (operator[] would have default-constructed 0 anyway).
    send_seq_.emplace(principal, 0);
    contexts_.push_back(
        std::make_unique<NodeContext>(id, std::move(principal), &plan_));
  }
  // Per-node causal span counters (core/causal.h). Sized up front: a lane
  // only touches the counter of a node it owns during the wave, so minting
  // never allocates or races.
  causal_seqs_.assign(topo_.num_nodes, 0);

  // Durable provenance store (src/store/): the hash-consing arena backs
  // every kFull derivation and annotation, and a non-empty archive_dir
  // moves each node's offline archive onto disk. Opening replays any
  // existing log at that path, so recovery completes before the first
  // fact flows.
  if (options_.prov_mode == ProvMode::kFull) {
    arena_ = std::make_unique<store::ProvArena>();
  }
  if (options_.record_offline && !options_.archive_dir.empty()) {
    for (const auto& ctx : contexts_) {
      PROVNET_RETURN_IF_ERROR(ctx->offline_store().Open(
          options_.archive_dir + "/node" + std::to_string(ctx->id()) +
              ".prov",
          options_.archive_page_bytes, options_.archive_cache_pages));
    }
  }

  // Pre-derive key material so PKI setup is not charged to query completion
  // time (the paper measures steady-state execution, not key distribution).
  if (options_.authenticate) {
    for (const auto& ctx : contexts_) {
      PROVNET_ASSIGN_OR_RETURN(const RsaKeyPair* kp,
                               keystore_.KeyPairFor(ctx->principal()));
      (void)kp;
    }
  }

  // Plan and principals are fixed: register every instrument and resolve
  // the hot-path handles.
  InitObs();
  // The main lane writes the registry-backed cells directly.
  main_slot_.cells = cells_;

  net_.SetHandler([this](NodeId to, NodeId from, const Bytes& payload) {
    Status s = HandleMessage(to, from, payload);
    if (!s.ok() && async_error_.ok()) async_error_ = s;
  });

  // Fault-tolerant transport (src/net/faults.*), armed before any fact
  // flows so every wire message of the run is acked/retransmitted.
  net_.SetObsRegistry(&obs_);
  if (TransportActive()) {
    net_.EnableTransport(options_.transport);
    // Loss recovery re-derives upstream and re-sends, so receivers see
    // content-identical refreshes; dedup keeps them from reshaping stored
    // annotations, which must match the fault-free fixpoint bytes.
    for (auto& ctx : contexts_) ctx->SetDedupRefresh(true);
  }
  if (!options_.fault_plan.Empty()) {
    net_.InstallFaultPlan(options_.fault_plan);
  }
  base_fact_journal_.resize(topo_.num_nodes);
  journal_digests_.resize(topo_.num_nodes);
  for (const CrashSpec& c : options_.fault_plan.crashes) {
    if (c.node >= topo_.num_nodes) {
      return InvalidArgumentError("fault plan crashes an unknown node");
    }
    fault_events_.push_back(FaultEvent{c.crash_at, c.node, false});
    if (c.restart_at >= 0) {
      fault_events_.push_back(FaultEvent{c.restart_at, c.node, true});
    }
  }
  std::sort(fault_events_.begin(), fault_events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.node != b.node) return a.node < b.node;
              return a.restart < b.restart;  // a crash precedes its restart
            });

  // Program facts: stored at their first address-valued argument (or the
  // declared location attribute).
  for (const Atom& fact : program.facts) {
    std::vector<Value> args;
    args.reserve(fact.args.size());
    for (const Term& t : fact.args) args.push_back(t.constant);
    int loc = fact.loc_index >= 0 ? fact.loc_index : 0;
    if (static_cast<size_t>(loc) >= args.size() ||
        args[static_cast<size_t>(loc)].kind() != ValueKind::kAddress) {
      return InvalidArgumentError("fact " + fact.predicate +
                                  " has no address to place it at");
    }
    NodeId node = args[static_cast<size_t>(loc)].AsAddress();
    if (node >= topo_.num_nodes) {
      return InvalidArgumentError("fact " + fact.predicate +
                                  " placed at unknown node");
    }
    PROVNET_RETURN_IF_ERROR(
        InsertFact(node, Tuple(fact.predicate, std::move(args))));
  }
  return OkStatus();
}

void Engine::InitObs() {
  cells_.deliveries = obs_.GetCounter("engine.deliveries");
  cells_.events = obs_.GetCounter("engine.events");
  cells_.retractions = obs_.GetCounter("engine.retractions");
  cells_.rederivations = obs_.GetCounter("engine.rederivations");
  cells_.tuple_bytes = obs_.GetCounter("net.tuple_bytes");
  cells_.auth_bytes = obs_.GetCounter("net.auth_bytes");
  cells_.prov_bytes = obs_.GetCounter("net.prov_bytes");
  cells_.auth_failures = obs_.GetCounter("verify.auth_failures");
  cells_.replays_rejected = obs_.GetCounter("verify.replays_rejected");
  cells_.retracts_rejected = obs_.GetCounter("verify.retracts_rejected");
  cells_.prov_queries = obs_.GetCounter("provquery.queries");
  cells_.prov_query_bytes = obs_.GetCounter("provquery.bytes");
  cells_.prov_responses_rejected =
      obs_.GetCounter("provquery.responses_rejected");
  cells_.prov_frames_rejected = obs_.GetCounter("provquery.frames_rejected");
  cells_.query_offline_hits = obs_.GetCounter("provquery.offline_hits");

  // Durable-store instruments (src/store/), registered only when the
  // subsystem is active so none/condensed runs keep exactly their
  // pre-store snapshot key set (golden telemetry).
  if (options_.prov_mode == ProvMode::kFull) {
    cells_.store_interned_nodes = obs_.GetCounter("store.interned_nodes");
    cells_.store_interned_hits = obs_.GetCounter("store.interned_hits");
  }
  if (options_.record_offline) {
    cells_.archive_page_reads = obs_.GetCounter("store.archive_page_reads");
    cells_.archive_page_writes = obs_.GetCounter("store.archive_page_writes");
    cells_.archive_compactions = obs_.GetCounter("store.archive_compactions");
  }

  const std::vector<CompiledRule>& rules = plan_.rules();
  cells_.rule_firings.reserve(rules.size());
  cells_.rule_candidates.reserve(rules.size());
  cells_.rule_derivations.reserve(rules.size());
  for (const CompiledRule& cr : rules) {
    obs::Labels labels{{"rule", cr.prog.label}};
    cells_.rule_firings.push_back(obs_.GetCounter("rule.firings", labels));
    cells_.rule_candidates.push_back(
        obs_.GetCounter("rule.candidates", labels));
    cells_.rule_derivations.push_back(
        obs_.GetCounter("rule.derivations", labels));
  }

  cells_.security_events.reserve(kNumSecurityEventKinds);
  for (size_t k = 0; k < kNumSecurityEventKinds; ++k) {
    cells_.security_events.push_back(obs_.GetCounter(
        "security.events",
        {{"kind", SecurityEventKindName(static_cast<SecurityEventKind>(k))}}));
  }

  cells_.query_latency = obs_.GetHistogram("provquery.latency_s");
  cells_.query_hop_latency = obs_.GetHistogram("provquery.hop_latency_s");

  // Ring-buffer overwrites are silent data loss for trace consumers;
  // surface them. Only the main thread's Tracer::Emit increments the cell
  // (worker-lane trace events are replayed at commit), so no ObsCells slot
  // is needed.
  tracer_.SetDropCounter(obs_.GetCounter("trace.dropped_spans"));
}

RunStats Engine::StatsView() const {
  RunStats s;
  s.deliveries = cells_.deliveries->value;
  s.events = cells_.events->value;
  s.retractions = cells_.retractions->value;
  s.rederivations = cells_.rederivations->value;
  s.tuple_bytes = cells_.tuple_bytes->value;
  s.auth_bytes = cells_.auth_bytes->value;
  s.prov_bytes = cells_.prov_bytes->value;
  s.auth_failures = cells_.auth_failures->value;
  s.replays_rejected = cells_.replays_rejected->value;
  s.retracts_rejected = cells_.retracts_rejected->value;
  s.prov_queries = cells_.prov_queries->value;
  s.prov_query_bytes = cells_.prov_query_bytes->value;
  s.prov_responses_rejected = cells_.prov_responses_rejected->value;
  s.prov_frames_rejected = cells_.prov_frames_rejected->value;
  // Global totals recovered from the per-rule breakdowns.
  s.derivations = obs_.CounterTotal("rule.derivations");
  s.join_candidates = obs_.CounterTotal("rule.candidates");
  return s;
}

obs::Counter* Engine::LinkBytesCell(NodeId from, NodeId to, uint8_t msg_kind) {
  uint64_t key =
      (uint64_t(from) << 40) | (uint64_t(to) << 8) | uint64_t(msg_kind);
  auto it = link_cells_.find(key);
  if (it != link_cells_.end()) return it->second;
  obs::Counter* cell =
      obs_.GetCounter("net.link.bytes", {{"from", PrincipalOf(from)},
                                         {"to", PrincipalOf(to)},
                                         {"kind", MsgKindName(msg_kind)}});
  link_cells_.emplace(key, cell);
  return cell;
}

Principal Engine::PrincipalOf(NodeId id) const {
  PROVNET_CHECK(id < contexts_.size());
  return contexts_[id]->principal();
}

Result<NodeId> Engine::NodeOf(const Principal& principal) const {
  auto it = node_of_.find(principal);
  if (it != node_of_.end()) return it->second;
  return NotFoundError("no node for principal " + principal);
}

ProvExpr Engine::BaseAnnotation(const Principal& principal,
                                const Tuple& tuple) {
  ProvVar v = options_.prov_grain == ProvGrain::kPrincipal
                  ? registry_.Intern(principal)
                  : registry_.Intern(tuple.ToString());
  // In kFull mode every leaf goes through the arena, so annotations built
  // from the same variable share one node process-wide.
  return arena_ != nullptr ? arena_->InternVar(v) : ProvExpr::Var(v);
}

Status Engine::InsertLinkFacts() {
  for (const TopoEdge& e : topo_.edges) {
    Tuple link("link", {Value::Address(e.from), Value::Address(e.to),
                        Value::Int(e.cost)});
    PROVNET_RETURN_IF_ERROR(InsertFact(e.from, link));
  }
  return OkStatus();
}

Status Engine::InsertFact(NodeId node_id, const Tuple& tuple, double ttl) {
  if (node_id >= contexts_.size()) {
    return InvalidArgumentError("InsertFact: unknown node");
  }
  // Journal external base facts (digest-deduped): RestartNode replays this
  // per-node log, the crash model's stand-in for an operator's fact file
  // surviving on stable storage. DeleteFact un-journals.
  if (node_id < journal_digests_.size() &&
      journal_digests_[node_id].insert(tuple.Hash()).second) {
    base_fact_journal_[node_id].emplace_back(tuple, ttl);
  }
  // A base-fact insertion is a causal root: whatever cascade it triggers
  // starts a fresh trace rather than inheriting stale message context.
  exec().causal = CausalIds{};
  StoredTuple entry;
  entry.tuple = tuple;
  entry.origin = TupleOrigin::kBase;
  entry.asserted_by = PrincipalOf(node_id);
  entry.rule = kBaseRule;
  if (ttl >= 0) entry.expires_at = net_.now() + ttl;
  if (options_.prov_mode == ProvMode::kCondensed ||
      options_.prov_mode == ProvMode::kFull) {
    entry.prov = BaseAnnotation(entry.asserted_by, tuple);
  }
  if (options_.prov_mode == ProvMode::kFull) {
    DerivationPtr base = MakeBaseDerivation(tuple, node_id, entry.asserted_by,
                                            net_.now(), ttl);
    if (options_.authenticate) {
      PROVNET_ASSIGN_OR_RETURN(base,
                               SignDerivation(base, auth_,
                                              options_.says_level));
    }
    // Intern after signing so the arena copy carries the signature (RSA
    // signatures are deterministic per content+principal, so content-equal
    // nodes can never disagree about theirs).
    if (arena_ != nullptr) base = arena_->Canonical(base, nullptr);
    entry.deriv = std::move(base);
  }
  return DeliverLocal(node_id, std::move(entry), {}, kBaseRule);
}

Status Engine::DeliverLocal(NodeId node_id, StoredTuple entry,
                            std::vector<ProvChildRef> children,
                            const std::string& rule_label) {
  NodeContext& ctx = *contexts_[node_id];
  Table& table = ctx.TableFor(entry.tuple.predicate());
  TupleOrigin origin = entry.origin;
  NodeId from_node = entry.from_node;
  double expires_at = entry.expires_at;
  // Predicate->site index (grow-only): this node now potentially stores the
  // predicate, making it a candidate executing site for re-derivation. Only
  // the first fill needs recording, keeping the hot path free of it.
  if (table.size() == 0) {
    NotePredSite(entry.tuple.predicate(), node_id);
  }
  // Received tuples are recorded under the *asserting* principal (who says
  // them); unauthenticated traffic falls back to the transport-level sender.
  Principal asserted_by = entry.asserted_by;
  if (origin == TupleOrigin::kRemote && asserted_by.empty()) {
    asserted_by = PrincipalOf(from_node);
  }
  InsertResult result = table.Insert(std::move(entry), net_.now());
  ExecSlot& ex = exec();
  if (observer_ && result.outcome != InsertOutcome::kRejected) {
    if (ex.buffered) {
      // Worker lane: the observer is user code with arbitrary side effects;
      // replay it in canonical commit order.
      ExecSlot::Effect fx;
      fx.kind = ExecSlot::Effect::Kind::kObserver;
      fx.node = node_id;
      fx.observed = result.stored;
      fx.outcome = result.outcome;
      ex.effects->push_back(std::move(fx));
    } else {
      observer_(node_id, result.stored, result.outcome, net_.now());
    }
  }
  // Retraction-authorization bookkeeping: an aggregate group's stored
  // asserted_by rotates to the latest contributor, so every contributor is
  // remembered against the stable group digest — each may later retract
  // its own contribution.
  if (result.outcome != InsertOutcome::kRejected && !asserted_by.empty() &&
      table.options().agg != AggKind::kNone) {
    ctx.NoteCoAsserter(table.GroupDigest(result.stored), asserted_by);
  }

  switch (result.outcome) {
    case InsertOutcome::kNew:
    case InsertOutcome::kReplaced:
      RecordProvenance(node_id, result.stored, rule_label, origin, from_node,
                       asserted_by, std::move(children), expires_at);
      ex.events->push_back(PendingEvent{node_id, result.stored, ex.causal});
      break;
    case InsertOutcome::kRefreshed: {
      // Alternative derivation of an existing tuple: record it, and keep the
      // merged local annotation compact (re-condense when it outgrows the
      // threshold). A content-duplicate refresh (dedup_refresh: loss
      // recovery re-deriving what the node already holds) recorded nothing
      // new, so the provenance stores skip it too — archives stay
      // byte-identical to the fault-free run.
      if (!result.duplicate) {
        RecordProvenance(node_id, result.stored, rule_label, origin,
                         from_node, asserted_by, std::move(children),
                         expires_at);
      }
      // A refresh under a different principal is an additional assertion of
      // the same tuple; retraction authorization honors every asserter.
      const StoredTuple* merged_entry = table.Find(result.stored);
      if (merged_entry != nullptr && !asserted_by.empty() &&
          asserted_by != merged_entry->asserted_by) {
        ctx.NoteCoAsserter(DigestOf(result.stored), asserted_by);
      }
      if (options_.prov_mode == ProvMode::kCondensed) {
        StoredTuple* merged = table.FindMutable(result.stored);
        if (merged != nullptr &&
            merged->prov.NodeCount() > options_.condense_threshold) {
          merged->prov = Condense(merged->prov).ToExpr();
        }
      }
      break;
    }
    case InsertOutcome::kRejected:
      break;
  }
  return OkStatus();
}

bool Engine::RecordingPossible() const {
  bool recording = options_.prov_mode == ProvMode::kPointers ||
                   options_.record_online || options_.record_offline;
  return recording && options_.recording_enabled;
}

std::vector<ProvChildRef> Engine::BuildChildRefs(
    NodeId node_id, const std::vector<const StoredTuple*>& used) const {
  std::vector<ProvChildRef> children;
  children.reserve(used.size());
  for (const StoredTuple* child : used) {
    ProvChildRef ref;
    ref.node = node_id;
    ref.digest = DigestOf(child->tuple);
    ref.asserted_by = child->asserted_by;
    if (child->origin == TupleOrigin::kBase) {
      ref.is_base = true;
      ref.base_tuple = child->tuple;
    }
    children.push_back(std::move(ref));
  }
  return children;
}

void Engine::RecordProvenance(NodeId node_id, const Tuple& tuple,
                              const std::string& rule, TupleOrigin origin,
                              NodeId from_node, const Principal& asserted_by,
                              std::vector<ProvChildRef> children,
                              double expires_at) {
  if (!RecordingPossible()) return;
  if (options_.sample_k > 1) {
    TupleSampler sampler(options_.sample_k, options_.seed);
    if (!sampler.ShouldRecord(tuple)) return;
  }

  ProvRecord rec;
  rec.tuple = tuple;
  rec.location = node_id;
  rec.asserted_by = asserted_by;
  rec.created_at = net_.now();
  rec.expires_at = expires_at;
  switch (origin) {
    case TupleOrigin::kBase:
      rec.rule = kBaseRule;
      break;
    case TupleOrigin::kRemote: {
      rec.rule = "recv";
      ProvChildRef ref;
      ref.node = from_node;
      ref.digest = DigestOf(tuple);
      ref.asserted_by = asserted_by;
      rec.children.push_back(std::move(ref));
      break;
    }
    case TupleOrigin::kLocalRule:
      rec.rule = rule;
      rec.children = std::move(children);
      break;
  }

  bool online = options_.record_online ||
                options_.prov_mode == ProvMode::kPointers;
  if (online) contexts_[node_id]->online_store().Add(rec);
  if (options_.record_offline) {
    contexts_[node_id]->offline_store().Add(rec);
    RecordArchiveIo(node_id);
  }
}

void Engine::RecordArchiveIo(NodeId node) const {
  // exec() is non-const, but only to reach the lane's cell pointers — the
  // counters themselves are mutable registry state.
  ObsCells& cells = const_cast<Engine*>(this)->exec().cells;
  if (cells.archive_page_reads == nullptr) return;  // not registered
  store::ArchiveIo io = contexts_[node]->offline_store().TakeIo();
  cells.archive_page_reads->value += io.page_reads;
  cells.archive_page_writes->value += io.page_writes;
  cells.archive_compactions->value += io.compactions;
}

Status Engine::FlushDurableStores() {
  if (arena_ != nullptr && cells_.store_interned_nodes != nullptr) {
    store::ProvArena::Stats s = arena_->TakeStats();
    cells_.store_interned_nodes->value += s.interned_nodes;
    cells_.store_interned_hits->value += s.interned_hits;
  }
  if (options_.record_offline) {
    for (const auto& ctx : contexts_) {
      PROVNET_RETURN_IF_ERROR(ctx->offline_store().Flush());
      RecordArchiveIo(ctx->id());
    }
  }
  return OkStatus();
}

// --- Fail-stop crash & recovery (src/net/faults.*) --------------------------

double Engine::NextFaultEventTime() const {
  return next_fault_event_ < fault_events_.size()
             ? fault_events_[next_fault_event_].at
             : std::numeric_limits<double>::infinity();
}

Status Engine::ProcessFaultEventsUpTo(double t) {
  while (next_fault_event_ < fault_events_.size() &&
         fault_events_[next_fault_event_].at <= t) {
    const FaultEvent ev = fault_events_[next_fault_event_++];
    if (ev.at > net_.now()) net_.AdvanceTo(ev.at);
    if (ev.restart) {
      PROVNET_RETURN_IF_ERROR(RestartNode(ev.node));
    } else {
      PROVNET_RETURN_IF_ERROR(CrashNode(ev.node));
    }
  }
  return OkStatus();
}

Status Engine::CrashNode(NodeId node) {
  if (node >= contexts_.size()) {
    return InvalidArgumentError("CrashNode: unknown node");
  }
  if (net_.IsCrashed(node)) {
    return InvalidArgumentError("CrashNode: node is already down");
  }
  // Wire first — in-flight frames to/from the node vanish and peers start
  // burning their retry budgets — then memory, then the archive's unflushed
  // tail (torn off, exactly what a real fail-stop loses).
  net_.SetCrashed(node, true);
  contexts_[node]->ResetForCrash();
  if (faults_crashes_ == nullptr) {
    // Lazily registered so fault-free runs keep their golden key set.
    faults_crashes_ = obs_.GetCounter("faults.crashes");
  }
  ++faults_crashes_->value;
  if (tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.node = node;
    ev.kind = "crash";
    tracer_.Emit(std::move(ev));
  }
  return OkStatus();
}

Status Engine::RestartNode(NodeId node) {
  if (node >= contexts_.size()) {
    return InvalidArgumentError("RestartNode: unknown node");
  }
  if (!net_.IsCrashed(node)) {
    return InvalidArgumentError("RestartNode: node is not down");
  }
  // Transport back first: the node's links restart on a fresh frame
  // generation, so peers reset their dedup windows instead of discarding
  // the reborn node's traffic as stale.
  net_.SetCrashed(node, false);
  if (options_.record_offline && !options_.archive_dir.empty()) {
    // Replay the on-disk log: every intact frame survives; a torn tail
    // (records buffered past the last flush when the crash hit) is
    // truncated away.
    PROVNET_RETURN_IF_ERROR(contexts_[node]->offline_store().Open(
        options_.archive_dir + "/node" + std::to_string(node) + ".prov",
        options_.archive_page_bytes, options_.archive_cache_pages));
    RecordArchiveIo(node);
  }
  // Recovery is a network-wide bounce of every base fact, in two phases.
  // Phase 1 (here): delete each live node's base facts from the journal
  // ("stable storage"). The retraction cascade scrubs derivations and
  // their online provenance records everywhere — including derivation
  // records at live nodes whose heads were shipped to the wiped store.
  // Phase 2 (the run loop, once the over-deletion drains to quiescence):
  // reinsert everything and re-derive the fixpoint from stable inputs, so
  // peers re-send the reborn node the remote state it lost. Bouncing only
  // facts that *mention* the node is not enough — content-duplicate
  // refreshes at unaffected peers would be deduped and never propagate
  // downstream — and interleaving delete with reinsert livelocks on
  // cyclic topologies (see recovery_reinserts_).
  const std::vector<std::pair<Tuple, double>> replay =
      base_fact_journal_[node];  // copy: DeleteFact below mutates journals
  for (const auto& [tuple, ttl] : replay) {
    recovery_reinserts_.push_back(RecoveryReinsert{node, tuple, ttl});
  }
  for (NodeId m = 0; m < contexts_.size(); ++m) {
    if (m == node || net_.IsCrashed(m)) continue;
    const std::vector<std::pair<Tuple, double>> bounce =
        base_fact_journal_[m];
    for (const auto& [tuple, ttl] : bounce) {
      Status s = DeleteFact(m, tuple);
      // Tolerate a fact already gone (TTL expiry or churn beat us to it).
      if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
      recovery_reinserts_.push_back(RecoveryReinsert{m, tuple, ttl});
    }
  }
  if (faults_restarts_ == nullptr) {
    faults_restarts_ = obs_.GetCounter("faults.restarts");
  }
  ++faults_restarts_->value;
  if (tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.node = node;
    ev.kind = "restart";
    tracer_.Emit(std::move(ev));
  }
  return OkStatus();
}

Status Engine::ProcessEvent(const PendingEvent& event) {
  // Restore the causal context captured when the event was queued, so
  // cascades triggered by a remote delivery stay in the sender's trace.
  exec().causal = event.causal;
  NodeContext& ctx = *contexts_[event.node];
  const Table* table = ctx.FindTable(event.tuple.predicate());
  if (table == nullptr) return OkStatus();
  const StoredTuple* current = table->Find(event.tuple);
  // Stale event: the tuple was replaced (e.g. a better aggregate) before we
  // got to it.
  if (current == nullptr) return OkStatus();
  StoredTuple delta = *current;  // copy: tables mutate during firing

  const std::vector<Strand>* strands =
      plan_.StrandsFor(event.tuple.predicate());
  if (strands == nullptr) return OkStatus();
  for (const Strand& strand : *strands) {
    const CompiledRule& cr = plan_.rules()[strand.rule_index];
    PROVNET_RETURN_IF_ERROR(
        FireStrand(event.node, cr, strand.body_index, delta));
  }
  return OkStatus();
}

bool Engine::SaysMatches(const SlotSays& says, const StoredTuple& entry,
                         Frame& frame) const {
  const Principal& principal = entry.asserted_by;
  if (principal.empty() || says.never) return false;
  auto matches_value = [this, &principal](const Value& v) {
    if (v.kind() == ValueKind::kAddress) {
      NodeId id = v.AsAddress();
      return id < contexts_.size() && contexts_[id]->principal() == principal;
    }
    if (v.kind() == ValueKind::kString) return v.AsString() == principal;
    return false;
  };
  if (says.is_const) return matches_value(says.constant);
  if (frame.IsBound(says.slot)) return matches_value(frame.Get(says.slot));
  // Bind: prefer the node address when the principal names a node.
  auto node = node_of_.find(principal);
  if (node != node_of_.end()) {
    frame.BindOrCheck(says.slot, Value::Address(node->second));
  } else {
    frame.BindOrCheck(says.slot, Value::Str(principal));
  }
  return true;
}

Status Engine::FireStrand(NodeId node_id, const CompiledRule& cr,
                          int delta_index, const StoredTuple& delta_entry) {
  const RuleProgram& prog = cr.prog;
  ExecSlot& ex = exec();
  Frame& frame = ex.frame;
  frame.Reset(prog.num_slots);
  frame.BindOrCheck(prog.local_slot, Value::Address(node_id));

  const SlotLiteral& delta_lit = prog.body[static_cast<size_t>(delta_index)];
  if (!MatchTuple(delta_lit, delta_entry.tuple, frame)) return OkStatus();
  if (delta_lit.says.has_value() &&
      !SaysMatches(*delta_lit.says, delta_entry, frame)) {
    return OkStatus();
  }

  // The strand actually runs its join (the delta literal matched).
  ++ex.cells.rule_firings[RuleIndex(cr)]->value;
  if (tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.node = node_id;
    ev.kind = "fire";
    ev.attrs = {{"rule", prog.label},
                {"delta", delta_entry.tuple.predicate()}};
    TraceSampled(std::move(ev));
  }

  std::vector<const StoredTuple*> used;
  used.reserve(prog.body.size());
  used.push_back(&delta_entry);
  // The join recursion collects `used` delta-first; emit restores body
  // order below. Canonical order matters beyond readability: a derivation
  // must record identical bytes no matter which body literal's delta
  // triggered it, or a crash-recovery re-derivation (triggered by a
  // different delta than the original run) would produce a provenance
  // record — and proof — that differs from the fault-free one.
  const size_t delta_pos = [&] {
    size_t atoms = 0;
    for (int i = 0; i < delta_index; ++i) {
      if (prog.body[static_cast<size_t>(i)].kind == LiteralKind::kAtom) {
        ++atoms;
      }
    }
    return atoms;
  }();
  PROVNET_RETURN_IF_ERROR(DynJoin(
      node_id, cr, 0, delta_index, /*use_overlay=*/false, frame, used,
      [this, node_id, &cr, delta_pos](
          Frame& f, const std::vector<const StoredTuple*>& u) {
        std::vector<const StoredTuple*> body_order(u.begin() + 1, u.end());
        body_order.insert(body_order.begin() + static_cast<long>(delta_pos),
                          u.front());
        return EmitHead(node_id, cr, f, body_order);
      }));
  return DrainPending();
}

Status Engine::EmitHead(NodeId node_id, const CompiledRule& cr,
                        const Frame& frame,
                        const std::vector<const StoredTuple*>& used) {
  PROVNET_ASSIGN_OR_RETURN(Tuple head, BuildHeadTuple(cr.prog, frame));
  ++exec().cells.rule_derivations[RuleIndex(cr)]->value;

  const std::string& label = cr.prog.label;

  // Provenance annotation: product over the body tuples used (hash-consed
  // through the arena in kFull mode, so identical products share nodes).
  ProvExpr prov;
  if (options_.prov_mode == ProvMode::kCondensed ||
      options_.prov_mode == ProvMode::kFull) {
    prov = ProvExpr::One();
    for (const StoredTuple* child : used) {
      prov = arena_ != nullptr ? arena_->InternTimes(prov, child->prov)
                               : ProvExpr::Times(prov, child->prov);
    }
  }

  DerivationPtr deriv;
  if (options_.prov_mode == ProvMode::kFull) {
    std::vector<DerivationPtr> children;
    children.reserve(used.size());
    for (const StoredTuple* child : used) {
      if (child->deriv != nullptr) children.push_back(child->deriv);
    }
    deriv = MakeRuleDerivation(head, label, node_id,
                               contexts_[node_id]->principal(), net_.now(),
                               -1.0, std::move(children));
    if (options_.authenticate) {
      PROVNET_ASSIGN_OR_RETURN(
          deriv, SignDerivation(deriv, auth_, options_.says_level));
    }
    // Intern after signing (see InsertFact); shared sub-proofs — the body
    // derivations — are already arena-owned, so only the new step is added.
    if (arena_ != nullptr) deriv = arena_->Canonical(deriv, nullptr);
  }

  // Destination.
  NodeId dest = node_id;
  if (cr.prog.send_to.has_value()) {
    PROVNET_ASSIGN_OR_RETURN(Value v, EvalSlotTerm(*cr.prog.send_to, frame));
    if (v.kind() != ValueKind::kAddress) {
      return InvalidArgumentError("rule " + label +
                                  ": destination is not an address: " +
                                  v.ToString());
    }
    dest = v.AsAddress();
    if (dest >= contexts_.size()) {
      return InvalidArgumentError("rule " + label +
                                  ": destination node out of range");
    }
  }

  if (dest == node_id) {
    // Local head: defer the table mutation until the join scan completes —
    // the scan iterates stored tuples by pointer, so tables must not change
    // under it. Provenance child refs are captured now, while `used` points
    // at live entries.
    StoredTuple entry;
    // COUNT candidates carry their derivation identity so the witness
    // multiset counts each derivation once (and deletion retires it).
    if (plan_.OptionsFor(head.predicate()).agg == AggKind::kCount) {
      entry.deriv_id = CountDerivId(cr, node_id, head, used);
    }
    entry.tuple = std::move(head);
    entry.origin = TupleOrigin::kLocalRule;
    entry.asserted_by = contexts_[node_id]->principal();
    entry.rule = label;
    entry.prov = std::move(prov);
    entry.deriv = std::move(deriv);
    PendingAction action;
    action.kind = PendingAction::Kind::kDeliver;
    action.node = node_id;
    action.entry = std::move(entry);
    if (RecordingPossible()) action.children = BuildChildRefs(node_id, used);
    action.rule_label = label;
    exec().pending.push_back(std::move(action));
    return OkStatus();
  }

  // Remote head: the sender records the derivation step (distributed
  // provenance keeps state at each hop), then ships the tuple. Neither
  // touches local tables, so this needs no deferral.
  RecordProvenance(node_id, head, label, TupleOrigin::kLocalRule, 0,
                   contexts_[node_id]->principal(),
                   RecordingPossible() ? BuildChildRefs(node_id, used)
                                       : std::vector<ProvChildRef>{},
                   -1.0);
  return SendTuple(node_id, dest, head, prov, deriv);
}

Status Engine::DrainPending() {
  // Apply in emit order; DeliverLocal pushes delta events in the same
  // order the seed evaluator did. Actions may append further pending work
  // only via the retraction queue, never the pending buffer itself.
  std::vector<PendingAction>& pending = exec().pending;
  for (size_t i = 0; i < pending.size(); ++i) {
    PendingAction action = std::move(pending[i]);
    switch (action.kind) {
      case PendingAction::Kind::kDeliver:
        PROVNET_RETURN_IF_ERROR(DeliverLocal(action.node,
                                             std::move(action.entry),
                                             std::move(action.children),
                                             action.rule_label));
        break;
      case PendingAction::Kind::kOverDelete:
        PROVNET_RETURN_IF_ERROR(
            OverDeleteAt(action.node, action.head, action.deriv_id));
        break;
      case PendingAction::Kind::kSendRetract:
        // The firing node recorded the derivation of this shipped head in
        // its own online store; the head tuple (and its recv record) lives
        // at the destination. The remote over-deletion scrubs only the
        // destination's records, so the dead derivation must be dropped
        // here — otherwise a later re-derivation records a second copy and
        // the proof gains a spurious union branch.
        contexts_[action.node]->online_store().Remove(DigestOf(action.head));
        PROVNET_RETURN_IF_ERROR(
            SendRetract(action.node, action.dest, action.head));
        break;
    }
  }
  pending.clear();
  return OkStatus();
}

Status Engine::SendTuple(NodeId from, NodeId to, const Tuple& tuple,
                         const ProvExpr& prov, const DerivationPtr& deriv) {
  // Content: [seq, dest when authenticated] + tuple + provenance payload.
  // The says tag signs these bytes, so piggybacked provenance is
  // authenticated too (Section 4.3), and the anti-replay header cannot be
  // stripped or re-targeted.
  ByteWriter content;
  PutAuthHeader(content, contexts_[from]->principal(), to);
  size_t header_len = content.size();
  ExecSlot& ex = exec();
  // Causal span (core/causal.h): the message is a span, child of whatever
  // context produced it; no context roots a fresh trace. The ids ride the
  // wire unconditionally — inside the signed content, so they cannot be
  // re-stitched — which keeps message bytes identical whether or not
  // tracing is on.
  CausalIds ids;
  ids.span_id = NewCausalSpan(from);
  ids.trace_id = ex.causal.trace_id != 0 ? ex.causal.trace_id : ids.span_id;
  PutCausalIds(content, ids);
  tuple.Serialize(content);
  switch (options_.prov_mode) {
    case ProvMode::kNone:
    case ProvMode::kPointers:
      content.PutU8(kProvPayloadNone);
      break;
    case ProvMode::kCondensed:
      content.PutU8(kProvPayloadCubes);
      break;
    case ProvMode::kFull:
      content.PutU8(kProvPayloadTree);
      break;
  }
  size_t marker_end = content.size();  // the kind marker is protocol, not
                                       // provenance payload
  switch (options_.prov_mode) {
    case ProvMode::kNone:
    case ProvMode::kPointers:
      break;
    case ProvMode::kCondensed: {
      CondensedProv condensed = Condense(prov);
      condensed.Serialize(content);
      break;
    }
    case ProvMode::kFull: {
      PROVNET_CHECK(deriv != nullptr);
      // The same canonical proof ships to every neighbor; serialize it once
      // and replay the bytes from the arena's wire cache afterwards.
      const store::DerivId id =
          arena_ != nullptr ? arena_->IdOfOwned(deriv.get()) : 0;
      const Bytes* cached = id != 0 ? arena_->CachedWire(id) : nullptr;
      size_t at = content.size();
      if (cached != nullptr) {
        content.PutRaw(cached->data(), cached->size());
      } else {
        deriv->Serialize(content);
        if (id != 0) {
          arena_->CacheWire(id, Bytes(content.bytes().begin() + at,
                                      content.bytes().end()));
        }
      }
      // Prime the receive path's decode cache with the exact bytes just
      // shipped: Canonical(Deserialize(bytes)) is an identity for bytes
      // serialized from a canonical node, so the receiver can map them
      // straight back to `id` without re-materializing the tree. The wire
      // and its metering are untouched; payloads that SendTuple never
      // produced (forged frames) miss the cache and take the full decode
      // path with all its checks.
      if (id != 0) {
        arena_->CacheDecode(content.bytes().data() + at, content.size() - at,
                            id);
      }
      break;
    }
  }
  size_t prov_part = content.size() - marker_end;

  // A says tag ships whenever the program's dialect uses principals: with
  // authentication it carries a MAC/signature; without it, the paper's
  // "benign world" cleartext principal header.
  bool attach_says = options_.authenticate || plan_.sendlog();
  SaysLevel level = options_.authenticate ? options_.says_level
                                          : SaysLevel::kCleartext;

  ByteWriter msg;
  msg.PutU8(kMsgTuple);
  msg.PutBlob(content.bytes());
  msg.PutU8(attach_says ? 1 : 0);
  size_t pre_auth = msg.size();
  if (attach_says) {
    obs::Profiler::Scope sign_scope(profiler_, obs::Phase::kSign);
    PROVNET_ASSIGN_OR_RETURN(
        SaysTag tag,
        auth_.Say(contexts_[from]->principal(), content.bytes(), level));
    tag.Serialize(msg);
  }
  // The anti-replay header is authentication overhead, not tuple payload.
  size_t auth_part = msg.size() - pre_auth + header_len;

  ex.cells.prov_bytes->value += prov_part;
  ex.cells.auth_bytes->value += auth_part;
  ex.cells.tuple_bytes->value += msg.size() - prov_part - auth_part;
  ChargeLink(from, to, kMsgTuple, msg.size());
  if (tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.node = from;
    ev.kind = "send";
    ev.trace_id = ids.trace_id;
    ev.span_id = ids.span_id;
    ev.parent_span = ex.causal.span_id;
    ev.attrs = {{"to", PrincipalOf(to)},
                {"msg", "tuple"},
                {"pred", tuple.predicate()},
                {"bytes", std::to_string(msg.size())}};
    TraceSampled(std::move(ev));
  }
  if (ex.buffered) {
    // Worker lane: the message is fully built and signed (per-principal
    // sequence numbers are node-local), but the wire — global sequence
    // numbers, fault-injection taps, byte meters — is ordered state. Commit
    // runs Network::Send in canonical order.
    ExecSlot::Effect fx;
    fx.kind = ExecSlot::Effect::Kind::kSend;
    fx.node = from;
    fx.peer = to;
    fx.payload = std::move(msg).Take();
    ex.effects->push_back(std::move(fx));
    return OkStatus();
  }
  return net_.Send(from, to, std::move(msg).Take());
}

Status Engine::HandleMessage(NodeId to, NodeId from, const Bytes& payload) {
  ByteReader reader(payload);
  Status s = [&]() -> Status {
    PROVNET_ASSIGN_OR_RETURN(uint8_t type, reader.GetU8());
    switch (type) {
      case kMsgTuple:
        return HandleTupleMessage(to, from, reader);
      case kMsgProvRequest:
        return HandleProvRequest(to, from, reader);
      case kMsgProvResponse:
        return HandleProvResponse(to, from, reader);
      case kMsgRetract:
        return HandleRetractMessage(to, from, reader);
      default:
        return InvalidArgumentError("unknown message type");
    }
  }();
  // In an authenticated (hostile-world) deployment, unparseable traffic is
  // an attack symptom, not an engine failure: audit it and drop the message
  // instead of poisoning the run. (A verified signature does not imply
  // well-formed content — a stolen key signs anything.)
  if (!s.ok() && s.code() == StatusCode::kInvalidArgument &&
      options_.authenticate) {
    RecordSecurityEvent(SecurityEventKind::kMalformed, to, from, "",
                        s.ToString());
    return OkStatus();
  }
  return s;
}

Status Engine::HandleTupleMessage(NodeId to, NodeId from, ByteReader& reader) {
  PROVNET_ASSIGN_OR_RETURN(Bytes content, reader.GetBlob());
  PROVNET_ASSIGN_OR_RETURN(uint8_t has_says, reader.GetU8());

  std::optional<SaysTag> tag;
  if (has_says != 0) {
    PROVNET_ASSIGN_OR_RETURN(SaysTag t, SaysTag::Deserialize(reader));
    tag = std::move(t);
  }
  ByteReader body(content);
  PROVNET_ASSIGN_OR_RETURN(bool accepted,
                           VerifyInbound(to, from, tag, content, body,
                                         "tuple"));
  if (!accepted) return OkStatus();  // rejected and audited; drop
  Principal sender_principal = tag.has_value() ? tag->principal : "";
  // Adopt the sender's causal context: the cascade this delivery triggers —
  // and every message that cascade sends — descends from the message span.
  PROVNET_ASSIGN_OR_RETURN(exec().causal, GetCausalIds(body));

  PROVNET_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(body));
  PROVNET_ASSIGN_OR_RETURN(uint8_t prov_kind, body.GetU8());

  StoredTuple entry;
  entry.tuple = std::move(tuple);
  entry.origin = TupleOrigin::kRemote;
  entry.from_node = from;
  entry.asserted_by = sender_principal;
  switch (prov_kind) {
    case kProvPayloadNone:
      break;
    case kProvPayloadCubes: {
      PROVNET_ASSIGN_OR_RETURN(CondensedProv cubes,
                               CondensedProv::Deserialize(body));
      // Receive-side framing check (closes a PR 3 follow-up): every honest
      // derivation a principal ships passes through one of its own
      // assertions (localized rules join through the sender's link state),
      // so every shipped cube must contain the sender's own variable. A
      // stolen key can still forge tuples, but it can no longer *frame*
      // other principals with annotation cubes that omit itself — the
      // traceback that follows a framed cube would blame an innocent.
      if (options_.authenticate && options_.verify_incoming &&
          options_.prov_grain == ProvGrain::kPrincipal && tag.has_value()) {
        std::optional<ProvVar> sender_var = registry_.Find(tag->principal);
        bool framed = false;
        for (const std::vector<ProvVar>& cube : cubes.cubes) {
          if (!sender_var.has_value() ||
              std::find(cube.begin(), cube.end(), *sender_var) ==
                  cube.end()) {
            framed = true;
            break;
          }
        }
        if (framed) {
          ++exec().cells.prov_frames_rejected->value;
          RecordSecurityEvent(
              SecurityEventKind::kForeignProvenance, to, from,
              tag->principal,
              "annotation cube omits sender: " + entry.tuple.ToString());
          return OkStatus();  // rejected and audited; drop
        }
      }
      entry.prov = cubes.ToExpr();
      break;
    }
    case kProvPayloadTree: {
      if (arena_ != nullptr) {
        // kFull: the proof tree is the tail of the signed content, and the
        // send side replays bit-identical bytes per proof (CacheWire), so
        // the payload bytes key a decode cache — a proof that arrived
        // before (from any sender) maps straight to its interned root,
        // skipping deserialization and the per-node digest pass. The key
        // is the exact bytes, so a forged payload can never alias an
        // honest proof.
        const uint8_t* payload = content.data() + body.position();
        const size_t payload_len = body.remaining();
        store::DerivId root_id = arena_->CachedDecode(payload, payload_len);
        if (root_id != 0) {
          entry.deriv = arena_->Lookup(root_id);
        } else {
          PROVNET_ASSIGN_OR_RETURN(entry.deriv,
                                   DerivationNode::Deserialize(body));
          // Intern the tree so every shared sub-proof is stored once
          // process-wide.
          entry.deriv = arena_->Canonical(entry.deriv, &root_id);
          arena_->CacheDecode(payload, payload_len, root_id);
        }
        // Rebuild the annotation through the arena's annotation cache — a
        // sub-proof seen at any earlier hop costs O(1), not O(tree).
        // Principal-grain leaves with no recorded asserter take the
        // *sender's* variable, so subtrees containing one are
        // sender-dependent and must not be cached across messages.
        struct Ann {
          ProvExpr expr;
          bool sender_dep = false;
        };
        std::unordered_map<const DerivationNode*, Ann> memo;
        std::function<Ann(const DerivationPtr&)> annotate =
            [&](const DerivationPtr& n) -> Ann {
          auto it = memo.find(n.get());
          if (it != memo.end()) return it->second;
          store::DerivId id = arena_->IdOfOwned(n.get());
          if (id == 0) id = arena_->IdOf(n->ContentDigest());
          if (const ProvExpr* hit = arena_->CachedAnnotation(id)) {
            Ann out{*hit, false};
            memo.emplace(n.get(), out);
            return out;
          }
          // Sender-dependent sub-proofs cache per (derivation, sender): the
          // first delivery from a sender interns its variable, so Find()
          // succeeding means cached entries may exist.
          if (id != 0 && options_.prov_grain == ProvGrain::kPrincipal) {
            std::optional<ProvVar> sv = registry_.Find(sender_principal);
            if (sv.has_value()) {
              if (const ProvExpr* hit = arena_->CachedAnnotation(id, *sv)) {
                Ann out{*hit, true};
                memo.emplace(n.get(), out);
                return out;
              }
            }
          }
          Ann out;
          if (n->children.empty()) {
            out.sender_dep = n->asserted_by.empty() &&
                             options_.prov_grain == ProvGrain::kPrincipal;
            out.expr = BaseAnnotation(
                n->asserted_by.empty() ? sender_principal : n->asserted_by,
                n->tuple);
          } else if (n->rule == kUnionRule) {
            out.expr = ProvExpr::Zero();
            // Canonical children make duplicate alternatives pointer-equal;
            // dedup so a crafted tree cannot inflate derivation counts
            // (honest senders already dedup in MergeAlternatives).
            std::unordered_set<const DerivationNode*> seen;
            for (const DerivationPtr& c : n->children) {
              if (!seen.insert(c.get()).second) continue;
              Ann ca = annotate(c);
              out.sender_dep |= ca.sender_dep;
              out.expr = arena_->InternPlus(out.expr, ca.expr);
            }
          } else {
            out.expr = ProvExpr::One();
            for (const DerivationPtr& c : n->children) {
              Ann ca = annotate(c);
              out.sender_dep |= ca.sender_dep;
              out.expr = arena_->InternTimes(out.expr, ca.expr);
            }
          }
          if (id != 0) {
            if (!out.sender_dep) {
              arena_->CacheAnnotation(id, out.expr);
            } else {
              // A sender-dependent subtree implies a leaf already interned
              // the sender's variable, so Find() cannot fail here.
              std::optional<ProvVar> sv = registry_.Find(sender_principal);
              if (sv.has_value()) {
                arena_->CacheAnnotation(id, *sv, out.expr);
              }
            }
          }
          memo.emplace(n.get(), out);
          return out;
        };
        entry.prov = annotate(entry.deriv).expr;
        break;
      }
      PROVNET_ASSIGN_OR_RETURN(entry.deriv, DerivationNode::Deserialize(body));
      // Rebuild the annotation from the tree so local semiring queries keep
      // working in full mode: leaves are base variables, unions are +,
      // rule steps are *. Memoized: derivations are DAGs.
      std::unordered_map<const DerivationNode*, ProvExpr> memo;
      std::function<ProvExpr(const DerivationNode&)> annotate =
          [&](const DerivationNode& n) -> ProvExpr {
        auto it = memo.find(&n);
        if (it != memo.end()) return it->second;
        ProvExpr result;
        if (n.children.empty()) {
          result = BaseAnnotation(
              n.asserted_by.empty() ? sender_principal : n.asserted_by,
              n.tuple);
        } else if (n.rule == kUnionRule) {
          result = ProvExpr::Zero();
          for (const DerivationPtr& c : n.children) {
            result = ProvExpr::Plus(result, annotate(*c));
          }
        } else {
          result = ProvExpr::One();
          for (const DerivationPtr& c : n.children) {
            result = ProvExpr::Times(result, annotate(*c));
          }
        }
        memo.emplace(&n, result);
        return result;
      };
      entry.prov = annotate(*entry.deriv);
      break;
    }
    default:
      return InvalidArgumentError("bad provenance payload kind");
  }
  if (tracer_.enabled()) {
    obs::TraceEvent ev;
    ev.sim_time = net_.now();
    ev.node = to;
    ev.kind = "deliver";
    // Same span id as the sender's "send" event — the cross-node join
    // point when the JSONL streams are stitched into one tree.
    ev.trace_id = exec().causal.trace_id;
    ev.span_id = exec().causal.span_id;
    ev.attrs = {{"from", PrincipalOf(from)},
                {"msg", "tuple"},
                {"pred", entry.tuple.predicate()}};
    TraceSampled(std::move(ev));
  }
  return DeliverLocal(to, std::move(entry), {}, "recv");
}

Result<RunStats> Engine::Run() {
  RunStats before = StatsView();
  uint64_t bytes0 = net_.total_bytes();
  uint64_t msgs0 = net_.total_messages();
  uint64_t signs0 = auth_.sign_count();
  uint64_t verifies0 = auth_.verify_count();
  double sim0 = net_.now();

  auto t0 = std::chrono::steady_clock::now();
  // Parallel lanes are worth engaging only when there are several nodes to
  // shard across. kFull provenance is pinned sequential at every grain:
  // the hash-consing arena interns derivations and annotations in
  // first-come order (and at tuple grain the receive path additionally
  // interns provenance variables for unseen base tuples), so that order
  // must stay the sequential one.
  const bool parallel = ResolvedThreads() > 1 && contexts_.size() > 1 &&
                        options_.prov_mode != ProvMode::kFull;
  if (parallel) EnsureParallelRuntime();
  // Phase meters (obs/profiler.h): kFixpoint spans the whole loop; the
  // branch scopes below meter where it goes. All wall-clock, none exported
  // through the (deterministic) metrics registry.
  obs::Profiler::Scope fixpoint_scope(profiler_, obs::Phase::kFixpoint);
  uint64_t steps = 0;
  while (true) {
    if (!async_error_.ok()) {
      Status s = async_error_;
      async_error_ = OkStatus();
      return s;
    }
    if (!dynamics_->queue.empty()) {
      obs::Profiler::Scope scope(profiler_, obs::Phase::kRetractions);
      // Deletion deltas run ahead of insertions: an epoch's over-deletion
      // reaches fixpoint before any restoration fires.
      DeltaState::Retraction retraction = std::move(dynamics_->queue.front());
      dynamics_->queue.pop_front();
      ++cells_.retractions->value;
      // Restore the context captured at enqueue: the deletion cascade (and
      // any kMsgRetract it ships) stays in its originating trace.
      exec().causal = retraction.causal;
      PROVNET_RETURN_IF_ERROR(
          ProcessRetraction(retraction.node, retraction.entry));
    } else if (!events_.empty()) {
      obs::Profiler::Scope scope(profiler_, obs::Phase::kEvents);
      if (parallel && events_.size() > 1) {
        // Drains the whole queue as one sharded epoch (equivalent to the
        // sequential branch below repeated to quiescence: insert cascades
        // never touch the retraction queue, so branch priority is
        // preserved).
        PROVNET_RETURN_IF_ERROR(ParallelDrainEvents(&steps));
      } else {
        PendingEvent event = std::move(events_.front());
        events_.pop_front();
        ++cells_.events->value;
        PROVNET_RETURN_IF_ERROR(ProcessEvent(event));
      }
    } else if (!net_.Idle()) {
      obs::Profiler::Scope scope(profiler_, obs::Phase::kDelivery);
      // Scripted faults fire on the virtual clock: a crash/restart due no
      // later than the next network event interposes here (ties: the fault
      // wins, so a crash at t kills deliveries at t).
      if (NextFaultEventTime() <= net_.NextEventTime()) {
        PROVNET_RETURN_IF_ERROR(ProcessFaultEventsUpTo(NextFaultEventTime()));
      } else {
        bool handled = false;
        if (parallel) {
          PROVNET_ASSIGN_OR_RETURN(handled, TryParallelWave(&steps));
        }
        if (!handled) {
          // Step may instead fire a retransmit timer or consume an ack;
          // only handler invocations count as deliveries.
          uint64_t delivered = net_.deliveries();
          net_.Step();
          cells_.deliveries->value += net_.deliveries() - delivered;
        }
      }
    } else if (!recovery_reinserts_.empty()) {
      // Phase 2 of crash recovery (RestartNode): the network-wide
      // over-deletion has drained — no deltas, nothing in flight — so the
      // base facts can come back from stable storage and the fixpoint
      // re-derives from scratch without racing in-flight retracts.
      std::vector<RecoveryReinsert> batch;
      batch.swap(recovery_reinserts_);
      for (const RecoveryReinsert& r : batch) {
        PROVNET_RETURN_IF_ERROR(InsertFact(r.node, r.tuple, r.ttl));
      }
    } else if (!dynamics_->rederive.empty()) {
      obs::Profiler::Scope scope(profiler_, obs::Phase::kRederive);
      // Quiescent (no deltas, nothing in flight): the over-deletion cascade
      // is complete, so DRed's re-derivation phase may restore survivors.
      PROVNET_RETURN_IF_ERROR(RunRederivePass());
    } else if (next_fault_event_ < fault_events_.size()) {
      // Quiescent with scripted events still pending (e.g. a restart after
      // the crashed network reached fixpoint): jump the clock to the next.
      PROVNET_RETURN_IF_ERROR(ProcessFaultEventsUpTo(NextFaultEventTime()));
    } else {
      break;  // distributed fixpoint: no events, no in-flight messages
    }
    if (++steps > options_.max_steps) {
      return ResourceExhaustedError(
          "engine exceeded max_steps; divergent program?");
    }
  }
  dynamics_->EndEpoch();
  PROVNET_RETURN_IF_ERROR(FlushDurableStores());
  auto t1 = std::chrono::steady_clock::now();

  RunStats cur = StatsView();
  RunStats out;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.sim_seconds = net_.now() - sim0;
  out.deliveries = cur.deliveries - before.deliveries;
  out.events = cur.events - before.events;
  out.derivations = cur.derivations - before.derivations;
  out.join_candidates = cur.join_candidates - before.join_candidates;
  out.messages = net_.total_messages() - msgs0;
  out.bytes = net_.total_bytes() - bytes0;
  out.tuple_bytes = cur.tuple_bytes - before.tuple_bytes;
  out.auth_bytes = cur.auth_bytes - before.auth_bytes;
  out.prov_bytes = cur.prov_bytes - before.prov_bytes;
  out.signs = auth_.sign_count() - signs0;
  out.verifies = auth_.verify_count() - verifies0;
  out.auth_failures = cur.auth_failures - before.auth_failures;
  out.replays_rejected = cur.replays_rejected - before.replays_rejected;
  out.retracts_rejected = cur.retracts_rejected - before.retracts_rejected;
  out.retractions = cur.retractions - before.retractions;
  out.rederivations = cur.rederivations - before.rederivations;
  out.prov_queries = cur.prov_queries - before.prov_queries;
  out.prov_query_bytes = cur.prov_query_bytes - before.prov_query_bytes;
  out.prov_responses_rejected =
      cur.prov_responses_rejected - before.prov_responses_rejected;
  out.prov_frames_rejected =
      cur.prov_frames_rejected - before.prov_frames_rejected;
  // Peak accounted bytes by subsystem — filled only when accounting is on,
  // so byte-accounting toggles never perturb golden stats comparisons.
  if (obs::MemAccounting::Global().enabled()) {
    out.peak_mem = obs::MemAccounting::Global().PeakSummary();
  }
  return out;
}

std::vector<Tuple> Engine::TuplesAt(NodeId node_id,
                                    const std::string& pred) const {
  std::vector<Tuple> out;
  const Table* table = contexts_[node_id]->FindTable(pred);
  if (table == nullptr) return out;
  for (const StoredTuple* entry : table->Scan()) out.push_back(entry->tuple);
  std::sort(out.begin(), out.end());
  return out;
}

Result<ProvExpr> Engine::AnnotationOf(NodeId node_id,
                                      const Tuple& tuple) const {
  const Table* table = contexts_[node_id]->FindTable(tuple.predicate());
  if (table == nullptr) return NotFoundError("no such table");
  const StoredTuple* entry = table->Find(tuple);
  if (entry == nullptr) return NotFoundError("tuple not stored: " +
                                             tuple.ToString());
  return entry->prov;
}

Result<CondensedProv> Engine::CondensedOf(NodeId node_id,
                                          const Tuple& tuple) const {
  PROVNET_ASSIGN_OR_RETURN(ProvExpr prov, AnnotationOf(node_id, tuple));
  return Condense(prov);
}

Result<DerivationPtr> Engine::LocalDerivationOf(NodeId node_id,
                                                const Tuple& tuple) const {
  const Table* table = contexts_[node_id]->FindTable(tuple.predicate());
  if (table == nullptr) return NotFoundError("no such table");
  const StoredTuple* entry = table->Find(tuple);
  if (entry == nullptr) return NotFoundError("tuple not stored");
  if (entry->deriv == nullptr) {
    return FailedPreconditionError(
        "no local derivation tree; run with ProvMode::kFull");
  }
  return entry->deriv;
}

void Engine::ExpireNow() {
  // Expiry is an external (clock-driven) cause: cascades root fresh traces.
  exec().causal = CausalIds{};
  double now = net_.now();
  for (auto& ctx : contexts_) {
    std::vector<StoredTuple> expired;
    ctx->ExpireTablesBefore(now, &expired);
    ctx->online_store().ExpireBefore(now);
    // Soft-state expiry is a deletion like any other: the next Run()
    // propagates deletion deltas so derived state shrinks with its support.
    // Expired *derived* tuples are scheduled for re-derivation — if their
    // support still stands they return with a fresh TTL (the P2 refresh);
    // expired base facts stay gone (nothing derives them).
    for (StoredTuple& entry : expired) {
      bool is_base = entry.origin == TupleOrigin::kBase;
      if (is_base) NoteKilledBase(entry.tuple);
      bool is_agg =
          plan_.OptionsFor(entry.tuple.predicate()).agg != AggKind::kNone;
      EnqueueRetraction(ctx->id(), std::move(entry), /*rederive=*/!is_base,
                        /*rederive_group=*/is_agg);
    }
  }
}

}  // namespace provnet
