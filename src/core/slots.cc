#include "core/slots.h"

#include "core/eval.h"

namespace provnet {

namespace {

// Interns `name` into the program's slot table.
int SlotOf(RuleProgram& prog, const std::string& name) {
  auto [it, fresh] = prog.var_slots.emplace(name, prog.num_slots);
  if (fresh) ++prog.num_slots;
  return it->second;
}

Result<SlotTerm> CompileTerm(const Term& term, RuleProgram& prog) {
  SlotTerm out;
  out.kind = term.kind;
  switch (term.kind) {
    case TermKind::kConstant:
      out.constant = term.constant;
      return out;
    case TermKind::kVariable:
    case TermKind::kAggregate:
      out.name = term.name;
      out.slot = SlotOf(prog, term.name);
      return out;
    case TermKind::kFunction: {
      out.name = term.name;
      PROVNET_ASSIGN_OR_RETURN(out.fn, LookupBuiltin(term.name));
      out.args.reserve(term.args.size());
      for (const Term& a : term.args) {
        PROVNET_ASSIGN_OR_RETURN(SlotTerm arg, CompileTerm(a, prog));
        out.args.push_back(std::move(arg));
      }
      return out;
    }
  }
  return InternalError("unreachable term kind");
}

Result<SlotExpr> CompileExpr(const Expr& expr, RuleProgram& prog) {
  SlotExpr out;
  out.op = expr.op;
  if (expr.op == ExprOp::kTerm) {
    PROVNET_ASSIGN_OR_RETURN(out.term, CompileTerm(expr.term, prog));
    return out;
  }
  out.children.reserve(expr.children.size());
  for (const Expr& child : expr.children) {
    PROVNET_ASSIGN_OR_RETURN(SlotExpr c, CompileExpr(child, prog));
    out.children.push_back(std::move(c));
  }
  return out;
}

}  // namespace

Result<RuleProgram> CompileRuleProgram(const LocalizedRule& lr) {
  RuleProgram prog;
  const Rule& rule = lr.rule;
  prog.head_predicate = rule.head.predicate;
  prog.label = rule.label.empty() ? rule.head.predicate : rule.label;
  prog.local_slot = SlotOf(prog, lr.local_var);

  prog.body.reserve(rule.body.size());
  for (const Literal& lit : rule.body) {
    SlotLiteral out;
    out.kind = lit.kind;
    switch (lit.kind) {
      case LiteralKind::kAtom: {
        out.predicate = lit.atom.predicate;
        out.arity = lit.atom.args.size();
        out.cols.reserve(out.arity);
        out.index_cands.reserve(out.arity);
        for (size_t i = 0; i < lit.atom.args.size(); ++i) {
          const Term& arg = lit.atom.args[i];
          MatchOp op;
          IndexCand cand;
          cand.col = static_cast<int>(i);
          switch (arg.kind) {
            case TermKind::kConstant:
              op.is_const = true;
              op.constant = arg.constant;
              cand.is_const = true;
              cand.constant = arg.constant;
              break;
            case TermKind::kVariable:
              op.slot = SlotOf(prog, arg.name);
              cand.slot = op.slot;
              break;
            default:
              return UnimplementedError(
                  "body atom " + lit.atom.predicate +
                  " uses a computed argument; bind it with ':=' first");
          }
          out.cols.push_back(std::move(op));
          out.index_cands.push_back(std::move(cand));
        }
        if (lit.atom.says.has_value()) {
          SlotSays says;
          const Term& term = *lit.atom.says;
          if (term.kind == TermKind::kConstant) {
            says.is_const = true;
            says.constant = term.constant;
          } else if (term.kind == TermKind::kVariable) {
            says.slot = SlotOf(prog, term.name);
          } else {
            says.never = true;
          }
          out.says = std::move(says);
        }
        break;
      }
      case LiteralKind::kCondition: {
        PROVNET_ASSIGN_OR_RETURN(out.expr, CompileExpr(lit.expr, prog));
        break;
      }
      case LiteralKind::kAssign: {
        out.assign_slot = SlotOf(prog, lit.assign_var);
        PROVNET_ASSIGN_OR_RETURN(out.expr, CompileExpr(lit.expr, prog));
        break;
      }
    }
    prog.body.push_back(std::move(out));
  }

  prog.head_args.reserve(rule.head.args.size());
  for (const Term& t : rule.head.args) {
    PROVNET_ASSIGN_OR_RETURN(SlotTerm st, CompileTerm(t, prog));
    prog.head_args.push_back(std::move(st));
  }
  if (lr.send_to.has_value()) {
    PROVNET_ASSIGN_OR_RETURN(SlotTerm st, CompileTerm(*lr.send_to, prog));
    prog.send_to = std::move(st);
  }
  return prog;
}

bool MatchTuple(const SlotLiteral& lit, const Tuple& tuple, Frame& frame) {
  if (tuple.arity() != lit.arity) return false;
  for (size_t i = 0; i < lit.cols.size(); ++i) {
    const MatchOp& op = lit.cols[i];
    const Value& value = tuple.arg(i);
    if (op.is_const) {
      if (!(op.constant == value)) return false;
    } else if (!frame.BindOrCheck(op.slot, value)) {
      return false;
    }
  }
  return true;
}

Result<Value> EvalSlotTerm(const SlotTerm& term, const Frame& frame) {
  switch (term.kind) {
    case TermKind::kConstant:
      return term.constant;
    case TermKind::kVariable:
    case TermKind::kAggregate:
      if (!frame.IsBound(term.slot)) {
        return FailedPreconditionError("unbound variable " + term.name);
      }
      return frame.Get(term.slot);
    case TermKind::kFunction: {
      std::vector<Value> args;
      args.reserve(term.args.size());
      for (const SlotTerm& a : term.args) {
        PROVNET_ASSIGN_OR_RETURN(Value v, EvalSlotTerm(a, frame));
        args.push_back(std::move(v));
      }
      return CallBuiltin(term.fn, args);
    }
  }
  return InternalError("unreachable term kind");
}

Result<Value> EvalSlotExpr(const SlotExpr& expr, const Frame& frame) {
  if (expr.op == ExprOp::kTerm) return EvalSlotTerm(expr.term, frame);
  PROVNET_ASSIGN_OR_RETURN(Value lhs, EvalSlotExpr(expr.children[0], frame));
  PROVNET_ASSIGN_OR_RETURN(Value rhs, EvalSlotExpr(expr.children[1], frame));
  return ApplyBinaryOp(expr.op, lhs, rhs);
}

Result<bool> EvalSlotCondition(const SlotExpr& expr, const Frame& frame) {
  if (!IsComparisonOp(expr.op)) {
    return InvalidArgumentError("condition must be a comparison");
  }
  PROVNET_ASSIGN_OR_RETURN(Value v, EvalSlotExpr(expr, frame));
  return v.AsInt() != 0;
}

Result<Tuple> BuildHeadTuple(const RuleProgram& prog, const Frame& frame) {
  std::vector<Value> args;
  args.reserve(prog.head_args.size());
  for (const SlotTerm& t : prog.head_args) {
    PROVNET_ASSIGN_OR_RETURN(Value v, EvalSlotTerm(t, frame));
    args.push_back(std::move(v));
  }
  return Tuple(prog.head_predicate, std::move(args));
}

}  // namespace provnet
