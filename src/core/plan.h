// Compiles a localized program into the event-driven execution plan used by
// the engine: one strand per (rule, body-atom position), triggered when a
// tuple of that predicate arrives (P2's pipelined semi-naive evaluation).
#ifndef PROVNET_CORE_PLAN_H_
#define PROVNET_CORE_PLAN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/slots.h"
#include "core/table.h"
#include "datalog/localize.h"
#include "util/status.h"

namespace provnet {

struct CompiledRule {
  LocalizedRule lr;
  // Indices of kAtom literals within lr.rule.body.
  std::vector<int> atom_indices;
  // Slot program: variables numbered into a dense frame, literal
  // unification pre-resolved per column, builtins interned (core/slots.h).
  // The engine's join core runs this, never the AST.
  RuleProgram prog;
};

// A delta strand: when predicate P gets a new tuple, rule `rule_index` fires
// with the new tuple bound at body literal `body_index`.
struct Strand {
  int rule_index = 0;
  int body_index = 0;
};

class Plan {
 public:
  // Compiles rules and table specifications. Materialize declarations set
  // keys/TTLs; aggregate heads force group-column keys. Body atoms must use
  // only variable/constant arguments (function terms belong in assignments).
  static Result<Plan> Compile(const LocalizedProgram& localized,
                              const std::vector<MaterializeDecl>& decls,
                              double default_ttl);

  bool sendlog() const { return sendlog_; }
  const std::vector<CompiledRule>& rules() const { return rules_; }

  // Strands triggered by a new tuple of `pred` (nullptr if none).
  const std::vector<Strand>* StrandsFor(const std::string& pred) const;

  // Table options for `pred` (default options if never declared/derived).
  TableOptions OptionsFor(const std::string& pred) const;

  std::string ToString() const;

 private:
  bool sendlog_ = false;
  std::vector<CompiledRule> rules_;
  std::unordered_map<std::string, std::vector<Strand>> strands_;
  std::unordered_map<std::string, TableOptions> table_options_;
  double default_ttl_ = -1.0;
};

}  // namespace provnet

#endif  // PROVNET_CORE_PLAN_H_
