// Rule-body evaluation: variable environments, term/expression evaluation,
// tuple unification, and the f_* builtin function library (path vectors for
// the Best-Path query, list utilities, min/max).
#ifndef PROVNET_CORE_EVAL_H_
#define PROVNET_CORE_EVAL_H_

#include <string>
#include <unordered_map>

#include "datalog/ast.h"
#include "datalog/tuple.h"
#include "util/status.h"

namespace provnet {

using Env = std::unordered_map<std::string, Value>;

// Calls a builtin by name (resolves through LookupBuiltin; the engine's hot
// path calls the interned-enum overload in core/slots.h). Supported:
//   f_init(a, b)         -> [a, b]            (initial path vector)
//   f_concatPath(x, P)   -> [x | P]           (prepend)
//   f_append(P, x)       -> P ++ [x]
//   f_member(P, x)       -> 1 if x in list P else 0
//   f_size(P)            -> length of P
//   f_first(P), f_last(P), f_second(P)   (f_second = next hop)
//   f_min(a, b), f_max(a, b)
Result<Value> CallBuiltin(const std::string& name,
                          const std::vector<Value>& args);

// Applies a binary arithmetic/comparison operator. Comparisons yield Int
// 0/1; arithmetic requires numeric operands (Int stays Int when both are
// Int, else Double). Shared by the Env evaluator below and the
// slot-compiled evaluator (core/slots.h).
Result<Value> ApplyBinaryOp(ExprOp op, const Value& lhs, const Value& rhs);

// Evaluates a term under `env`. Unbound variables are errors. Aggregate
// terms evaluate to their variable's value (aggregation happens at table
// insert).
Result<Value> EvalTerm(const Term& term, const Env& env);

// Evaluates an expression. Comparisons yield Int 0/1; arithmetic requires
// numeric operands (Int stays Int when both are Int, else Double).
Result<Value> EvalExpr(const Expr& expr, const Env& env);

// Evaluates a comparison expression as a boolean.
Result<bool> EvalCondition(const Expr& expr, const Env& env);

// Matches `tuple` against `atom`'s argument patterns, extending `env` with
// new bindings. Returns false on mismatch (env may be partially extended;
// callers pass a scratch copy). Atom args must be variables or constants.
bool UnifyTuple(const Atom& atom, const Tuple& tuple, Env& env);

// Builds the head tuple for a rule firing (evaluating constants, variables,
// functions, and aggregate placeholders).
Result<Tuple> BuildHeadTuple(const Atom& head, const Env& env);

// Partially unifies `tuple` against a rule *head* pattern, extending `env`:
// constants must match, variable positions bind (consistently), and
// function/aggregate positions are skipped — their values are produced by
// body evaluation, not pattern matching. Used by re-derivation, which runs
// rules "backwards" from a deleted head tuple. When `positions` is
// non-empty, only those argument indices are constrained (aggregate group
// re-derivation matches group columns while leaving the aggregate free).
bool UnifyHeadPattern(const Atom& head, const Tuple& tuple, Env& env,
                      const std::vector<int>& positions = {});

}  // namespace provnet

#endif  // PROVNET_CORE_EVAL_H_
