// Distributed provenance reconstruction (Section 4.1's "distributed
// provenance ... only stores pointers to the previous node to reconstruct
// its provenance on demand", and the IP-traceback analogy).
//
// The querying node walks the pointer graph: it asks each referenced node
// for its ProvRecords of a tuple digest (kMsgProvRequest), receives them
// (kMsgProvResponse), discovers further child references, and repeats until
// closure. Every request/response is a real metered message — this is the
// "expensive cost of querying the provenance" the taxonomy trades against
// the zero shipping overhead of the pointer representation.

#include <functional>

#include "core/engine.h"
#include "util/logging.h"

namespace provnet {

Status Engine::HandleProvRequest(NodeId to, NodeId from, ByteReader& reader) {
  PROVNET_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
  PROVNET_ASSIGN_OR_RETURN(uint64_t digest, reader.GetU64());

  // Prefer online records; fall back to the offline archive (forensics over
  // expired state, Section 4.2).
  std::vector<const ProvRecord*> found;
  const std::vector<ProvRecord>* online =
      contexts_[to]->online_store().Lookup(digest);
  if (online != nullptr) {
    for (const ProvRecord& rec : *online) found.push_back(&rec);
  } else {
    found = contexts_[to]->offline_store().FindByDigest(digest);
  }

  ByteWriter msg;
  msg.PutU8(kMsgProvResponse);
  msg.PutU64(query_id);
  msg.PutU32(to);  // responding node
  msg.PutU64(digest);
  msg.PutVarint(found.size());
  for (const ProvRecord* rec : found) rec->Serialize(msg);
  return net_.Send(to, from, std::move(msg).Take());
}

Status Engine::HandleProvResponse(NodeId to, NodeId /*from*/,
                                  ByteReader& reader) {
  PROVNET_ASSIGN_OR_RETURN(uint64_t query_id, reader.GetU64());
  (void)query_id;
  PROVNET_ASSIGN_OR_RETURN(uint32_t responder, reader.GetU32());
  PROVNET_ASSIGN_OR_RETURN(uint64_t digest, reader.GetU64());
  PROVNET_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());

  if (prov_query_ == nullptr) return OkStatus();  // stale response
  ProvQueryState& state = *prov_query_;
  if (state.outstanding > 0) --state.outstanding;

  std::vector<ProvRecord> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PROVNET_ASSIGN_OR_RETURN(ProvRecord rec, ProvRecord::Deserialize(reader));
    records.push_back(std::move(rec));
  }

  auto key = std::make_pair(static_cast<NodeId>(responder), digest);
  // Issue follow-up requests for unseen child references before storing.
  for (const ProvRecord& rec : records) {
    for (const ProvChildRef& ref : rec.children) {
      if (ref.is_base) continue;
      auto child_key = std::make_pair(ref.node, ref.digest);
      if (state.requested.count(child_key)) continue;
      state.requested.insert(child_key);
      ByteWriter msg;
      msg.PutU8(kMsgProvRequest);
      msg.PutU64(next_query_id_++);
      msg.PutU64(ref.digest);
      PROVNET_RETURN_IF_ERROR(net_.Send(to, ref.node, std::move(msg).Take()));
      ++state.outstanding;
    }
  }
  state.collected[key] = std::move(records);
  return OkStatus();
}

Result<DerivationPtr> Engine::QueryDistributedProvenance(NodeId node_id,
                                                         const Tuple& tuple) {
  if (node_id >= contexts_.size()) {
    return InvalidArgumentError("unknown node");
  }
  TupleDigest root_digest = DigestOf(tuple);
  prov_query_ = std::make_unique<ProvQueryState>();
  ProvQueryState& state = *prov_query_;

  // Seed with a self-request. Local store reads are free; we inline them,
  // while remote references turn into real messages.
  std::deque<std::pair<NodeId, TupleDigest>> local_frontier;
  local_frontier.emplace_back(node_id, root_digest);
  state.requested.insert({node_id, root_digest});

  auto drain_local = [&]() -> Status {
    while (!local_frontier.empty()) {
      auto [n, digest] = local_frontier.front();
      local_frontier.pop_front();
      std::vector<ProvRecord> records;
      const std::vector<ProvRecord>* online =
          contexts_[n]->online_store().Lookup(digest);
      if (online != nullptr) {
        records = *online;
      } else {
        for (const ProvRecord* rec :
             contexts_[n]->offline_store().FindByDigest(digest)) {
          records.push_back(*rec);
        }
      }
      for (const ProvRecord& rec : records) {
        for (const ProvChildRef& ref : rec.children) {
          if (ref.is_base) continue;
          auto child_key = std::make_pair(ref.node, ref.digest);
          if (state.requested.count(child_key)) continue;
          state.requested.insert(child_key);
          if (ref.node == node_id) {
            local_frontier.emplace_back(ref.node, ref.digest);
          } else {
            ByteWriter msg;
            msg.PutU8(kMsgProvRequest);
            msg.PutU64(next_query_id_++);
            msg.PutU64(ref.digest);
            PROVNET_RETURN_IF_ERROR(
                net_.Send(node_id, ref.node, std::move(msg).Take()));
            ++state.outstanding;
          }
        }
      }
      state.collected[{n, digest}] = std::move(records);
    }
    return OkStatus();
  };

  PROVNET_RETURN_IF_ERROR(drain_local());
  // Pump the network until all outstanding requests resolved. Responses may
  // spawn further requests (handled inside HandleProvResponse).
  uint64_t guard = 0;
  while (state.outstanding > 0 && !net_.Idle()) {
    net_.Step();
    if (!async_error_.ok()) {
      Status s = async_error_;
      async_error_ = OkStatus();
      prov_query_.reset();
      return s;
    }
    if (++guard > options_.max_steps) {
      prov_query_.reset();
      return ResourceExhaustedError("provenance query did not converge");
    }
  }

  // A tuple nobody recorded is not reconstructible at all.
  if (state.collected[{node_id, root_digest}].empty()) {
    prov_query_.reset();
    return NotFoundError("no provenance records for " + tuple.ToString());
  }

  // Assemble the result as a DAG: completed subgraphs are memoized so shared
  // sub-derivations resolve once (cycle markers inside a memoized subtree
  // are a conservative approximation; engine pointer graphs are acyclic in
  // the common case).
  std::set<std::pair<NodeId, TupleDigest>> visiting;
  std::map<std::pair<NodeId, TupleDigest>, DerivationPtr> memo;
  std::function<DerivationPtr(NodeId, TupleDigest, const Tuple*)> build =
      [&](NodeId n, TupleDigest digest,
          const Tuple* known_tuple) -> DerivationPtr {
    auto key = std::make_pair(n, digest);
    auto memo_it = memo.find(key);
    if (memo_it != memo.end()) return memo_it->second;
    auto it = state.collected.find(key);
    if (it == state.collected.end() || it->second.empty()) {
      // Unknown (sampled-out, expired, or cut off): a "missing" leaf.
      Tuple t = known_tuple != nullptr ? *known_tuple
                                       : Tuple("unknown", {});
      return MakeRuleDerivation(std::move(t), "missing", n, "", 0.0, -1.0, {});
    }
    if (visiting.count(key)) {
      Tuple t = known_tuple != nullptr ? *known_tuple : it->second[0].tuple;
      return MakeRuleDerivation(std::move(t), "cycle", n, "", 0.0, -1.0, {});
    }
    visiting.insert(key);
    DerivationPtr merged;
    for (const ProvRecord& rec : it->second) {
      std::vector<DerivationPtr> children;
      for (const ProvChildRef& ref : rec.children) {
        if (ref.is_base) {
          children.push_back(MakeBaseDerivation(ref.base_tuple, ref.node,
                                                ref.asserted_by,
                                                rec.created_at, -1.0));
        } else {
          children.push_back(build(ref.node, ref.digest, nullptr));
        }
      }
      DerivationPtr alt = MakeRuleDerivation(rec.tuple, rec.rule,
                                             rec.location, rec.asserted_by,
                                             rec.created_at, -1.0,
                                             std::move(children));
      merged = merged == nullptr ? alt : MergeAlternatives(merged, alt);
    }
    visiting.erase(key);
    memo.emplace(key, merged);
    return merged;
  };

  DerivationPtr result = build(node_id, root_digest, &tuple);
  prov_query_.reset();
  if (result == nullptr) {
    return NotFoundError("no provenance records for " + tuple.ToString());
  }
  return result;
}

}  // namespace provnet
