// Sharded parallel execution of the network fixpoint (ISSUE 7 tentpole).
//
// The sequential engine is a single loop over three queues: retraction
// deltas, local delta events, and the virtual-time network. Two of its
// phases are embarrassingly shardable *by node* — local event cascades
// never leave their node (a rule firing either delivers locally or sends a
// message, and messages sit in the network queue until their delivery
// instant), and a delivery wave (all messages due at the earliest instant)
// fans out across destinations. What is NOT shardable is the observable
// order: network sequence numbers, trace streams, the security log, the
// observer callback, and MIN/MAX aggregate races between same-instant
// deliveries all depend on the sequential interleaving.
//
// The executor therefore splits every parallel phase into two halves:
//
//   compute (parallel)  - worker lanes run the slot-compiled joins against
//     node-local tables, buffering every externally visible side effect
//     (sends, traces, security events, observer calls) into per-node effect
//     streams, and counting into per-lane counter mirrors;
//   commit (sequential) - the main thread replays the effect streams in the
//     exact order the sequential engine would have produced them — FIFO
//     token order for event epochs, wave seq order for deliveries — and
//     merges the counter mirrors (sums, so merge order is free).
//
// Because table mutations are node-local and every cross-node interaction
// is a buffered effect committed canonically, the fixpoint, every counter,
// the trace stream, and the security log are byte-identical at every
// thread count. Ineligible work (retractions, query traffic, single-node
// waves) falls back to the sequential path untouched.

#include <cstdlib>
#include <thread>

#include "core/engine.h"
#include "dynamics/delta.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace provnet {

void Engine::ChargeLink(NodeId from, NodeId to, uint8_t msg_kind,
                        uint64_t bytes) {
  ExecSlot& ex = exec();
  if (ex.buffered) {
    // Interning a new link cell mutates the registry; defer to the barrier.
    ex.link_charges.push_back(ExecSlot::LinkCharge{from, to, msg_kind, bytes});
    return;
  }
  LinkBytesCell(from, to, msg_kind)->value += bytes;
}

void Engine::TraceSampled(obs::TraceEvent ev) {
  ExecSlot& ex = exec();
  if (ex.buffered) {
    ExecSlot::Effect fx;
    fx.kind = ExecSlot::Effect::Kind::kTrace;
    fx.trace = std::move(ev);
    fx.sampled = true;
    ex.effects->push_back(std::move(fx));
    return;
  }
  tracer_.EmitSampled(std::move(ev));
}

void Engine::NotePredSite(const std::string& pred, NodeId node) {
  ExecSlot& ex = exec();
  if (ex.buffered) {
    ex.pred_sites.emplace_back(pred, node);
    return;
  }
  pred_sites_[pred].insert(node);
}

size_t Engine::ResolvedThreads() {
  if (resolved_threads_ != 0) return resolved_threads_;
  size_t threads = options_.threads;
  if (threads == 1) {
    // Only the untouched default is overridable: an explicit option wins.
    if (const char* env = std::getenv("PROVNET_THREADS")) {
      char* end = nullptr;
      unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') threads = static_cast<size_t>(parsed);
    }
  }
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  resolved_threads_ = threads;
  return resolved_threads_;
}

void Engine::EnsureParallelRuntime() {
  if (pool_ != nullptr) return;
  size_t threads = ResolvedThreads();
  PROVNET_CHECK(threads > 1);
  pool_ = std::make_unique<ThreadPool>(threads);
  worker_slots_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    auto slot = std::make_unique<ExecSlot>();
    slot->buffered = true;
    // Positional counter mirror: same shape as cells_, storage private to
    // the lane. Histograms stay null — no worker path records one.
    slot->cells = cells_;
    slot->cells.query_latency = nullptr;
    slot->cells.query_hop_latency = nullptr;
    size_t count = 0;
    ForEachCell(slot->cells, [&count](obs::Counter*&) { ++count; });
    slot->cell_storage.resize(count);
    size_t at = 0;
    ExecSlot* raw = slot.get();
    ForEachCell(slot->cells, [raw, &at](obs::Counter*& cell) {
      cell = &raw->cell_storage[at++];
    });
    worker_slots_.push_back(std::move(slot));
  }
}

void Engine::MergeWorkerSlots() {
  for (auto& slot : worker_slots_) {
    // Counter mirrors: positional sum into the registry-backed cells.
    size_t at = 0;
    ExecSlot* raw = slot.get();
    ForEachCell(cells_, [raw, &at](obs::Counter*& cell) {
      obs::Counter& mirror = raw->cell_storage[at++];
      // Conditionally registered cells (durable-store instruments) are null
      // when their subsystem is off; their mirrors are never incremented.
      if (cell != nullptr) cell->value += mirror.value;
      mirror.value = 0;
    });
    for (const ExecSlot::LinkCharge& charge : slot->link_charges) {
      LinkBytesCell(charge.from, charge.to, charge.msg_kind)->value +=
          charge.bytes;
    }
    slot->link_charges.clear();
    for (const auto& [pred, node] : slot->pred_sites) {
      pred_sites_[pred].insert(node);
    }
    slot->pred_sites.clear();
  }
}

Status Engine::CommitEffects(std::vector<ExecSlot::Effect>& effects,
                             size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    ExecSlot::Effect& fx = effects[i];
    switch (fx.kind) {
      case ExecSlot::Effect::Kind::kSend:
        // The global wire order (sequence numbers, fault-injection taps,
        // byte meters) is established here, in canonical order.
        PROVNET_RETURN_IF_ERROR(
            net_.Send(fx.node, fx.peer, std::move(fx.payload)));
        break;
      case ExecSlot::Effect::Kind::kTrace:
        if (fx.sampled) {
          tracer_.EmitSampled(std::move(fx.trace));
        } else {
          tracer_.Emit(std::move(fx.trace));
        }
        break;
      case ExecSlot::Effect::Kind::kSecurity:
        // Re-enters the real (unbuffered) path: counter, trace, log.
        RecordSecurityEvent(fx.sec_kind, fx.node, fx.peer, fx.claimed,
                            std::move(fx.detail));
        break;
      case ExecSlot::Effect::Kind::kObserver:
        if (observer_) {
          observer_(fx.node, fx.observed, fx.outcome, net_.now());
        }
        break;
    }
  }
  return OkStatus();
}

Status Engine::ParallelDrainEvents(uint64_t* steps) {
  // Per-node shard of the epoch: the node's FIFO of delta events (seeded
  // from the global queue, extended by its own cascades), its effect
  // stream, and one bookkeeping unit per processed event.
  struct Unit {
    size_t effect_end = 0;  // effects[..effect_end) committed through here
    uint32_t spawned = 0;   // events this event pushed onto the node queue
    Status status;
  };
  struct NodeRun {
    NodeId node = 0;
    std::deque<PendingEvent> queue;
    std::vector<ExecSlot::Effect> effects;
    std::vector<Unit> units;
  };

  // Partition the queue by node, remembering the global FIFO order as a
  // token stream of node ids. Replaying tokens — appending `spawned` tokens
  // at commit — reproduces the exact pop order of the sequential loop.
  std::vector<NodeRun> runs;
  std::vector<size_t> run_of_node(contexts_.size(), SIZE_MAX);
  std::deque<size_t> tokens;  // indexes into `runs`
  for (PendingEvent& event : events_) {
    size_t r = run_of_node[event.node];
    if (r == SIZE_MAX) {
      r = runs.size();
      run_of_node[event.node] = r;
      runs.push_back(NodeRun{});
      runs.back().node = event.node;
    }
    tokens.push_back(r);
    runs[r].queue.push_back(std::move(event));
  }
  events_.clear();

  if (runs.size() < 2) {
    // Single-node epoch: nothing to shard. Drain sequentially (identical to
    // the caller's event branch repeated to quiescence).
    NodeRun& run = runs[0];
    while (!run.queue.empty()) {
      PendingEvent event = std::move(run.queue.front());
      run.queue.pop_front();
      ++cells_.events->value;
      PROVNET_RETURN_IF_ERROR(ProcessEvent(event));
      while (!events_.empty()) {
        PendingEvent next = std::move(events_.front());
        events_.pop_front();
        ++cells_.events->value;
        PROVNET_RETURN_IF_ERROR(ProcessEvent(next));
        if (++*steps > options_.max_steps) {
          return ResourceExhaustedError(
              "engine exceeded max_steps; divergent program?");
        }
      }
      if (++*steps > options_.max_steps) {
        return ResourceExhaustedError(
            "engine exceeded max_steps; divergent program?");
      }
    }
    return OkStatus();
  }

  // Compute phase: each lane runs one node's queue to quiescence. Cascades
  // are strictly node-local (a rule firing either delivers at its own node
  // or buffers a kSend effect), so shards share no mutable state.
  // kParallelCompute meters the whole pool dispatch (compute + barrier
  // stall); AddLane meters each lane's busy slice — the gap between the two
  // is the stall the lane-utilization gauges expose.
  const bool prof = profiler_.enabled();
  const uint64_t compute_t0 = prof ? obs::Profiler::NowNs() : 0;
  pool_->Run(runs.size(), [this, &runs, prof](size_t index, size_t lane) {
    uint64_t lane_t0 = prof ? obs::Profiler::NowNs() : 0;
    NodeRun& run = runs[index];
    ExecSlot* slot = worker_slots_[lane].get();
    ExecSlot* saved = tls_slot_;
    tls_slot_ = slot;
    slot->events = &run.queue;
    slot->effects = &run.effects;
    size_t processed = 0;
    while (processed < run.queue.size()) {
      // Process in place (no pop): queue indexes stay aligned with the
      // token replay's per-node consumption order.
      const PendingEvent& event = run.queue[processed];
      size_t queued_before = run.queue.size();
      Unit unit;
      unit.status = ProcessEvent(event);
      unit.effect_end = run.effects.size();
      unit.spawned = static_cast<uint32_t>(run.queue.size() - queued_before);
      ++processed;
      bool failed = !unit.status.ok();
      run.units.push_back(std::move(unit));
      if (failed) break;  // canonical replay surfaces it in order
    }
    slot->events = nullptr;
    slot->effects = nullptr;
    tls_slot_ = saved;
    if (prof) profiler_.AddLane(lane, obs::Profiler::NowNs() - lane_t0);
  });
  if (prof) {
    profiler_.AddPhase(obs::Phase::kParallelCompute,
                       obs::Profiler::NowNs() - compute_t0);
  }

  // Commit phase: replay the global FIFO by token, committing each event's
  // effect segment and appending the tokens its cascade spawned — the same
  // order the sequential loop would have popped.
  const uint64_t commit_t0 = prof ? obs::Profiler::NowNs() : 0;
  std::vector<size_t> committed(runs.size(), 0);   // units consumed
  std::vector<size_t> effect_at(runs.size(), 0);   // effects committed
  Status result = OkStatus();
  while (!tokens.empty() && result.ok()) {
    size_t r = tokens.front();
    tokens.pop_front();
    NodeRun& run = runs[r];
    size_t k = committed[r]++;
    PROVNET_CHECK(k < run.units.size());
    Unit& unit = run.units[k];
    ++cells_.events->value;
    Status commit = CommitEffects(run.effects, effect_at[r], unit.effect_end);
    effect_at[r] = unit.effect_end;
    if (!commit.ok()) {
      result = commit;
      break;
    }
    if (!unit.status.ok()) {
      result = unit.status;
      break;
    }
    for (uint32_t s = 0; s < unit.spawned; ++s) tokens.push_back(r);
    if (++*steps > options_.max_steps) {
      result = ResourceExhaustedError(
          "engine exceeded max_steps; divergent program?");
      break;
    }
  }
  MergeWorkerSlots();
  if (prof) {
    profiler_.AddPhase(obs::Phase::kCommitReplay,
                       obs::Profiler::NowNs() - commit_t0);
  }
  return result;
}

Result<bool> Engine::TryParallelWave(uint64_t* steps) {
  // With the reliable transport on, frames must flow through Step(): it
  // sequences ack handling and retransmit timers against deliveries, and
  // that single sequential order is what keeps lossy runs byte-identical
  // at every thread count. (Framed payloads would also fail the kMsgTuple
  // eligibility check below; this just skips the wasted PopWave/Requeue.)
  if (net_.TransportEnabled()) return false;
  std::vector<NetMessage> wave = net_.PopWave();
  if (wave.empty()) return false;

  // Eligibility: several kMsgTuple messages fanning out to at least two
  // destinations. Anything else — retractions (they drive the shared
  // deletion-delta machinery), query traffic (shared session state), or a
  // single-destination wave — goes back untouched for the sequential
  // Step() path.
  bool eligible = wave.size() > 1;
  for (const NetMessage& msg : wave) {
    if (msg.payload.empty() || msg.payload[0] != kMsgTuple) {
      eligible = false;
      break;
    }
  }
  if (eligible) {
    NodeId first = wave[0].to;
    bool multi_dest = false;
    for (const NetMessage& msg : wave) {
      if (msg.to != first) {
        multi_dest = true;
        break;
      }
    }
    eligible = multi_dest;
  }
  if (!eligible) {
    net_.Requeue(std::move(wave));
    return false;
  }

  // One unit per message: the delivery plus its full local cascade — the
  // sequential loop drains all spawned events before the next delivery
  // (the event branch outranks the network branch), and those cascades are
  // node-local, so per-destination serial processing reproduces it.
  struct Unit {
    size_t effect_end = 0;
    uint32_t events_processed = 0;
    Status status;
  };
  struct NodeRun {
    std::vector<const NetMessage*> msgs;  // in wave (seq) order
    std::deque<PendingEvent> queue;
    std::vector<ExecSlot::Effect> effects;
    std::vector<Unit> units;
  };

  std::vector<NodeRun> runs;
  std::vector<size_t> run_of_node(contexts_.size(), SIZE_MAX);
  std::vector<size_t> run_of_msg(wave.size(), 0);
  for (size_t i = 0; i < wave.size(); ++i) {
    size_t r = run_of_node[wave[i].to];
    if (r == SIZE_MAX) {
      r = runs.size();
      run_of_node[wave[i].to] = r;
      runs.push_back(NodeRun{});
    }
    run_of_msg[i] = r;
    runs[r].msgs.push_back(&wave[i]);
  }

  const bool prof = profiler_.enabled();
  const uint64_t compute_t0 = prof ? obs::Profiler::NowNs() : 0;
  pool_->Run(runs.size(), [this, &runs, prof](size_t index, size_t lane) {
    uint64_t lane_t0 = prof ? obs::Profiler::NowNs() : 0;
    NodeRun& run = runs[index];
    ExecSlot* slot = worker_slots_[lane].get();
    ExecSlot* saved = tls_slot_;
    tls_slot_ = slot;
    slot->events = &run.queue;
    slot->effects = &run.effects;
    for (const NetMessage* msg : run.msgs) {
      Unit unit;
      unit.status = HandleMessage(msg->to, msg->from, msg->payload);
      while (unit.status.ok() && !run.queue.empty()) {
        PendingEvent event = std::move(run.queue.front());
        run.queue.pop_front();
        ++unit.events_processed;
        unit.status = ProcessEvent(event);
      }
      unit.effect_end = run.effects.size();
      bool failed = !unit.status.ok();
      run.units.push_back(std::move(unit));
      if (failed) break;  // remaining messages stay unprocessed
    }
    slot->events = nullptr;
    slot->effects = nullptr;
    tls_slot_ = saved;
    if (prof) profiler_.AddLane(lane, obs::Profiler::NowNs() - lane_t0);
  });
  if (prof) {
    profiler_.AddPhase(obs::Phase::kParallelCompute,
                       obs::Profiler::NowNs() - compute_t0);
  }

  // Commit in wave (seq) order: per message, the delivery counter, its
  // effect segment, and the event counters of its cascade.
  const uint64_t commit_t0 = prof ? obs::Profiler::NowNs() : 0;
  std::vector<size_t> committed(runs.size(), 0);
  std::vector<size_t> effect_at(runs.size(), 0);
  Status result = OkStatus();
  for (size_t i = 0; i < wave.size() && result.ok(); ++i) {
    NodeRun& run = runs[run_of_msg[i]];
    size_t k = committed[run_of_msg[i]]++;
    if (k >= run.units.size()) {
      // An earlier message of this destination failed; its error already
      // terminated the commit loop, so this is unreachable — guard anyway.
      result = InternalError("wave unit missing after upstream failure");
      break;
    }
    Unit& unit = run.units[k];
    ++cells_.deliveries->value;
    cells_.events->value += unit.events_processed;
    Status commit =
        CommitEffects(run.effects, effect_at[run_of_msg[i]], unit.effect_end);
    effect_at[run_of_msg[i]] = unit.effect_end;
    if (!commit.ok()) {
      result = commit;
      break;
    }
    if (!unit.status.ok()) {
      // The sequential engine surfaces handler errors through async_error_
      // on the next loop iteration; direct return is the same first error.
      result = unit.status;
      break;
    }
    *steps += 1 + unit.events_processed;
    if (*steps > options_.max_steps) {
      result = ResourceExhaustedError(
          "engine exceeded max_steps; divergent program?");
      break;
    }
  }
  MergeWorkerSlots();
  if (prof) {
    profiler_.AddPhase(obs::Phase::kCommitReplay,
                       obs::Profiler::NowNs() - commit_t0);
  }
  if (!result.ok()) return result;
  return true;
}

}  // namespace provnet
