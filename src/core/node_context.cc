#include "core/node_context.h"

namespace provnet {

Table& NodeContext::TableFor(const std::string& pred) {
  auto it = tables_.find(pred);
  if (it == tables_.end()) {
    it = tables_
             .emplace(pred,
                      std::make_unique<Table>(pred, plan_->OptionsFor(pred)))
             .first;
  }
  return *it->second;
}

const Table* NodeContext::FindTable(const std::string& pred) const {
  auto it = tables_.find(pred);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* NodeContext::FindTableMutable(const std::string& pred) {
  auto it = tables_.find(pred);
  return it == tables_.end() ? nullptr : it->second.get();
}

size_t NodeContext::TupleCount() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->size();
  return total;
}

size_t NodeContext::ExpireTablesBefore(double now) {
  size_t dropped = 0;
  for (auto& [name, table] : tables_) {
    dropped += table->ExpireBefore(now).size();
  }
  return dropped;
}

}  // namespace provnet
