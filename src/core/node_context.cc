#include "core/node_context.h"

namespace provnet {

Table& NodeContext::TableFor(const std::string& pred) {
  auto it = tables_.find(pred);
  if (it == tables_.end()) {
    it = tables_
             .emplace(pred,
                      std::make_unique<Table>(pred, plan_->OptionsFor(pred)))
             .first;
    it->second->set_dedup_refresh(dedup_refresh_);
  }
  return *it->second;
}

void NodeContext::SetDedupRefresh(bool on) {
  dedup_refresh_ = on;
  for (auto& [name, table] : tables_) table->set_dedup_refresh(on);
}

void NodeContext::ResetForCrash() {
  tables_.clear();
  online_.Clear();
  offline_.Crash();
  replay_guards_.clear();
  co_asserters_.clear();
}

const Table* NodeContext::FindTable(const std::string& pred) const {
  auto it = tables_.find(pred);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* NodeContext::FindTableMutable(const std::string& pred) {
  auto it = tables_.find(pred);
  return it == tables_.end() ? nullptr : it->second.get();
}

size_t NodeContext::TupleCount() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->size();
  return total;
}

std::vector<Table*> NodeContext::AllTables() {
  std::vector<Table*> out;
  out.reserve(tables_.size());
  for (auto& [name, table] : tables_) out.push_back(table.get());
  return out;
}

void NodeContext::NoteCoAsserter(uint64_t digest, const Principal& principal) {
  std::vector<Principal>& list = co_asserters_[digest];
  for (const Principal& p : list) {
    if (p == principal) return;
  }
  list.push_back(principal);
}

bool NodeContext::IsCoAsserter(uint64_t digest,
                               const Principal& principal) const {
  auto it = co_asserters_.find(digest);
  if (it == co_asserters_.end()) return false;
  for (const Principal& p : it->second) {
    if (p == principal) return true;
  }
  return false;
}

size_t NodeContext::ExpireTablesBefore(double now,
                                       std::vector<StoredTuple>* expired) {
  size_t dropped = 0;
  for (auto& [name, table] : tables_) {
    std::vector<StoredTuple> entries = table->ExpireBefore(now);
    dropped += entries.size();
    if (expired != nullptr) {
      for (StoredTuple& e : entries) expired->push_back(std::move(e));
    }
  }
  return dropped;
}

}  // namespace provnet
