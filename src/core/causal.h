// Cross-node causal trace context (ISSUE 8).
//
// Every wire message (kMsgTuple / kMsgRetract / kMsgProvRequest /
// kMsgProvResponse) carries a compact (trace_id, span_id) pair inside its
// signed content: the message *is* a span, minted by the sender from a
// per-node counter (no wall clock, no randomness — seeded runs stay
// byte-identical), and the receiver adopts the pair as its causal context,
// so the cascades, retractions, and query hops a message triggers — and the
// messages *they* send — share one trace id across nodes. Trace streams
// from different nodes then stitch into a single span tree
// (obs::TraceEvent::{trace_id, span_id, parent_span}).
//
// trace_id 0 = no causal context: sends from such a context root a new
// trace (trace_id := the new span id). The ids ride the wire
// unconditionally — tracing merely records them — so enabling observability
// never changes message bytes.
#ifndef PROVNET_CORE_CAUSAL_H_
#define PROVNET_CORE_CAUSAL_H_

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace provnet {

struct CausalIds {
  uint64_t trace_id = 0;  // the tree this context belongs to (0 = none)
  uint64_t span_id = 0;   // the span that established the context
};

// Span ids pack (node+1) in the high bits over a per-node sequence, so ids
// are globally unique, deterministic, and attribute their minting node.
inline uint64_t PackSpanId(uint32_t node, uint64_t seq) {
  return ((static_cast<uint64_t>(node) + 1) << 32) | (seq & 0xffffffffull);
}

inline void PutCausalIds(ByteWriter& out, const CausalIds& ids) {
  out.PutVarint(ids.trace_id);
  out.PutVarint(ids.span_id);
}

inline Result<CausalIds> GetCausalIds(ByteReader& in) {
  CausalIds ids;
  PROVNET_ASSIGN_OR_RETURN(ids.trace_id, in.GetVarint());
  PROVNET_ASSIGN_OR_RETURN(ids.span_id, in.GetVarint());
  return ids;
}

}  // namespace provnet

#endif  // PROVNET_CORE_CAUSAL_H_
