// Soft-state tuple tables (the per-node storage of the P2-style runtime).
//
// Tables have primary keys (P2 materialize semantics): inserting a tuple
// whose key collides with a stored tuple *replaces* it. TTLs implement
// soft state (Section 2.1's sliding-window view of routes). Aggregate tables
// (MIN/MAX/COUNT heads) maintain one tuple per group and only accept
// improvements.
//
// Every stored tuple carries its provenance sidecar: the semiring
// annotation, an optional full derivation tree, the asserting principal, and
// where it came from.
//
// Storage is an open hash keyed by the 64-bit key-column hash with chained
// collision buckets: a hash match alone never identifies a row — key-column
// equality is verified before any replace/refresh, so two distinct keys
// whose hashes collide coexist instead of corrupting each other. Rows live
// in node-based containers, so `const StoredTuple*` handles stay valid
// across unrelated inserts/removals — the join core iterates rows and
// per-column index buckets by pointer, allocation-free (ForEach /
// ForEachByColumn), with mutations deferred until a scan completes.
#ifndef PROVNET_CORE_TABLE_H_
#define PROVNET_CORE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/keystore.h"
#include "datalog/ast.h"
#include "datalog/tuple.h"
#include "provenance/derivation.h"
#include "provenance/prov_expr.h"
#include "util/status.h"

namespace provnet {

// Where a stored tuple came from (drives distributed-provenance pointers).
enum class TupleOrigin : uint8_t { kBase = 0, kLocalRule = 1, kRemote = 2 };

struct StoredTuple {
  Tuple tuple;
  double inserted_at = 0.0;
  double expires_at = -1.0;  // -1 = never
  ProvExpr prov;             // semiring annotation (Zero when provenance off)
  DerivationPtr deriv;       // full tree when ProvMode::kFull, else nullptr
  Principal asserted_by;     // who says this tuple (empty when auth off)
  TupleOrigin origin = TupleOrigin::kBase;
  NodeId from_node = 0;      // sender when origin == kRemote
  std::string rule;          // deriving rule label ("" for base/remote)
  // Identity of the local rule firing that produced this entry — set only
  // for COUNT-aggregate candidates (hash over rule, node, head, body
  // tuples). Keys the witness multiset so insert/delete of one derivation
  // is idempotent; 0 = unidentified (base/remote), which COUNT deletion
  // answers with a group recomputation instead.
  uint64_t deriv_id = 0;

  StoredTuple() = default;
  StoredTuple(const StoredTuple& other);
  StoredTuple& operator=(const StoredTuple& other);
  StoredTuple(StoredTuple&&) = default;
  StoredTuple& operator=(StoredTuple&&) = default;

  // Process-wide count of deep copies (copy construction/assignment). The
  // zero-copy join core must not copy candidates; tests assert this stays
  // flat relative to RunStats.join_candidates.
  static uint64_t CopyCount();
  static void ResetCopyCount();
};

enum class InsertOutcome : uint8_t {
  kNew,        // previously unknown tuple; caller should propagate
  kRefreshed,  // identical tuple existed; TTL refreshed, provenance merged
  kReplaced,   // same key, different tuple; caller should propagate
  kRejected,   // aggregate candidate did not improve the group
};

struct InsertResult {
  InsertOutcome outcome = InsertOutcome::kNew;
  // The tuple now stored for the affected key (for aggregates this differs
  // from the candidate: the aggregate column holds the aggregated value).
  Tuple stored;
  // kRefreshed only, and only with dedup_refresh enabled: the refresh
  // carried no derivation content that was not already stored (a
  // retransmission or crash-recovery re-advertisement). The row's
  // provenance was left untouched and callers may skip re-recording.
  bool duplicate = false;
};

struct TableOptions {
  // 0-based key column positions; empty = all columns (set semantics).
  std::vector<int> key_columns;
  double default_ttl = -1.0;  // seconds; -1 = infinite
  int64_t max_size = -1;      // -1 = unbounded; otherwise FIFO eviction
  // Aggregate table: which column aggregates and how.
  AggKind agg = AggKind::kNone;
  int agg_column = -1;
};

class Table {
 public:
  Table(std::string name, TableOptions options);
  ~Table();

  const std::string& name() const { return name_; }
  const TableOptions& options() const { return options_; }
  size_t size() const { return rows_.size(); }

  // Inserts `entry` at time `now`. For aggregate tables the entry's tuple is
  // the *candidate* (aggregate column = contributing value).
  InsertResult Insert(StoredTuple entry, double now);

  // Returns the live entry equal to `tuple`, or nullptr.
  const StoredTuple* Find(const Tuple& tuple) const;
  StoredTuple* FindMutable(const Tuple& tuple);

  // Returns the entry sharing `tuple`'s primary key (ignoring non-key
  // columns), or nullptr. For aggregate tables this finds the group's
  // current extremum given any candidate of the group.
  const StoredTuple* FindGroup(const Tuple& tuple) const;

  // Stable digest of `tuple`'s primary-key columns: identifies an aggregate
  // group across changes of its aggregated value (retraction authorization
  // keys contributor records by it).
  uint64_t GroupDigest(const Tuple& tuple) const { return KeyHash(tuple); }

  // All live entries (in unspecified order). Allocates; the join core uses
  // ForEach/ForEachByColumn instead.
  std::vector<const StoredTuple*> Scan() const;

  // Entries whose column `col` equals `v` (uses a lazily-built hash index).
  std::vector<const StoredTuple*> LookupByColumn(int col, const Value& v);

  // An equality constraint the composite index can serve.
  struct ColumnEq {
    int col = -1;
    const Value* value = nullptr;
  };

  // Allocation-free iteration over all live entries. `fn` is
  // Status(const StoredTuple&); iteration stops on the first error. The
  // table must not be mutated during the visit (the engine defers emit-side
  // mutations until its scans complete).
  template <typename Fn>
  Status ForEach(Fn&& fn) const {
    for (const auto& [key, entry] : rows_) {
      PROVNET_RETURN_IF_ERROR(fn(entry));
    }
    return OkStatus();
  }

  // Allocation-free indexed iteration over entries with column `col` equal
  // to `v`. Builds the per-column index on first use.
  template <typename Fn>
  Status ForEachByColumn(int col, const Value& v, Fn&& fn) {
    ColumnEq eq{col, &v};
    return ForEachByColumns(&eq, 1, fn);
  }

  // Allocation-free indexed iteration over entries matching every equality
  // in `eqs` (ascending column order, each column at most once). The
  // composite index — one lazily-built hash per distinct column set — makes
  // multi-bound join literals O(matches) instead of O(first-column
  // matches): the join core passes every constant/bound column of the
  // literal's slot program here.
  template <typename Fn>
  Status ForEachByColumns(const ColumnEq* eqs, size_t n, Fn&& fn) {
    const std::vector<const StoredTuple*>* bucket = EqBucket(eqs, n);
    if (bucket == nullptr) return OkStatus();
    for (const StoredTuple* entry : *bucket) {
      bool match = true;
      for (size_t i = 0; i < n; ++i) {
        size_t col = static_cast<size_t>(eqs[i].col);
        if (col >= entry->tuple.arity() ||
            !(entry->tuple.arg(col) == *eqs[i].value)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      PROVNET_RETURN_IF_ERROR(fn(*entry));
    }
    return OkStatus();
  }

  // Drops entries with expires_at < now; returns the dropped entries (with
  // their provenance sidecars, so expiry can fire deletion deltas).
  std::vector<StoredTuple> ExpireBefore(double now);

  // Removes a specific tuple and returns the stored entry — annotation,
  // derivation tree, and origin ride along so deletion deltas carry
  // provenance. nullopt if the tuple was not present.
  std::optional<StoredTuple> Remove(const Tuple& tuple);

  // O(delta) COUNT maintenance, deletion side. `candidate` is the dead
  // derivation's head (the same shape Insert takes: aggregate column =
  // contributing value) and `deriv_id` its identity. Retires that
  // derivation from the witness's set; when the last one dies the witness
  // leaves the group's multiset and the stored count drops by one — in
  // place, no group re-derivation. The caller retracts `old_entry` (the row
  // as it stood) downstream and propagates `new_tuple` as an ordinary
  // insertion delta. Unidentified deletions (deriv_id 0: remote retracts,
  // base candidates) return kNoWitness so the caller recomputes the group.
  struct WitnessRemoval {
    enum class Kind : uint8_t {
      kNoWitness = 0,    // unknown derivation/witness: fall back to DRed
      kRefcounted = 1,   // another derivation survives; nothing visible
      kCountChanged = 2, // count decremented in place
      kGroupEmptied = 3, // last witness died; the group row was removed
    };
    Kind kind = Kind::kNoWitness;
    StoredTuple old_entry;  // kCountChanged / kGroupEmptied
    Tuple new_tuple;        // kCountChanged: the row now stored
  };
  WitnessRemoval RemoveWitness(const Tuple& candidate, uint64_t deriv_id);

  // Removes a specific tuple; true if it was present.
  bool Erase(const Tuple& tuple) { return Remove(tuple).has_value(); }

  std::string ToString() const;

  // Content-idempotent refreshes: when on, a kRefreshed insert whose
  // derivation content is already among the stored alternatives leaves the
  // row's provenance untouched (and is flagged InsertResult::duplicate)
  // instead of growing the Plus spine. ProvExpr::Plus is only idempotent on
  // physical node identity, so without this a retransmitted advertisement
  // accretes a content-equal alternative on every arrival; the reliable
  // transport enables it so lossy runs converge to the byte-identical
  // annotations of the fault-free run. Off by default: historical
  // annotation bytes stay exactly as they were.
  void set_dedup_refresh(bool on) { dedup_refresh_ = on; }

 private:
  using RowMap = std::unordered_multimap<uint64_t, StoredTuple>;

  // Merges `entry`'s provenance into `row` (Plus + MergeAlternatives).
  // True when dedup_refresh_ detected a pure content duplicate and left
  // the row untouched.
  bool MergeRefresh(StoredTuple& row, StoredTuple& entry);

  // Key of a tuple under this table's key columns.
  uint64_t KeyHash(const Tuple& tuple) const;
  // True when `a` and `b` agree on every key column (full equality for
  // keyless set-semantics tables).
  bool SameKey(const Tuple& a, const Tuple& b) const;
  // The row whose key columns match `tuple` among the hash's collision
  // chain, or end().
  RowMap::iterator FindRow(uint64_t key, const Tuple& tuple);
  RowMap::const_iterator FindRow(uint64_t key, const Tuple& tuple) const;

  void IndexInsert(const StoredTuple* entry);
  void IndexErase(const StoredTuple* entry);
  // Index bucket holding candidates for the conjunction of `eqs` (nullptr
  // when empty). Builds the column set's index on first use. Entries may be
  // hash-collision false positives; callers re-verify.
  const std::vector<const StoredTuple*>* EqBucket(const ColumnEq* eqs,
                                                  size_t n);

  // FIFO bookkeeping (only maintained for bounded tables).
  void OrderPush(const StoredTuple* entry);
  void OrderErase(const StoredTuple* entry);
  void EvictOver(const StoredTuple* just_inserted);

  std::string name_;
  TableOptions options_;
  bool dedup_refresh_ = false;
  // Primary store: key hash -> collision chain of entries. Node-based, so
  // entry pointers are stable until the entry itself is removed.
  RowMap rows_;
  // Aggregate bookkeeping (COUNT): a *multiset* of witnesses per group —
  // witness hash -> the identities of its live derivations. The count is
  // the number of distinct witnesses (map size); the identity sets make
  // insertion idempotent per derivation (pipelined semi-naive can emit one
  // derivation from each of its body deltas) and let deletion deltas retire
  // one derivation at a time (RemoveWitness) without re-deriving the group.
  // `anonymous` counts derivations without identities (base facts, remote
  // candidates); retiring those falls back to group recomputation.
  // Like rows_, chained per key hash with key-column verification so
  // colliding groups never share (or lose) each other's witnesses.
  struct WitnessDerivs {
    std::unordered_set<uint64_t> ids;
    uint32_t anonymous = 0;
    bool Dead() const { return ids.empty() && anonymous == 0; }
  };
  struct WitnessChain {
    Tuple group;  // any candidate of the group (key columns identify it)
    std::unordered_map<uint64_t, WitnessDerivs> seen;
  };
  // The chain entry for `tuple`'s group, created on demand.
  std::unordered_map<uint64_t, WitnessDerivs>& WitnessesFor(
      uint64_t key, const Tuple& tuple);
  void WitnessErase(uint64_t key, const Tuple& tuple);
  std::unordered_map<uint64_t, std::vector<WitnessChain>> witnesses_;
  // Lazy composite equality index: column-set bitmask -> combined value
  // hash -> entries. Single-column lookups use a one-bit mask; a table
  // carries one index per distinct column set its join literals probe.
  std::unordered_map<uint64_t,
                     std::unordered_map<uint64_t,
                                        std::vector<const StoredTuple*>>>
      column_index_;
  // FIFO order for max_size eviction (bounded tables only).
  std::vector<const StoredTuple*> insertion_order_;

  // Bytes currently charged against obs::MemSubsystem::kTableRows /
  // kTableIndexes for this table; the destructor releases both so dead
  // tables (per-point bench engines, test fixtures) do not pin the gauge.
  uint64_t accounted_row_bytes_ = 0;
  uint64_t accounted_index_bytes_ = 0;
  void ChargeRow(const StoredTuple& entry);
  void ReleaseRow(const StoredTuple& entry);
  void ChargeIndexEntries(uint64_t n);
  void ReleaseIndexEntries(uint64_t n);
};

}  // namespace provnet

#endif  // PROVNET_CORE_TABLE_H_
