// Soft-state tuple tables (the per-node storage of the P2-style runtime).
//
// Tables have primary keys (P2 materialize semantics): inserting a tuple
// whose key collides with a stored tuple *replaces* it. TTLs implement
// soft state (Section 2.1's sliding-window view of routes). Aggregate tables
// (MIN/MAX/COUNT heads) maintain one tuple per group and only accept
// improvements.
//
// Every stored tuple carries its provenance sidecar: the semiring
// annotation, an optional full derivation tree, the asserting principal, and
// where it came from.
#ifndef PROVNET_CORE_TABLE_H_
#define PROVNET_CORE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/keystore.h"
#include "datalog/ast.h"
#include "datalog/tuple.h"
#include "provenance/derivation.h"
#include "provenance/prov_expr.h"
#include "util/status.h"

namespace provnet {

// Where a stored tuple came from (drives distributed-provenance pointers).
enum class TupleOrigin : uint8_t { kBase = 0, kLocalRule = 1, kRemote = 2 };

struct StoredTuple {
  Tuple tuple;
  double inserted_at = 0.0;
  double expires_at = -1.0;  // -1 = never
  ProvExpr prov;             // semiring annotation (Zero when provenance off)
  DerivationPtr deriv;       // full tree when ProvMode::kFull, else nullptr
  Principal asserted_by;     // who says this tuple (empty when auth off)
  TupleOrigin origin = TupleOrigin::kBase;
  NodeId from_node = 0;      // sender when origin == kRemote
  std::string rule;          // deriving rule label ("" for base/remote)
};

enum class InsertOutcome : uint8_t {
  kNew,        // previously unknown tuple; caller should propagate
  kRefreshed,  // identical tuple existed; TTL refreshed, provenance merged
  kReplaced,   // same key, different tuple; caller should propagate
  kRejected,   // aggregate candidate did not improve the group
};

struct InsertResult {
  InsertOutcome outcome = InsertOutcome::kNew;
  // The tuple now stored for the affected key (for aggregates this differs
  // from the candidate: the aggregate column holds the aggregated value).
  Tuple stored;
};

struct TableOptions {
  // 0-based key column positions; empty = all columns (set semantics).
  std::vector<int> key_columns;
  double default_ttl = -1.0;  // seconds; -1 = infinite
  int64_t max_size = -1;      // -1 = unbounded; otherwise FIFO eviction
  // Aggregate table: which column aggregates and how.
  AggKind agg = AggKind::kNone;
  int agg_column = -1;
};

class Table {
 public:
  Table(std::string name, TableOptions options);

  const std::string& name() const { return name_; }
  const TableOptions& options() const { return options_; }
  size_t size() const { return rows_.size(); }

  // Inserts `entry` at time `now`. For aggregate tables the entry's tuple is
  // the *candidate* (aggregate column = contributing value).
  InsertResult Insert(StoredTuple entry, double now);

  // Returns the live entry equal to `tuple`, or nullptr.
  const StoredTuple* Find(const Tuple& tuple) const;
  StoredTuple* FindMutable(const Tuple& tuple);

  // Returns the entry sharing `tuple`'s primary key (ignoring non-key
  // columns), or nullptr. For aggregate tables this finds the group's
  // current extremum given any candidate of the group.
  const StoredTuple* FindGroup(const Tuple& tuple) const;

  // All live entries (in unspecified order).
  std::vector<const StoredTuple*> Scan() const;

  // Entries whose column `col` equals `v` (uses a lazily-built hash index).
  std::vector<const StoredTuple*> LookupByColumn(int col, const Value& v);

  // Drops entries with expires_at < now; returns the dropped entries (with
  // their provenance sidecars, so expiry can fire deletion deltas).
  std::vector<StoredTuple> ExpireBefore(double now);

  // Removes a specific tuple and returns the stored entry — annotation,
  // derivation tree, and origin ride along so deletion deltas carry
  // provenance. nullopt if the tuple was not present.
  std::optional<StoredTuple> Remove(const Tuple& tuple);

  // Removes a specific tuple; true if it was present.
  bool Erase(const Tuple& tuple) { return Remove(tuple).has_value(); }

  std::string ToString() const;

 private:
  // Key of a tuple under this table's key columns.
  uint64_t KeyHash(const Tuple& tuple) const;
  void IndexInsert(const Tuple& tuple);
  void IndexErase(const Tuple& tuple);

  std::string name_;
  TableOptions options_;
  // Primary store: key hash -> entry. (Full-key compare on collision is
  // skipped: 64-bit hashes over simulation-scale tables.)
  std::unordered_map<uint64_t, StoredTuple> rows_;
  // Aggregate bookkeeping: group key -> distinct witness hashes (COUNT).
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, bool>> witnesses_;
  // Lazy per-column index: col -> value hash -> key hashes.
  std::unordered_map<int, std::unordered_map<uint64_t, std::vector<uint64_t>>>
      column_index_;
  // FIFO order for max_size eviction.
  std::vector<uint64_t> insertion_order_;
};

}  // namespace provnet

#endif  // PROVNET_CORE_TABLE_H_
