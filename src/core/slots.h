// Slot-compiled rule programs: the plan-time half of the zero-copy join
// core.
//
// The seed evaluator bound variables through a string-keyed
// std::unordered_map<std::string, Value> cloned per join candidate — a map
// allocation plus per-term hashing in the innermost loop of every rule
// firing. This module numbers each rule's variables into a dense frame of
// integer slots at plan time and pre-resolves everything the inner loop
// touches:
//
//   * body atoms   -> one MatchOp per column (bind-or-check slot / check
//                     constant) plus the column candidates an index lookup
//                     may serve, so unification is a flat loop over ops;
//   * conditions / assignments / head terms -> SlotExpr / SlotTerm trees
//     whose variables are slot references and whose builtin calls are
//     interned BuiltinFn enums (no string dispatch per call);
//   * says clauses -> a SlotSays (constant principal or slot).
//
// At run time a single Frame (slot values + bound bitmap + undo trail) is
// threaded through the join recursion: binding records the slot on the
// trail, backtracking pops it — no copies, no allocation. Frames are
// seeded dynamically (the delta literal, or a partially-bound head pattern
// during re-derivation), so every variable column compiles to bind-OR-check
// and index-column selection picks the first constant or *currently bound*
// column at run time, exactly mirroring the seed's per-firing choice.
#ifndef PROVNET_CORE_SLOTS_H_
#define PROVNET_CORE_SLOTS_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/localize.h"
#include "datalog/tuple.h"
#include "util/status.h"

namespace provnet {

// Interned f_* builtin names (see eval.h for the library's semantics).
enum class BuiltinFn : uint8_t {
  kInit = 0,
  kConcatPath,
  kAppend,
  kMember,
  kSize,
  kFirst,
  kLast,
  kSecond,
  kMin,
  kMax,
};

const char* BuiltinFnName(BuiltinFn fn);
Result<BuiltinFn> LookupBuiltin(const std::string& name);
Result<Value> CallBuiltin(BuiltinFn fn, const std::vector<Value>& args);

// A term with variables resolved to frame slots and builtins interned.
struct SlotTerm {
  TermKind kind = TermKind::kConstant;
  int slot = -1;               // kVariable / kAggregate
  Value constant;              // kConstant
  BuiltinFn fn = BuiltinFn::kInit;  // kFunction
  std::vector<SlotTerm> args;  // kFunction arguments
  std::string name;            // variable/function name (diagnostics only)
};

// Expression tree mirroring Expr with slot-resolved leaves.
struct SlotExpr {
  ExprOp op = ExprOp::kTerm;
  SlotTerm term;                   // kTerm leaf
  std::vector<SlotExpr> children;  // binary ops: exactly 2
};

// Unification program for one body-atom column.
struct MatchOp {
  bool is_const = false;
  int slot = -1;   // bind-or-check when !is_const
  Value constant;  // equality check when is_const
};

// A column an index lookup could serve: usable when the column pattern is a
// constant, or its slot is bound by the time the literal is reached.
struct IndexCand {
  int col = -1;
  bool is_const = false;
  int slot = -1;
  Value constant;
};

// Compiled "P says atom" check. `never` marks patterns that can never match
// (non-variable, non-constant says terms), preserving seed semantics.
struct SlotSays {
  bool never = false;
  bool is_const = false;
  Value constant;
  int slot = -1;
};

// One compiled body literal.
struct SlotLiteral {
  LiteralKind kind = LiteralKind::kAtom;
  // kAtom.
  std::string predicate;
  size_t arity = 0;
  std::vector<MatchOp> cols;            // one per column
  std::vector<IndexCand> index_cands;   // in column order
  std::optional<SlotSays> says;
  // kCondition (expr) / kAssign (assign_slot := expr).
  SlotExpr expr;
  int assign_slot = -1;
};

// The full slot program of one localized rule.
struct RuleProgram {
  int num_slots = 0;
  int local_slot = 0;  // slot of the executing node's address variable
  std::string head_predicate;
  // Rule label for derivation records ("r1", or the head predicate when the
  // source left it unlabeled), resolved once at compile time.
  std::string label;
  std::vector<SlotLiteral> body;       // in rule-body order
  std::vector<SlotTerm> head_args;
  std::optional<SlotTerm> send_to;
  // Variable name -> slot, for seeding frames from name-keyed bindings
  // (re-derivation unifies head patterns by name before joining).
  std::unordered_map<std::string, int> var_slots;
};

Result<RuleProgram> CompileRuleProgram(const LocalizedRule& lr);

// The run-time variable frame: slot values, bound flags, and a trail of
// bindings for O(1) backtracking. One frame is reused across firings
// (Reset is O(num_slots); binding/undo are O(1) per slot).
class Frame {
 public:
  void Reset(int num_slots) {
    size_t n = static_cast<size_t>(num_slots);
    if (slots_.size() < n) {
      slots_.resize(n);
      bound_.resize(n);
    }
    std::fill(bound_.begin(), bound_.begin() + static_cast<long>(n), 0);
    trail_.clear();
  }

  bool IsBound(int slot) const {
    return bound_[static_cast<size_t>(slot)] != 0;
  }
  const Value& Get(int slot) const { return slots_[static_cast<size_t>(slot)]; }

  // Binds an unbound slot (recording it on the trail) or checks equality
  // against the existing binding.
  bool BindOrCheck(int slot, const Value& v) {
    size_t s = static_cast<size_t>(slot);
    if (bound_[s]) return slots_[s] == v;
    slots_[s] = v;
    bound_[s] = 1;
    trail_.push_back(slot);
    return true;
  }
  bool BindOrCheck(int slot, Value&& v) {
    size_t s = static_cast<size_t>(slot);
    if (bound_[s]) return slots_[s] == v;
    slots_[s] = std::move(v);
    bound_[s] = 1;
    trail_.push_back(slot);
    return true;
  }

  size_t Mark() const { return trail_.size(); }
  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      bound_[static_cast<size_t>(trail_.back())] = 0;
      trail_.pop_back();
    }
  }

 private:
  std::vector<Value> slots_;
  std::vector<uint8_t> bound_;
  std::vector<int> trail_;
};

// Matches `tuple` against the literal's column ops, extending `frame`. On
// mismatch the frame may hold partial bindings; callers undo to their mark.
bool MatchTuple(const SlotLiteral& lit, const Tuple& tuple, Frame& frame);

Result<Value> EvalSlotTerm(const SlotTerm& term, const Frame& frame);
Result<Value> EvalSlotExpr(const SlotExpr& expr, const Frame& frame);
Result<bool> EvalSlotCondition(const SlotExpr& expr, const Frame& frame);

// Builds the rule's head tuple from the frame (constants, slots, functions,
// aggregate placeholders).
Result<Tuple> BuildHeadTuple(const RuleProgram& prog, const Frame& frame);

}  // namespace provnet

#endif  // PROVNET_CORE_SLOTS_H_
