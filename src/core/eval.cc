#include "core/eval.h"

#include <algorithm>
#include <cmath>

#include "core/slots.h"

namespace provnet {
namespace {

Status ArityError(const std::string& name, size_t want, size_t got) {
  return InvalidArgumentError(name + " expects " + std::to_string(want) +
                              " arguments, got " + std::to_string(got));
}

Result<Value> ListOf(const Value& v, const std::string& fn) {
  if (v.kind() != ValueKind::kList) {
    return InvalidArgumentError(fn + ": expected a list, got " + v.ToString());
  }
  return v;
}

}  // namespace

const char* BuiltinFnName(BuiltinFn fn) {
  switch (fn) {
    case BuiltinFn::kInit:
      return "f_init";
    case BuiltinFn::kConcatPath:
      return "f_concatPath";
    case BuiltinFn::kAppend:
      return "f_append";
    case BuiltinFn::kMember:
      return "f_member";
    case BuiltinFn::kSize:
      return "f_size";
    case BuiltinFn::kFirst:
      return "f_first";
    case BuiltinFn::kLast:
      return "f_last";
    case BuiltinFn::kSecond:
      return "f_second";
    case BuiltinFn::kMin:
      return "f_min";
    case BuiltinFn::kMax:
      return "f_max";
  }
  return "?";
}

Result<BuiltinFn> LookupBuiltin(const std::string& name) {
  if (name == "f_init") return BuiltinFn::kInit;
  if (name == "f_concatPath") return BuiltinFn::kConcatPath;
  if (name == "f_append") return BuiltinFn::kAppend;
  if (name == "f_member") return BuiltinFn::kMember;
  if (name == "f_size") return BuiltinFn::kSize;
  if (name == "f_first") return BuiltinFn::kFirst;
  if (name == "f_last") return BuiltinFn::kLast;
  if (name == "f_second") return BuiltinFn::kSecond;
  if (name == "f_min") return BuiltinFn::kMin;
  if (name == "f_max") return BuiltinFn::kMax;
  return UnimplementedError("unknown builtin " + name);
}

Result<Value> CallBuiltin(BuiltinFn fn, const std::vector<Value>& args) {
  const char* name = BuiltinFnName(fn);
  switch (fn) {
    case BuiltinFn::kInit:
      if (args.size() != 2) return ArityError(name, 2, args.size());
      return Value::List({args[0], args[1]});
    case BuiltinFn::kConcatPath: {
      if (args.size() != 2) return ArityError(name, 2, args.size());
      PROVNET_ASSIGN_OR_RETURN(Value list, ListOf(args[1], name));
      std::vector<Value> out;
      out.reserve(list.AsList().size() + 1);
      out.push_back(args[0]);
      out.insert(out.end(), list.AsList().begin(), list.AsList().end());
      return Value::List(std::move(out));
    }
    case BuiltinFn::kAppend: {
      if (args.size() != 2) return ArityError(name, 2, args.size());
      PROVNET_ASSIGN_OR_RETURN(Value list, ListOf(args[0], name));
      std::vector<Value> out = list.AsList();
      out.push_back(args[1]);
      return Value::List(std::move(out));
    }
    case BuiltinFn::kMember: {
      if (args.size() != 2) return ArityError(name, 2, args.size());
      PROVNET_ASSIGN_OR_RETURN(Value list, ListOf(args[0], name));
      for (const Value& v : list.AsList()) {
        if (v == args[1]) return Value::Int(1);
      }
      return Value::Int(0);
    }
    case BuiltinFn::kSize: {
      if (args.size() != 1) return ArityError(name, 1, args.size());
      PROVNET_ASSIGN_OR_RETURN(Value list, ListOf(args[0], name));
      return Value::Int(static_cast<int64_t>(list.AsList().size()));
    }
    case BuiltinFn::kFirst:
    case BuiltinFn::kLast: {
      if (args.size() != 1) return ArityError(name, 1, args.size());
      PROVNET_ASSIGN_OR_RETURN(Value list, ListOf(args[0], name));
      if (list.AsList().empty()) {
        return InvalidArgumentError(std::string(name) + ": empty list");
      }
      return fn == BuiltinFn::kFirst ? list.AsList().front()
                                     : list.AsList().back();
    }
    case BuiltinFn::kSecond: {
      // Next hop of a path vector.
      if (args.size() != 1) return ArityError(name, 1, args.size());
      PROVNET_ASSIGN_OR_RETURN(Value list, ListOf(args[0], name));
      if (list.AsList().size() < 2) {
        return InvalidArgumentError("f_second: list has no second element");
      }
      return list.AsList()[1];
    }
    case BuiltinFn::kMin:
    case BuiltinFn::kMax: {
      if (args.size() != 2) return ArityError(name, 2, args.size());
      int cmp = args[0].Compare(args[1]);
      if (fn == BuiltinFn::kMin) return cmp <= 0 ? args[0] : args[1];
      return cmp >= 0 ? args[0] : args[1];
    }
  }
  return InternalError("unreachable builtin");
}

Result<Value> CallBuiltin(const std::string& name,
                          const std::vector<Value>& args) {
  PROVNET_ASSIGN_OR_RETURN(BuiltinFn fn, LookupBuiltin(name));
  return CallBuiltin(fn, args);
}

Result<Value> EvalTerm(const Term& term, const Env& env) {
  switch (term.kind) {
    case TermKind::kConstant:
      return term.constant;
    case TermKind::kVariable:
    case TermKind::kAggregate: {
      auto it = env.find(term.name);
      if (it == env.end()) {
        return FailedPreconditionError("unbound variable " + term.name);
      }
      return it->second;
    }
    case TermKind::kFunction: {
      std::vector<Value> args;
      args.reserve(term.args.size());
      for (const Term& a : term.args) {
        PROVNET_ASSIGN_OR_RETURN(Value v, EvalTerm(a, env));
        args.push_back(std::move(v));
      }
      return CallBuiltin(term.name, args);
    }
  }
  return InternalError("unreachable term kind");
}

Result<Value> ApplyBinaryOp(ExprOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case ExprOp::kEq:
      return Value::Int(lhs == rhs ? 1 : 0);
    case ExprOp::kNe:
      return Value::Int(lhs != rhs ? 1 : 0);
    case ExprOp::kLt:
      return Value::Int(lhs.Compare(rhs) < 0 ? 1 : 0);
    case ExprOp::kLe:
      return Value::Int(lhs.Compare(rhs) <= 0 ? 1 : 0);
    case ExprOp::kGt:
      return Value::Int(lhs.Compare(rhs) > 0 ? 1 : 0);
    case ExprOp::kGe:
      return Value::Int(lhs.Compare(rhs) >= 0 ? 1 : 0);
    default:
      break;
  }

  // Arithmetic.
  if (lhs.kind() == ValueKind::kInt && rhs.kind() == ValueKind::kInt) {
    int64_t a = lhs.AsInt();
    int64_t b = rhs.AsInt();
    switch (op) {
      case ExprOp::kAdd:
        return Value::Int(a + b);
      case ExprOp::kSub:
        return Value::Int(a - b);
      case ExprOp::kMul:
        return Value::Int(a * b);
      case ExprOp::kDiv:
        if (b == 0) return InvalidArgumentError("division by zero");
        return Value::Int(a / b);
      case ExprOp::kMod:
        if (b == 0) return InvalidArgumentError("modulo by zero");
        return Value::Int(a % b);
      default:
        return InternalError("unreachable arithmetic op");
    }
  }
  PROVNET_ASSIGN_OR_RETURN(double a, lhs.ToNumber());
  PROVNET_ASSIGN_OR_RETURN(double b, rhs.ToNumber());
  switch (op) {
    case ExprOp::kAdd:
      return Value::Real(a + b);
    case ExprOp::kSub:
      return Value::Real(a - b);
    case ExprOp::kMul:
      return Value::Real(a * b);
    case ExprOp::kDiv:
      if (b == 0.0) return InvalidArgumentError("division by zero");
      return Value::Real(a / b);
    case ExprOp::kMod:
      if (b == 0.0) return InvalidArgumentError("modulo by zero");
      return Value::Real(std::fmod(a, b));
    default:
      return InternalError("unreachable arithmetic op");
  }
}

Result<Value> EvalExpr(const Expr& expr, const Env& env) {
  if (expr.op == ExprOp::kTerm) return EvalTerm(expr.term, env);
  PROVNET_ASSIGN_OR_RETURN(Value lhs, EvalExpr(expr.children[0], env));
  PROVNET_ASSIGN_OR_RETURN(Value rhs, EvalExpr(expr.children[1], env));
  return ApplyBinaryOp(expr.op, lhs, rhs);
}

Result<bool> EvalCondition(const Expr& expr, const Env& env) {
  if (!expr.IsComparison()) {
    return InvalidArgumentError("condition must be a comparison: " +
                                expr.ToString());
  }
  PROVNET_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, env));
  return v.AsInt() != 0;
}

bool UnifyTuple(const Atom& atom, const Tuple& tuple, Env& env) {
  if (atom.predicate != tuple.predicate()) return false;
  if (atom.args.size() != tuple.arity()) return false;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& pattern = atom.args[i];
    const Value& value = tuple.arg(i);
    switch (pattern.kind) {
      case TermKind::kConstant:
        if (!(pattern.constant == value)) return false;
        break;
      case TermKind::kVariable: {
        auto it = env.find(pattern.name);
        if (it == env.end()) {
          env.emplace(pattern.name, value);
        } else if (!(it->second == value)) {
          return false;
        }
        break;
      }
      default:
        // Function/aggregate args in body atoms are rejected at plan time.
        return false;
    }
  }
  return true;
}

bool UnifyHeadPattern(const Atom& head, const Tuple& tuple, Env& env,
                      const std::vector<int>& positions) {
  if (head.predicate != tuple.predicate()) return false;
  if (head.args.size() != tuple.arity()) return false;
  for (size_t i = 0; i < head.args.size(); ++i) {
    if (!positions.empty() &&
        std::find(positions.begin(), positions.end(), static_cast<int>(i)) ==
            positions.end()) {
      continue;
    }
    const Term& pattern = head.args[i];
    const Value& value = tuple.arg(i);
    switch (pattern.kind) {
      case TermKind::kConstant:
        if (!(pattern.constant == value)) return false;
        break;
      case TermKind::kVariable: {
        auto it = env.find(pattern.name);
        if (it == env.end()) {
          env.emplace(pattern.name, value);
        } else if (!(it->second == value)) {
          return false;
        }
        break;
      }
      case TermKind::kFunction:
      case TermKind::kAggregate:
        break;  // computed by the body; checked after BuildHeadTuple
    }
  }
  return true;
}

Result<Tuple> BuildHeadTuple(const Atom& head, const Env& env) {
  std::vector<Value> args;
  args.reserve(head.args.size());
  for (const Term& t : head.args) {
    PROVNET_ASSIGN_OR_RETURN(Value v, EvalTerm(t, env));
    args.push_back(std::move(v));
  }
  return Tuple(head.predicate, std::move(args));
}

}  // namespace provnet
