#include "core/plan.h"

#include "util/strings.h"

namespace provnet {

Result<Plan> Plan::Compile(const LocalizedProgram& localized,
                           const std::vector<MaterializeDecl>& decls,
                           double default_ttl) {
  Plan plan;
  plan.sendlog_ = localized.sendlog;
  plan.default_ttl_ = default_ttl;

  // Materialize declarations first (explicit configuration).
  for (const MaterializeDecl& decl : decls) {
    TableOptions opts;
    opts.default_ttl = decl.ttl_seconds;
    opts.max_size = decl.max_size;
    for (int pos : decl.key_positions) {
      opts.key_columns.push_back(pos - 1);  // 1-based -> 0-based
    }
    plan.table_options_[decl.predicate] = std::move(opts);
  }

  for (const LocalizedRule& lr : localized.rules) {
    CompiledRule cr;
    cr.lr = lr;
    const Rule& rule = cr.lr.rule;

    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& lit = rule.body[i];
      if (lit.kind != LiteralKind::kAtom) continue;
      for (const Term& arg : lit.atom.args) {
        if (arg.kind == TermKind::kFunction ||
            arg.kind == TermKind::kAggregate) {
          return UnimplementedError(
              "body atom " + lit.atom.predicate +
              " uses a computed argument; bind it with ':=' first");
        }
      }
      cr.atom_indices.push_back(static_cast<int>(i));
    }
    if (cr.atom_indices.empty()) {
      return InvalidArgumentError("rule " + rule.head.predicate +
                                  " has no body atoms; not event-driven");
    }
    PROVNET_ASSIGN_OR_RETURN(cr.prog, CompileRuleProgram(cr.lr));

    // Head aggregate -> aggregate table with group-column key.
    int agg_pos = -1;
    AggKind agg = AggKind::kNone;
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      if (rule.head.args[i].kind == TermKind::kAggregate) {
        agg_pos = static_cast<int>(i);
        agg = rule.head.args[i].agg;
      }
    }
    if (agg != AggKind::kNone) {
      TableOptions& opts = plan.table_options_[rule.head.predicate];
      if (opts.agg != AggKind::kNone &&
          (opts.agg != agg || opts.agg_column != agg_pos)) {
        return InvalidArgumentError("predicate " + rule.head.predicate +
                                    " has conflicting aggregate heads");
      }
      opts.agg = agg;
      opts.agg_column = agg_pos;
      opts.key_columns.clear();
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (static_cast<int>(i) != agg_pos) {
          opts.key_columns.push_back(static_cast<int>(i));
        }
      }
    }

    int rule_index = static_cast<int>(plan.rules_.size());
    for (int body_index : cr.atom_indices) {
      const std::string& pred =
          rule.body[static_cast<size_t>(body_index)].atom.predicate;
      plan.strands_[pred].push_back(Strand{rule_index, body_index});
    }
    plan.rules_.push_back(std::move(cr));
  }
  return plan;
}

const std::vector<Strand>* Plan::StrandsFor(const std::string& pred) const {
  auto it = strands_.find(pred);
  return it == strands_.end() ? nullptr : &it->second;
}

TableOptions Plan::OptionsFor(const std::string& pred) const {
  auto it = table_options_.find(pred);
  if (it != table_options_.end()) return it->second;
  TableOptions opts;
  opts.default_ttl = default_ttl_;
  return opts;
}

std::string Plan::ToString() const {
  std::string out = sendlog_ ? "plan (SeNDlog)\n" : "plan (NDlog)\n";
  for (const CompiledRule& cr : rules_) {
    out += "  " + cr.lr.ToString() + "\n";
  }
  for (const auto& [pred, strands] : strands_) {
    out += "  delta " + pred + " -> " + std::to_string(strands.size()) +
           " strand(s)\n";
  }
  return out;
}

}  // namespace provnet
