// Durable provenance (ISSUE 9): hash-consed derivation arena + paged
// on-disk archive with crash recovery.
//
// Scenario: a 24-node network runs Best-Path with full provenance. Two
// durability mechanisms are on display:
//   * the derivation arena interns every derivation node by content
//     digest, so shared sub-proofs are stored (and shipped) once —
//     store.interned_hits counts dedup events, where one hit can stand
//     for a whole already-owned subtree (the arena stops at the root);
//   * each node appends its provenance records to a paged on-disk archive.
//     After a "crash" (the first engine is destroyed), a fresh engine over
//     the same directory replays the log and answers the same distributed
//     provenance query byte-for-byte — without re-running the protocol.
//
// Build: cmake --build build && ./build/examples/durable_archive

#include <cstdio>
#include <filesystem>

#include "apps/programs.h"
#include "core/engine.h"
#include "query/provquery.h"

using namespace provnet;

namespace {

uint64_t CounterValue(const Engine& engine, const char* name) {
  const obs::Counter* c = engine.metrics().FindCounter(name);
  return c != nullptr ? c->value : 0;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/provnet_durable_archive_demo";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // fresh demo directory

  EngineOptions opts;
  opts.prov_mode = ProvMode::kFull;
  opts.record_offline = true;   // keep per-node archives...
  opts.archive_dir = dir;       // ...and put them on disk
  opts.archive_page_bytes = 4096;
  opts.archive_cache_pages = 16;

  Rng rng(20080407);
  Topology topo = Topology::RingPlusRandom(24, 3, rng);

  Tuple suspect;
  Bytes before;  // canonical proof-DAG bytes recorded pre-"crash"
  {
    auto engine_or = Engine::Create(topo, BestPathNdlogProgram(), opts);
    if (!engine_or.ok()) {
      std::printf("engine creation failed: %s\n",
                  engine_or.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Engine> engine = std::move(engine_or).value();
    if (!engine->InsertLinkFacts().ok()) return 1;
    auto stats = engine->Run();
    if (!stats.ok()) {
      std::printf("run failed: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("run: %s\n", stats.value().ToString().c_str());

    uint64_t nodes = CounterValue(*engine, "store.interned_nodes");
    uint64_t hits = CounterValue(*engine, "store.interned_hits");
    std::printf("arena: %llu unique derivation nodes, %llu intern hits "
                "(%.1fx sharing)\n",
                static_cast<unsigned long long>(nodes),
                static_cast<unsigned long long>(hits),
                nodes != 0 ? static_cast<double>(nodes + hits) / nodes : 0.0);

    uint64_t disk = 0;
    for (NodeId n = 0; n < engine->num_nodes(); ++n) {
      disk += engine->node(n).offline_store().DiskBytes();
    }
    std::printf("archive: %llu pages written, %llu compactions, "
                "%.1f KiB on disk across %zu node logs\n\n",
                static_cast<unsigned long long>(
                    CounterValue(*engine, "store.archive_page_writes")),
                static_cast<unsigned long long>(
                    CounterValue(*engine, "store.archive_compactions")),
                disk / 1024.0, engine->num_nodes());

    // Pick the longest route at node 0 and record its proof DAG.
    size_t longest = 0;
    for (const Tuple& t : engine->TuplesAt(0, "bestPath")) {
      if (t.arg(2).AsList().size() > longest) {
        longest = t.arg(2).AsList().size();
        suspect = t;
      }
    }
    auto q = ProvQueryBuilder(*engine)
                 .At(0)
                 .Of(suspect)
                 .WithScope(QueryScope::kDistributed)
                 .Run();
    if (!q.ok()) {
      std::printf("pre-crash query failed: %s\n",
                  q.status().ToString().c_str());
      return 1;
    }
    before = q.value().dag.CanonicalBytes();
    std::printf("pre-crash proof of %s: %zu DAG nodes, %zu canonical bytes\n",
                suspect.ToString().c_str(), q.value().dag.nodes.size(),
                before.size());
  }  // engine destroyed: the "crash" (archives were flushed by Run)

  // Recovery: a fresh engine over the same directory. No facts are inserted
  // and the protocol never runs — Init replays the page logs, and the
  // distributed query is answered entirely from the offline archives.
  auto engine_or = Engine::Create(topo, BestPathNdlogProgram(), opts);
  if (!engine_or.ok()) return 1;
  std::unique_ptr<Engine> engine = std::move(engine_or).value();
  size_t recovered = 0;
  for (NodeId n = 0; n < engine->num_nodes(); ++n) {
    recovered += engine->node(n).offline_store().size();
  }
  std::printf("\nrestart: replayed %zu records from %s\n", recovered,
              dir.c_str());

  auto q = ProvQueryBuilder(*engine)
               .At(0)
               .Of(suspect)
               .WithScope(QueryScope::kDistributed)
               .Run();
  if (!q.ok()) {
    std::printf("post-crash query failed: %s\n", q.status().ToString().c_str());
    return 1;
  }
  const QueryResult& r = q.value();
  Bytes after = r.dag.CanonicalBytes();
  std::printf("post-crash proof: %zu DAG nodes, %zu canonical bytes, "
              "%zu offline-archive hits\n",
              r.dag.nodes.size(), after.size(), r.stats.offline_hits);
  if (after == before) {
    std::printf("proof DAGs are byte-identical across the restart\n");
  } else {
    std::printf("MISMATCH: recovered proof differs from pre-crash proof\n");
    return 1;
  }
  return 0;
}
