// Quickstart: the paper's running example end to end.
//
// Builds the three-node network of Figures 1-2 (links a->b, a->c, b->c),
// runs the SeNDlog reachability program with RSA-authenticated "says" and
// condensed provenance, and prints:
//   * each node's reachable table,
//   * the full derivation tree of reachable(a,c) (Figure 1/2),
//   * its semiring annotation a + a*b and the condensed form <a> (Figure 2).
//
// Build: cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"

using namespace provnet;

namespace {

Tuple Link(NodeId a, NodeId b) {
  return Tuple("link", {Value::Address(a), Value::Address(b)});
}

}  // namespace

int main() {
  // The Figure 1 network: three nodes a, b, c with unidirectional links.
  Topology topo = Topology::FigureAbc();

  EngineOptions opts;
  opts.authenticate = true;                  // hostile world: RSA says
  opts.says_level = SaysLevel::kRsa;
  opts.prov_mode = ProvMode::kFull;          // keep whole derivation trees
  opts.record_online = true;
  opts.node_names = {"a", "b", "c"};         // the paper's principals

  auto engine_or = Engine::Create(topo, ReachableSendlogProgram(), opts);
  if (!engine_or.ok()) {
    std::printf("engine creation failed: %s\n",
                engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> engine = std::move(engine_or).value();

  std::printf("== program ==\n%s\n", ReachableSendlogProgram().c_str());

  for (const TopoEdge& e : topo.edges) {
    Status s = engine->InsertFact(e.from, Link(e.from, e.to));
    if (!s.ok()) {
      std::printf("insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  auto stats = engine->Run();
  if (!stats.ok()) {
    std::printf("run failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("== distributed fixpoint reached ==\n%s\n\n",
              stats.value().ToString().c_str());

  auto name_of = [&engine](NodeId id) { return engine->PrincipalOf(id); };

  for (NodeId n = 0; n < engine->num_nodes(); ++n) {
    std::printf("reachable at %s:\n", name_of(n).c_str());
    for (const Tuple& t : engine->TuplesAt(n, "reachable")) {
      std::printf("  %s\n", t.ToString().c_str());
    }
  }

  // Figure 1/2: the derivation tree of reachable(a, c).
  Tuple reach_ac("reachable", {Value::Address(0), Value::Address(2)});
  auto tree = engine->LocalDerivationOf(0, reach_ac);
  if (tree.ok()) {
    std::printf("\n== derivation tree for reachable(a,c) at a (Figure 2) "
                "==\n%s",
                tree.value()->ToString(name_of).c_str());
    Status verified = VerifyDerivationTree(tree.value(),
                                           engine->authenticator(),
                                           /*require_signatures=*/false);
    std::printf("signature check over the tree: %s\n",
                verified.ToString().c_str());
  }

  // The condensation of Section 4.4: a + a*b collapses to <a>.
  auto annotation = engine->AnnotationOf(0, reach_ac);
  auto condensed = engine->CondensedOf(0, reach_ac);
  if (annotation.ok() && condensed.ok()) {
    auto var_name = [&engine](ProvVar v) { return engine->VarName(v); };
    std::printf("\n== condensed provenance (Section 4.4) ==\n");
    std::printf("raw annotation:  %s\n",
                annotation.value().ToString(var_name).c_str());
    std::printf("condensed form:  %s   (absorption: a + a*b = a)\n",
                condensed.value().ToString(var_name).c_str());
  }
  return 0;
}
