// Compromise response (Section 4.2): detect -> traceback -> retract.
//
// A 16-node network runs Best-Path with condensed, principal-grained
// provenance kept online. When a transit node is flagged as compromised,
// the operator:
//   1. inspects provenance annotations to see which routes *depend* on the
//      suspect principal (the paper's "which tuples would a lie poison?");
//   2. issues Engine::RetractPrincipal — every assertion of the principal
//      is revoked, and deletion deltas cascade across the network tearing
//      down exactly the dependent state;
//   3. the DRed re-derivation phase restores routes that have independent
//      derivations, so the network heals around the compromised node
//      without a global recomputation.
//
// Build: cmake --build build && ./build/compromise_response

#include <cstdio>
#include <map>

#include "apps/programs.h"
#include "core/engine.h"
#include "dynamics/churn.h"

using namespace provnet;

namespace {

// Route tables keyed by (src, dst) -> cost, for before/after diffing.
std::map<std::pair<NodeId, NodeId>, int64_t> Routes(Engine& engine) {
  std::map<std::pair<NodeId, NodeId>, int64_t> out;
  for (NodeId n = 0; n < engine.num_nodes(); ++n) {
    for (const Tuple& t : engine.TuplesAt(n, "bestPath")) {
      out[{t.arg(0).AsAddress(), t.arg(1).AsAddress()}] = t.arg(3).AsInt();
    }
  }
  return out;
}

}  // namespace

int main() {
  Rng rng(1337);
  Topology topo = Topology::RingPlusRandom(16, 3, rng);

  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;      // annotations piggybacked
  opts.prov_grain = ProvGrain::kPrincipal;    // variables name principals
  opts.record_online = true;                  // live provenance store

  auto engine_or = Engine::Create(topo, BestPathNdlogProgram(), opts);
  if (!engine_or.ok()) {
    std::printf("engine creation failed: %s\n",
                engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> engine = std::move(engine_or).value();
  if (!engine->InsertLinkFacts().ok()) return 1;
  auto stats = engine->Run();
  if (!stats.ok()) {
    std::printf("run failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("steady state: %s\n\n", stats.value().ToString().c_str());

  // --- 1. Detect: the most-transited interior node is our "compromise". ----
  std::map<std::pair<NodeId, NodeId>, int64_t> before = Routes(*engine);
  std::vector<size_t> transit(engine->num_nodes(), 0);
  for (NodeId n = 0; n < engine->num_nodes(); ++n) {
    for (const Tuple& t : engine->TuplesAt(n, "bestPath")) {
      const auto& path = t.arg(2).AsList();
      for (size_t i = 1; i + 1 < path.size(); ++i) {
        ++transit[path[i].AsAddress()];
      }
    }
  }
  NodeId suspect = 0;
  for (NodeId n = 1; n < engine->num_nodes(); ++n) {
    if (transit[n] > transit[suspect]) suspect = n;
  }
  Principal suspect_principal = engine->PrincipalOf(suspect);
  std::printf("detection: node %u (%s) carries %zu transit routes -> "
              "flagged as compromised\n",
              suspect, suspect_principal.c_str(), transit[suspect]);

  // --- 2. Traceback: which principals does a suspect route depend on? ------
  for (const Tuple& t : engine->TuplesAt(0, "bestPath")) {
    const auto& path = t.arg(2).AsList();
    bool through = false;
    for (size_t i = 1; i + 1 < path.size(); ++i) {
      if (path[i].AsAddress() == suspect) through = true;
    }
    if (!through) continue;
    auto prov = engine->AnnotationOf(0, t);
    if (!prov.ok()) continue;
    std::printf("traceback:  %s depends on <%s>\n", t.ToString().c_str(),
                prov.value()
                    .ToString([&](ProvVar v) { return engine->VarName(v); })
                    .c_str());
    break;
  }

  // --- 3. Retract: revoke the principal, let the deltas cascade. -----------
  if (!engine->RetractPrincipal(suspect_principal).ok()) return 1;
  auto response = engine->Run();
  if (!response.ok()) {
    std::printf("response failed: %s\n",
                response.status().ToString().c_str());
    return 1;
  }
  std::printf("\nresponse:   %s\n", response.value().ToString().c_str());

  // --- Aftermath: dropped vs rerouted vs untouched. ------------------------
  std::map<std::pair<NodeId, NodeId>, int64_t> after = Routes(*engine);
  size_t dropped = 0, rerouted = 0, untouched = 0;
  for (const auto& [key, cost] : before) {
    auto it = after.find(key);
    if (it == after.end()) {
      ++dropped;
    } else if (it->second != cost) {
      ++rerouted;
    } else {
      ++untouched;
    }
  }
  std::printf("\nroutes: %zu before -> %zu after\n", before.size(),
              after.size());
  std::printf("  %zu dropped   (depended solely on %s)\n", dropped,
              suspect_principal.c_str());
  std::printf("  %zu rerouted  (healed around the compromised node at a "
              "different cost)\n", rerouted);
  std::printf("  %zu untouched (never depended on it, or had independent "
              "derivations)\n", untouched);
  std::printf("\nretraction wave cost: %llu messages, %llu bytes — metered "
              "like all protocol traffic\n",
              static_cast<unsigned long long>(response.value().messages),
              static_cast<unsigned long long>(response.value().bytes));
  return 0;
}
