// Trust management over route advertisements (Sections 3, 4.4, 4.5).
//
// Part 1 runs Best-Path with condensed provenance on a 12-node network and
// acts as node 0's policy engine: Orchestra-style source-origin filtering
// (distrust a transit node, drop every route whose witness sets require it)
// and security-level trust (max over derivations of the min input level).
//
// Part 2 demonstrates K-of-N vote trust on the diamond network, where
// reachable(a,d) is independently witnessed via b and via c.
//
// Build: cmake --build build && ./build/examples/trust_routing

#include <cstdio>
#include <map>

#include "apps/bestpath.h"
#include "apps/programs.h"
#include "apps/trust.h"

using namespace provnet;

int main() {
  Rng rng(2008);
  Topology topo = Topology::RingPlusRandom(12, 3, rng);

  EngineOptions base;
  base.says_level = SaysLevel::kHmac;  // benign-ish world: MACs, not RSA
  auto run_or = RunBestPath(topo, Variant::kSendlogProv, base);
  if (!run_or.ok()) {
    std::printf("run failed: %s\n", run_or.status().ToString().c_str());
    return 1;
  }
  Engine& engine = *run_or.value().engine;
  std::printf("fixpoint: %s\n\n", run_or.value().stats.ToString().c_str());

  auto var_name = [&engine](ProvVar v) { return engine.VarName(v); };

  // Find the busiest *transit* principal in node 0's route provenance —
  // the node whose misbehaviour would hurt the most.
  std::map<Principal, size_t> appearances;
  for (const Tuple& t : engine.TuplesAt(0, "bestPath")) {
    auto cond = engine.CondensedOf(0, t);
    if (!cond.ok()) continue;
    for (const auto& cube : cond.value().cubes) {
      for (ProvVar v : cube) {
        Principal p = engine.VarName(v);
        if (p != engine.PrincipalOf(0)) ++appearances[p];
      }
    }
  }
  Principal busiest;
  size_t most = 0;
  for (const auto& [p, count] : appearances) {
    if (count > most) {
      most = count;
      busiest = p;
    }
  }

  TrustPolicy policy(&engine);
  for (NodeId n = 0; n < 12; ++n) {
    policy.TrustPrincipal(engine.PrincipalOf(n));
  }
  policy.DistrustPrincipal(busiest);

  auto filtered = policy.FilterTable(0, "bestPath");
  if (!filtered.ok()) return 1;
  std::printf("== source-origin filtering at node 0, distrusting transit %s "
              "(in %zu witness sets) ==\n",
              busiest.c_str(), most);
  std::printf("accepted %zu routes, rejected %zu routes\n",
              filtered.value().accepted.size(),
              filtered.value().rejected.size());
  for (const Tuple& t : filtered.value().rejected) {
    auto cond = engine.CondensedOf(0, t);
    std::printf("  rejected %-44s provenance %s\n", t.ToString().c_str(),
                cond.ok() ? cond.value().ToString(var_name).c_str() : "?");
  }

  // Security levels: the local node is highly trusted; others vary.
  std::printf("\n== security-level trust (Section 4.5) ==\n");
  policy.SetSecurityLevel(engine.PrincipalOf(0), 5);
  for (NodeId n = 1; n < 12; ++n) {
    policy.SetSecurityLevel(engine.PrincipalOf(n), 1 + (n * 7) % 4);
  }
  int printed = 0;
  for (const Tuple& t : engine.TuplesAt(0, "bestPath")) {
    auto level = policy.TrustLevelOfTuple(0, t, /*default_level=*/0);
    auto cond = engine.CondensedOf(0, t);
    if (level.ok() && cond.ok() && printed < 6) {
      std::printf("  %-44s %s -> trust level %lld\n", t.ToString().c_str(),
                  cond.value().ToString(var_name).c_str(),
                  static_cast<long long>(level.value()));
      ++printed;
    }
  }

  // --- Part 2: vote trust on the diamond a->b->d, a->c->d -----------------
  std::printf("\n== K-of-N vote trust on the diamond network ==\n");
  Topology diamond;
  diamond.num_nodes = 4;
  diamond.edges = {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}};
  EngineOptions dopts;
  dopts.authenticate = true;
  dopts.says_level = SaysLevel::kHmac;
  dopts.prov_mode = ProvMode::kCondensed;
  dopts.node_names = {"a", "b", "c", "d"};
  auto diamond_engine =
      Engine::Create(diamond, ReachableSendlogProgram(), dopts);
  if (!diamond_engine.ok()) return 1;
  Engine& de = *diamond_engine.value();
  for (const TopoEdge& e : diamond.edges) {
    if (!de.InsertFact(e.from, Tuple("link", {Value::Address(e.from),
                                              Value::Address(e.to)}))
             .ok()) {
      return 1;
    }
  }
  if (!de.Run().ok()) return 1;

  Tuple reach_ad("reachable", {Value::Address(0), Value::Address(3)});
  auto cond = de.CondensedOf(0, reach_ad);
  if (cond.ok()) {
    auto dname = [&de](ProvVar v) { return de.VarName(v); };
    TrustPolicy dpolicy(&de);
    std::printf("reachable(a,d) provenance: %s\n",
                cond.value().ToString(dname).c_str());
    std::printf("independent witness sets (votes): %zu\n",
                cond.value().VoteCount());
    auto two = dpolicy.AcceptsByVote(0, reach_ad, 2);
    auto three = dpolicy.AcceptsByVote(0, reach_ad, 3);
    std::printf("accept with K=2: %s, with K=3: %s\n",
                two.ok() && two.value() ? "yes" : "no",
                three.ok() && three.value() ? "yes" : "no");
  }
  return 0;
}
