// Real-time diagnostics (Sections 3, 4.2): a continuous query watches
// routing-table churn; when an entry flaps past a threshold, the monitor
// raises an alarm and uses *online* provenance to identify the principals
// whose inputs the flapping route depends on.
//
// Scenario: Best-Path converges on a 12-node ring-plus-random network; then
// a misbehaving node keeps toggling one of its link costs, causing repeated
// best-path replacements downstream.
//
// Build: cmake --build build && ./build/examples/diagnostics_monitor

#include <cstdio>

#include "apps/diagnostics.h"
#include "apps/programs.h"
#include "core/engine.h"

using namespace provnet;

int main() {
  Rng rng(99);
  const size_t n = 12;
  Topology topo = Topology::RingPlusRandom(n, 3, rng);

  EngineOptions opts;
  opts.prov_mode = ProvMode::kPointers;
  opts.record_online = true;
  auto engine_or = Engine::Create(topo, BestPathNdlogProgram(), opts);
  if (!engine_or.ok()) {
    std::printf("engine creation failed: %s\n",
                engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> engine = std::move(engine_or).value();

  // Monitor bestPath churn per (src, dst): alarm when an entry changes more
  // than 4 times within 60 seconds of virtual time.
  RouteFlapMonitor monitor(engine.get(), "bestPath", {0, 1},
                           /*window_seconds=*/60.0, /*threshold=*/4);

  if (!engine->InsertLinkFacts().ok()) return 1;
  auto converge = engine->Run();
  if (!converge.ok()) return 1;
  std::printf("converged: %s\n", converge.value().ToString().c_str());
  std::printf("changes during convergence: %zu, alarms: %zu\n\n",
              monitor.total_changes(), monitor.alarms().size());

  // Node 1 flaps its ring link cost between 1 and 50, ten times.
  NodeId flapper = 1;
  NodeId neighbor = 2;
  std::printf("node %u starts flapping its link to %u...\n\n", flapper,
              neighbor);
  for (int round = 0; round < 10; ++round) {
    int64_t cost = round % 2 == 0 ? 50 : 1;
    Tuple link("link", {Value::Address(flapper), Value::Address(neighbor),
                        Value::Int(cost)});
    if (!engine->InsertFact(flapper, link).ok()) return 1;
    if (!engine->Run().ok()) return 1;
    engine->network().AdvanceTime(1.0);
  }

  std::printf("alarms raised: %zu (total entry changes seen: %zu)\n",
              monitor.alarms().size(), monitor.total_changes());
  size_t shown = 0;
  for (const FlapAlarm& alarm : monitor.alarms()) {
    if (++shown > 5) break;
    std::printf("\nALARM at node %u, t=%.2f: %s flapped %zu times\n",
                alarm.node, alarm.fired_at, alarm.tuple.ToString().c_str(),
                alarm.changes);
    auto suspects = monitor.SuspectPrincipals(alarm);
    if (suspects.ok()) {
      std::printf("  provenance drill-down, depends on:");
      for (const Principal& p : suspects.value()) {
        std::printf(" %s", p.c_str());
      }
      std::printf("\n  (the flapping principal n%u should appear here)\n",
                  flapper);
    }
  }
  return 0;
}
