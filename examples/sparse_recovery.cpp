// Fault-tolerant transport (ISSUE 10): deterministic fault injection,
// ack/retransmit recovery, crash-restart, and proof-preserving archives.
//
// Scenario: a 16-node sparse network computes reachability while the
// links misbehave — 3% uniform loss with duplication, a timed partition
// that splits two nodes off mid-run, and one node that fail-stop crashes
// and later restarts from its on-disk archive. The demo shows:
//   * the fixpoint under faults is byte-identical to the fault-free one
//     (loss is masked by the ack/retransmit layer, never absorbed);
//   * the convergence-time cost of the faults, read off the virtual
//     clock: the faulted run reaches quiescence later, and the gap IS
//     the price of retransmission backoff and crash recovery;
//   * a distributed provenance query after recovery returns the same
//     canonical proof bytes as the fault-free engine — recovery is
//     invisible to forensics.
//
// Build: cmake --build build && ./build/sparse_recovery

#include <cstdio>
#include <filesystem>

#include "apps/programs.h"
#include "core/engine.h"
#include "query/provquery.h"

using namespace provnet;

namespace {

uint64_t CounterValue(const Engine& engine, const char* name) {
  const obs::Counter* c = engine.metrics().FindCounter(name);
  return c != nullptr ? c->value : 0;
}

Result<std::unique_ptr<Engine>> RunReachable(const Topology& topo,
                                             EngineOptions opts) {
  PROVNET_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                           Engine::Create(topo, ReachableSendlogProgram(),
                                          std::move(opts)));
  for (const TopoEdge& e : topo.edges) {
    PROVNET_RETURN_IF_ERROR(engine->InsertFact(
        e.from,
        Tuple("link", {Value::Address(e.from), Value::Address(e.to)})));
  }
  PROVNET_RETURN_IF_ERROR(engine->Run().status());
  return engine;
}

size_t CountTuples(Engine& engine, const char* pred) {
  size_t total = 0;
  for (NodeId n = 0; n < engine.num_nodes(); ++n) {
    total += engine.TuplesAt(n, pred).size();
  }
  return total;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/provnet_sparse_recovery_demo";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // fresh demo directory

  Rng rng(20080515);
  Topology topo = Topology::RingPlusRandom(16, 2, rng);

  EngineOptions base;
  base.authenticate = true;
  base.says_level = SaysLevel::kHmac;
  base.prov_mode = ProvMode::kPointers;
  base.record_online = true;
  base.record_offline = true;

  // --- Fault-free baseline --------------------------------------------------
  // The baseline runs the same ack/retransmit transport (just without any
  // faults): with the transport on, provenance records the *first*
  // derivation of each tuple and dedups content-identical refreshes, so an
  // apples-to-apples proof comparison needs both runs on the same
  // recording discipline.
  EngineOptions golden_opts = base;
  golden_opts.reliable_transport = true;
  golden_opts.archive_dir = dir + "/golden";
  auto golden_or = RunReachable(topo, golden_opts);
  if (!golden_or.ok()) {
    std::printf("baseline failed: %s\n",
                golden_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> golden = std::move(golden_or).value();
  const double golden_time = golden->network().now();
  const size_t golden_tuples = CountTuples(*golden, "reachable");
  std::printf("fault-free: %zu reachable tuples, converged at t=%.3fs\n",
              golden_tuples, golden_time);

  // --- The same run under a hostile link layer ------------------------------
  // 3% loss + 1% duplication everywhere, node 3 partitioned from node 4
  // between t=0.02 and t=0.2, and node 7 crashing at t=0.05 (losing all
  // in-memory state) then restarting at t=0.8 from its archive.
  FaultPlan plan;
  plan.seed = 7;
  LinkFaultSpec noisy;
  noisy.loss = 0.03;
  noisy.duplication = 0.01;
  plan.links.push_back(noisy);
  plan.partitions.push_back(PartitionSpec{0.02, 0.2, 3, 4, true});
  plan.crashes.push_back(CrashSpec{/*crash_at=*/0.05, /*restart_at=*/0.8,
                                   /*node=*/7});

  EngineOptions faulted_opts = base;
  faulted_opts.archive_dir = dir + "/faulted";
  faulted_opts.fault_plan = plan;
  auto faulted_or = RunReachable(topo, faulted_opts);
  if (!faulted_or.ok()) {
    std::printf("faulted run failed: %s\n",
                faulted_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> faulted = std::move(faulted_or).value();
  const double faulted_time = faulted->network().now();
  const size_t faulted_tuples = CountTuples(*faulted, "reachable");

  std::printf("faulted:    %zu reachable tuples, converged at t=%.3fs\n",
              faulted_tuples, faulted_time);
  std::printf("convergence-time cost of the faults: +%.3fs (%.1fx)\n",
              faulted_time - golden_time,
              golden_time > 0 ? faulted_time / golden_time : 0.0);
  std::printf("transport:  %llu retransmits, %llu acks, %llu dups deduped\n",
              static_cast<unsigned long long>(
                  CounterValue(*faulted, "net.retransmits")),
              static_cast<unsigned long long>(
                  CounterValue(*faulted, "net.acks_received")),
              static_cast<unsigned long long>(
                  CounterValue(*faulted, "net.dup_deduped")));
  std::printf("faults:     %llu losses, %llu duplicates, %llu partition "
              "drops, %llu crash / %llu restart\n",
              static_cast<unsigned long long>(
                  CounterValue(*faulted, "faults.losses")),
              static_cast<unsigned long long>(
                  CounterValue(*faulted, "faults.duplicates")),
              static_cast<unsigned long long>(
                  CounterValue(*faulted, "faults.partition_drops")),
              static_cast<unsigned long long>(
                  CounterValue(*faulted, "faults.crashes")),
              static_cast<unsigned long long>(
                  CounterValue(*faulted, "faults.restarts")));

  // Faults were masked, not absorbed: same fixpoint, node by node.
  bool same = faulted_tuples == golden_tuples;
  for (NodeId n = 0; same && n < topo.num_nodes; ++n) {
    same = faulted->TuplesAt(n, "reachable") == golden->TuplesAt(n, "reachable");
  }
  std::printf("fixpoint identical to fault-free run: %s\n",
              same ? "yes" : "NO");
  if (!same) return 1;

  // --- Forensics after recovery ---------------------------------------------
  // Ask the crashed-and-recovered node for a distributed proof of one of
  // its own tuples; the canonical bytes must match the fault-free engine.
  std::vector<Tuple> at7 = faulted->TuplesAt(7, "reachable");
  if (at7.empty()) {
    std::printf("node 7 has no reachable tuples to prove\n");
    return 1;
  }
  const Tuple& probe = at7.front();
  auto got = ProvQueryBuilder(*faulted)
                 .At(7)
                 .Of(probe)
                 .WithScope(QueryScope::kDistributed)
                 .Run();
  auto want = ProvQueryBuilder(*golden)
                  .At(7)
                  .Of(probe)
                  .WithScope(QueryScope::kDistributed)
                  .Run();
  if (!got.ok() || !want.ok()) {
    std::printf("proof query failed: %s / %s\n",
                got.status().ToString().c_str(),
                want.status().ToString().c_str());
    return 1;
  }
  const bool proof_same = got.value().dag.CanonicalBytes() ==
                          want.value().dag.CanonicalBytes();
  std::printf("distributed proof of %s after crash recovery: %s\n",
              probe.ToString().c_str(),
              proof_same ? "byte-identical to fault-free proof" : "DIVERGED");
  std::printf("query stats: %s\n", got.value().stats.ToString().c_str());

  std::filesystem::remove_all(dir, ec);
  return proof_same ? 0 : 1;
}
