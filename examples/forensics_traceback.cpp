// Network forensics (Section 3): traceback over distributed provenance.
//
// Scenario: a 16-node network runs Best-Path with distributed (pointer)
// provenance — zero shipping overhead during normal operation. After the
// fact, an analyst at node 0 investigates a suspicious route:
//   * full traceback reconstructs the derivation across nodes with metered
//     provenance queries (the "expensive query" side of the trade-off);
//   * random moonwalks sample origins without exhaustive querying;
//   * Bloom-digest synopses answer "did this route pass through X?" from
//     constant-size per-node state.
//
// Build: cmake --build build && ./build/examples/forensics_traceback

#include <cstdio>

#include "apps/forensics.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "query/provquery.h"

using namespace provnet;

int main() {
  Rng rng(1337);
  Topology topo = Topology::RingPlusRandom(16, 3, rng);

  EngineOptions opts;
  opts.prov_mode = ProvMode::kPointers;  // distributed provenance
  opts.record_offline = true;            // keep an archive for forensics

  auto engine_or = Engine::Create(topo, BestPathNdlogProgram(), opts);
  if (!engine_or.ok()) {
    std::printf("engine creation failed: %s\n",
                engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> engine = std::move(engine_or).value();
  if (!engine->InsertLinkFacts().ok()) return 1;
  auto stats = engine->Run();
  if (!stats.ok()) {
    std::printf("run failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("normal operation: %s\n", stats.value().ToString().c_str());
  std::printf("note prov_bytes=0: distributed provenance ships nothing\n\n");

  // Pick the longest route at node 0 as the "suspicious" one.
  Tuple suspect;
  size_t longest = 0;
  for (const Tuple& t : engine->TuplesAt(0, "bestPath")) {
    if (t.arg(2).AsList().size() > longest) {
      longest = t.arg(2).AsList().size();
      suspect = t;
    }
  }
  std::printf("investigating: %s\n\n", suspect.ToString().c_str());

  // 1. Full traceback.
  auto report = Traceback(*engine, 0, suspect);
  if (!report.ok()) {
    std::printf("traceback failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  std::printf("== full traceback ==\n");
  std::printf("origin nodes:");
  for (NodeId n : report.value().origin_nodes) std::printf(" %u", n);
  std::printf("\nbase tuples found: %zu\n", report.value().origin_tuples.size());
  std::printf("query cost: %llu messages, %llu bytes (charged to the same "
              "meters as the protocol)\n\n",
              static_cast<unsigned long long>(report.value().query_messages),
              static_cast<unsigned long long>(report.value().query_bytes));

  // 1b. The same investigation through the raw ProvQuery API: an explicit
  // proof DAG, per-query accounting, bounded probes, and semiring folds.
  auto query = ProvQueryBuilder(*engine)
                   .At(0)
                   .Of(suspect)
                   .WithScope(QueryScope::kDistributed)
                   .Run();
  if (query.ok()) {
    const QueryResult& r = query.value();
    std::printf("== ProvQuery (scope=%s) ==\n", QueryScopeName(r.used));
    std::printf("proof DAG: %zu nodes, depth %zu; stats: %s\n",
                r.dag.nodes.size(), r.dag.Depth(),
                r.stats.ToString().c_str());
    CondensedProv cubes = r.Condensed();
    std::printf("condensed support sets: %zu (smallest needs %zu "
                "principals)\n\n",
                cubes.VoteCount(), cubes.MinWitnessSize());

    // A bounded probe: two hops only — cheap, partial, explicit about it.
    auto probe = ProvQueryBuilder(*engine)
                     .At(0)
                     .Of(suspect)
                     .WithScope(QueryScope::kDistributed)
                     .MaxDepth(2)
                     .Run();
    if (probe.ok()) {
      std::printf("bounded probe (depth<=2): %llu bytes vs %llu unbounded, "
                  "%zu refs truncated\n\n",
                  static_cast<unsigned long long>(probe.value().stats.bytes),
                  static_cast<unsigned long long>(r.stats.bytes),
                  probe.value().stats.truncated);
    }
  }

  // 2. Random moonwalks.
  Rng walk_rng(7);
  auto walks = RandomMoonwalk(*engine, 0, suspect, /*walks=*/200, walk_rng);
  if (walks.ok()) {
    std::printf("== random moonwalk (200 walks) ==\n");
    for (const auto& [node, count] : walks.value()) {
      std::printf("  node %-3u reached %zu times\n", node, count);
    }
  }

  // 3. Bloom-digest synopses.
  DigestTraceback digests(*engine, /*window_seconds=*/1.0, /*bits=*/8192,
                          /*hashes=*/4);
  std::vector<NodeId> flagged = digests.NodesThatMaySawTuple(
      suspect, 0.0, engine->network().now() + 1.0);
  std::printf("\n== ForNet-style Bloom digests (8192 bits/node/window) ==\n");
  std::printf("total synopsis storage: %zu bytes across %zu nodes\n",
              digests.TotalBytes(), engine->num_nodes());
  std::printf("nodes that may have processed the route:");
  for (NodeId n : flagged) std::printf(" %u", n);
  std::printf("\n");
  return 0;
}
