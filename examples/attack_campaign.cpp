// Attack campaign walkthrough: a Byzantine node attacks an authenticated,
// provenance-carrying Best-Path deployment, and the defenses answer.
//
//   1. Forged tuple with a corrupted signature  -> rejected at verification.
//   2. Replayed authenticated message           -> rejected by the sequence
//                                                  window.
//   3. Unauthorized retraction                  -> rejected: the speaker
//                                                  never asserted the tuple.
//   4. Stolen-key forgery (valid signature!)    -> passes verification,
//                                                  spreads into routes; the
//                                                  audit sweep finds the
//                                                  policy-violating tuple,
//                                                  provenance localizes the
//                                                  compromised principal,
//                                                  RetractPrincipal purges.
//
// Build: cmake --build build --target attack_campaign && ./build/attack_campaign
#include <cstdio>

#include "adversary/adversary.h"
#include "adversary/campaign.h"
#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"

using namespace provnet;

int main() {
  Rng rng(42);
  Topology topo = Topology::RingPlusRandom(12, 3, rng);

  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kRsa;
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kPrincipal;
  opts.record_online = true;

  auto created = Engine::Create(topo, BestPathNdlogProgram(), opts);
  if (!created.ok()) {
    std::printf("engine: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> engine = std::move(created).value();

  // Mallory is compromised from the start: its tap captures the protocol
  // traffic that crosses it during the initial fixpoint — the replay corpus.
  Adversary adversary(*engine, /*seed=*/7);
  const NodeId mallory = 5;
  adversary.Compromise(mallory);

  engine->InsertLinkFacts();
  if (!engine->Run().ok()) return 1;
  std::printf("steady state: %zu nodes, authenticated + condensed "
              "provenance; %zu messages captured by the adversary\n\n",
              engine->num_nodes(), adversary.captured_count());

  auto link3 = [](NodeId a, NodeId b, int64_t c) {
    return Tuple("link",
                 {Value::Address(a), Value::Address(b), Value::Int(c)});
  };

  AttackScript script;
  AttackAction bad_sig;
  bad_sig.kind = AttackKind::kForgeBadSig;
  bad_sig.attacker = mallory;
  bad_sig.victim = 1;
  bad_sig.tuple = link3(1, 8, 0);
  script.AddAttack(1.0, bad_sig);

  AttackAction replay;
  replay.kind = AttackKind::kReplay;
  replay.attacker = mallory;
  script.AddAttack(1.2, replay);

  AttackAction rogue;
  rogue.kind = AttackKind::kRogueRetract;
  rogue.attacker = mallory;
  rogue.victim = topo.edges[0].from;
  rogue.tuple = link3(topo.edges[0].from, topo.edges[0].to,
                      topo.edges[0].cost);
  script.AddAttack(1.4, rogue);

  AttackAction stolen;
  stolen.kind = AttackKind::kForgeStolenKey;
  stolen.attacker = mallory;
  stolen.victim = 2;
  stolen.tuple = link3(2, 9, 0);  // a zero-cost link that cannot be honest
  script.AddAttack(1.6, stolen);

  script.AddAuditSweeps(2.0, 0.5, 4.0);
  script.SortByTime();

  AttackCampaignDriver driver(*engine, adversary, CampaignOptions{});
  auto report = driver.Replay(script);
  if (!report.ok()) {
    std::printf("campaign: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("audit log:\n");
  for (const SecurityEvent& ev : engine->security_log().events()) {
    std::printf("  %s\n", ev.ToString().c_str());
  }

  std::printf("\nper-attack verdicts:\n");
  for (const AttackOutcome& o : report.value().outcomes) {
    std::printf("  %-18s -> %s%s (latency %.2fs)\n",
                AttackKindName(o.injection.kind),
                o.detected ? o.method.c_str() : "UNDETECTED",
                o.localized_correct ? ", culprit localized" : "",
                o.latency());
  }

  std::printf("\n%s\n", report.value().Summary().c_str());
  std::printf("forged tuples left in honest fixpoints: %zu\n",
              report.value().forged_in_fixpoint);
  return report.value().forged_in_fixpoint == 0 ? 0 : 1;
}
