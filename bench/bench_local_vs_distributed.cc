// Ablation A3: local versus distributed provenance (Section 4.1).
//
// Local provenance piggybacks derivations on every shipped tuple (condensed
// cubes, or the entire tree), so maintenance is expensive but queries are
// free. Distributed provenance ships nothing and keeps per-hop pointers, so
// maintenance is free but reconstruction costs a recursive network query.
// This harness measures both sides of the trade on the Best-Path workload.

#include <cstdio>

#include "apps/bestpath.h"
#include "apps/forensics.h"
#include "apps/programs.h"
#include "query/provquery.h"

using namespace provnet;

namespace {

struct ModeResult {
  const char* name;
  RunStats run;
  uint64_t query_bytes = 0;
  uint64_t query_messages = 0;
};

Result<ModeResult> RunMode(const Topology& topo, ProvMode mode,
                           const char* name, size_t queries) {
  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;  // isolate provenance costs from RSA
  opts.prov_mode = mode;
  if (mode == ProvMode::kPointers) opts.record_online = true;
  PROVNET_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(topo, BestPathSendlogProgram(), opts));
  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_ASSIGN_OR_RETURN(RunStats stats, engine->Run());

  ModeResult result{name, stats, 0, 0};
  if (mode == ProvMode::kPointers) {
    // Query the provenance of `queries` best paths on demand.
    size_t done = 0;
    for (NodeId n = 0; n < engine->num_nodes() && done < queries; ++n) {
      for (const Tuple& t : engine->TuplesAt(n, "bestPath")) {
        if (done >= queries) break;
        Result<QueryResult> query = ProvQueryBuilder(*engine)
                                        .At(n)
                                        .Of(t)
                                        .WithScope(QueryScope::kDistributed)
                                        .Run();
        if (query.ok()) {
          result.query_bytes += query.value().stats.bytes;
          result.query_messages += query.value().stats.messages;
          ++done;
        }
      }
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation A3: local vs distributed provenance ===\n");
  std::printf("Best-Path on random graphs; HMAC says; 20 on-demand queries "
              "for the pointer mode\n\n");
  std::printf("%4s %-12s %12s %12s %12s %12s %10s\n", "N", "mode",
              "run_bytes", "prov_bytes", "query_msgs", "query_bytes",
              "wall(s)");
  for (size_t n : {10, 20, 40}) {
    Rng rng(5150 + n);
    Topology topo = Topology::RingPlusRandom(n, 3, rng);
    struct Case {
      ProvMode mode;
      const char* name;
    };
    const Case cases[] = {
        {ProvMode::kNone, "none"},
        {ProvMode::kCondensed, "condensed"},
        {ProvMode::kFull, "full-tree"},
        {ProvMode::kPointers, "pointers"},
    };
    for (const Case& c : cases) {
      Result<ModeResult> result = RunMode(topo, c.mode, c.name, 20);
      if (!result.ok()) {
        std::printf("FAILED: %s\n", result.status().ToString().c_str());
        return 1;
      }
      const ModeResult& r = result.value();
      std::printf("%4zu %-12s %12llu %12llu %12llu %12llu %10.3f\n", n,
                  r.name,
                  static_cast<unsigned long long>(r.run.bytes),
                  static_cast<unsigned long long>(r.run.prov_bytes),
                  static_cast<unsigned long long>(r.query_messages),
                  static_cast<unsigned long long>(r.query_bytes),
                  r.run.wall_seconds);
    }
    std::printf("\n");
  }
  std::printf("expected shape: pointers ship zero provenance bytes but pay "
              "per-query traffic;\nfull trees dominate bandwidth; condensed "
              "sits close to none (Section 4.1/4.4).\n");
  return 0;
}
