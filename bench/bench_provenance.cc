// Ablation A2: condensed versus full provenance (Section 4.4) — wire sizes
// and computation for the derivation shapes of the Best-Path workload, plus
// quantifiable-provenance (Section 4.5) evaluation cost.

#include <benchmark/benchmark.h>

#include "provenance/condense.h"
#include "provenance/derivation.h"
#include "provenance/semiring.h"

namespace provnet {
namespace {

ProvExpr MultiPathExpr(uint32_t alternatives, uint32_t hops) {
  ProvExpr sum = ProvExpr::Zero();
  for (uint32_t a = 0; a < alternatives; ++a) {
    ProvExpr product = ProvExpr::One();
    for (uint32_t h = 0; h < hops; ++h) {
      product = ProvExpr::Times(product, ProvExpr::Var(a * hops + h));
    }
    sum = ProvExpr::Plus(sum, product);
  }
  return sum;
}

DerivationPtr ChainDerivation(uint32_t hops) {
  Tuple base("link", {Value::Address(0), Value::Address(1), Value::Int(1)});
  DerivationPtr node = MakeBaseDerivation(base, 0, "n0", 0.0, -1.0);
  for (uint32_t h = 1; h <= hops; ++h) {
    Tuple t("path", {Value::Address(0), Value::Address(h), Value::Int(h)});
    node = MakeRuleDerivation(t, "sp2", h, "n" + std::to_string(h), 0.0, -1.0,
                              {node, MakeBaseDerivation(base, h, "nx", 0, -1)});
  }
  return node;
}

// Wire size: full derivation tree vs condensed annotation for the same
// lineage — the local-vs-condensed trade the paper motivates.
void BM_WireSizeFullTree(benchmark::State& state) {
  DerivationPtr tree = ChainDerivation(static_cast<uint32_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    bytes = tree->WireSize();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_WireSizeFullTree)->Arg(4)->Arg(16)->Arg(64);

void BM_WireSizeCondensed(benchmark::State& state) {
  ProvExpr expr = MultiPathExpr(3, static_cast<uint32_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    CondensedProv c = Condense(expr);
    ByteWriter w;
    c.Serialize(w);
    bytes = w.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_WireSizeCondensed)->Arg(4)->Arg(16)->Arg(64);

void BM_SemiringTrustLevel(benchmark::State& state) {
  ProvExpr expr = MultiPathExpr(static_cast<uint32_t>(state.range(0)), 8);
  std::unordered_map<ProvVar, int64_t> levels;
  for (ProvVar v : expr.Variables()) levels[v] = static_cast<int64_t>(v % 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrustLevelOf(expr, levels, 0));
  }
}
BENCHMARK(BM_SemiringTrustLevel)->Arg(4)->Arg(32);

void BM_SemiringCount(benchmark::State& state) {
  ProvExpr expr = MultiPathExpr(static_cast<uint32_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DerivationCount(expr));
  }
}
BENCHMARK(BM_SemiringCount)->Arg(4)->Arg(32);

void BM_ExprSerializeRoundTrip(benchmark::State& state) {
  ProvExpr expr = MultiPathExpr(4, static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    ByteWriter w;
    expr.Serialize(w);
    ByteReader r(w.bytes());
    benchmark::DoNotOptimize(ProvExpr::Deserialize(r).value());
  }
}
BENCHMARK(BM_ExprSerializeRoundTrip)->Arg(8)->Arg(32);

void BM_VerifyAuthenticatedTree(benchmark::State& state) {
  KeyStore keystore(5, 256);
  Authenticator auth(&keystore);
  DerivationPtr tree = ChainDerivation(static_cast<uint32_t>(state.range(0)));
  // Sign every node bottom-up.
  std::function<DerivationPtr(const DerivationPtr&)> sign_all =
      [&](const DerivationPtr& n) -> DerivationPtr {
    auto copy = std::make_shared<DerivationNode>(*n);
    copy->children.clear();
    for (const DerivationPtr& c : n->children) {
      copy->children.push_back(sign_all(c));
    }
    return SignDerivation(copy, auth, SaysLevel::kRsa).value();
  };
  DerivationPtr signed_tree = sign_all(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyDerivationTree(signed_tree, auth, /*require_signatures=*/true));
  }
}
BENCHMARK(BM_VerifyAuthenticatedTree)->Arg(4)->Arg(16);

}  // namespace
}  // namespace provnet

BENCHMARK_MAIN();
