// ProvQuery benchmark: the "expensive query" side of the Section 4.1
// trade-off, measured per query across network sizes and recording modes.
//
// A Best-Path deployment with distributed (pointer) provenance answers
// on-demand provenance queries through the signed ProvQuery wire path.
// Three recording configurations bound the design space:
//
//   online    records kept in the online stores (live soft state) — the
//             steady-state forensic configuration;
//   offline   archive-only recording: every hop of the walk falls back to
//             the OfflineProvStore (forensics over aged-out state);
//   reactive  recording enabled only after an anomaly (Section 5): the
//             pre-anomaly portion of the proof is unreconstructible, so
//             queries come back fast, cheap, and partial — the price of
//             not paying for provenance up front.
//
// Reported per (n, mode): queries issued, mean/max query latency, mean
// messages and bytes per query, mean records folded, and the fraction of
// queries that reconstructed a complete proof (no missing leaves). Writes
// BENCH_provquery.json (CI uploads it per PR).
//
// Usage:
//   bench_provquery [--quick] [--out PATH]
//
//   --quick      n in {10, 20}, 10 queries each (CI smoke)
//   --out PATH   JSON output path (default BENCH_provquery.json)
//
// Environment knobs:
//   PROVNET_PQ_QUERIES  queries per configuration (default 25)
//   PROVNET_PQ_SEED     topology seed (default 20080408)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "obs/export.h"
#include "query/provquery.h"

using namespace provnet;

namespace {

struct Config {
  std::vector<size_t> node_counts = {10, 20, 40};
  size_t queries = 25;
  uint64_t seed = 20080408;
  std::string out_path = "BENCH_provquery.json";
};

struct Point {
  size_t n = 0;
  std::string mode;
  size_t queries = 0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;
  double mean_messages = 0.0;
  double mean_bytes = 0.0;
  double mean_records = 0.0;
  double complete_fraction = 0.0;  // proofs with no missing leaves
  uint64_t run_bytes = 0;          // fixpoint traffic (the "cheap shipping")
};

Result<Point> RunMode(const Config& cfg, size_t n, const std::string& mode) {
  Rng rng(cfg.seed + n);
  Topology topo = Topology::RingPlusRandom(n, 3, rng);

  EngineOptions opts;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;  // isolate query costs from RSA
  opts.prov_mode = ProvMode::kPointers;
  if (mode == "offline") {
    // Archive-only answering: record to both stores during the run, then
    // clear the online stores before querying (pointer mode always records
    // online, so "aged out" is simulated by emptying them).
    opts.record_offline = true;
  } else if (mode == "reactive") {
    opts.recording_enabled = false;
  }

  PROVNET_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(topo, BestPathSendlogProgram(), opts));
  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_ASSIGN_OR_RETURN(RunStats run_stats, engine->Run());

  if (mode == "offline") {
    // Every online record is gone; each hop of every walk must fall back
    // to the archive.
    for (NodeId node = 0; node < engine->num_nodes(); ++node) {
      engine->node(node).online_store().Clear();
    }
  }
  if (mode == "reactive") {
    // The anomaly: recording switches on, and only post-anomaly derivations
    // leave records. Re-derive some state by touching one link per node.
    engine->SetRecordingEnabled(true);
    for (const TopoEdge& e : topo.edges) {
      if (e.from % 3 == 0) {
        Tuple link("link", {Value::Address(e.from), Value::Address(e.to),
                            Value::Int(e.cost)});
        PROVNET_RETURN_IF_ERROR(engine->DeleteFact(e.from, link));
        PROVNET_RETURN_IF_ERROR(engine->InsertFact(e.from, link));
      }
    }
    PROVNET_RETURN_IF_ERROR(engine->Run().status());
  }

  Point point;
  point.n = n;
  point.mode = mode;
  point.run_bytes = run_stats.bytes;

  double latency_sum = 0.0;
  double msg_sum = 0.0, byte_sum = 0.0, record_sum = 0.0;
  size_t complete = 0;
  for (NodeId node = 0; node < engine->num_nodes(); ++node) {
    for (const Tuple& t : engine->TuplesAt(node, "bestPath")) {
      if (point.queries >= cfg.queries) break;
      Result<QueryResult> query = ProvQueryBuilder(*engine)
                                      .At(node)
                                      .Of(t)
                                      .WithScope(QueryScope::kDistributed)
                                      .Run();
      if (!query.ok()) continue;  // reactive mode: some proofs are gone
      const QueryResult& result = query.value();
      ++point.queries;
      latency_sum += result.stats.wall_seconds;
      point.max_latency_s =
          std::max(point.max_latency_s, result.stats.wall_seconds);
      msg_sum += static_cast<double>(result.stats.messages);
      byte_sum += static_cast<double>(result.stats.bytes);
      record_sum += static_cast<double>(result.stats.records);
      bool missing = false;
      for (const ProofNode& pn : result.dag.nodes) {
        if (pn.rule == kMissingRule) missing = true;
      }
      if (!missing) ++complete;
    }
  }
  if (point.queries > 0) {
    point.mean_latency_s = latency_sum / point.queries;
    point.mean_messages = msg_sum / point.queries;
    point.mean_bytes = byte_sum / point.queries;
    point.mean_records = record_sum / point.queries;
    point.complete_fraction =
        static_cast<double>(complete) / static_cast<double>(point.queries);
  }
  return point;
}

void WriteJson(const Config& cfg, const std::vector<Point>& points) {
  obs::JsonWriter w;
  w.BeginObject()
      .Field("bench", "provquery")
      .Field("workload", "bestpath-sendlog-pointers")
      .Field("outdegree", 3)
      .Field("seed", cfg.seed)
      .Field("queries_per_point", uint64_t{cfg.queries});
  w.Key("points").BeginArray();
  for (const Point& p : points) {
    w.BeginObject()
        .Field("n", uint64_t{p.n})
        .Field("recording", p.mode)
        .Field("queries", uint64_t{p.queries})
        .Field("mean_latency_s", p.mean_latency_s, "%.6f")
        .Field("max_latency_s", p.max_latency_s, "%.6f")
        .Field("mean_messages", p.mean_messages, "%.1f")
        .Field("mean_bytes", p.mean_bytes, "%.1f")
        .Field("mean_records", p.mean_records, "%.1f")
        .Field("complete_fraction", p.complete_fraction, "%.3f")
        .Field("run_bytes", p.run_bytes)
        .EndObject();
  }
  w.EndArray().EndObject();

  FILE* f = std::fopen(cfg.out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 cfg.out_path.c_str());
    return;
  }
  std::string body = w.Take() + "\n";
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", cfg.out_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.node_counts = {10, 20};
      cfg.queries = 10;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out_path = argv[++i];
    }
  }
  if (const char* v = std::getenv("PROVNET_PQ_QUERIES")) {
    cfg.queries = static_cast<size_t>(std::atoll(v));
  }
  if (const char* v = std::getenv("PROVNET_PQ_SEED")) {
    cfg.seed = static_cast<uint64_t>(std::atoll(v));
  }

  std::printf("bench_provquery: Best-Path (SeNDlog, pointer provenance), "
              "%zu queries per point\n\n", cfg.queries);
  std::printf("%4s %-9s %8s %12s %12s %10s %10s %9s\n", "n", "recording",
              "queries", "mean_lat_ms", "max_lat_ms", "mean_msgs",
              "mean_bytes", "complete");

  std::vector<Point> points;
  for (size_t n : cfg.node_counts) {
    for (const char* mode : {"online", "offline", "reactive"}) {
      Result<Point> point = RunMode(cfg, n, mode);
      if (!point.ok()) {
        std::fprintf(stderr, "FAILED (%zu, %s): %s\n", n, mode,
                     point.status().ToString().c_str());
        return 1;
      }
      const Point& p = point.value();
      std::printf("%4zu %-9s %8zu %12.3f %12.3f %10.1f %10.1f %8.0f%%\n",
                  p.n, p.mode.c_str(), p.queries, p.mean_latency_s * 1e3,
                  p.max_latency_s * 1e3, p.mean_messages, p.mean_bytes,
                  p.complete_fraction * 100.0);
      points.push_back(p);
    }
    std::printf("\n");
  }
  WriteJson(cfg, points);

  // Sanity: online recording must answer every probe completely; the
  // reactive mode is *supposed* to be partial — if it reconstructs
  // everything, recording was never actually off.
  for (const Point& p : points) {
    if (p.mode == "online" &&
        (p.queries == 0 || p.complete_fraction < 1.0)) {
      std::fprintf(stderr,
                   "FAIL: online recording returned incomplete proofs\n");
      return 1;
    }
  }
  std::printf("expected shape: query cost grows with n (deeper proofs, more "
              "hops);\noffline matches online on traffic but pays archive "
              "scans;\nreactive answers only post-anomaly state.\n");
  return 0;
}
