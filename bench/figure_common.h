// Shared harness for the Figure 3 / Figure 4 reproductions: the Best-Path
// query on random graphs of N = 10..100 nodes (mean out-degree 3), three
// system variants, averaged over several runs (the paper used 10).
//
// Environment knobs:
//   PROVNET_BENCH_RUNS   repetitions per point (default 3)
//   PROVNET_BENCH_MAXN   largest N (default 100)
//   PROVNET_BENCH_STEP   N increment (default 10)
#ifndef PROVNET_BENCH_FIGURE_COMMON_H_
#define PROVNET_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/bestpath.h"
#include "net/topology.h"
#include "util/logging.h"

namespace provnet::bench {

struct SweepPoint {
  size_t n = 0;
  double wall_seconds[3] = {0, 0, 0};  // indexed by Variant
  double megabytes[3] = {0, 0, 0};
};

struct SweepConfig {
  size_t min_n = 10;
  size_t max_n = 100;
  size_t step = 10;
  size_t runs = 3;
  size_t outdegree = 3;
  uint64_t seed = 20080407;  // ICDE 2008 workshop date
};

inline SweepConfig ConfigFromEnv() {
  SweepConfig cfg;
  if (const char* v = std::getenv("PROVNET_BENCH_RUNS")) {
    cfg.runs = static_cast<size_t>(std::atoi(v));
  }
  if (const char* v = std::getenv("PROVNET_BENCH_MAXN")) {
    cfg.max_n = static_cast<size_t>(std::atoi(v));
  }
  if (const char* v = std::getenv("PROVNET_BENCH_STEP")) {
    cfg.step = static_cast<size_t>(std::atoi(v));
  }
  if (cfg.runs < 1) cfg.runs = 1;
  if (cfg.step < 1) cfg.step = 10;
  if (cfg.max_n < cfg.min_n) cfg.max_n = cfg.min_n;
  return cfg;
}

inline std::vector<SweepPoint> RunSweep(const SweepConfig& cfg) {
  std::vector<SweepPoint> points;
  for (size_t n = cfg.min_n; n <= cfg.max_n; n += cfg.step) {
    SweepPoint point;
    point.n = n;
    for (size_t run = 0; run < cfg.runs; ++run) {
      Rng rng(cfg.seed + run * 1000003 + n);
      Topology topo = Topology::RingPlusRandom(n, cfg.outdegree, rng);
      for (int v = 0; v < 3; ++v) {
        EngineOptions base;
        base.seed = cfg.seed + run;
        Result<BestPathRun> result =
            RunBestPath(topo, static_cast<Variant>(v), base);
        PROVNET_CHECK(result.ok()) << result.status();
        point.wall_seconds[v] += result.value().stats.wall_seconds;
        point.megabytes[v] +=
            static_cast<double>(result.value().stats.bytes) / (1024.0 * 1024.0);
      }
    }
    for (int v = 0; v < 3; ++v) {
      point.wall_seconds[v] /= static_cast<double>(cfg.runs);
      point.megabytes[v] /= static_cast<double>(cfg.runs);
    }
    points.push_back(point);
    std::fprintf(stderr, "  swept N=%zu\n", n);
  }
  return points;
}

// Prints the Section 6 in-text summary: average and at-max-N overheads of
// SeNDLog over NDLog and SeNDLogProv over SeNDLog, for one metric.
inline void PrintOverheadSummary(const std::vector<SweepPoint>& points,
                                 bool use_time) {
  auto metric = [use_time](const SweepPoint& p, int v) {
    return use_time ? p.wall_seconds[v] : p.megabytes[v];
  };
  double sum_auth = 0, sum_prov = 0;
  for (const SweepPoint& p : points) {
    sum_auth += metric(p, 1) / metric(p, 0) - 1.0;
    sum_prov += metric(p, 2) / metric(p, 1) - 1.0;
  }
  const SweepPoint& last = points.back();
  std::printf("\nSection 6 summary (%s):\n", use_time ? "time" : "bandwidth");
  std::printf("  SeNDLog over NDLog:       avg %+.0f%%, at N=%zu %+.0f%%"
              "   (paper: avg +%s, at N=100 +%s)\n",
              100.0 * sum_auth / points.size(), last.n,
              100.0 * (metric(last, 1) / metric(last, 0) - 1.0),
              use_time ? "53%" : "36%", use_time ? "44%" : "17%");
  std::printf("  SeNDLogProv over SeNDLog: avg %+.0f%%, at N=%zu %+.0f%%"
              "   (paper: avg +%s, at N=100 +%s)\n",
              100.0 * sum_prov / points.size(), last.n,
              100.0 * (metric(last, 2) / metric(last, 1) - 1.0),
              use_time ? "41%" : "54%", use_time ? "6%" : "10%");
}

}  // namespace provnet::bench

#endif  // PROVNET_BENCH_FIGURE_COMMON_H_
