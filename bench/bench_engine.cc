// Ablation A6 (engine half): the runtime primitives under every curve —
// table insert/lookup, parsing, and the end-to-end fixpoint at small N.

#include <benchmark/benchmark.h>

#include "apps/bestpath.h"
#include "apps/programs.h"
#include "core/table.h"
#include "datalog/parser.h"

namespace provnet {
namespace {

void BM_TableInsert(benchmark::State& state) {
  TableOptions opts;
  int64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Table table("bench", opts);
    state.ResumeTiming();
    for (int64_t k = 0; k < state.range(0); ++k) {
      StoredTuple entry;
      entry.tuple = Tuple("t", {Value::Int(i++), Value::Int(k)});
      benchmark::DoNotOptimize(table.Insert(std::move(entry), 0.0));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableInsert)->Arg(1000);

void BM_TableIndexedLookup(benchmark::State& state) {
  TableOptions opts;
  Table table("bench", opts);
  for (int64_t k = 0; k < state.range(0); ++k) {
    StoredTuple entry;
    entry.tuple = Tuple("t", {Value::Int(k % 64), Value::Int(k)});
    table.Insert(std::move(entry), 0.0);
  }
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.LookupByColumn(0, Value::Int(key++ % 64)));
  }
}
BENCHMARK(BM_TableIndexedLookup)->Arg(10000);

void BM_AggregateMinInsert(benchmark::State& state) {
  TableOptions opts;
  opts.agg = AggKind::kMin;
  opts.agg_column = 1;
  opts.key_columns = {0};
  Table table("agg", opts);
  int64_t i = 0;
  for (auto _ : state) {
    StoredTuple entry;
    entry.tuple = Tuple("cost", {Value::Int(i % 128), Value::Int(1000 - i % 997)});
    benchmark::DoNotOptimize(table.Insert(std::move(entry), 0.0));
    ++i;
  }
}
BENCHMARK(BM_AggregateMinInsert);

void BM_ParseBestPathProgram(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseProgram(BestPathNdlogProgram()).value());
  }
}
BENCHMARK(BM_ParseBestPathProgram);

void BM_BestPathFixpoint(benchmark::State& state) {
  Rng rng(99);
  Topology topo =
      Topology::RingPlusRandom(static_cast<size_t>(state.range(0)), 3, rng);
  for (auto _ : state) {
    EngineOptions base;
    Result<BestPathRun> run = RunBestPath(topo, Variant::kNdlog, base);
    benchmark::DoNotOptimize(run.value().stats.derivations);
  }
  state.SetLabel("NDLog");
}
BENCHMARK(BM_BestPathFixpoint)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_TupleSerializeRoundTrip(benchmark::State& state) {
  Tuple t("bestPath",
          {Value::Address(3), Value::Address(9),
           Value::List({Value::Address(3), Value::Address(5),
                        Value::Address(9)}),
           Value::Int(17)});
  for (auto _ : state) {
    ByteWriter w;
    t.Serialize(w);
    ByteReader r(w.bytes());
    benchmark::DoNotOptimize(Tuple::Deserialize(r).value());
  }
}
BENCHMARK(BM_TupleSerializeRoundTrip);

}  // namespace
}  // namespace provnet

BENCHMARK_MAIN();
