// Ablation A1: the cost ladder of "says" (Section 2.2) and the crypto
// primitives behind SeNDLog's overhead — per-tuple signing/verification is
// what separates the Figure 3 curves.

#include <benchmark/benchmark.h>

#include "crypto/authenticator.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "util/random.h"

namespace provnet {
namespace {

Bytes MakePayload(size_t size) {
  Bytes payload(size);
  Rng rng(7);
  for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
  return payload;
}

void BM_Sha256(benchmark::State& state) {
  Bytes payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = MakePayload(32);
  Bytes payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, payload));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(1);
  RsaKeyPair kp =
      RsaGenerateKeyPair(static_cast<size_t>(state.range(0)), rng).value();
  Bytes payload = MakePayload(100);  // a typical tuple message
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSign(kp.priv, payload).value());
  }
}
BENCHMARK(BM_RsaSign)->Arg(256)->Arg(512)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
  Rng rng(2);
  RsaKeyPair kp =
      RsaGenerateKeyPair(static_cast<size_t>(state.range(0)), rng).value();
  Bytes payload = MakePayload(100);
  Bytes sig = RsaSign(kp.priv, payload).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerify(kp.pub, payload, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(256)->Arg(512)->Arg(1024);

// The says ladder end to end: tag creation + verification per tuple.
void BM_SaysRoundTrip(benchmark::State& state) {
  KeyStore keystore(11, 256);
  Authenticator auth(&keystore);
  Bytes payload = MakePayload(100);
  SaysLevel level = static_cast<SaysLevel>(state.range(0));
  for (auto _ : state) {
    SaysTag tag = auth.Say("n0", payload, level).value();
    benchmark::DoNotOptimize(auth.Verify(tag, payload));
  }
  state.SetLabel(SaysLevelName(level));
}
BENCHMARK(BM_SaysRoundTrip)->Arg(0)->Arg(1)->Arg(2);

void BM_RsaKeygen(benchmark::State& state) {
  uint64_t seed = 100;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(
        RsaGenerateKeyPair(static_cast<size_t>(state.range(0)), rng).value());
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace provnet

BENCHMARK_MAIN();
