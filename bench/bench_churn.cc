// Steady-state fixpoint vs. incremental maintenance under link churn.
//
// A K-flap script (each flap: one link down, then back up) runs against a
// Best-Path deployment on a ring+random topology three ways:
//
//   full        rebuild the engine and recompute the fixpoint from scratch
//               after every event (what the one-shot reproduction had to do)
//   dred        incremental maintenance, no provenance: DRed over-delete +
//               re-derive
//   prov        incremental maintenance with condensed per-tuple
//               annotations: restriction-based pruning skips re-derivation
//               for tuples with surviving alternative derivations
//
// Reported per event: fixpoint-maintenance latency and network bytes (the
// same meters as the paper's Figures 3/4). The acceptance bar: incremental
// maintenance must beat full recomputation on a >= 50-node topology.
//
// Environment knobs:
//   PROVNET_CHURN_N       nodes (default 50)
//   PROVNET_CHURN_FLAPS   link flaps (default 10 -> 20 events)
//   PROVNET_CHURN_SEED    topology/script seed (default 20080407)

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <vector>

#include "apps/programs.h"
#include "core/engine.h"
#include "dynamics/churn.h"
#include "net/topology.h"

using namespace provnet;

namespace {

struct Config {
  size_t n = 50;
  size_t flaps = 10;
  uint64_t seed = 20080407;
};

Config FromEnv() {
  Config cfg;
  if (const char* v = std::getenv("PROVNET_CHURN_N")) {
    cfg.n = static_cast<size_t>(std::atoll(v));
  }
  if (const char* v = std::getenv("PROVNET_CHURN_FLAPS")) {
    cfg.flaps = static_cast<size_t>(std::atoll(v));
  }
  if (const char* v = std::getenv("PROVNET_CHURN_SEED")) {
    cfg.seed = static_cast<uint64_t>(std::atoll(v));
  }
  if (cfg.n < 4) cfg.n = 4;  // RingPlusRandom needs outdegree 3 < n
  if (cfg.flaps < 1) cfg.flaps = 1;
  return cfg;
}

EngineOptions Plain() { return EngineOptions{}; }

EngineOptions TupleProv() {
  EngineOptions opts;
  opts.prov_mode = ProvMode::kCondensed;
  opts.prov_grain = ProvGrain::kTuple;
  return opts;
}

struct VariantResult {
  std::string name;
  size_t events = 0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double total_s = 0.0;
  double mbytes = 0.0;
  uint64_t retractions = 0;
  uint64_t rederivations = 0;
};

Result<std::unique_ptr<Engine>> FreshFixpoint(const Topology& topo,
                                              EngineOptions opts) {
  PROVNET_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(topo, BestPathNdlogProgram(), opts));
  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_RETURN_IF_ERROR(engine->Run().status());
  return engine;
}

// Incremental: one engine, the churn driver maintains it per event.
Result<VariantResult> RunIncremental(const std::string& name,
                                     const Topology& topo,
                                     const ChurnScript& script,
                                     EngineOptions opts) {
  PROVNET_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                           FreshFixpoint(topo, opts));
  ChurnDriver driver(*engine, /*link_arity=*/3);
  PROVNET_ASSIGN_OR_RETURN(ChurnReport report, driver.Replay(script));

  VariantResult out;
  out.name = name;
  out.events = report.events.size();
  out.mean_ms = report.MeanEventSeconds() * 1e3;
  out.max_ms = report.MaxEventSeconds() * 1e3;
  out.total_s = report.total_wall_seconds;
  out.mbytes = static_cast<double>(report.total_bytes) / 1e6;
  out.retractions = report.total_retractions;
  out.rederivations = report.total_rederivations;
  return out;
}

// Baseline: after every event, rebuild the whole deployment from the
// current link facts and recompute the fixpoint from scratch.
Result<VariantResult> RunFullRecompute(const Topology& topo,
                                       const ChurnScript& script,
                                       EngineOptions opts) {
  std::vector<TopoEdge> edges = topo.edges;
  VariantResult out;
  out.name = "full";
  for (const ChurnEvent& event : script.events) {
    switch (event.kind) {
      case ChurnKind::kLinkDown:
        for (size_t i = 0; i < edges.size(); ++i) {
          if (edges[i].from == event.from && edges[i].to == event.to &&
              edges[i].cost == event.cost) {
            edges.erase(edges.begin() + static_cast<long>(i));
            break;
          }
        }
        break;
      case ChurnKind::kLinkUp:
        edges.push_back(TopoEdge{event.from, event.to, event.cost});
        break;
      case ChurnKind::kCompromise:
      case ChurnKind::kExpireOnly:
        break;
    }
    Topology current;
    current.num_nodes = topo.num_nodes;
    current.edges = edges;

    auto t0 = std::chrono::steady_clock::now();
    PROVNET_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                             FreshFixpoint(current, opts));
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    out.total_s += secs;
    out.max_ms = std::max(out.max_ms, secs * 1e3);
    out.mbytes +=
        static_cast<double>(engine->network().total_bytes()) / 1e6;
    ++out.events;
  }
  if (out.events > 0) {
    out.mean_ms = out.total_s * 1e3 / static_cast<double>(out.events);
  }
  return out;
}

void PrintRow(const VariantResult& r) {
  std::printf("%-6s %7zu %12.3f %12.3f %10.3f %12.3f %12llu %13llu\n",
              r.name.c_str(), r.events, r.mean_ms, r.max_ms, r.total_s,
              r.mbytes, static_cast<unsigned long long>(r.retractions),
              static_cast<unsigned long long>(r.rederivations));
}

}  // namespace

int main() {
  Config cfg = FromEnv();
  Rng rng(cfg.seed);
  Topology topo = Topology::RingPlusRandom(cfg.n, 3, rng);
  Rng script_rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  ChurnScript script = ChurnScript::RandomLinkFlaps(
      topo, cfg.flaps, /*start=*/1.0, /*spacing=*/1.0, script_rng);

  std::printf("bench_churn: Best-Path on %zu nodes (outdegree 3), "
              "%zu link flaps (%zu events)\n\n",
              cfg.n, cfg.flaps, script.events.size());
  std::printf("%-6s %7s %12s %12s %10s %12s %12s %13s\n", "mode", "events",
              "mean ms/ev", "max ms/ev", "total s", "MB", "retractions",
              "rederivations");

  auto full = RunFullRecompute(topo, script, Plain());
  if (!full.ok()) {
    std::printf("full recompute failed: %s\n",
                full.status().ToString().c_str());
    return 1;
  }
  PrintRow(full.value());

  auto dred = RunIncremental("dred", topo, script, Plain());
  if (!dred.ok()) {
    std::printf("dred failed: %s\n", dred.status().ToString().c_str());
    return 1;
  }
  PrintRow(dred.value());

  auto prov = RunIncremental("prov", topo, script, TupleProv());
  if (!prov.ok()) {
    std::printf("prov failed: %s\n", prov.status().ToString().c_str());
    return 1;
  }
  PrintRow(prov.value());

  double dred_speedup = full.value().mean_ms / dred.value().mean_ms;
  double prov_speedup = full.value().mean_ms / prov.value().mean_ms;
  std::printf("\nper-event speedup vs full recomputation: dred %.1fx, "
              "prov %.1fx\n",
              dred_speedup, prov_speedup);
  std::printf("per-event bandwidth: full %.3f MB, dred %.3f MB, prov %.3f "
              "MB\n",
              full.value().mbytes / full.value().events,
              dred.value().mbytes / dred.value().events,
              prov.value().mbytes / prov.value().events);

  bool pass = dred.value().mean_ms < full.value().mean_ms &&
              prov.value().mean_ms < full.value().mean_ms;
  std::printf("%s: incremental maintenance (both modes) %s full "
              "recomputation on %zu nodes\n",
              pass ? "PASS" : "FAIL", pass ? "beats" : "does NOT beat",
              cfg.n);
  return pass ? 0 : 1;
}
