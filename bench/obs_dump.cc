// obs_dump: run a seeded Best-Path deployment and dump the full metrics
// registry — the one-command window into what the engine actually did.
//
// The default workload (50-node ring+random topology, SeNDlog Best-Path
// with pointer provenance, authenticated HMAC says, a batch of distributed
// ProvQueries) exercises every instrumented layer: per-rule firing /
// candidate / derivation counters, per-link bytes split by message kind,
// verification rejection counters, and the ProvQuery latency histograms
// (virtual-time p50/p99). Output is a human-readable table on stdout;
// --json and --trace write the canonical snapshot and the trace JSONL that
// CI archives next to the BENCH reports.
//
// Usage:
//   obs_dump [--n N] [--queries Q] [--sample K] [--json PATH] [--trace PATH]
//
//   --n N        deployment size (default 50)
//   --queries Q  distributed ProvQueries to issue after fixpoint (default 10)
//   --sample K   trace sampling: keep 1 in K sampled events (default 8)
//   --json PATH  write obs::SnapshotJson of the registry to PATH
//   --trace PATH write the virtual-time trace stream (JSONL) to PATH
//
// Environment knobs:
//   PROVNET_OBS_SEED  topology seed (default 20080407)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "obs/export.h"
#include "query/provquery.h"
#include "util/logging.h"

using namespace provnet;

namespace {

struct Config {
  size_t n = 50;
  size_t queries = 10;
  size_t sample_every = 8;
  uint64_t seed = 20080407;
  std::string json_path;
  std::string trace_path;
};

bool WriteFile(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

Status RunDump(const Config& cfg) {
  Rng rng(cfg.seed + cfg.n);
  Topology topo = Topology::RingPlusRandom(cfg.n, /*outdegree=*/3, rng);

  EngineOptions opts;
  opts.seed = cfg.seed;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kPointers;  // distributed walks need records

  PROVNET_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(topo, BestPathSendlogProgram(), opts));
  engine->tracer().Enable(/*capacity=*/16384, cfg.sample_every);

  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_RETURN_IF_ERROR(engine->Run().status());

  // A batch of distributed pointer walks so the provquery.* counters and
  // the latency histograms have real distributions in them.
  size_t issued = 0;
  for (NodeId node = 0; node < engine->num_nodes() && issued < cfg.queries;
       ++node) {
    for (const Tuple& t : engine->TuplesAt(node, "bestPath")) {
      if (issued >= cfg.queries) break;
      Result<QueryResult> query = ProvQueryBuilder(*engine)
                                      .At(node)
                                      .Of(t)
                                      .WithScope(QueryScope::kDistributed)
                                      .Run();
      PROVNET_RETURN_IF_ERROR(query.status());
      ++issued;
    }
  }

  std::string table = obs::SnapshotText(engine->metrics());
  std::fwrite(table.data(), 1, table.size(), stdout);

  if (!cfg.json_path.empty()) {
    WriteFile(cfg.json_path, obs::SnapshotJson(engine->metrics()));
  }
  if (!cfg.trace_path.empty()) {
    WriteFile(cfg.trace_path, engine->tracer().ToJsonl());
  }
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      cfg.n = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      cfg.queries = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
      cfg.sample_every = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      cfg.trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n N] [--queries Q] [--sample K] "
                   "[--json PATH] [--trace PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (const char* v = std::getenv("PROVNET_OBS_SEED")) {
    cfg.seed = static_cast<uint64_t>(std::atoll(v));
  }
  if (cfg.n < 2) cfg.n = 2;
  if (cfg.sample_every < 1) cfg.sample_every = 1;

  Status status = RunDump(cfg);
  if (!status.ok()) {
    std::fprintf(stderr, "obs_dump failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
