// obs_dump: run a seeded Best-Path deployment and dump the full metrics
// registry — the one-command window into what the engine actually did.
//
// The default workload (50-node ring+random topology, SeNDlog Best-Path
// with pointer provenance, authenticated HMAC says, a batch of distributed
// ProvQueries) exercises every instrumented layer: per-rule firing /
// candidate / derivation counters, per-link bytes split by message kind,
// verification rejection counters, and the ProvQuery latency histograms
// (virtual-time p50/p99). Output is a human-readable table on stdout;
// --json and --trace write the canonical snapshot and the trace JSONL that
// CI archives next to the BENCH reports.
//
// Usage:
//   obs_dump [--n N] [--queries Q] [--sample K] [--json PATH] [--trace PATH]
//            [--prof] [--trace-tree]
//
//   --n N        deployment size (default 50)
//   --queries Q  distributed ProvQueries to issue after fixpoint (default 10)
//   --sample K   trace sampling: keep 1 in K sampled events (default 8)
//   --json PATH  write obs::SnapshotJson of the registry to PATH
//   --trace PATH write the virtual-time trace stream (JSONL) to PATH
//   --prof       enable the wall-clock profiler + memory accounting and
//                append the phase/lane/memory profile to the output
//   --trace-tree record causal span ids and print the largest stitched
//                cross-node span tree (the distributed-walk view)
//
// Environment knobs:
//   PROVNET_OBS_SEED  topology seed (default 20080407)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "obs/export.h"
#include "obs/mem.h"
#include "obs/trace.h"
#include "query/provquery.h"
#include "util/logging.h"

using namespace provnet;

namespace {

struct Config {
  size_t n = 50;
  size_t queries = 10;
  size_t sample_every = 8;
  uint64_t seed = 20080407;
  std::string json_path;
  std::string trace_path;
  bool prof = false;
  bool trace_tree = false;
};

bool WriteFile(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

// Stitches the ring's events into causal span trees and renders the
// largest one: events sharing a span id collapse into one span node (a
// wire message's send and deliver halves), children are spans whose
// parent_span matches, and roots are spans with no parent in the ring.
void PrintLargestTraceTree(const obs::Tracer& tracer) {
  std::vector<const obs::TraceEvent*> events = tracer.Events();

  // trace id -> span id -> that span's events (ring order).
  std::map<uint64_t, std::map<uint64_t, std::vector<const obs::TraceEvent*>>>
      traces;
  for (const obs::TraceEvent* ev : events) {
    if (ev->span_id == 0) continue;
    uint64_t trace = ev->trace_id != 0 ? ev->trace_id : ev->span_id;
    traces[trace][ev->span_id].push_back(ev);
  }
  if (traces.empty()) {
    std::printf("== trace tree ==\n(no causal spans recorded)\n");
    return;
  }

  // Prefer the largest trace rooted in a ProvQuery walk (the structural
  // events the flag exists to show); fall back to the largest trace of any
  // kind (sampled fixpoint traffic).
  auto has_query = [](const std::map<uint64_t,
                                     std::vector<const obs::TraceEvent*>>&
                          spans) {
    for (const auto& [span_id, evs] : spans) {
      for (const obs::TraceEvent* ev : evs) {
        if (ev->kind.rfind("provquery", 0) == 0) return true;
      }
    }
    return false;
  };
  const auto* largest = &*traces.begin();
  bool largest_is_query = has_query(largest->second);
  for (const auto& entry : traces) {
    bool is_query = has_query(entry.second);
    if ((is_query && !largest_is_query) ||
        (is_query == largest_is_query &&
         entry.second.size() > largest->second.size())) {
      largest = &entry;
      largest_is_query = is_query;
    }
  }
  const auto& spans = largest->second;

  std::map<uint64_t, std::vector<uint64_t>> children;
  std::vector<uint64_t> roots;
  for (const auto& [span_id, evs] : spans) {
    uint64_t parent = 0;
    for (const obs::TraceEvent* ev : evs) {
      if (ev->parent_span != 0) parent = ev->parent_span;
    }
    if (parent != 0 && spans.count(parent) != 0 && parent != span_id) {
      children[parent].push_back(span_id);
    } else {
      roots.push_back(span_id);
    }
  }

  std::set<uint32_t> nodes;
  for (const auto& [span_id, evs] : spans) {
    for (const obs::TraceEvent* ev : evs) nodes.insert(ev->node);
  }
  std::printf("== trace tree ==\ntrace %llu: %zu spans across %zu nodes\n",
              (unsigned long long)largest->first, spans.size(), nodes.size());

  std::function<void(uint64_t, int)> print_span = [&](uint64_t span_id,
                                                      int depth) {
    const std::vector<const obs::TraceEvent*>& evs = spans.at(span_id);
    std::string kinds;
    std::set<uint32_t> span_nodes;
    for (const obs::TraceEvent* ev : evs) {
      if (!kinds.empty()) kinds += '+';
      kinds += ev->kind;
      span_nodes.insert(ev->node);
    }
    std::string node_list;
    for (uint32_t node : span_nodes) {
      if (!node_list.empty()) node_list += ',';
      node_list += std::to_string(node);
    }
    std::printf("%*sspan %llu [node %s] %s t=%.6f\n", depth * 2, "",
                (unsigned long long)span_id, node_list.c_str(), kinds.c_str(),
                evs.front()->sim_time);
    auto it = children.find(span_id);
    if (it == children.end()) return;
    for (uint64_t child : it->second) print_span(child, depth + 1);
  };
  for (uint64_t root : roots) print_span(root, 1);
}

Status RunDump(const Config& cfg) {
  Rng rng(cfg.seed + cfg.n);
  Topology topo = Topology::RingPlusRandom(cfg.n, /*outdegree=*/3, rng);

  EngineOptions opts;
  opts.seed = cfg.seed;
  opts.authenticate = true;
  opts.says_level = SaysLevel::kHmac;
  opts.prov_mode = ProvMode::kPointers;  // distributed walks need records

  if (cfg.prof) obs::MemAccounting::Global().Enable();
  PROVNET_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(topo, BestPathSendlogProgram(), opts));
  // Tree mode records every event: sampled-out hops would otherwise break
  // parent links and shatter the tree into fragments.
  engine->tracer().Enable(/*capacity=*/16384,
                          cfg.trace_tree ? 1 : cfg.sample_every,
                          /*record_wall=*/false,
                          /*record_spans=*/cfg.trace_tree);
  if (cfg.prof) engine->profiler().Enable();

  PROVNET_RETURN_IF_ERROR(engine->InsertLinkFacts());
  PROVNET_RETURN_IF_ERROR(engine->Run().status());

  // A batch of distributed pointer walks so the provquery.* counters and
  // the latency histograms have real distributions in them.
  size_t issued = 0;
  for (NodeId node = 0; node < engine->num_nodes() && issued < cfg.queries;
       ++node) {
    for (const Tuple& t : engine->TuplesAt(node, "bestPath")) {
      if (issued >= cfg.queries) break;
      Result<QueryResult> query = ProvQueryBuilder(*engine)
                                      .At(node)
                                      .Of(t)
                                      .WithScope(QueryScope::kDistributed)
                                      .Run();
      PROVNET_RETURN_IF_ERROR(query.status());
      ++issued;
    }
  }

  std::string table = obs::SnapshotText(engine->metrics());
  std::fwrite(table.data(), 1, table.size(), stdout);

  if (cfg.prof) {
    std::string prof = obs::ProfileText(engine->profiler(),
                                        obs::MemAccounting::Global());
    std::fwrite(prof.data(), 1, prof.size(), stdout);
  }
  if (cfg.trace_tree) PrintLargestTraceTree(engine->tracer());

  if (!cfg.json_path.empty()) {
    WriteFile(cfg.json_path, obs::SnapshotJson(engine->metrics()));
  }
  if (!cfg.trace_path.empty()) {
    WriteFile(cfg.trace_path, engine->tracer().ToJsonl());
  }
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      cfg.n = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      cfg.queries = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
      cfg.sample_every = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      cfg.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prof") == 0) {
      cfg.prof = true;
    } else if (std::strcmp(argv[i], "--trace-tree") == 0) {
      cfg.trace_tree = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n N] [--queries Q] [--sample K] "
                   "[--json PATH] [--trace PATH] [--prof] [--trace-tree]\n",
                   argv[0]);
      return 2;
    }
  }
  if (const char* v = std::getenv("PROVNET_OBS_SEED")) {
    cfg.seed = static_cast<uint64_t>(std::atoll(v));
  }
  if (cfg.n < 2) cfg.n = 2;
  if (cfg.sample_every < 1) cfg.sample_every = 1;

  Status status = RunDump(cfg);
  if (!status.ok()) {
    std::fprintf(stderr, "obs_dump failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
