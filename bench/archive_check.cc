// archive_check: the CI durability tripwire for the on-disk provenance
// archive (ISSUE 9).
//
// Runs a full-provenance Best-Path fixpoint with every node archiving to a
// scratch directory, fingerprints the distributed proof DAG of *every*
// bestPath tuple at every node (ProofDag::CanonicalBytes), then destroys
// the engine — the crash — and restarts a fresh engine over the same
// directory. The restarted engine never inserts facts and never runs the
// protocol: every query is answered from the replayed page logs. Any proof
// whose canonical bytes differ from the pre-crash fingerprint fails the
// check with a nonzero exit.
//
// Usage:
//   archive_check [--nodes N] [--dir PATH] [--tear]
//
//   --nodes N   topology size (default 24)
//   --dir PATH  archive directory (default: fresh dir under /tmp, removed
//               on success)
//   --tear      after the crash, append a partial frame to every node log
//               (simulating a kill mid-append) before recovering

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/programs.h"
#include "core/engine.h"
#include "net/topology.h"
#include "query/provquery.h"
#include "util/logging.h"

using namespace provnet;

namespace {

constexpr uint64_t kSeed = 20080407;

struct Fingerprint {
  NodeId at = 0;
  Tuple tuple;
  Bytes canonical;
};

Result<std::unique_ptr<Engine>> MakeEngine(const Topology& topo,
                                           const std::string& dir) {
  EngineOptions opts;
  opts.seed = kSeed;
  opts.prov_mode = ProvMode::kFull;
  opts.record_offline = true;
  opts.archive_dir = dir;
  opts.archive_page_bytes = 4096;
  opts.archive_cache_pages = 16;
  return Engine::Create(topo, BestPathNdlogProgram(), opts);
}

Result<Bytes> QueryProof(Engine& engine, NodeId at, const Tuple& tuple) {
  PROVNET_ASSIGN_OR_RETURN(QueryResult r,
                           ProvQueryBuilder(engine)
                               .At(at)
                               .Of(tuple)
                               .WithScope(QueryScope::kDistributed)
                               .Run());
  return r.dag.CanonicalBytes();
}

}  // namespace

int main(int argc, char** argv) {
  size_t nodes = 24;
  std::string dir;
  bool tear = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--tear") == 0) {
      tear = true;
    } else {
      std::fprintf(stderr, "usage: %s [--nodes N] [--dir PATH] [--tear]\n",
                   argv[0]);
      return 2;
    }
  }
  bool scratch = dir.empty();
  if (scratch) {
    dir = (std::filesystem::temp_directory_path() /
           ("provnet_archive_check_" + std::to_string(::getpid())))
              .string();
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  Rng rng(kSeed + nodes);
  Topology topo = Topology::RingPlusRandom(nodes, /*outdegree=*/3, rng);

  // Phase 1: run the protocol, archive everything, fingerprint every proof.
  std::vector<Fingerprint> proofs;
  {
    auto engine_or = MakeEngine(topo, dir);
    if (!engine_or.ok() || !engine_or.value()->InsertLinkFacts().ok()) {
      std::fprintf(stderr, "archive_check: engine setup failed\n");
      return 1;
    }
    std::unique_ptr<Engine> engine = std::move(engine_or).value();
    auto stats = engine->Run();
    if (!stats.ok()) {
      std::fprintf(stderr, "archive_check: run failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    for (NodeId at = 0; at < engine->num_nodes(); ++at) {
      for (const Tuple& t : engine->TuplesAt(at, "bestPath")) {
        auto bytes = QueryProof(*engine, at, t);
        if (!bytes.ok()) {
          std::fprintf(stderr, "archive_check: pre-crash query failed: %s\n",
                       bytes.status().ToString().c_str());
          return 1;
        }
        proofs.push_back({at, t, std::move(bytes).value()});
      }
    }
    uint64_t disk = 0;
    for (NodeId n = 0; n < engine->num_nodes(); ++n) {
      disk += engine->node(n).offline_store().DiskBytes();
    }
    std::printf("archive_check: %zu proofs fingerprinted, %.1f KiB archived "
                "across %zu node logs\n",
                proofs.size(), disk / 1024.0, engine->num_nodes());
  }  // crash

  if (tear) {
    size_t torn = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      std::FILE* f = std::fopen(entry.path().c_str(), "ab");
      if (f == nullptr) continue;
      const uint8_t garbage[7] = {0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67};
      std::fwrite(garbage, 1, sizeof(garbage), f);
      std::fclose(f);
      ++torn;
    }
    std::printf("archive_check: tore the tail of %zu logs\n", torn);
  }

  // Phase 2: recover and re-verify every proof from the archives alone.
  auto engine_or = MakeEngine(topo, dir);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "archive_check: recovery failed: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> engine = std::move(engine_or).value();
  size_t recovered = 0;
  for (NodeId n = 0; n < engine->num_nodes(); ++n) {
    recovered += engine->node(n).offline_store().size();
  }
  std::printf("archive_check: replayed %zu records\n", recovered);

  size_t mismatches = 0;
  for (const Fingerprint& fp : proofs) {
    auto bytes = QueryProof(*engine, fp.at, fp.tuple);
    if (!bytes.ok()) {
      std::fprintf(stderr, "archive_check: post-crash query of %s@%u: %s\n",
                   fp.tuple.ToString().c_str(), unsigned(fp.at),
                   bytes.status().ToString().c_str());
      ++mismatches;
      continue;
    }
    if (bytes.value() != fp.canonical) {
      std::fprintf(stderr, "archive_check: MISMATCH for %s@%u\n",
                   fp.tuple.ToString().c_str(), unsigned(fp.at));
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "archive_check: FAIL — %zu of %zu proofs changed across the "
                 "restart\n",
                 mismatches, proofs.size());
    return 1;
  }
  std::printf("archive_check: OK — %zu proofs byte-identical across the "
              "restart%s\n",
              proofs.size(), tear ? " (torn tails recovered)" : "");
  if (scratch) std::filesystem::remove_all(dir, ec);
  return 0;
}
